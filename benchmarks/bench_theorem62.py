"""E8 -- Theorem 6.2: every pattern is Datalog(!=)-expressible on DAGs.

Regenerates: on random layered DAGs, the four-way agreement between the
exact embedding oracle, the two-player game, the level-scheduled
solitaire game, and the generated Datalog(!=) game program -- for H1
(outside class C!) and H2.
"""

import random

import pytest

from _harness import record
from repro.datalog.homeo import acyclic_game_program
from repro.fhw.homeomorphism import is_homeomorphic_to_distinguished_subgraph
from repro.fhw.pattern_class import pattern_h1, pattern_h2
from repro.games.acyclic import acyclic_game_winner
from repro.games.solitaire import solitaire_game_solvable
from repro.graphs.generators import layered_random_dag

PATTERNS = {"H1": pattern_h1, "H2": pattern_h2}


def _cases(pattern, count=10, seed0=0):
    rng = random.Random(13)
    pattern_nodes = sorted(pattern.nodes, key=repr)
    cases = []
    for seed in range(seed0, seed0 + 2):
        dag = layered_random_dag(4, 3, 0.5, seed)
        nodes = sorted(dag.nodes)
        for __ in range(count // 2):
            cases.append(
                (dag, dict(zip(pattern_nodes, rng.sample(nodes, len(pattern_nodes)))))
            )
    return cases


@pytest.mark.parametrize("name", sorted(PATTERNS))
def bench_datalog_game_program(benchmark, name):
    pattern = PATTERNS[name]()
    query = acyclic_game_program(pattern)
    cases = _cases(pattern)

    def sweep():
        return [query.decide(g, a) for g, a in cases]

    datalog = benchmark(sweep)
    exact = [
        is_homeomorphic_to_distinguished_subgraph(pattern, g, a)
        for g, a in cases
    ]
    game = [acyclic_game_winner(g, pattern, a) == "II" for g, a in cases]
    solitaire = [solitaire_game_solvable(g, pattern, a) for g, a in cases]
    assert datalog == exact == game == solitaire
    record(
        benchmark,
        experiment="E8",
        pattern=name,
        cases=len(cases),
        positives=sum(exact),
    )


def bench_embedding_extraction(benchmark):
    """Theorem 6.2's proof direction: winning plays trace the embedding."""
    from repro.games.acyclic import extract_embedding_from_game

    pattern = pattern_h1()
    cases = _cases(pattern, count=8, seed0=3)

    def sweep():
        extracted = 0
        for g, assignment in cases:
            paths = extract_embedding_from_game(g, pattern, assignment)
            exists = is_homeomorphic_to_distinguished_subgraph(
                pattern, g, assignment
            )
            assert (paths is not None) == exists
            extracted += paths is not None
        return extracted

    extracted = benchmark(sweep)
    record(
        benchmark, experiment="E8", embeddings=extracted, cases=len(cases)
    )


def bench_game_solver(benchmark):
    pattern = pattern_h1()
    cases = _cases(pattern, count=12, seed0=5)

    def sweep():
        return [acyclic_game_winner(g, pattern, a) for g, a in cases]

    winners = benchmark(sweep)
    assert set(winners) <= {"I", "II"}
    record(
        benchmark,
        experiment="E8",
        player_two_wins=winners.count("II"),
        cases=len(cases),
    )
