"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one experiment row of DESIGN.md's
index (E1-E21).  Benchmarks assert the *shape* of the paper's result
(who wins, which deciders agree, which dichotomy side a pattern falls
on) and time the reproducing computation; absolute numbers are ours,
the shape is the paper's.

Run with::

    pytest benchmarks/ --benchmark-only

Row and artifact schema
-----------------------

Scripted benchmark runs (``main(--json PATH)``) and the pytest
``extra_info`` payloads both speak one row schema, and ``write_rows``
wraps the rows in the versioned ``BENCH_<name>.json`` document of
:mod:`repro.obs.bench` (schema version, bench name, machine info)::

    {"name": str, "params": dict, "engine": str | None,
     "wall_ms": float, "counters": {metric: int},
     "analyze": dict | None}

``counters`` is a :mod:`repro.obs` registry snapshot taken around the
timed call, so a bench row records not just *how long* but *how much
work* (rounds, rule firings, index probes) the run did; ``analyze`` is
an optional EXPLAIN ANALYZE summary
(:meth:`repro.obs.analyze.PlanProfile.summary`).  ``repro bench
report`` renders the artifacts and ``repro bench compare`` gates on
them (the CI perf gate).
"""

import json
import time

from repro.obs import metrics as _metrics
from repro.obs.analyze import PlanProfile
from repro.obs.bench import make_document


def record(benchmark, **info):
    """Attach experiment metadata to a benchmark entry."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def measure(benchmark, fn):
    """``benchmark(fn)`` with a live metrics registry around each call.

    The registry resets per call, so ``extra_info["counters"]`` holds
    the snapshot of exactly one (the last) timed invocation.
    """
    registry = _metrics.MetricsRegistry()

    def instrumented():
        registry.reset()
        _metrics.enable_metrics(registry)
        try:
            return fn()
        finally:
            _metrics.disable_metrics()

    result = benchmark(instrumented)
    benchmark.extra_info["counters"] = registry.snapshot()["counters"]
    return result


def timed_row(name, fn, *, engine=None, params=None, repeats=1, analyze=None):
    """Best-of-``repeats`` timing of ``fn`` as a schema row.

    Returns ``(result, row)``: the last call's return value and the
    shared-schema dict (wall_ms is the minimum over repeats; counters
    come from the final repeat, so they describe one clean run).
    ``analyze`` embeds an EXPLAIN ANALYZE summary in the row: pass a
    :class:`~repro.obs.analyze.PlanProfile` or an already-summarised
    dict.
    """
    registry = _metrics.MetricsRegistry()
    times = []
    result = None
    _metrics.enable_metrics(registry)
    try:
        for __ in range(repeats):
            registry.reset()
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
    finally:
        _metrics.disable_metrics()
    if isinstance(analyze, PlanProfile):
        analyze = analyze.summary()
    row = {
        "name": name,
        "params": dict(params or {}),
        "engine": engine,
        "wall_ms": round(min(times) * 1000, 3),
        "counters": registry.snapshot()["counters"],
        "analyze": analyze,
    }
    return result, row


def write_rows(path, rows, bench=""):
    """Write rows as a versioned bench document (the CI bench artifact).

    ``bench`` names the emitting script (``"codegen"`` for
    ``bench_codegen.py``); the document embeds it together with the
    schema version and machine info so ``repro bench compare`` can
    align artifacts from different runs.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(make_document(bench, rows), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
