"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one experiment row of DESIGN.md's
index (E1-E15).  Benchmarks assert the *shape* of the paper's result
(who wins, which deciders agree, which dichotomy side a pattern falls
on) and time the reproducing computation; absolute numbers are ours,
the shape is the paper's.

Run with::

    pytest benchmarks/ --benchmark-only
"""


def record(benchmark, **info):
    """Attach experiment metadata to a benchmark entry."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
