"""E13 -- Theorem 6.7 and Lemma 6.3: the whole complement of C.

Regenerates: the H2 / H3 certificates (endpoint identifications of the
Theorem 6.6 structures) with exact-oracle side checks at k = 1 and
adversarial strategy survival, plus a Lemma 6.3 lift to a superpattern.
"""

import pytest

from _harness import record
from repro.core import h2_certificate, h3_certificate, lift_certificate, theorem_66_certificate
from repro.fhw.pattern_class import pattern_h1
from repro.games.simulate import RandomPlayerOne, run_existential_game
from repro.graphs.paths import node_disjoint_simple_paths

FACTORIES = {"H2": h2_certificate, "H3": h3_certificate}


@pytest.mark.parametrize("name", sorted(FACTORIES))
def bench_certificate_sides(benchmark, name):
    cert = FACTORIES[name](1)
    d_a = cert.a_graph.distinguished
    d_b = cert.b_graph.distinguished
    if name == "H2":
        a_pairs = [(d_a["s1"], d_a["s2"]), (d_a["s2"], d_a["s3"])]
        b_pairs = [(d_b["s1"], d_b["s2"]), (d_b["s2"], d_b["s3"])]
    else:
        a_pairs = [(d_a["s1"], d_a["s2"]), (d_a["s2"], d_a["s1"])]
        b_pairs = [(d_b["s1"], d_b["s2"]), (d_b["s2"], d_b["s1"])]

    def sides():
        return (
            node_disjoint_simple_paths(cert.a_graph, a_pairs) is not None,
            node_disjoint_simple_paths(cert.b_graph, b_pairs) is not None,
        )

    a_holds, b_holds = benchmark(sides)
    assert a_holds and not b_holds
    record(
        benchmark,
        experiment="E13",
        pattern=name,
        a_nodes=len(cert.a),
        b_nodes=len(cert.b),
    )


@pytest.mark.parametrize("name", sorted(FACTORIES))
@pytest.mark.parametrize("k", [1, 2])
def bench_strategy_survival(benchmark, name, k):
    cert = FACTORIES[name](k)

    def simulate():
        survived = 0
        for seed in range(6):
            transcript = run_existential_game(
                cert.a, cert.b, k,
                RandomPlayerOne(cert.a, seed=seed),
                cert.fresh_strategy(), rounds=120,
            )
            survived += transcript.player_two_survived
        return survived

    survived = benchmark(simulate)
    assert survived == 6
    record(benchmark, experiment="E13", pattern=name, k=k)


def bench_lemma_63_lift(benchmark):
    base = theorem_66_certificate(1)
    sub = pattern_h1()
    super_pattern = sub.add_edges([("s2", "s5")])
    d_a, d_b = base.a_graph.distinguished, base.b_graph.distinguished
    anchors_a = {n: d_a[n] for n in ("s1", "s2", "s3", "s4")}
    anchors_b = {n: d_b[n] for n in ("s1", "s2", "s3", "s4")}

    def lift_and_play():
        lifted = lift_certificate(base, sub, super_pattern, anchors_a, anchors_b)
        transcript = run_existential_game(
            lifted.a, lifted.b, 1,
            RandomPlayerOne(lifted.a, seed=0),
            lifted.fresh_strategy(), rounds=100,
        )
        return lifted, transcript.player_two_survived

    lifted, survived = benchmark(lift_and_play)
    assert survived
    record(
        benchmark,
        experiment="E13",
        lifted_pattern=lifted.pattern_name,
        a_nodes=len(lifted.a),
    )
