"""E19 -- resource-guard overhead and checkpoint/resume cost.

Regenerates: on the engine sweep's acceptance instances (transitive
closure and ``q_program(2, 1)`` on the seed-7, density-0.25 random
digraph at n=12), running the indexed engine under a generous
never-tripping :class:`~repro.guard.ResourceBudget` (plus a live
cancellation token) must cost at most **5%** wall-clock over the
unguarded run -- the guard is one boundary check per round plus a
strided tick in the join loops, so governance is cheap enough to leave
on.  The benchmark also prices the checkpoint path: per-round
``checkpoint_sink`` emission, and an interrupt-at-half-way + resume
pair whose combined result must equal the uninterrupted fixpoint
(correctness is asserted; the split's wall cost is reported).

Also runnable as a script (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_guard.py --quick --json out.json

which runs the same comparison on smaller instances (the 5% bar is
only enforced at full size -- quick instances finish in microseconds,
where timer noise dwarfs the guard -- equality always is) and writes
shared-schema rows.
"""

from _harness import record, timed_row
from repro.datalog.evaluation import evaluate
from repro.datalog.library import q_program, transitive_closure_program
from repro.graphs.generators import random_digraph
from repro.guard import (
    BudgetExceeded,
    CancellationToken,
    ResourceBudget,
)

#: Node counts for the acceptance instances (the bench_theorem61 family).
FULL_NODES = 12
QUICK_NODES = 8

#: The acceptance bar: guarded-but-never-tripped wall clock over
#: unguarded wall clock on the full-size instances.
OVERHEAD_BAR = 1.05

#: Best-of repeats per timing row; the guard costs a few percent at
#: most, so the comparison needs stable minima.
REPEATS = 9

#: A budget that is checked in full every round but can never trip.
GENEROUS = ResourceBudget(
    wall_seconds=3600.0,
    max_iterations=10**9,
    max_tuples=10**12,
    max_rule_firings=10**12,
)

PROGRAMS = {
    "transitive-closure": transitive_closure_program,
    "q-2-1": lambda: q_program(2, 1),
}


def _structure(nodes):
    return random_digraph(nodes, 0.25, seed=7).to_structure()


def _overhead_rows(name, program, structure, params, repeats=REPEATS):
    """(unguarded_row, guarded_row, ratio) for one instance.

    The ratio is measured *interleaved* -- plain and guarded runs
    alternate, best-of each -- so machine drift (thermal, scheduler)
    lands on both sides instead of biasing whichever block ran second.
    """
    import time

    token = CancellationToken()

    def plain():
        return evaluate(program, structure, method="indexed")

    def guarded_run():
        return evaluate(
            program, structure, method="indexed",
            budget=GENEROUS, cancellation=token,
        )

    plain()  # warm-up
    plain_times, guarded_times = [], []
    unguarded = guarded = None
    for __ in range(repeats):
        start = time.perf_counter()
        unguarded = plain()
        plain_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        guarded = guarded_run()
        guarded_times.append(time.perf_counter() - start)
    assert guarded.relations == unguarded.relations
    assert guarded.iterations == unguarded.iterations
    ratio = min(guarded_times) / max(min(plain_times), 1e-9)
    # Schema rows (with counters) for the artifact; one clean run each.
    __, unguarded_row = timed_row(
        name, plain, engine="indexed", params=params
    )
    __, guarded_row = timed_row(
        name, guarded_run, engine="indexed-guarded", params=params
    )
    unguarded_row["wall_ms"] = round(min(plain_times) * 1000, 3)
    guarded_row["wall_ms"] = round(min(guarded_times) * 1000, 3)
    guarded_row["params"]["overhead_ratio"] = round(ratio, 4)
    return unguarded_row, guarded_row, ratio


def _checkpoint_rows(name, program, structure, params, repeats=3):
    """Per-round sink emission, and interrupt-at-half + resume."""
    full = evaluate(program, structure, method="indexed")
    sink: list = []

    def with_sink():
        sink.clear()
        return evaluate(
            program, structure, method="indexed",
            checkpoint_sink=sink.append,
        )

    sunk, sink_row = timed_row(
        name, with_sink, engine="indexed-checkpointing",
        params=params, repeats=repeats,
    )
    assert sunk.relations == full.relations
    assert len(sink) == full.iterations
    cutoff = max(1, full.iterations // 2)

    def interrupted_then_resumed():
        try:
            evaluate(
                program, structure, method="indexed",
                budget=ResourceBudget(max_iterations=cutoff),
            )
        except BudgetExceeded as exc:
            return evaluate(
                program, structure, method="indexed",
                resume_from=exc.checkpoint,
            )
        raise AssertionError("cutoff did not trip")

    resumed, resume_row = timed_row(
        name, interrupted_then_resumed, engine="indexed-kill-resume",
        params={**params, "cutoff": cutoff}, repeats=repeats,
    )
    assert resumed.relations == full.relations
    assert resumed.iterations == full.iterations
    return sink_row, resume_row


def bench_guard_overhead_tc(benchmark):
    """Transitive closure at n=12: the never-tripping guard is <= 5%."""
    program = transitive_closure_program()
    structure = _structure(FULL_NODES)
    params = {"nodes": FULL_NODES}
    __, guarded_row, ratio = _overhead_rows(
        "tc", program, structure, params
    )
    assert ratio <= OVERHEAD_BAR, (
        f"guard overhead {ratio:.3f}x exceeds {OVERHEAD_BAR}x on tc"
    )
    benchmark.pedantic(
        lambda: evaluate(
            program, structure, method="indexed", budget=GENEROUS
        ),
        rounds=1, iterations=1,
    )
    record(
        benchmark, experiment="E19", **params,
        overhead_ratio=guarded_row["params"]["overhead_ratio"],
    )


def bench_guard_overhead_q21(benchmark):
    """q-2-1 at n=12: the never-tripping guard is <= 5%."""
    program = q_program(2, 1)
    structure = _structure(FULL_NODES)
    params = {"k": 2, "l": 1, "nodes": FULL_NODES}
    __, guarded_row, ratio = _overhead_rows(
        "q-2-1", program, structure, params
    )
    assert ratio <= OVERHEAD_BAR, (
        f"guard overhead {ratio:.3f}x exceeds {OVERHEAD_BAR}x on q-2-1"
    )
    benchmark.pedantic(
        lambda: evaluate(
            program, structure, method="indexed", budget=GENEROUS
        ),
        rounds=1, iterations=1,
    )
    record(
        benchmark, experiment="E19", **params,
        overhead_ratio=guarded_row["params"]["overhead_ratio"],
    )


def bench_guard_checkpoint_resume_tc(benchmark):
    """Checkpoint emission and kill-at-half + resume stay correct."""
    program = transitive_closure_program()
    structure = _structure(FULL_NODES)
    params = {"nodes": FULL_NODES}
    sink_row, resume_row = _checkpoint_rows(
        "tc", program, structure, params
    )
    benchmark.pedantic(
        lambda: evaluate(program, structure, method="indexed"),
        rounds=1, iterations=1,
    )
    record(
        benchmark, experiment="E19", **params,
        checkpointing_ms=sink_row["wall_ms"],
        kill_resume_ms=resume_row["wall_ms"],
    )


def main(argv=None):
    """CI smoke: guarded-but-never-tripped equals unguarded on every
    instance, checkpoint/kill/resume reproduce the fixpoint, and (at
    full size only) the overhead ratio stays under the 5% bar; with
    ``--json PATH`` writes shared-schema rows for the artifact."""
    import argparse

    from _harness import write_rows

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help=f"small instances (n={QUICK_NODES}); no wall-clock bar",
    )
    parser.add_argument("--json", metavar="PATH")
    args = parser.parse_args(argv)
    nodes = QUICK_NODES if args.quick else FULL_NODES
    structure = _structure(nodes)
    rows = []
    print(f"{'instance':<20} {'plain_ms':>9} {'guarded_ms':>11} "
          f"{'ratio':>7} {'ckpt_ms':>8} {'resume_ms':>10}")
    for name, factory in PROGRAMS.items():
        program = factory()
        params = {"nodes": nodes}
        unguarded_row, guarded_row, ratio = _overhead_rows(
            name, program, structure, params
        )
        sink_row, resume_row = _checkpoint_rows(
            name, program, structure, params
        )
        rows += [unguarded_row, guarded_row, sink_row, resume_row]
        print(f"{name:<20} {unguarded_row['wall_ms']:>9} "
              f"{guarded_row['wall_ms']:>11} {ratio:>7.3f} "
              f"{sink_row['wall_ms']:>8} {resume_row['wall_ms']:>10}")
        if not args.quick:
            assert ratio <= OVERHEAD_BAR, (
                f"guard overhead {ratio:.3f}x exceeds {OVERHEAD_BAR}x "
                f"on {name}"
            )
    if args.json:
        write_rows(args.json, rows, bench="guard")
        print(f"wrote {len(rows)} rows to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
