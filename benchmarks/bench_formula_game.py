"""E11 -- Definition 6.5: the k-pebble game on CNF formulas.

Regenerates the paper's winner table:

    phi satisfiable            ->  II wins every k
    phi_k (complete formula)   ->  II wins k, I wins k + 1
    x1 & .. & xk & (~x1|..|~xk) -> I wins with just 2 pebbles
"""

import pytest

from _harness import record
from repro.cnf import CnfFormula, complete_formula, pigeonhole_style_formula
from repro.games.formula_game import (
    PaperPhiKStrategy,
    RandomFormulaPlayerOne,
    run_formula_game,
    solve_formula_game,
)


@pytest.mark.parametrize("k", [1, 2])
def bench_phi_k_threshold(benchmark, k):
    phi = complete_formula(k)

    def winners():
        return (
            solve_formula_game(phi, k).player_two_wins,
            solve_formula_game(phi, k + 1).player_two_wins,
        )

    at_k, at_k_plus_1 = benchmark(winners)
    assert at_k and not at_k_plus_1
    record(
        benchmark,
        experiment="E11",
        formula=f"phi_{k}",
        player_two_wins_at_k=at_k,
        player_two_wins_at_k_plus_1=at_k_plus_1,
    )


def bench_pigeonhole_two_pebbles(benchmark):
    phi = pigeonhole_style_formula(4)
    result = benchmark(lambda: solve_formula_game(phi, 2))
    assert not result.player_two_wins
    record(benchmark, experiment="E11", formula="x1&..&x4&(~x1|..|~x4)", k=2)


def bench_satisfiable_formula(benchmark):
    phi = CnfFormula.parse("x1 | x2; ~x1 | x2; ~x2 | x3")
    result = benchmark(lambda: solve_formula_game(phi, 3))
    assert result.player_two_wins
    record(benchmark, experiment="E11", satisfiable=True, k=3)


def bench_optimal_adversary(benchmark):
    """The solver-extracted Player I beats the phi_k strategy at k+1."""
    from repro.games.formula_game import OptimalFormulaPlayerOne

    k = 2
    phi = complete_formula(k)
    result = solve_formula_game(phi, k + 1)

    def attack():
        adversary = OptimalFormulaPlayerOne(result, phi)
        strategy = PaperPhiKStrategy(phi, k + 1)
        transcript = run_formula_game(phi, k + 1, adversary, strategy, 80)
        return not transcript.player_two_survived

    assert benchmark(attack)
    record(benchmark, experiment="E11", k=k, attack_pebbles=k + 1)


@pytest.mark.parametrize("k", [2, 3])
def bench_paper_strategy_simulation(benchmark, k):
    phi = complete_formula(k)

    def simulate():
        survived = 0
        for seed in range(5):
            strategy = PaperPhiKStrategy(phi, k)
            adversary = RandomFormulaPlayerOne(phi, k, seed=seed)
            transcript = run_formula_game(phi, k, adversary, strategy, 80)
            survived += transcript.player_two_survived
        return survived

    survived = benchmark(simulate)
    assert survived == 5
    record(benchmark, experiment="E11", k=k, survived=survived)
