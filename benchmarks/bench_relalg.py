"""E2b -- the Section 3 relational-algebra correspondence.

Regenerates: L^3 walk formulas compiled to bounded-arity algebra,
evaluated both ways (formula evaluator vs. algebra evaluator) with
identical results; the width audit certifies the "subexpressions of
arity <= k" discipline the paper describes.
"""

import pytest

from _harness import record
from repro.datalog.ast import Variable
from repro.graphs.generators import random_digraph
from repro.logic import path_formula, variable_width
from repro.logic.evaluation import satisfying_tuples
from repro.relalg import compile_formula, evaluate_expression, expression_width

X, Y = Variable("x"), Variable("y")


@pytest.mark.parametrize("n", [2, 4, 6])
def bench_algebra_evaluation(benchmark, n):
    structure = random_digraph(8, 0.3, seed=n).to_structure()
    formula = path_formula(n)
    expression = compile_formula(formula)

    def run():
        return evaluate_expression(expression, structure)

    relation = benchmark(run)
    expected = satisfying_tuples(formula, structure, (X, Y))
    assert relation.reorder(("x", "y")).rows == expected
    assert expression_width(expression) <= max(variable_width(formula), 2)
    record(
        benchmark,
        experiment="E2b",
        walk_length=n,
        width=expression_width(expression),
        rows=len(relation),
    )


@pytest.mark.parametrize("n", [2, 4, 6])
def bench_formula_evaluation_baseline(benchmark, n):
    """The direct recursive evaluator on the same workload."""
    structure = random_digraph(8, 0.3, seed=n).to_structure()
    formula = path_formula(n)

    def run():
        return satisfying_tuples(formula, structure, (X, Y))

    rows = benchmark(run)
    record(benchmark, experiment="E2b", walk_length=n, rows=len(rows))
