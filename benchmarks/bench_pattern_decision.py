"""E6 -- Propositions 5.3/5.4 and Theorem 5.5: pattern-based decisions.

Regenerates: the agreement between the embedding decision (Definition
5.1(3)) and the exact semantics for the even simple path query, and the
game-based decision procedure that Theorem 5.5 turns into a PTIME
algorithm for L^k-expressible pattern-based queries.
"""

import pytest

from _harness import record
from repro.graphs.generators import random_digraph
from repro.patterns import (
    EvenSimplePathQuery,
    decide_via_embedding,
    decide_via_game,
)


def _instances(count):
    query = EvenSimplePathQuery()
    instances = []
    for seed in range(count):
        g = random_digraph(6, 0.3, seed)
        nodes = sorted(g.nodes)
        instances.append(
            g.with_distinguished({"s": nodes[0], "t": nodes[-1]}).to_structure()
        )
    return query, instances


def bench_embedding_decision(benchmark):
    query, instances = _instances(6)

    def sweep():
        return [decide_via_embedding(query, s) for s in instances]

    verdicts = benchmark(sweep)
    expected = [query.holds_exact(s) for s in instances]
    assert verdicts == expected
    record(
        benchmark,
        experiment="E6",
        positives=sum(verdicts),
        instances=len(instances),
    )


@pytest.mark.parametrize("k", [1, 2])
def bench_game_decision(benchmark, k):
    query, instances = _instances(4)

    def sweep():
        return [decide_via_game(query, s, k) for s in instances]

    game_verdicts = benchmark(sweep)
    exact = [query.holds_exact(s) for s in instances]
    # Soundness half of Proposition 5.4: the game never misses a
    # yes-instance (an embedding is a copying strategy for Player II).
    assert all(g or not e for g, e in zip(game_verdicts, exact))
    record(
        benchmark,
        experiment="E6",
        k=k,
        game_positives=sum(game_verdicts),
        exact_positives=sum(exact),
    )
