"""E23 -- the serve subsystem: sustained load over one shared live view.

Regenerates: a :class:`~repro.serve.server.ReproServer` multiplexing
concurrent clients over one incrementally maintained view answers a
mixed query/update workload correctly and fast enough to be a service:

* **scripted row** (``serve-scripted``): one client replays a fixed
  script -- subscribe, interleaved inserts/deletes, view queries and
  magic queries -- against a seeded random graph.  The server-side
  work counters (``serve.requests.*``, ``incremental.*``,
  ``datalog.*``) are bit-deterministic for this row on any machine,
  so it is what the CI perf gate compares in counters mode against
  the checked-in ``baselines/BENCH_serve_quick.json``;
* **load rows** (``serve-load-cN``): N client threads hammer the
  server with a seeded mixed workload (70% view queries, 10% magic
  queries, 20% updates).  These rows report *sustained throughput* --
  queries/sec and the server's own per-verb p99 latency (from its
  ``stats`` histograms) in the row's ``analyze`` payload -- and
  deliberately carry **empty counters**: thread interleaving makes
  per-run work nondeterministic, and an empty counters dict compares
  as ratio 1.0 in the gate (wall-clock on shared CI is informational,
  never enforced).

E24 prices durability (``serve/wal.py``) on the same workloads:

* ``serve-wal-scripted``: the scripted row with a write-ahead log
  (``fsync=always``) and checkpoint-rotation enabled -- its counters
  (``serve.wal.appends``/``serve.wal.rotations`` on top of the E23
  set) are bit-deterministic and gated like the E23 anchor;
* ``serve-wal-recovery``: times :func:`repro.serve.wal.recover`
  (checkpoint load + WAL suffix replay) over the files the scripted
  run left behind -- the crash-restart cost, also counters-gated;
* ``serve-wal-load-{off,interval,always}``: the mixed load row with
  each fsync policy, reporting sustained qps next to the WAL-less
  baseline.  The **durability overhead bar**: in full mode the
  default ``interval`` policy must cost <= 15% of baseline qps
  (asserted; quick/CI runs on shared machines report it only).

Correctness is enforced on every row: after the workload drains, the
served view must equal a from-scratch evaluation of the final EDB
(the serial-equivalence property the differential suite pins, here
checked end-to-end under load).

Also runnable as a script (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick --json out.json
"""

import asyncio
import json
import os
import random
import tempfile
import threading
import time

import pytest

from _harness import timed_row, write_rows
from repro.datalog.evaluation import evaluate
from repro.datalog.library import transitive_closure_program
from repro.graphs.generators import random_digraph
from repro.serve.client import ServeClient
from repro.serve.server import ReproServer
from repro.serve.view import LiveView
from repro.serve.wal import WriteAheadLog, recover

#: (nodes, edge probability) of the seeded workload graph.
FULL_GRAPH = (30, 0.12)
QUICK_GRAPH = (12, 0.2)

#: Load-generator shape: (clients, requests per client).
FULL_LOAD = [(2, 150), (6, 100)]
QUICK_LOAD = [(3, 40)]

SCRIPT_UPDATES = 12  # update count in the deterministic scripted row
WAL_CHECKPOINT_EVERY = 5  # two rotations + a replayable suffix of 2
WAL_OVERHEAD_BAR = 0.15  # interval-fsync qps cost vs no WAL (full mode)


class _ServerThread:
    """A server on its own event loop in a daemon thread (bench-local)."""

    def __init__(self, view: LiveView, **server_kwargs) -> None:
        self.server = ReproServer(view, port=0, **server_kwargs)
        self._ready = threading.Event()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("bench server did not start")

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self._ready.set()
            await self.server.serve_until_stopped()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        try:
            with ServeClient("127.0.0.1", self.port, timeout=10) as client:
                client.shutdown()
        except OSError:
            pass
        self._thread.join(timeout=30)


def _structure(nodes: int, p: float):
    return random_digraph(nodes, p, seed=23).to_structure()


def _universe(structure) -> list:
    return sorted(structure.universe)


def _verify_final_view(server: ReproServer, structure) -> None:
    """The served view equals a from-scratch evaluation (end-to-end)."""
    program = server.view.program
    expected = evaluate(
        program, structure, extra_edb=server.view.snapshot.edb
    )
    assert server.view.snapshot.goal_rows == frozenset(
        expected.relations[program.goal]
    ), "served view diverged from from-scratch evaluation"


def _scripted_workload(port: int, structure) -> int:
    """The deterministic script; returns the number of requests sent."""
    rng = random.Random(99)
    nodes = _universe(structure)
    requests = 0
    with ServeClient("127.0.0.1", port, timeout=60) as client:
        client.subscribe()
        requests += 1
        for index in range(SCRIPT_UPDATES):
            pair = [rng.choice(nodes), rng.choice(nodes)]
            if index % 3 == 2:
                client.delete("E", pair)
            else:
                client.insert("E", pair)
            client.drain_events(1)
            requests += 1
            client.query(bind=[rng.choice(nodes), None])
            requests += 1
            if index % 4 == 0:
                client.query(bind=[rng.choice(nodes), None], magic=True)
                requests += 1
        client.query()
        requests += 1
    return requests


def _load_workload(
    port: int, structure, clients: int, per_client: int
) -> dict:
    """Seeded mixed load from ``clients`` threads; returns the report."""
    nodes = _universe(structure)
    errors: list[BaseException] = []

    def one_client(cid: int) -> None:
        rng = random.Random(1000 + cid)
        try:
            with ServeClient("127.0.0.1", port, timeout=60) as client:
                for __ in range(per_client):
                    roll = rng.random()
                    if roll < 0.70:
                        client.query(bind=[rng.choice(nodes), None])
                    elif roll < 0.80:
                        client.query(
                            bind=[rng.choice(nodes), None], magic=True
                        )
                    elif roll < 0.90:
                        client.insert(
                            "E", [rng.choice(nodes), rng.choice(nodes)]
                        )
                    else:
                        client.delete(
                            "E", [rng.choice(nodes), rng.choice(nodes)]
                        )
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=one_client, args=(cid,))
        for cid in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors

    with ServeClient("127.0.0.1", port, timeout=60) as client:
        stats = client.stats()
    total = clients * per_client
    return {
        "requests": total,
        "wall_seconds": round(elapsed, 4),
        "qps": round(total / elapsed, 1),
        "p99_ms": {
            verb: summary["p99_ms"]
            for verb, summary in sorted(stats["verbs"].items())
            if verb in ("query", "insert", "delete")
        },
        "epoch": stats["epoch"],
    }


def _scripted_row(nodes: int, p: float) -> dict:
    """The deterministic counters row (the CI gate's anchor)."""
    structure = _structure(nodes, p)

    def run() -> None:
        view = LiveView(transitive_closure_program(), structure)
        harness = _ServerThread(view)
        try:
            _scripted_workload(harness.port, structure)
            _verify_final_view(harness.server, structure)
        finally:
            harness.stop()

    __, row = timed_row(
        "serve-scripted",
        run,
        engine="serve",
        params={"nodes": nodes, "p": p, "updates": SCRIPT_UPDATES},
    )
    return row


def _load_row(nodes: int, p: float, clients: int, per_client: int) -> dict:
    """One load-generator row: wall + qps/p99 report, empty counters."""
    structure = _structure(nodes, p)
    view = LiveView(transitive_closure_program(), structure)
    harness = _ServerThread(view)
    try:
        report = _load_workload(harness.port, structure, clients, per_client)
        _verify_final_view(harness.server, structure)
    finally:
        harness.stop()
    return {
        "name": f"serve-load-c{clients}",
        "params": {"nodes": nodes, "p": p, "per_client": per_client},
        "engine": "serve",
        "wall_ms": round(report["wall_seconds"] * 1000, 3),
        # Empty on purpose: interleaving makes load-row work counters
        # nondeterministic; the counters-mode gate treats {} as 1.0.
        "counters": {},
        "analyze": report,
    }


def _wal_scripted_row(nodes: int, p: float, workdir: str) -> dict:
    """E24 anchor: the deterministic script with durability fully on."""
    structure = _structure(nodes, p)
    ckpt = os.path.join(workdir, "wal-scripted.ckpt")
    wal_path = os.path.join(workdir, "wal-scripted.wal")

    def run() -> None:
        view = LiveView(transitive_closure_program(), structure)
        wal = WriteAheadLog.create(
            wal_path, 0, view.program_fp, fsync="always"
        )
        harness = _ServerThread(
            view, wal=wal, checkpoint_path=ckpt,
            checkpoint_every=WAL_CHECKPOINT_EVERY,
        )
        try:
            _scripted_workload(harness.port, structure)
            _verify_final_view(harness.server, structure)
        finally:
            harness.stop()

    __, row = timed_row(
        "serve-wal-scripted",
        run,
        engine="serve",
        params={
            "nodes": nodes, "p": p, "updates": SCRIPT_UPDATES,
            "fsync": "always",
            "checkpoint_every": WAL_CHECKPOINT_EVERY,
        },
    )
    return row


def _wal_recovery_row(nodes: int, p: float, workdir: str) -> dict:
    """E24 crash-restart cost: checkpoint load + WAL suffix replay."""
    structure = _structure(nodes, p)
    ckpt = os.path.join(workdir, "wal-recovery.ckpt")
    wal_path = os.path.join(workdir, "wal-recovery.wal")
    program = transitive_closure_program()

    # Untimed: produce the durable files a crashed server would leave
    # (last checkpoint at epoch 10, WAL suffix for epochs 11-12).
    view = LiveView(program, structure)
    wal = WriteAheadLog.create(wal_path, 0, view.program_fp, fsync="off")
    harness = _ServerThread(
        view, wal=wal, checkpoint_path=ckpt,
        checkpoint_every=WAL_CHECKPOINT_EVERY,
    )
    try:
        _scripted_workload(harness.port, structure)
    finally:
        harness.stop()

    reports: list = []

    def run() -> None:
        recovered, __, report = recover(program, structure, ckpt, wal_path)
        assert recovered.epoch == SCRIPT_UPDATES, "recovery lost epochs"
        reports.append(report)

    __, row = timed_row(
        "serve-wal-recovery",
        run,
        engine="serve",
        params={"nodes": nodes, "p": p, "updates": SCRIPT_UPDATES},
    )
    row["analyze"] = {
        "checkpoint_epoch": reports[-1].checkpoint_epoch,
        "replayed": reports[-1].replayed,
        "skipped": reports[-1].skipped,
    }
    return row


def _wal_load_row(
    nodes: int, p: float, clients: int, per_client: int,
    fsync: str, workdir: str,
) -> dict:
    """One fsync-policy pricing row: the mixed load with a WAL attached."""
    structure = _structure(nodes, p)
    ckpt = os.path.join(workdir, f"wal-load-{fsync}.ckpt")
    wal_path = os.path.join(workdir, f"wal-load-{fsync}.wal")
    view = LiveView(transitive_closure_program(), structure)
    wal = WriteAheadLog.create(wal_path, 0, view.program_fp, fsync=fsync)
    harness = _ServerThread(
        view, wal=wal, checkpoint_path=ckpt,
        checkpoint_every=WAL_CHECKPOINT_EVERY,
    )
    try:
        report = _load_workload(harness.port, structure, clients, per_client)
        _verify_final_view(harness.server, structure)
        report["wal"] = harness.server.wal.info()
    finally:
        harness.stop()
    return {
        "name": f"serve-wal-load-{fsync}",
        "params": {
            "nodes": nodes, "p": p, "clients": clients,
            "per_client": per_client, "fsync": fsync,
        },
        "engine": "serve",
        "wall_ms": round(report["wall_seconds"] * 1000, 3),
        # Empty like every load row: thread interleaving makes the
        # counters nondeterministic; {} compares as 1.0 in the gate.
        "counters": {},
        "analyze": report,
    }


# -- pytest entry points (pytest benchmarks/ --benchmark-only) -------------


def bench_serve_scripted(benchmark):
    """The deterministic scripted workload, timed end to end."""
    nodes, p = FULL_GRAPH
    structure = _structure(nodes, p)

    def run() -> None:
        view = LiveView(transitive_closure_program(), structure)
        harness = _ServerThread(view)
        try:
            _scripted_workload(harness.port, structure)
        finally:
            harness.stop()

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = "E23"
    benchmark.extra_info["updates"] = SCRIPT_UPDATES


def bench_serve_wal_scripted(benchmark):
    """The scripted workload with the write-ahead log fully on."""
    nodes, p = FULL_GRAPH
    with tempfile.TemporaryDirectory() as workdir:
        row = benchmark.pedantic(
            lambda: _wal_scripted_row(nodes, p, workdir),
            rounds=1, iterations=1,
        )
    benchmark.extra_info["experiment"] = "E24"
    benchmark.extra_info["counters"] = row["counters"]


@pytest.mark.parametrize("clients,per_client", FULL_LOAD)
def bench_serve_load(benchmark, clients, per_client):
    """Sustained mixed load: qps and per-verb p99 via the stats verb."""
    nodes, p = FULL_GRAPH
    structure = _structure(nodes, p)
    view = LiveView(transitive_closure_program(), structure)
    harness = _ServerThread(view)
    try:
        report = benchmark.pedantic(
            lambda: _load_workload(
                harness.port, structure, clients, per_client
            ),
            rounds=1,
            iterations=1,
        )
        _verify_final_view(harness.server, structure)
    finally:
        harness.stop()
    benchmark.extra_info["experiment"] = "E23"
    benchmark.extra_info["qps"] = report["qps"]
    benchmark.extra_info["p99_ms"] = report["p99_ms"]


def main(argv=None):
    """E23+E24 smoke: scripted, load, and WAL-pricing rows; prints the
    qps/p99 table (with durability overhead vs the WAL-less baseline)
    and, with ``--json PATH``, writes the versioned bench document the
    CI counters gate compares against its checked-in baseline."""
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller graph and load (CI smoke / baseline generation)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the rows as a BENCH document",
    )
    args = parser.parse_args(argv)

    nodes, p = QUICK_GRAPH if args.quick else FULL_GRAPH
    load_shape = QUICK_LOAD if args.quick else FULL_LOAD

    rows = [_scripted_row(nodes, p)]
    for clients, per_client in load_shape:
        rows.append(_load_row(nodes, p, clients, per_client))
    clients, per_client = load_shape[0]
    with tempfile.TemporaryDirectory() as workdir:
        rows.append(_wal_scripted_row(nodes, p, workdir))
        rows.append(_wal_recovery_row(nodes, p, workdir))
        for fsync in ("off", "interval", "always"):
            rows.append(
                _wal_load_row(nodes, p, clients, per_client, fsync, workdir)
            )

    baseline_qps = next(
        row["analyze"]["qps"]
        for row in rows
        if row["name"] == f"serve-load-c{clients}"
    )
    print(f"{'row':<24} {'wall_ms':>10} {'qps':>8}  p99 by verb")
    for row in rows:
        report = row.get("analyze") or {}
        qps = report.get("qps", "-")
        p99 = report.get("p99_ms", {})
        p99_text = (
            " ".join(f"{verb}={ms}ms" for verb, ms in p99.items()) or "-"
        )
        print(
            f"{row['name']:<24} {row['wall_ms']:>10.1f} {qps:>8}  {p99_text}"
        )
    print(
        f"serve-scripted counters: "
        f"{json.dumps(rows[0]['counters'], sort_keys=True)[:120]}..."
    )
    for row in rows:
        if not row["name"].startswith("serve-wal-load-"):
            continue
        overhead = 1 - row["analyze"]["qps"] / baseline_qps
        print(
            f"durability overhead [{row['params']['fsync']:<8}]: "
            f"{overhead:+.1%} of {baseline_qps} qps baseline"
        )
        if row["params"]["fsync"] == "interval" and not args.quick:
            # The E24 bar: default-policy durability costs <= 15% qps.
            assert overhead <= WAL_OVERHEAD_BAR, (
                f"interval-fsync WAL costs {overhead:.1%} qps "
                f"(bar: {WAL_OVERHEAD_BAR:.0%})"
            )

    if args.json:
        write_rows(args.json, rows, bench="serve")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
