"""E15 -- the headline result: both FHW dichotomies, in expressibility.

Regenerates the classification table for the pattern catalogue.  The
shape reproduced from the paper:

    H in C      -> PTIME, expressible in Datalog(!=)        (Thm 6.1)
    H not in C  -> NP-complete, not expressible in L^omega  (Thms 6.6/6.7)
    any H, acyclic inputs -> expressible in Datalog(!=)     (Thm 6.2)

Run with ``-s`` to see the printed table.
"""

from _harness import record
from repro.core.dichotomy import dichotomy_table, pattern_catalogue


def bench_dichotomy_table(benchmark):
    rows = benchmark(dichotomy_table)
    names = sorted(pattern_catalogue())
    print("\n--- FHW dichotomy, in Datalog(!=) expressibility ---")
    header = f"{'pattern':<24} {'class C':<8} {'complexity':<28} general inputs"
    print(header)
    for name, row in zip(names, rows):
        print(
            f"{name:<24} {str(row.in_class_c):<8} "
            f"{row.complexity:<28} {row.general_inputs}"
        )
    in_c = [row for row in rows if row.in_class_c]
    out_c = [row for row in rows if not row.in_class_c]
    assert all("PTIME" in row.complexity for row in in_c)
    assert all("Theorem 6.1" in row.general_inputs for row in in_c)
    assert all("NP-complete" in row.complexity for row in out_c)
    assert all("not expressible" in row.general_inputs for row in out_c)
    assert all("Theorem 6.2" in row.acyclic_inputs for row in rows)
    record(
        benchmark,
        experiment="E15",
        patterns=len(rows),
        in_class_c=len(in_c),
        outside_class_c=len(out_c),
    )


def bench_generated_programs_for_class_c_rows(benchmark):
    """Every class-C row really does come with a working program."""
    rows = [row for row in dichotomy_table() if row.in_class_c]

    def build_all():
        return [len(row.general_program().program) for row in rows]

    rule_counts = benchmark(build_all)
    assert all(count >= 1 for count in rule_counts)
    record(benchmark, experiment="E15", programs=len(rule_counts))
