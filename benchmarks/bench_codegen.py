"""E20 -- the codegen engine: generated Python vs. the plan interpreter.

Regenerates: on the Q_{k,l} engine-sweep instances (the
``bench_theorem61`` sweep, largest last) and on transitive closure over
a sparse random digraph, the codegen engine -- the same rule plans
compiled to specialized Python functions (:mod:`repro.datalog.codegen`)
instead of interpreted op-by-op -- must produce identical relations and
iteration counts to the indexed engine and beat it by at least 2x on
the largest instance of each family.  That factor is pure dispatch and
binding-copy overhead: both engines run the same plans over the same
incrementally-maintained indexes, so the delta is what emitting the
loops as source buys.

Also runnable as a script (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_codegen.py --quick --json out.json

which runs the same comparison on smaller instances (equality always
enforced; the speedup bar only at full size) and writes shared-schema
rows.
"""

import pytest

from _harness import record, timed_row
from repro.datalog.evaluation import evaluate
from repro.datalog.library import q_program, transitive_closure_program
from repro.graphs.generators import random_digraph

#: Mirrors bench_theorem61.QKL_SWEEP; the last entry is the largest.
QKL_SWEEP = [(1, 1, 14), (2, 0, 12), (2, 1, 12)]
QKL_LARGEST = QKL_SWEEP[-1]

#: Transitive closure instances: (nodes, edge probability); sparse, so
#: the fixpoint runs many rounds of small deltas -- the regime where
#: per-tuple dispatch overhead dominates.  The last entry is enforced.
TC_SWEEP = [(40, 0.08), (80, 0.05)]
TC_LARGEST = TC_SWEEP[-1]

#: The acceptance bar on the largest instance of each family.
SPEEDUP_BAR = 2.0


def _compare(name, program, structure, params, repeats=2):
    """Timed indexed-vs-codegen rows plus the equality checks."""
    indexed, indexed_row = timed_row(
        name,
        lambda: evaluate(program, structure, method="indexed"),
        engine="indexed",
        params=params,
        repeats=repeats,
    )
    codegen, codegen_row = timed_row(
        name,
        lambda: evaluate(program, structure, method="codegen"),
        engine="codegen",
        params=params,
        repeats=repeats,
    )
    assert codegen.relations == indexed.relations, name
    assert codegen.iterations == indexed.iterations, name
    return indexed_row, codegen_row


@pytest.mark.parametrize("k,l,n", QKL_SWEEP)
def bench_codegen_vs_indexed_qkl(benchmark, k, l, n):
    """Codegen vs. indexed on the Q_{k,l} programs; >= 2x at the top."""
    program = q_program(k, l)
    structure = random_digraph(n, 0.25, seed=7).to_structure()
    params = {"k": k, "l": l, "nodes": n}
    indexed_row, codegen_row = _compare(
        f"q-{k}-{l}", program, structure, params
    )
    benchmark.pedantic(
        lambda: evaluate(program, structure, method="codegen"),
        rounds=1,
        iterations=1,
    )
    speedup = indexed_row["wall_ms"] / codegen_row["wall_ms"]
    record(
        benchmark,
        experiment="E20",
        **params,
        indexed_ms=indexed_row["wall_ms"],
        codegen_ms=codegen_row["wall_ms"],
        counters=codegen_row["counters"],
        speedup=round(speedup, 2),
    )
    if (k, l, n) == QKL_LARGEST:
        assert speedup >= SPEEDUP_BAR, (
            f"codegen only {speedup:.2f}x faster than the indexed "
            f"engine on Q_{k}_{l} (n={n}); generated code should buy "
            f">= {SPEEDUP_BAR}x"
        )


@pytest.mark.parametrize("n,p", TC_SWEEP)
def bench_codegen_vs_indexed_tc(benchmark, n, p):
    """Codegen vs. indexed on transitive closure; >= 2x at the top."""
    program = transitive_closure_program()
    structure = random_digraph(n, p, seed=3).to_structure()
    params = {"nodes": n, "p": p}
    indexed_row, codegen_row = _compare("tc", program, structure, params)
    benchmark.pedantic(
        lambda: evaluate(program, structure, method="codegen"),
        rounds=1,
        iterations=1,
    )
    speedup = indexed_row["wall_ms"] / codegen_row["wall_ms"]
    record(
        benchmark,
        experiment="E20",
        **params,
        indexed_ms=indexed_row["wall_ms"],
        codegen_ms=codegen_row["wall_ms"],
        counters=codegen_row["counters"],
        speedup=round(speedup, 2),
    )
    if (n, p) == TC_LARGEST:
        assert speedup >= SPEEDUP_BAR, (
            f"codegen only {speedup:.2f}x faster than the indexed "
            f"engine on TC (n={n}, p={p}); generated code should buy "
            f">= {SPEEDUP_BAR}x"
        )


def main(argv=None):
    """CI smoke: codegen == indexed relations/iterations; prints a
    comparison table and, with ``--json PATH``, writes shared-schema
    rows for the artifact.  The >= 2x speedup bar applies at full size
    only (``--quick`` instances are too small for wall-clock bars)."""
    import argparse
    import sys

    from _harness import write_rows

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller instances, no speedup bar (CI smoke)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the timing rows as a JSON array",
    )
    args = parser.parse_args(argv)

    if args.quick:
        qkl = [(2, 1, 9)]
        tc = [(30, 0.08)]
    else:
        qkl = [QKL_LARGEST]
        tc = [TC_LARGEST]
    cases = [
        (
            f"q-{k}-{l}",
            q_program(k, l),
            random_digraph(n, 0.25, seed=7).to_structure(),
            {"k": k, "l": l, "nodes": n},
        )
        for k, l, n in qkl
    ] + [
        (
            "tc",
            transitive_closure_program(),
            random_digraph(n, p, seed=3).to_structure(),
            {"nodes": n, "p": p},
        )
        for n, p in tc
    ]

    rows = []
    failures = 0
    print(f"{'case':<12} {'indexed':>12} {'codegen':>12} {'speedup':>8}")
    for name, program, structure, params in cases:
        try:
            indexed_row, codegen_row = _compare(
                name, program, structure, params
            )
        except AssertionError as exc:
            print(f"{name:<12} FAILED: {exc}", file=sys.stderr)
            failures += 1
            continue
        rows += [indexed_row, codegen_row]
        speedup = indexed_row["wall_ms"] / codegen_row["wall_ms"]
        print(
            f"{name:<12} {indexed_row['wall_ms']:>10.1f}ms "
            f"{codegen_row['wall_ms']:>10.1f}ms {speedup:>7.1f}x"
        )
        if not args.quick and speedup < SPEEDUP_BAR:
            print(
                f"{name}: speedup {speedup:.2f}x below the "
                f"{SPEEDUP_BAR}x bar", file=sys.stderr,
            )
            failures += 1
    if args.json:
        write_rows(args.json, rows, bench="codegen")
        print(f"wrote {len(rows)} rows to {args.json}")
    if failures:
        print(f"{failures} failure(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
