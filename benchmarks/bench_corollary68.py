"""E14 -- Corollary 6.8: even simple path is not in L^omega.

Regenerates: the doubling reduction identity (disjoint paths in G <=>
even simple s-t path in G*) swept over random graphs with the exact
oracle, and the transported certificate with its 2-for-1 pebble
bookkeeping strategy.
"""

import pytest

from _harness import record
from repro.core import double_graph, even_simple_path_certificate
from repro.core.separations import T_NODE
from repro.games.simulate import RandomPlayerOne, run_existential_game
from repro.graphs.generators import random_digraph
from repro.graphs.paths import node_disjoint_simple_paths, simple_path_lengths


def bench_reduction_identity_sweep(benchmark):
    def sweep():
        agreements = 0
        for seed in range(8):
            g = random_digraph(6, 0.3, seed)
            nodes = sorted(g.nodes)
            graph = g.with_distinguished({
                "s1": nodes[0], "s2": nodes[1],
                "s3": nodes[2], "s4": nodes[3],
            })
            disjoint = node_disjoint_simple_paths(
                graph, [(nodes[0], nodes[1]), (nodes[2], nodes[3])]
            ) is not None
            star = double_graph(graph)
            even = any(
                n % 2 == 0 and n > 0
                for n in simple_path_lengths(star, nodes[0], T_NODE)
            )
            agreements += disjoint == even
        return agreements

    agreements = benchmark(sweep)
    assert agreements == 8
    record(benchmark, experiment="E14", agreements=f"{agreements}/8")


def bench_transported_certificate(benchmark):
    cert = even_simple_path_certificate(1)

    def simulate():
        survived = 0
        for seed in range(5):
            transcript = run_existential_game(
                cert.a, cert.b, 1,
                RandomPlayerOne(cert.a, seed=seed),
                cert.fresh_strategy(), rounds=120,
            )
            survived += transcript.player_two_survived
        return survived

    survived = benchmark(simulate)
    assert survived == 5
    record(
        benchmark,
        experiment="E14",
        a_nodes=len(cert.a),
        b_nodes=len(cert.b),
    )
