"""E10 -- Figures 2-6: the SAT -> two-disjoint-paths reduction.

Regenerates: the paper's own example instances (Figure 5: x1 | x1,
Figure 6: x1 & ~x1), the construction sizes of G_{phi_k}, the
constructive direction (model -> disjoint paths, verified), and the
exact-oracle refutation on unsatisfiable instances.
"""

import pytest

from _harness import record
from repro.cnf import CnfFormula, complete_formula, satisfying_assignment
from repro.fhw.reduction import (
    sat_to_disjoint_paths,
    standard_path_lengths,
    verify_disjoint_paths,
)
from repro.graphs.paths import node_disjoint_simple_paths


def bench_figure_5_instance(benchmark):
    formula = CnfFormula.parse("x1 | x1")

    def build_and_route():
        instance = sat_to_disjoint_paths(formula)
        p1, p2 = instance.build_disjoint_paths({"x1": True})
        return instance, verify_disjoint_paths(instance, p1, p2)

    instance, ok = benchmark(build_and_route)
    assert ok
    record(
        benchmark,
        experiment="E10",
        figure=5,
        nodes=len(instance.graph),
        satisfiable=True,
    )


def bench_figure_6_instance(benchmark):
    formula = CnfFormula.parse("x1; ~x1")
    instance = sat_to_disjoint_paths(formula)

    def refute():
        return node_disjoint_simple_paths(
            instance.graph,
            [
                (instance.s_node(1), instance.s_node(2)),
                (instance.s_node(3), instance.s_node(4)),
            ],
        )

    assert benchmark(refute) is None
    record(
        benchmark,
        experiment="E10",
        figure=6,
        nodes=len(instance.graph),
        satisfiable=False,
    )


@pytest.mark.parametrize("k", [1, 2, 3])
def bench_g_phi_k_construction(benchmark, k):
    formula = complete_formula(k)
    instance = benchmark(lambda: sat_to_disjoint_paths(formula))
    lengths = standard_path_lengths(instance)
    record(
        benchmark,
        experiment="E10",
        k=k,
        switches=len(instance.switches),
        nodes=len(instance.graph),
        standard_lengths=lengths,
    )


def bench_constructive_direction_three_clause(benchmark):
    formula = CnfFormula.parse("x1 | ~x2; x2 | x3; ~x1 | x3")
    instance = sat_to_disjoint_paths(formula)
    model = satisfying_assignment(formula)

    def route():
        p1, p2 = instance.build_disjoint_paths(model)
        return verify_disjoint_paths(instance, p1, p2)

    assert benchmark(route)
    record(benchmark, experiment="E10", nodes=len(instance.graph))
