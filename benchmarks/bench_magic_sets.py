"""E17 -- goal-directed evaluation: magic sets vs. the full fixpoint.

Regenerates: on the largest default ``Q_{k,l}`` instance of the engine
sweep (``q_program(2, 1)`` on the seed-7 random digraph, the
``bench_theorem61`` ``LARGEST`` configuration) and on transitive
closure, a fully bound goal query answered by the magic-sets rewrite
must (a) return exactly the answers of full-fixpoint evaluation
filtered to the binding, (b) derive strictly fewer tuples
(``datalog.delta_tuples``), and (c) run at least 2x faster on the
full-size instance -- the demand transformation pays for itself
precisely when the query distinguishes its nodes, which is the shape of
the paper's Theorem 6.1 questions.

Also runnable as a script (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_magic_sets.py --quick --json out.json

which runs the same comparison on a smaller instance (the speedup bar
is only enforced at full size; strict tuple reduction always is) and
writes shared-schema rows.
"""

import pytest

from _harness import record, timed_row
from repro.datalog.evaluation import evaluate, query
from repro.datalog.library import (
    goal_bound_q,
    goal_bound_transitive_closure,
)
from repro.graphs.generators import random_digraph

#: (k, l, nodes): mirrors bench_theorem61.LARGEST at full size.
FULL_INSTANCE = (2, 1, 12)
QUICK_INSTANCE = (2, 1, 9)

#: The acceptance bar on the full instance: magic must be at least this
#: many times faster than the full fixpoint.
SPEEDUP_BAR = 2.0


def _bound_case(program, goal_atom, structure):
    """Attach the goal constants to a concrete positive binding.

    The binding is the first (sorted) tuple of the full goal relation,
    so the magic run answers a question whose answer is "yes"; on an
    empty goal relation the smallest nodes stand in.
    """
    full = evaluate(program, structure, method="indexed")
    names = [term.name for term in goal_atom.args]
    rows = sorted(full.goal_relation)
    nodes = sorted(structure.universe)
    binding = rows[0] if rows else tuple(
        nodes[i % len(nodes)] for i in range(len(names))
    )
    return structure.with_constants(dict(zip(names, binding))), binding


def _compare(name, program, goal_atom, structure, params, repeats=2):
    """Timed direct-vs-magic rows plus the equivalence/work checks."""
    bound, binding = _bound_case(program, goal_atom, structure)
    direct, direct_row = timed_row(
        name,
        lambda: query(program, bound, goal_atom, magic=False),
        engine="indexed",
        params=params,
        repeats=repeats,
    )
    magic, magic_row = timed_row(
        name,
        lambda: query(program, bound, goal_atom, magic=True),
        engine="indexed-magic",
        params=params,
        repeats=repeats,
    )
    assert magic.answers == direct.answers, name
    assert magic.answers, (name, binding)
    direct_work = direct_row["counters"]["datalog.delta_tuples"]
    magic_work = magic_row["counters"]["datalog.delta_tuples"]
    assert magic_work < direct_work, (
        f"{name}: magic derived {magic_work} tuples, full fixpoint "
        f"{direct_work}; the rewrite must strictly reduce work"
    )
    return direct_row, magic_row


def bench_magic_vs_full_qkl_largest(benchmark):
    """The acceptance case: q-2-1 at full size, >= 2x and fewer tuples."""
    k, l, n = FULL_INSTANCE
    program, goal_atom = goal_bound_q(k, l)
    structure = random_digraph(n, 0.25, seed=7).to_structure()
    params = {"k": k, "l": l, "nodes": n}
    direct_row, magic_row = _compare(
        f"q-{k}-{l}-goal", program, goal_atom, structure, params
    )
    bound, __ = _bound_case(program, goal_atom, structure)
    benchmark.pedantic(
        lambda: query(program, bound, goal_atom, magic=True),
        rounds=1,
        iterations=1,
    )
    speedup = direct_row["wall_ms"] / magic_row["wall_ms"]
    record(
        benchmark,
        experiment="E17",
        **params,
        direct_ms=direct_row["wall_ms"],
        magic_ms=magic_row["wall_ms"],
        direct_tuples=direct_row["counters"]["datalog.delta_tuples"],
        magic_tuples=magic_row["counters"]["datalog.delta_tuples"],
        speedup=round(speedup, 2),
    )
    assert speedup >= SPEEDUP_BAR, (
        f"magic only {speedup:.2f}x faster than the full fixpoint on "
        f"Q_{k}_{l} (n={n}); goal-directed evaluation should buy >= "
        f"{SPEEDUP_BAR}x"
    )


def bench_magic_vs_full_transitive_closure(benchmark):
    """TC with both endpoints bound: the textbook demand pattern."""
    program, goal_atom = goal_bound_transitive_closure()
    structure = random_digraph(40, 0.08, seed=11).to_structure()
    params = {"nodes": 40}
    direct_row, magic_row = _compare(
        "tc-goal", program, goal_atom, structure, params
    )
    bound, __ = _bound_case(program, goal_atom, structure)
    benchmark.pedantic(
        lambda: query(program, bound, goal_atom, magic=True),
        rounds=1,
        iterations=1,
    )
    record(
        benchmark,
        experiment="E17",
        **params,
        direct_ms=direct_row["wall_ms"],
        magic_ms=magic_row["wall_ms"],
        direct_tuples=direct_row["counters"]["datalog.delta_tuples"],
        magic_tuples=magic_row["counters"]["datalog.delta_tuples"],
    )


def main(argv=None):
    """CI smoke: magic == direct answers, strictly less work; prints a
    comparison table and, with ``--json PATH``, writes shared-schema
    rows for the artifact.  The >= 2x speedup bar applies at full size
    only (``--quick`` instances are too small for wall-clock bars)."""
    import argparse
    import sys

    from _harness import write_rows

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller instances, no speedup bar (CI smoke)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the timing rows as a JSON array",
    )
    args = parser.parse_args(argv)

    k, l, n = QUICK_INSTANCE if args.quick else FULL_INSTANCE
    tc_nodes = 20 if args.quick else 40
    cases = [
        (
            f"q-{k}-{l}-goal",
            *goal_bound_q(k, l),
            random_digraph(n, 0.25, seed=7).to_structure(),
            {"k": k, "l": l, "nodes": n},
        ),
        (
            "tc-goal",
            *goal_bound_transitive_closure(),
            random_digraph(tc_nodes, 0.08, seed=11).to_structure(),
            {"nodes": tc_nodes},
        ),
    ]

    rows = []
    failures = 0
    print(f"{'case':<16} {'direct':>12} {'magic':>12} "
          f"{'tuples':>16} {'speedup':>8}")
    for name, program, goal_atom, structure, params in cases:
        try:
            direct_row, magic_row = _compare(
                name, program, goal_atom, structure, params
            )
        except AssertionError as exc:
            print(f"{name:<16} FAILED: {exc}", file=sys.stderr)
            failures += 1
            continue
        rows += [direct_row, magic_row]
        speedup = direct_row["wall_ms"] / magic_row["wall_ms"]
        tuples = (
            f"{magic_row['counters']['datalog.delta_tuples']}"
            f"/{direct_row['counters']['datalog.delta_tuples']}"
        )
        print(
            f"{name:<16} {direct_row['wall_ms']:>10.1f}ms "
            f"{magic_row['wall_ms']:>10.1f}ms {tuples:>16} "
            f"{speedup:>7.1f}x"
        )
        if not args.quick and name.startswith("q-") and speedup < SPEEDUP_BAR:
            print(
                f"{name}: speedup {speedup:.2f}x below the "
                f"{SPEEDUP_BAR}x bar", file=sys.stderr,
            )
            failures += 1
    if args.json:
        write_rows(args.json, rows, bench="magic_sets")
        print(f"wrote {len(rows)} rows to {args.json}")
    if failures:
        print(f"{failures} failure(s)", file=sys.stderr)
        return 1
    print("magic == direct on every case, with strictly less work")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
