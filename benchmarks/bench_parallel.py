"""E22 -- the parallel engine: sharded fixpoint rounds vs codegen.

Regenerates: on a *wide* random EDB -- a dense digraph under the
Q_{2,1} program, whose six-atom rule bodies make the per-delta-row
join work dwarf the per-round merge -- and on transitive closure over
mid-size random digraphs, the parallel engine
(:mod:`repro.datalog.parallel`) must produce relations and iteration
counts identical to the codegen engine in both its configurations
(inline ``workers=1`` and a 4-worker pool), and its parallelisation
must actually be worth having:

* **inline overhead**: ``workers=1`` runs the same compiled rule
  functions with no processes; on the largest wide instance it must
  stay within 15% of the codegen engine's wall clock;
* **load balance**: in the 4-worker pool run, the busiest worker's
  share of total worker-busy seconds (from the
  ``parallel.worker_seconds.<i>`` histograms) must not exceed 45% --
  the machine-independent bound certifying the hash partitioning
  spreads the round's work well enough for a >= 1.6x speedup on real
  hardware (perfect balance would be 25%);
* **speedup**: wall-clock ``codegen / parallel(4)`` >= 1.6x on the
  largest wide instance -- asserted only when ``os.cpu_count() >= 4``,
  because on fewer cores the pool merely timeshares and a wall-clock
  bar would measure the scheduler, not the engine.  The CI perf gate
  therefore runs ``repro bench compare --mode counters`` against the
  checked-in baseline: counters (rounds, shards, merge tuples) are
  bit-deterministic on any box, wall clock is not.

Also runnable as a script (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_parallel.py --quick --json out.json

which runs the same three-way comparison on smaller instances
(equality always enforced; the timing bars only at full size) and
writes shared-schema rows.
"""

import os
import time

import pytest

from _harness import record, timed_row
from repro.datalog.evaluation import evaluate
from repro.datalog.library import q_program, transitive_closure_program
from repro.graphs.generators import random_digraph
from repro.obs import metrics as metrics_module

#: The wide family: Q_{2,1} over dense random digraphs (nodes, edge
#: probability).  The last entry is the enforced instance.
WIDE_SWEEP = [(12, 0.3), (14, 0.25)]
WIDE_LARGEST = WIDE_SWEEP[-1]

#: Transitive closure instances; unenforced context rows showing the
#: regime where cheap per-row joins make sharding a harder sell.
TC_SWEEP = [(80, 0.2), (120, 0.2)]

POOL_WORKERS = 4
SPEEDUP_BAR = 1.6
OVERHEAD_BAR = 0.15
BALANCE_BAR = 0.45


def _worker_busy_seconds(program, structure, trials=3):
    """Per-worker busy-seconds totals of a 4-worker pool run.

    Best-of-``trials`` by busiest-worker share: the unit assignment is
    deterministic, so the minimum share across trials is the
    partitioning's structural balance with scheduler-preemption spikes
    (a worker descheduled mid-unit books the stall as busy time)
    filtered out.
    """
    best = None
    for __ in range(trials):
        registry = metrics_module.MetricsRegistry()
        metrics_module.enable_metrics(registry)
        try:
            evaluate(
                program, structure, method="parallel", workers=POOL_WORKERS
            )
        finally:
            metrics_module.disable_metrics()
        histograms = registry.snapshot()["histograms"]
        busy = [
            histograms.get(f"parallel.worker_seconds.{index}", {}).get(
                "total", 0.0
            )
            for index in range(POOL_WORKERS)
        ]
        share = max(busy) / max(sum(busy), 1e-12)
        if best is None or share < best[0]:
            best = (share, busy)
    return best[1]


def _paired_overhead(program, structure, trials=5):
    """Inline-vs-codegen overhead from interleaved min-of-``trials``.

    Timing the two engines in alternation (rather than in two separate
    blocks) means a background-load burst lands in both samples, and
    taking each engine's minimum discards the disturbed runs -- the
    same flake-proofing stance as the counters-mode CI gate, applied
    to the one wall-clock ratio this bench must enforce locally.
    """
    samples = {"codegen": [], "parallel": []}
    for __ in range(trials):
        for engine, kwargs in (
            ("codegen", {"method": "codegen"}),
            ("parallel", {"method": "parallel", "workers": 1}),
        ):
            start = time.perf_counter()
            evaluate(program, structure, **kwargs)
            samples[engine].append(time.perf_counter() - start)
    return min(samples["parallel"]) / min(samples["codegen"]) - 1


def _compare(name, program, structure, params, repeats=2):
    """Timed codegen / parallel(1) / parallel(4) rows + equality checks."""
    codegen, codegen_row = timed_row(
        name,
        lambda: evaluate(program, structure, method="codegen"),
        engine="codegen",
        params=params,
        repeats=repeats,
    )
    rows = {"codegen": codegen_row}
    for workers in (1, POOL_WORKERS):
        result, row = timed_row(
            name,
            lambda: evaluate(
                program, structure, method="parallel", workers=workers
            ),
            engine=f"parallel-{workers}",
            params={**params, "workers": workers},
            repeats=repeats,
        )
        assert result.relations == codegen.relations, (name, workers)
        assert result.iterations == codegen.iterations, (name, workers)
        rows[f"parallel-{workers}"] = row
    return rows


def _enforce_bars(name, rows, busy, overhead):
    """The E22 acceptance bars (full-size instances only)."""
    assert overhead <= OVERHEAD_BAR, (
        f"{name}: inline parallel engine is {overhead:.0%} slower than "
        f"codegen; the workers=1 path must stay within "
        f"{OVERHEAD_BAR:.0%}"
    )
    total = sum(busy)
    assert total > 0, f"{name}: pool run recorded no worker busy time"
    share = max(busy) / total
    assert share <= BALANCE_BAR, (
        f"{name}: busiest worker holds {share:.0%} of the pool's busy "
        f"seconds (bound {BALANCE_BAR:.0%}); the hash partitioning is "
        f"not spreading the round's work"
    )
    if (os.cpu_count() or 1) >= POOL_WORKERS:
        speedup = rows["codegen"]["wall_ms"] / rows["parallel-4"]["wall_ms"]
        assert speedup >= SPEEDUP_BAR, (
            f"{name}: parallel(4) only {speedup:.2f}x vs codegen on "
            f"{os.cpu_count()} cores; the bar is {SPEEDUP_BAR}x"
        )


@pytest.mark.parametrize("n,p", WIDE_SWEEP)
def bench_parallel_wide(benchmark, n, p):
    """Three-way comparison on the wide Q_{2,1} family; bars at the top."""
    program = q_program(2, 1)
    structure = random_digraph(n, p, seed=7).to_structure()
    params = {"k": 2, "l": 1, "nodes": n, "p": p}
    rows = _compare(f"wide-q-2-1-{n}", program, structure, params)
    busy = _worker_busy_seconds(program, structure)
    benchmark.pedantic(
        lambda: evaluate(
            program, structure, method="parallel", workers=POOL_WORKERS
        ),
        rounds=1,
        iterations=1,
    )
    record(
        benchmark,
        experiment="E22",
        **params,
        codegen_ms=rows["codegen"]["wall_ms"],
        parallel1_ms=rows["parallel-1"]["wall_ms"],
        parallel4_ms=rows["parallel-4"]["wall_ms"],
        counters=rows["parallel-4"]["counters"],
        busiest_worker_share=round(max(busy) / max(sum(busy), 1e-12), 3),
    )
    if (n, p) == WIDE_LARGEST:
        overhead = _paired_overhead(program, structure)
        _enforce_bars(f"wide-q-2-1-{n}", rows, busy, overhead)


@pytest.mark.parametrize("n,p", TC_SWEEP)
def bench_parallel_tc(benchmark, n, p):
    """Context rows: transitive closure, merge-dominated regime."""
    program = transitive_closure_program()
    structure = random_digraph(n, p, seed=3).to_structure()
    params = {"nodes": n, "p": p}
    rows = _compare(f"tc-{n}", program, structure, params)
    benchmark.pedantic(
        lambda: evaluate(
            program, structure, method="parallel", workers=POOL_WORKERS
        ),
        rounds=1,
        iterations=1,
    )
    record(
        benchmark,
        experiment="E22",
        **params,
        codegen_ms=rows["codegen"]["wall_ms"],
        parallel1_ms=rows["parallel-1"]["wall_ms"],
        parallel4_ms=rows["parallel-4"]["wall_ms"],
        counters=rows["parallel-4"]["counters"],
    )


def main(argv=None):
    """CI smoke: parallel == codegen relations/iterations in both
    configurations; prints a three-way table and, with ``--json PATH``,
    writes shared-schema rows.  The timing bars (inline overhead,
    worker balance, cpu-gated speedup) apply at full size only."""
    import argparse
    import sys

    from _harness import write_rows
    from repro.datalog.parallel import shutdown_workers

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller instances, no timing bars (CI smoke)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the timing rows as a JSON array",
    )
    args = parser.parse_args(argv)

    if args.quick:
        wide = [(9, 0.3)]
        tc = [(40, 0.2)]
    else:
        wide = [WIDE_LARGEST]
        tc = [TC_SWEEP[-1]]
    cases = [
        (
            f"wide-q-2-1-{n}",
            q_program(2, 1),
            random_digraph(n, p, seed=7).to_structure(),
            {"k": 2, "l": 1, "nodes": n, "p": p},
            True,
        )
        for n, p in wide
    ] + [
        (
            f"tc-{n}",
            transitive_closure_program(),
            random_digraph(n, p, seed=3).to_structure(),
            {"nodes": n, "p": p},
            False,
        )
        for n, p in tc
    ]

    rows = []
    failures = 0
    print(
        f"{'case':<16} {'codegen':>12} {'parallel-1':>12} "
        f"{'parallel-4':>12} {'balance':>8}"
    )
    for name, program, structure, params, enforced in cases:
        try:
            case_rows = _compare(name, program, structure, params)
            busy = _worker_busy_seconds(program, structure)
        except AssertionError as exc:
            print(f"{name:<16} FAILED: {exc}", file=sys.stderr)
            failures += 1
            continue
        rows += [
            case_rows["codegen"],
            case_rows["parallel-1"],
            case_rows["parallel-4"],
        ]
        share = max(busy) / max(sum(busy), 1e-12)
        print(
            f"{name:<16} {case_rows['codegen']['wall_ms']:>10.1f}ms "
            f"{case_rows['parallel-1']['wall_ms']:>10.1f}ms "
            f"{case_rows['parallel-4']['wall_ms']:>10.1f}ms "
            f"{share:>7.0%}"
        )
        if enforced and not args.quick:
            try:
                overhead = _paired_overhead(program, structure)
                _enforce_bars(name, case_rows, busy, overhead)
            except AssertionError as exc:
                print(f"{name}: {exc}", file=sys.stderr)
                failures += 1
    shutdown_workers()
    if args.json:
        write_rows(args.json, rows, bench="parallel")
        print(f"wrote {len(rows)} rows to {args.json}")
    if failures:
        print(f"{failures} failure(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
