"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Engine**: semi-naive vs. naive evaluation on the same fixpoints --
  the delta optimisation should win while computing identical results.
* **Q-rules**: the paper's displayed ``Q_{k,l}`` rules (no ``sk != t``
  inequalities) vs. the repaired rules -- measuring how often the
  displayed rules over-approximate the flow oracle on random graphs.
* **Strategy vs. exact solver**: on instances small enough for both,
  the constructed Theorem 6.6-style Player II strategies agree with the
  exact solver's verdict (FamilyStrategy never loses when II wins).
"""

import itertools

import pytest

from _harness import record
from repro.datalog import evaluate
from repro.datalog.library import (
    avoiding_path_program,
    q_program,
    q_program_as_displayed,
)
from repro.flow import has_node_disjoint_paths_to_targets
from repro.graphs.generators import random_digraph


@pytest.mark.parametrize("method", ["naive", "seminaive", "algebra"])
def bench_engine_ablation(benchmark, method):
    """Same fixpoint, three engines: naive and semi-naive binding
    engines plus the compiled relational-algebra engine."""
    from repro.datalog import evaluate_algebra

    structure = random_digraph(9, 0.3, seed=4).to_structure()
    program = avoiding_path_program()
    if method == "algebra":
        result = benchmark(lambda: evaluate_algebra(program, structure))
    else:
        result = benchmark(
            lambda: evaluate(program, structure, method=method)
        )
    reference = evaluate(program, structure, method="seminaive")
    assert result.relations == reference.relations
    record(
        benchmark,
        ablation="engine",
        method=method,
        tuples=len(result.goal_relation),
    )


def bench_displayed_q_rules_overapproximate(benchmark):
    """The displayed Q_{2,1} rules accept no-instances; count them."""
    displayed = q_program_as_displayed(2, 1)
    repaired = q_program(2, 1)

    def sweep():
        false_positives = 0
        checked = 0
        for seed in range(3):
            g = random_digraph(7, 0.25, seed)
            displayed_rel = evaluate(displayed, g.to_structure()).goal_relation
            repaired_rel = evaluate(repaired, g.to_structure()).goal_relation
            assert repaired_rel <= displayed_rel  # monotone repair
            nodes = sorted(g.nodes)
            for s, s1, s2, t in itertools.permutations(nodes[:5], 4):
                truth = has_node_disjoint_paths_to_targets(
                    g, s, [s1, s2], avoid=[t]
                )
                assert ((s, s1, s2, t) in repaired_rel) == truth
                if ((s, s1, s2, t) in displayed_rel) != truth:
                    false_positives += 1
                checked += 1
        return checked, false_positives

    checked, false_positives = benchmark(sweep)
    assert false_positives > 0  # the displayed rules really do differ
    record(
        benchmark,
        ablation="q-rules",
        checked=checked,
        displayed_false_positives=false_positives,
    )


@pytest.mark.parametrize("solver", ["quotient", "paper"])
def bench_solver_ablation(benchmark, solver):
    """The partial-map quotient solver vs. the paper's literal Win_k
    configuration algorithm (Proposition 5.3) -- same winners, very
    different constants."""
    from repro.games import paper_win_algorithm, solve_existential_game
    from repro.graphs.generators import path_pair_structures

    short, long_ = path_pair_structures(3, 4)

    def quotient():
        return solve_existential_game(long_, short, 2).winner

    def paper():
        return paper_win_algorithm(long_, short, 2)

    winner = benchmark(quotient if solver == "quotient" else paper)
    assert winner == "I"
    record(benchmark, ablation="solver", solver=solver, winner=winner)


def bench_injective_vs_homomorphism_game(benchmark):
    """Remark 4.12 ablation: dropping injectivity changes winners.

    Count random structure pairs where the two game variants disagree
    (the homomorphism game is weaker for Player I)."""
    from repro.games import solve_existential_game

    def sweep():
        disagreements = 0
        for seed in range(6):
            a = random_digraph(4, 0.35, seed).to_structure()
            b = random_digraph(4, 0.35, seed + 321).to_structure()
            injective = solve_existential_game(a, b, 2).player_two_wins
            homomorphic = solve_existential_game(
                a, b, 2, injective=False
            ).player_two_wins
            assert homomorphic or not injective  # I weaker without !=
            disagreements += injective != homomorphic
        return disagreements

    disagreements = benchmark(sweep)
    record(benchmark, ablation="injectivity", disagreements=disagreements)
