"""E9 -- Figure 1 / Lemma 6.4: the switch gadget.

Regenerates: the exhaustive verification that the reconstructed switch
satisfies every property the reduction uses -- the disjoint-pair
dichotomy, the unique third path, the brand couplings, and the equal
path lengths Theorem 6.6 needs.
"""

from _harness import record
from repro.fhw.switch import build_switch, check_switch_lemma, passing_paths


def bench_lemma_64_verification(benchmark):
    switch = build_switch()
    report = benchmark(lambda: check_switch_lemma(switch))
    assert report.holds
    record(
        benchmark,
        experiment="E9",
        pair_condition=report.pair_condition,
        third_path_unique=report.third_path_unique,
        equal_lengths=report.equal_lengths,
    )


def bench_passing_path_enumeration(benchmark):
    switch = build_switch()
    paths = benchmark(lambda: list(passing_paths(switch)))
    named = set(switch.paths().named().values())
    assert named <= set(paths)
    record(
        benchmark,
        experiment="E9",
        passing_paths=len(paths),
        named_paths=len(named),
    )
