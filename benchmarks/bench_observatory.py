"""E21 -- the observability stack observes itself: analyze, profile, gate.

Regenerates three claims about ``repro.obs`` v2 on the Q_{2,1}
engine-sweep instance (the largest default of ``bench_codegen``):

1. **EXPLAIN ANALYZE is free when off and exact when on.**  The
   never-enabled analyze path must cost <= 5% of the indexed engine's
   runtime (bounded as an instrumentation budget: counted ``is not
   None`` branch tests x the measured cost of one such test, the same
   robust phrasing as ``tests/test_obs.py``), the codegen engine's
   disabled source must be byte-identical to uninstrumented code, and
   the enabled counts must agree binding-for-binding between the
   indexed and codegen engines.

2. **The profiler is deterministic.**  Profiling the same exported
   trace twice yields identical tables.

3. **The regression gate trips.**  ``repro.obs.bench.compare`` must
   pass on two identical documents and fail on a synthetic 2x
   slowdown -- the self-test that the CI perf gate is live.

Also runnable as a script (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_observatory.py --quick --json out.json
"""

import io
import time

import pytest

from _harness import record, timed_row, write_rows
from repro.datalog.evaluation import evaluate
from repro.datalog.library import q_program
from repro.datalog.codegen import render_plan, rule_sources
from repro.graphs.generators import random_digraph
from repro.obs import enable_tracing, disable_tracing
from repro.obs.bench import compare, make_document, parse_document
from repro.obs.profile import profile_jsonl

#: The largest default Q_{2,1} instance (mirrors bench_codegen).
QKL_LARGEST = (2, 1, 12)
QKL_QUICK = (2, 1, 9)

#: The acceptance bar for the never-enabled analyze path.
OVERHEAD_BAR = 0.05

#: Conservative per-check cost estimate is *measured*, not assumed; this
#: is only the loop size used to measure it.
_CALIBRATION_LOOPS = 100_000


def _instance(quick=False):
    k, l, n = QKL_QUICK if quick else QKL_LARGEST
    program = q_program(k, l)
    structure = random_digraph(n, 0.25, seed=7).to_structure()
    return program, structure, {"k": k, "l": l, "nodes": n}


def _is_not_none_cost():
    """Measured seconds per ``x is not None`` test (the disabled branch)."""
    sentinel = None
    start = time.perf_counter()
    acc = 0
    for __ in range(_CALIBRATION_LOOPS):
        if sentinel is not None:
            acc += 1
    return (time.perf_counter() - start) / _CALIBRATION_LOOPS


def _analyze_branch_count(profile):
    """Branch tests the disabled analyze path would perform for this run.

    From an *enabled* run's PlanProfile: every plan invocation performs
    two ``node_stats is not None`` tests per plan node in the
    interpreter, and every (round x rule) adds a handful of
    ``analyze is not None`` checks in the engine loop.  Over-counts the
    disabled path (which skips the per-invocation wall-clock reads), so
    the bound is conservative.
    """
    tests = 0
    for rule in profile.rules:
        for plan in rule.plans:
            tests += plan.invocations * 2 * max(len(plan.nodes), 1)
    tests += profile.rounds * len(profile.rules) * 6
    return tests


def check_disabled_analyze_overhead(program, structure):
    """(budget_seconds, runtime_seconds) for the <= 5% assertion."""
    run = lambda: evaluate(program, structure, method="indexed")
    run()  # warm caches
    runtime = min(
        _timed(run) for __ in range(3)
    )
    analyzed = evaluate(
        program, structure, method="indexed", collect_analyze=True
    )
    tests = _analyze_branch_count(analyzed.profile.plans)
    budget = tests * _is_not_none_cost()
    return budget, runtime


def check_codegen_disabled_source_is_clean(program):
    """Disabled codegen source must carry zero analyze instrumentation."""
    for full, deltas in rule_sources(program):
        sources = [full.source] + [source.source for __, source in deltas]
        for source in sources:
            assert "_an" not in source and "_i0" not in source, (
                "disabled codegen source contains analyze instrumentation"
            )


def check_counts_agree(program, structure):
    """Indexed and codegen analyze counts must agree node-for-node."""
    indexed = evaluate(
        program, structure, method="indexed", collect_analyze=True
    )
    codegen = evaluate(
        program, structure, method="codegen", collect_analyze=True
    )
    assert indexed.relations == codegen.relations
    iview = indexed.profile.plans.counts_view()
    cview = codegen.profile.plans.counts_view()
    assert iview == cview, "analyze counts diverge between plan engines"
    return indexed.profile.plans, codegen.profile.plans


def check_profile_determinism(program, structure):
    """Same trace -> same profile table, twice."""
    tracer = enable_tracing()
    try:
        evaluate(program, structure, method="indexed")
    finally:
        disable_tracing()
    buffer = io.StringIO()
    tracer.export_jsonl(buffer)
    lines = buffer.getvalue().splitlines()
    first = profile_jsonl(lines)
    second = profile_jsonl(lines)
    assert first == second, "profiling the same trace twice diverged"
    assert first.rows, "profile of a traced run is empty"
    return first


def check_gate_self_test(rows):
    """Identical docs pass the gate; a 2x slowdown trips it."""
    baseline = parse_document(make_document("observatory", rows))
    identical = compare(baseline, baseline, threshold=1.25, mode="wall")
    assert identical.ok, "gate failed on two identical documents"
    slowed = [dict(row, wall_ms=row["wall_ms"] * 2.0) for row in rows]
    regressed = compare(
        baseline,
        parse_document(make_document("observatory", slowed)),
        threshold=1.25,
        mode="wall",
    )
    assert not regressed.ok, "gate missed a synthetic 2x slowdown"
    assert len(regressed.regressions) == len(rows)


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_disabled_analyze_overhead(benchmark):
    """Never-enabled analyze budget <= 5% of the Q_{2,1} runtime."""
    program, structure, params = _instance()
    budget, runtime = check_disabled_analyze_overhead(program, structure)
    check_codegen_disabled_source_is_clean(program)
    benchmark.pedantic(
        lambda: evaluate(program, structure, method="indexed"),
        rounds=1,
        iterations=1,
    )
    record(
        benchmark,
        experiment="E21",
        **params,
        budget_us=round(budget * 1e6, 1),
        runtime_ms=round(runtime * 1e3, 1),
    )
    assert budget < OVERHEAD_BAR * runtime, (
        f"analyze branch budget ~{budget * 1e6:.0f}us exceeds "
        f"{OVERHEAD_BAR:.0%} of the {runtime * 1e3:.1f}ms workload"
    )


def bench_analyze_counts_agree(benchmark):
    """Enabled analyze: indexed == codegen counts on Q_{2,1}."""
    program, structure, params = _instance()
    plans, __ = check_counts_agree(program, structure)
    benchmark.pedantic(
        lambda: evaluate(
            program, structure, method="codegen", collect_analyze=True
        ),
        rounds=1,
        iterations=1,
    )
    record(
        benchmark,
        experiment="E21",
        **params,
        rows_processed=plans.total_rows_processed,
        rounds=plans.rounds,
    )


def main(argv=None):
    """CI smoke: analyze parity + overhead budget + profiler determinism
    + the regression-gate self-test, with shared-schema rows."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller instance (CI smoke)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the timing rows as a bench document",
    )
    args = parser.parse_args(argv)

    program, structure, params = _instance(quick=args.quick)
    failures = 0

    plans, __ = check_counts_agree(program, structure)
    print(
        f"analyze parity OK: {plans.total_rows_processed} rows processed, "
        f"{plans.rounds} rounds"
    )

    budget, runtime = check_disabled_analyze_overhead(program, structure)
    print(
        f"disabled-analyze budget ~{budget * 1e6:.0f}us vs "
        f"{runtime * 1e3:.1f}ms runtime"
    )
    if budget >= OVERHEAD_BAR * runtime:
        print(
            f"overhead budget exceeds {OVERHEAD_BAR:.0%}", file=sys.stderr
        )
        failures += 1
    try:
        check_codegen_disabled_source_is_clean(program)
    except AssertionError as exc:
        print(f"codegen source check FAILED: {exc}", file=sys.stderr)
        failures += 1

    profile = check_profile_determinism(program, structure)
    print(
        f"profiler OK: {profile.span_count} spans, "
        f"{len(profile.rows)} deterministic rows"
    )

    rows = []
    for engine in ("indexed", "codegen"):
        result, row = timed_row(
            f"q-{params['k']}-{params['l']}",
            lambda engine=engine: evaluate(
                program, structure, method=engine
            ),
            engine=engine,
            params=params,
            repeats=2,
        )
        analyzed = evaluate(
            program, structure, method=engine, collect_analyze=True
        )
        row["analyze"] = analyzed.profile.plans.summary()
        rows.append(row)
        print(f"{engine:<8} {row['wall_ms']:>10.1f}ms")

    try:
        check_gate_self_test(rows)
        print("regression gate OK: trips on 2x, passes on identical")
    except AssertionError as exc:
        print(f"gate self-test FAILED: {exc}", file=sys.stderr)
        failures += 1

    if args.json:
        write_rows(args.json, rows, bench="observatory")
        print(f"wrote {len(rows)} rows to {args.json}")
    if failures:
        print(f"{failures} failure(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
