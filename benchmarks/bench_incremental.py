"""E18 -- incremental maintenance: single-fact updates vs re-evaluation.

Regenerates: on transitive closure and on the largest default
``Q_{k,l}`` instance of the engine sweep (``q_program(2, 1)``, n=12,
the ``bench_theorem61`` configuration), a single-edge EDB insert
handled by :class:`~repro.datalog.incremental.IncrementalSession` must
(a) leave the session in exactly the state a from-scratch ``evaluate()``
reaches on the mutated database, (b) fire strictly fewer rules
(``datalog.rule_firings``), and (c) run at least 5x faster than the
re-evaluation on the full-size transitive-closure instance -- deltas
touch the neighbourhood of the new edge, re-evaluation re-derives the
world.  Single-edge deletes (Delete/Rederive) are timed and checked for
equality the same way; DRed's over-delete/rederive detour makes no
wall-clock promise, so deletes carry no speedup bar.

Also runnable as a script (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_incremental.py --quick --json out.json

which runs the same comparison on smaller instances (the speedup bar is
only enforced at full size; equality and strict firing reduction always
are) and writes shared-schema rows.
"""

import pytest

from _harness import record, timed_row
from repro.datalog.evaluation import evaluate
from repro.datalog.incremental import IncrementalSession
from repro.datalog.library import q_program, transitive_closure_program
from repro.graphs.generators import random_digraph

#: Node counts for the acceptance instances (both programs at n=12).
FULL_NODES = 12
QUICK_NODES = 9

#: The acceptance bar: a single-edge insert on transitive closure at
#: full size must beat from-scratch re-evaluation by at least this much.
SPEEDUP_BAR = 5.0

#: Repeats per timing row (each repeat maintains a fresh session, so
#: every timed update does the same real work).
REPEATS = 3

#: Edge density: both programs run on the seed-7, density-0.25 random
#: digraph family of ``bench_theorem61``.  At n=12 that closure is
#: dense, which is exactly incremental maintenance's steady state: the
#: update's delta joins confirm (cheaply) how little changed, while
#: re-evaluation re-derives the world either way.
TC_DENSITY = 0.25
Q_DENSITY = 0.25


def _structure(nodes, density=0.25):
    return random_digraph(nodes, density, seed=7).to_structure()


def _reachable_pairs(edges, nodes):
    """Reachability over the edge set (plain BFS, program-independent)."""
    succ: dict = {node: [] for node in nodes}
    for u, v in edges:
        succ[u].append(v)
    pairs = set()
    for source in nodes:
        frontier = [source]
        seen = set()
        while frontier:
            node = frontier.pop()
            for nxt in succ[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        pairs |= {(source, target) for target in seen}
    return pairs


def _pick_update(structure, kind):
    """A deterministic single-edge update and the mutated EDB.

    The inserted edge connects a currently-unreachable pair whenever
    one exists, so on sparse instances the insert genuinely extends
    the recursive view; on the dense acceptance instances no such pair
    remains and the first absent edge stands in (the steady-state
    "delta confirms little changed" case).
    """
    edges = set(structure.relation("E"))
    nodes = sorted(structure.universe)
    if kind == "insert":
        reachable = _reachable_pairs(edges, nodes)
        candidates = [
            (u, v)
            for u in nodes
            for v in nodes
            if u != v and (u, v) not in edges
        ]
        row = next(
            (pair for pair in candidates if pair not in reachable),
            candidates[0],
        )
        return row, edges | {row}
    row = sorted(edges)[len(edges) // 2]
    return row, edges - {row}


def _compare_update(name, program, structure, kind, params, repeats=REPEATS):
    """Timed incremental-vs-scratch rows plus the equality/work checks."""
    row, mutated = _pick_update(structure, kind)
    # Sessions are built (and their initial fixpoint paid) outside the
    # timed region: the experiment times the *update*, the whole point
    # of maintaining the view.
    sessions = iter(
        [IncrementalSession(program, structure) for __ in range(repeats)]
    )
    last: dict = {}

    def apply_update():
        session = next(sessions)
        apply = (
            session.insert_facts if kind == "insert"
            else session.delete_facts
        )
        result = apply("E", [row])
        last["session"] = session
        return result

    __, update_row = timed_row(
        f"{name}-{kind}",
        apply_update,
        engine="incremental",
        params={**params, "update": kind},
        repeats=repeats,
    )
    scratch, scratch_row = timed_row(
        f"{name}-{kind}",
        lambda: evaluate(
            program, structure, extra_edb={"E": mutated}, method="indexed"
        ),
        engine="indexed-scratch",
        params={**params, "update": kind},
        repeats=repeats,
    )
    session = last["session"]
    assert session.relations == {
        predicate: frozenset(scratch.relations[predicate])
        for predicate in program.idb_predicates
    }, f"{name}-{kind}: maintained view diverged from re-evaluation"
    if kind == "insert":
        # The strict work bar applies to inserts: the delta continuation
        # only re-derives downstream of the new edge.  DRed deletes may
        # legitimately fire more gross rules than a re-evaluation (the
        # over-delete marks plus the rederive propagation), so deletes
        # are held to equality only.
        update_firings = update_row["counters"].get(
            "datalog.rule_firings", 0
        )
        scratch_firings = scratch_row["counters"]["datalog.rule_firings"]
        assert update_firings < scratch_firings, (
            f"{name}-{kind}: incremental update fired {update_firings} "
            f"rules, re-evaluation {scratch_firings}; maintenance must "
            f"strictly reduce work"
        )
    return update_row, scratch_row


def bench_incremental_insert_transitive_closure(benchmark):
    """The acceptance case: TC at n=12, >= 5x and fewer firings."""
    program = transitive_closure_program()
    structure = _structure(FULL_NODES, TC_DENSITY)
    params = {"nodes": FULL_NODES}
    update_row, scratch_row = _compare_update(
        "tc", program, structure, "insert", params
    )
    row, __ = _pick_update(structure, "insert")
    session = IncrementalSession(program, structure)
    benchmark.pedantic(
        lambda: session.insert_facts("E", [row]), rounds=1, iterations=1
    )
    speedup = scratch_row["wall_ms"] / update_row["wall_ms"]
    record(
        benchmark,
        experiment="E18",
        **params,
        insert_ms=update_row["wall_ms"],
        scratch_ms=scratch_row["wall_ms"],
        insert_firings=update_row["counters"].get("datalog.rule_firings", 0),
        scratch_firings=scratch_row["counters"]["datalog.rule_firings"],
        speedup=round(speedup, 2),
    )
    assert speedup >= SPEEDUP_BAR, (
        f"single-edge insert only {speedup:.2f}x faster than "
        f"re-evaluation on TC (n={FULL_NODES}); incremental "
        f"maintenance should buy >= {SPEEDUP_BAR}x"
    )


def bench_incremental_delete_transitive_closure(benchmark):
    """DRed on TC at n=12: correct and strictly less work (no time bar)."""
    program = transitive_closure_program()
    structure = _structure(FULL_NODES, TC_DENSITY)
    params = {"nodes": FULL_NODES}
    update_row, scratch_row = _compare_update(
        "tc", program, structure, "delete", params
    )
    row, __ = _pick_update(structure, "delete")
    session = IncrementalSession(program, structure)
    benchmark.pedantic(
        lambda: session.delete_facts("E", [row]), rounds=1, iterations=1
    )
    record(
        benchmark,
        experiment="E18",
        **params,
        delete_ms=update_row["wall_ms"],
        scratch_ms=scratch_row["wall_ms"],
    )


def bench_incremental_maintenance_q21(benchmark):
    """q-2-1 at n=12: both update kinds stay correct and cheaper."""
    program = q_program(2, 1)
    structure = _structure(FULL_NODES, Q_DENSITY)
    params = {"k": 2, "l": 1, "nodes": FULL_NODES}
    insert_row, insert_scratch = _compare_update(
        "q-2-1", program, structure, "insert", params
    )
    delete_row, delete_scratch = _compare_update(
        "q-2-1", program, structure, "delete", params
    )
    row, __ = _pick_update(structure, "insert")
    session = IncrementalSession(program, structure)
    benchmark.pedantic(
        lambda: session.insert_facts("E", [row]), rounds=1, iterations=1
    )
    record(
        benchmark,
        experiment="E18",
        **params,
        insert_ms=insert_row["wall_ms"],
        insert_scratch_ms=insert_scratch["wall_ms"],
        delete_ms=delete_row["wall_ms"],
        delete_scratch_ms=delete_scratch["wall_ms"],
    )


def main(argv=None):
    """CI smoke: after every single-edge update the maintained view
    equals re-evaluation with strictly fewer rule firings; prints a
    comparison table and, with ``--json PATH``, writes shared-schema
    rows for the artifact.  The >= 5x TC-insert speedup bar applies at
    full size only (``--quick`` instances are too small for wall-clock
    bars)."""
    import argparse
    import sys

    from _harness import write_rows

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller instances, no speedup bar (CI smoke)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the timing rows as a JSON array",
    )
    args = parser.parse_args(argv)

    nodes = QUICK_NODES if args.quick else FULL_NODES
    cases = [
        (
            "tc",
            transitive_closure_program(),
            _structure(nodes, TC_DENSITY),
            {"nodes": nodes},
        ),
        (
            "q-2-1",
            q_program(2, 1),
            _structure(nodes, Q_DENSITY),
            {"k": 2, "l": 1, "nodes": nodes},
        ),
    ]

    rows = []
    failures = 0
    print(f"{'case':<16} {'incremental':>12} {'scratch':>12} "
          f"{'firings':>14} {'speedup':>8}")
    for name, program, structure, params in cases:
        for kind in ("insert", "delete"):
            try:
                update_row, scratch_row = _compare_update(
                    name, program, structure, kind, params
                )
            except AssertionError as exc:
                print(f"{name}-{kind:<8} FAILED: {exc}", file=sys.stderr)
                failures += 1
                continue
            rows += [update_row, scratch_row]
            speedup = scratch_row["wall_ms"] / update_row["wall_ms"]
            firings = (
                f"{update_row['counters'].get('datalog.rule_firings', 0)}"
                f"/{scratch_row['counters']['datalog.rule_firings']}"
            )
            label = f"{name}-{kind}"
            print(
                f"{label:<16} {update_row['wall_ms']:>10.2f}ms "
                f"{scratch_row['wall_ms']:>10.2f}ms {firings:>14} "
                f"{speedup:>7.1f}x"
            )
            if (
                not args.quick
                and (name, kind) == ("tc", "insert")
                and speedup < SPEEDUP_BAR
            ):
                print(
                    f"{label}: speedup {speedup:.2f}x below the "
                    f"{SPEEDUP_BAR}x bar", file=sys.stderr,
                )
                failures += 1
    if args.json:
        write_rows(args.json, rows, bench="incremental")
        print(f"wrote {len(rows)} rows to {args.json}")
    if failures:
        print(f"{failures} failure(s)", file=sys.stderr)
        return 1
    print("maintained view == re-evaluation on every update, "
          "with strictly fewer rule firings")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
