"""E16 -- constructive Corollary 4.9 / Proposition 4.2.

Regenerates: extraction of separating L^k sentences from Player I's
winning strategies (model-checked on both structures, width-audited),
and the Proposition 4.2 defining-sentence construction over a finite
universe of graphs.
"""

import pytest

from _harness import record
from repro.graphs.generators import (
    crossed_paths_structure_pair,
    cycle_graph,
    path_graph,
    path_pair_structures,
    random_digraph,
)
from repro.logic import (
    defining_sentence,
    evaluate_formula,
    separating_sentence,
    variable_width,
)


def bench_example_44_separator(benchmark):
    short, long_ = path_pair_structures(3, 6)
    sentence = benchmark(lambda: separating_sentence(long_, short, 2))
    assert evaluate_formula(sentence, long_)
    assert not evaluate_formula(sentence, short)
    assert variable_width(sentence) <= 2
    record(benchmark, experiment="E16", k=2, width=variable_width(sentence))


def bench_example_45_separator(benchmark):
    disjoint, crossed = crossed_paths_structure_pair(1)
    sentence = benchmark(lambda: separating_sentence(disjoint, crossed, 3))
    assert evaluate_formula(sentence, disjoint)
    assert not evaluate_formula(sentence, crossed)
    assert variable_width(sentence) <= 3
    record(benchmark, experiment="E16", k=3, width=variable_width(sentence))


def bench_random_separator_sweep(benchmark):
    def sweep():
        extracted = 0
        for seed in range(6):
            a = random_digraph(4, 0.35, seed).to_structure()
            b = random_digraph(4, 0.35, seed + 1234).to_structure()
            sentence = separating_sentence(a, b, 2)
            if sentence is None:
                continue
            assert evaluate_formula(sentence, a)
            assert not evaluate_formula(sentence, b)
            extracted += 1
        return extracted

    extracted = benchmark(sweep)
    record(benchmark, experiment="E16", separators=extracted, pairs=6)


def bench_proposition_42_definability(benchmark):
    universe = [
        path_graph(2).to_structure(),
        path_graph(4).to_structure(),
        cycle_graph(3).to_structure(),
        cycle_graph(4).to_structure(),
    ]
    members = [2, 3]

    def define_and_check():
        sentence = defining_sentence(universe, members, 2)
        return [
            evaluate_formula(sentence, structure) for structure in universe
        ]

    verdicts = benchmark(define_and_check)
    assert verdicts == [False, False, True, True]
    record(benchmark, experiment="E16", universe=len(universe))
