"""E2 -- Examples 3.3 / 3.4: fixed-variable infinitary formulas.

Regenerates: tau_n in two variables on total orders, p_n in three
variables on graphs, and the "walk length in P" family, with width
audits certifying the L^2 / L^3 membership the paper states.
"""

import pytest

from _harness import record
from repro.datalog.ast import Variable
from repro.logic import (
    cardinality_at_least,
    evaluate_formula,
    path_formula,
    path_length_in,
    variable_width,
)
from repro.graphs.generators import path_graph
from repro.structures import Structure, Vocabulary


def total_order(n):
    voc = Vocabulary({"<": 2})
    return Structure(
        voc,
        range(n),
        {"<": [(i, j) for i in range(n) for j in range(n) if i < j]},
    )


@pytest.mark.parametrize("n", [4, 8, 12])
def bench_cardinality_formulas(benchmark, n):
    structure = total_order(n)
    formula = cardinality_at_least(n)

    def verdicts():
        return (
            evaluate_formula(formula, structure),
            evaluate_formula(cardinality_at_least(n + 1), structure),
        )

    at_n, at_n_plus_1 = benchmark(verdicts)
    assert at_n and not at_n_plus_1
    assert variable_width(formula) == 2  # Example 3.3: two variables
    record(benchmark, experiment="E2", n=n, width=2)


@pytest.mark.parametrize("n", [3, 6, 9])
def bench_path_formulas(benchmark, n):
    structure = path_graph(n + 1).to_structure()
    formula = path_formula(n)
    x, y = Variable("x"), Variable("y")

    def verdict():
        return evaluate_formula(formula, structure, {x: "v0", y: f"v{n}"})

    assert benchmark(verdict)
    assert variable_width(formula) == 3  # Example 3.4: three variables
    record(benchmark, experiment="E2", walk_length=n, width=3)


def bench_even_walk_family(benchmark):
    structure = path_graph(7).to_structure()
    family = path_length_in(lambda n: n % 2 == 0)
    x, y = Variable("x"), Variable("y")

    def verdicts():
        expanded = family.expand(structure)
        return (
            evaluate_formula(expanded, structure, {x: "v0", y: "v4"}),
            evaluate_formula(expanded, structure, {x: "v0", y: "v3"}),
        )

    even, odd = benchmark(verdicts)
    assert even and not odd
    record(benchmark, experiment="E2", family="even walk lengths")
