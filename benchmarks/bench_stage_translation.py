"""E3 -- Theorem 3.6: Datalog(!=) stages as L^{l+r} formulas.

Regenerates: the stage formulas phi^n of the library programs, checked
against the engine's stage relations, with the l + r width bound
audited -- and the inequality-free refinement for pure Datalog.
"""

import pytest

from _harness import record
from repro.datalog import stages
from repro.datalog.library import (
    avoiding_path_program,
    transitive_closure_program,
)
from repro.logic import translate_program, variable_width
from repro.logic.evaluation import satisfying_tuples
from repro.graphs.generators import random_digraph

PROGRAMS = {
    "tc": transitive_closure_program,
    "avoiding-path": avoiding_path_program,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@pytest.mark.parametrize("n", [2, 3])
def bench_stage_formula_evaluation(benchmark, name, n):
    program = PROGRAMS[name]()
    translation = translate_program(program)
    structure = random_digraph(4, 0.4, seed=7).to_structure()
    engine = stages(program, structure)
    goal = program.goal
    free = translation.head_variables(goal)

    def run():
        formula = translation.stage_formula(goal, n)
        return satisfying_tuples(formula, structure, free)

    tuples = benchmark(run)
    if n <= len(engine):
        assert tuples == engine[n - 1][goal]
    actual, claimed = translation.audit_width(goal, n)
    assert actual <= claimed
    record(
        benchmark,
        experiment="E3",
        program=name,
        stage=n,
        width=actual,
        claimed_bound=claimed,
    )


def bench_width_is_stage_independent(benchmark):
    """The whole point of the two-step renaming: phi^n's width does not
    grow with n."""
    translation = translate_program(avoiding_path_program())

    def widths():
        return {
            variable_width(translation.stage_formula("T", n))
            for n in (2, 3, 4, 5)
        }

    distinct = benchmark(widths)
    assert len(distinct) == 1
    record(benchmark, experiment="E3", width=next(iter(distinct)))


def bench_inequality_free_refinement(benchmark):
    """Pure Datalog translates without inequalities; Datalog(!=) with."""
    tc = translate_program(transitive_closure_program())
    avoiding = translate_program(avoiding_path_program())

    def refinement():
        return (
            tc.is_inequality_free("S", 3),
            avoiding.is_inequality_free("T", 3),
        )

    pure, impure = benchmark(refinement)
    assert pure and not impure
    record(benchmark, experiment="E3")
