"""E5 -- Proposition 5.3: the game solver is polynomial for fixed k.

Regenerates the polynomial-time claim as a runtime series over
structure size for k = 2: the series should grow polynomially (the
position space is O((|A| |B|)^k)), not exponentially.
"""

import pytest

from _harness import record
from repro.games import solve_existential_game
from repro.graphs.generators import path_pair_structures


@pytest.mark.parametrize("n", [4, 6, 8, 10])
def bench_solver_scaling_k2(benchmark, n):
    short, long_ = path_pair_structures(n - 1, n)
    result = benchmark(lambda: solve_existential_game(short, long_, 2))
    assert result.winner == "II"
    record(
        benchmark,
        experiment="E5",
        size=n,
        k=2,
        positions=len(result.family) + len(result.ranks),
    )


@pytest.mark.parametrize("k", [1, 2, 3])
def bench_solver_scaling_in_k(benchmark, k):
    """The exponential dependence on k (the fixed parameter)."""
    short, long_ = path_pair_structures(4, 5)
    result = benchmark(lambda: solve_existential_game(short, long_, k))
    assert result.winner == "II"
    record(
        benchmark,
        experiment="E5",
        k=k,
        positions=len(result.family) + len(result.ranks),
    )
