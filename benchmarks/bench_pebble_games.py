"""E4 -- Examples 4.4 / 4.5: the existential pebble games.

Regenerates the paper's winner table:

    (short path, long path), any k  ->  Player II
    (long path, short path), k >= 2 ->  Player I
    (disjoint paths, crossed paths), k = 3 -> Player I
"""

import pytest

from _harness import record
from repro.games import solve_existential_game
from repro.graphs.generators import (
    crossed_paths_structure_pair,
    path_pair_structures,
)


@pytest.mark.parametrize("k", [1, 2, 3])
def bench_example_44_forward(benchmark, k):
    short, long_ = path_pair_structures(3, 6)
    result = benchmark(lambda: solve_existential_game(short, long_, k))
    assert result.winner == "II"
    record(benchmark, experiment="E4", example="4.4 (A,B)", k=k, winner="II")


@pytest.mark.parametrize("k", [2, 3])
def bench_example_44_backward(benchmark, k):
    short, long_ = path_pair_structures(3, 6)
    result = benchmark(lambda: solve_existential_game(long_, short, k))
    assert result.winner == "I"
    record(benchmark, experiment="E4", example="4.4 (B,A)", k=k, winner="I")


def bench_example_45(benchmark):
    disjoint, crossed = crossed_paths_structure_pair(1)
    result = benchmark(lambda: solve_existential_game(disjoint, crossed, 3))
    assert result.winner == "I"  # the paper's 3-pebble win
    record(benchmark, experiment="E4", example="4.5", k=3, winner="I")


def bench_example_45_homomorphism_variant(benchmark):
    """Remark 4.12: without injectivity the crossing is invisible --
    Player II just plays the collapsing map."""
    disjoint, crossed = crossed_paths_structure_pair(1)
    result = benchmark(
        lambda: solve_existential_game(disjoint, crossed, 3, injective=False)
    )
    assert result.winner == "II"
    record(
        benchmark,
        experiment="E4",
        example="4.5 homomorphism game",
        winner="II",
    )
