"""E7 -- Theorem 6.1: class-C patterns are Datalog(!=)-expressible.

Regenerates: for out-star patterns (k = 2, 3) and the self-loop
variants, the generated program's verdicts versus the FHW flow
algorithm and the exact embedding oracle, across random instances --
the three columns must agree everywhere.  Also the engine sweep on the
Q_{k,l} family, pinning the indexed engine's speedup over plain
semi-naive on the largest default instance.
"""

import random

import pytest

from _harness import measure, record, timed_row
from repro.datalog.evaluation import evaluate
from repro.datalog.homeo import class_c_program
from repro.datalog.library import q_program
from repro.fhw.homeomorphism import (
    homeomorphic_via_flow,
    is_homeomorphic_to_distinguished_subgraph,
)
from repro.graphs import DiGraph
from repro.graphs.generators import random_digraph

PATTERNS = {
    "out-star-2": DiGraph(edges=[("r", "u1"), ("r", "u2")]),
    "in-star-2": DiGraph(edges=[("u1", "r"), ("u2", "r")]),
    "loop-plus-out": DiGraph(edges=[("r", "r"), ("r", "u1")]),
}


@pytest.mark.parametrize("name", sorted(PATTERNS))
def bench_three_deciders_agree(benchmark, name):
    pattern = PATTERNS[name]
    query = class_c_program(pattern)
    rng = random.Random(99)
    pattern_nodes = sorted(pattern.nodes, key=repr)
    cases = []
    for seed in range(3):
        g = random_digraph(6, 0.3, seed, loops=("loop" in name))
        nodes = sorted(g.nodes)
        for __ in range(4):
            cases.append(
                (g, dict(zip(pattern_nodes, rng.sample(nodes, len(pattern_nodes)))))
            )

    def datalog_sweep():
        return [query.decide(g, assignment) for g, assignment in cases]

    datalog = measure(benchmark, datalog_sweep)
    flow = [homeomorphic_via_flow(pattern, g, a) for g, a in cases]
    exact = [
        is_homeomorphic_to_distinguished_subgraph(pattern, g, a)
        for g, a in cases
    ]
    assert datalog == flow == exact
    record(
        benchmark,
        experiment="E7",
        pattern=name,
        cases=len(cases),
        positives=sum(exact),
    )


#: The default Q_{k,l} sweep: (k, l, nodes).  The last entry is the
#: largest instance, on which the indexed engine must beat plain
#: semi-naive by at least 3x (the tentpole's acceptance bar).
QKL_SWEEP = [(1, 1, 14), (2, 0, 12), (2, 1, 12)]
LARGEST = QKL_SWEEP[-1]


@pytest.mark.parametrize("k,l,n", QKL_SWEEP)
def bench_indexed_vs_seminaive_qkl(benchmark, k, l, n):
    """Indexed vs. plain semi-naive on the Q_{k,l} programs.

    Both engines are timed best-of-N with ``perf_counter`` (the
    benchmark fixture additionally profiles the indexed run); relations
    must match exactly, and on the largest instance of the sweep the
    index layer must pay for itself at >= 3x.
    """
    program = q_program(k, l)
    structure = random_digraph(n, 0.25, seed=7).to_structure()

    def best_of(engine, repeats=2):
        return timed_row(
            f"q-{k}-{l}",
            lambda: evaluate(program, structure, method=engine),
            engine=engine,
            params={"k": k, "l": l, "nodes": n},
            repeats=repeats,
        )

    seminaive, seminaive_row = best_of("seminaive")
    indexed, indexed_row = best_of("indexed")
    benchmark.pedantic(
        lambda: evaluate(program, structure, method="indexed"),
        rounds=1,
        iterations=1,
    )
    assert indexed.relations == seminaive.relations
    assert indexed.iterations == seminaive.iterations
    speedup = seminaive_row["wall_ms"] / indexed_row["wall_ms"]
    record(
        benchmark,
        experiment="E7",
        k=k,
        l=l,
        nodes=n,
        seminaive_ms=seminaive_row["wall_ms"],
        indexed_ms=indexed_row["wall_ms"],
        counters=indexed_row["counters"],
        speedup=round(speedup, 2),
    )
    if (k, l, n) == LARGEST:
        assert speedup >= 3.0, (
            f"indexed engine only {speedup:.2f}x faster than semi-naive "
            f"on Q_{k}_{l} (n={n}); the index layer should buy >= 3x"
        )


def bench_program_size_growth(benchmark):
    """The Q_{k,0} program family: rule count grows linearly in k."""
    from repro.datalog.library import q_program

    def sizes():
        return [len(q_program(k, 0)) for k in (1, 2, 3, 4)]

    rule_counts = benchmark(sizes)
    assert rule_counts == sorted(rule_counts)
    assert rule_counts[0] == 2
    record(benchmark, experiment="E7", rule_counts=rule_counts)
