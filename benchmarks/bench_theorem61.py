"""E7 -- Theorem 6.1: class-C patterns are Datalog(!=)-expressible.

Regenerates: for out-star patterns (k = 2, 3) and the self-loop
variants, the generated program's verdicts versus the FHW flow
algorithm and the exact embedding oracle, across random instances --
the three columns must agree everywhere.
"""

import random

import pytest

from _harness import record
from repro.datalog.homeo import class_c_program
from repro.fhw.homeomorphism import (
    homeomorphic_via_flow,
    is_homeomorphic_to_distinguished_subgraph,
)
from repro.graphs import DiGraph
from repro.graphs.generators import random_digraph

PATTERNS = {
    "out-star-2": DiGraph(edges=[("r", "u1"), ("r", "u2")]),
    "in-star-2": DiGraph(edges=[("u1", "r"), ("u2", "r")]),
    "loop-plus-out": DiGraph(edges=[("r", "r"), ("r", "u1")]),
}


@pytest.mark.parametrize("name", sorted(PATTERNS))
def bench_three_deciders_agree(benchmark, name):
    pattern = PATTERNS[name]
    query = class_c_program(pattern)
    rng = random.Random(99)
    pattern_nodes = sorted(pattern.nodes, key=repr)
    cases = []
    for seed in range(3):
        g = random_digraph(6, 0.3, seed, loops=("loop" in name))
        nodes = sorted(g.nodes)
        for __ in range(4):
            cases.append(
                (g, dict(zip(pattern_nodes, rng.sample(nodes, len(pattern_nodes)))))
            )

    def datalog_sweep():
        return [query.decide(g, assignment) for g, assignment in cases]

    datalog = benchmark(datalog_sweep)
    flow = [homeomorphic_via_flow(pattern, g, a) for g, a in cases]
    exact = [
        is_homeomorphic_to_distinguished_subgraph(pattern, g, a)
        for g, a in cases
    ]
    assert datalog == flow == exact
    record(
        benchmark,
        experiment="E7",
        pattern=name,
        cases=len(cases),
        positives=sum(exact),
    )


def bench_program_size_growth(benchmark):
    """The Q_{k,0} program family: rule count grows linearly in k."""
    from repro.datalog.library import q_program

    def sizes():
        return [len(q_program(k, 0)) for k in (1, 2, 3, 4)]

    rule_counts = benchmark(sizes)
    assert rule_counts == sorted(rule_counts)
    assert rule_counts[0] == 2
    record(benchmark, experiment="E7", rule_counts=rule_counts)
