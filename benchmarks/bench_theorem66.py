"""E12 -- Theorem 6.6: the H1 query is not expressible in L^omega.

Regenerates the certificate per k: A_k satisfies the query, B_k =
G_{phi_k} falsifies it (exact oracle at k = 1; unsatisfiability of
phi_k beyond), and the proof's Player II strategy survives adversarial
existential k-pebble play -- while k + 1 pebbles defeat it.
"""

import pytest

from _harness import record
from repro.cnf.assignments import InconsistentAssignment
from repro.core import theorem_66_certificate
from repro.fhw.reduction import ClauseSlot, ColumnSlot
from repro.games.simulate import (
    PlaceMove,
    RandomPlayerOne,
    ScriptedPlayerOne,
    run_existential_game,
)
from repro.graphs.paths import node_disjoint_simple_paths


@pytest.mark.parametrize("k", [1, 2, 3])
def bench_certificate_construction(benchmark, k):
    cert = benchmark(lambda: theorem_66_certificate(k))
    record(
        benchmark,
        experiment="E12",
        k=k,
        a_nodes=len(cert.a),
        b_nodes=len(cert.b),
    )


@pytest.mark.parametrize("k", [1, 2, 3])
def bench_strategy_survival(benchmark, k):
    cert = theorem_66_certificate(k)

    def simulate():
        survived = 0
        for seed in range(8):
            transcript = run_existential_game(
                cert.a, cert.b, k,
                RandomPlayerOne(cert.a, seed=seed),
                cert.fresh_strategy(), rounds=150,
            )
            survived += transcript.player_two_survived
        return survived

    survived = benchmark(simulate)
    assert survived == 8
    record(benchmark, experiment="E12", k=k, survived=f"{survived}/8")


def bench_b_side_refutation(benchmark):
    cert = theorem_66_certificate(1)
    d = cert.b_graph.distinguished

    def refute():
        return node_disjoint_simple_paths(
            cert.b_graph, [(d["s1"], d["s2"]), (d["s3"], d["s4"])]
        )

    assert benchmark(refute) is None
    record(benchmark, experiment="E12", b_nodes=len(cert.b))


def bench_threshold_attack(benchmark):
    """k + 1 pebbles corner the strategy (the bound is tight)."""
    k = 2
    cert = theorem_66_certificate(k)
    instance = cert.fresh_strategy().instance
    slots = instance.p2_slots()
    moves = []
    for pebble, variable in enumerate(instance.formula.variables):
        index = next(
            i for i, slot in enumerate(slots)
            if isinstance(slot, ColumnSlot) and slot.variable == variable
        )
        moves.append(PlaceMove(pebble, ("q", index)))
    target = len(instance.formula.clauses) - 1
    index = next(
        i for i, slot in enumerate(slots)
        if isinstance(slot, ClauseSlot) and slot.clause_index == target
    )
    moves.append(PlaceMove(k, ("q", index)))

    def attack():
        strategy = cert.fresh_strategy()
        try:
            transcript = run_existential_game(
                cert.a, cert.b, k + 1,
                ScriptedPlayerOne(moves), strategy, rounds=len(moves),
            )
            return not transcript.player_two_survived
        except InconsistentAssignment:
            return True

    assert benchmark(attack)
    record(benchmark, experiment="E12", k=k, attack_pebbles=k + 1)
