"""E1 -- Examples 2.1 / 2.2: the paper's flagship programs.

Regenerates: TC and the w-avoiding-path query computed by the engine,
with their ground-truth relations, across growing path graphs; plus the
monotone-but-not-strongly-monotone separation of Section 2, and the
engine matrix (naive / semi-naive / indexed on the same workloads).

Also runnable as a script (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_datalog_programs.py --quick

which evaluates the library programs under every engine (algebra
included), asserts they agree, and prints a timing table; exits
nonzero on any mismatch.
"""

import pytest

from _harness import measure, record
from repro.core.expressibility import is_strongly_monotone_on
from repro.datalog import evaluate
from repro.datalog.evaluation import METHODS
from repro.datalog.library import (
    avoiding_path_program,
    transitive_closure_program,
)
from repro.graphs import DiGraph
from repro.graphs.generators import path_graph, random_digraph


@pytest.mark.parametrize("n", [6, 10, 14])
def bench_transitive_closure(benchmark, n):
    structure = path_graph(n).to_structure()
    program = transitive_closure_program()
    result = measure(benchmark, lambda: evaluate(program, structure))
    expected = n * (n - 1) // 2
    assert len(result.goal_relation) == expected
    record(benchmark, experiment="E1", nodes=n, tuples=expected)


@pytest.mark.parametrize("n", [5, 7, 9])
def bench_avoiding_path(benchmark, n):
    structure = random_digraph(n, 0.3, seed=n).to_structure()
    program = avoiding_path_program()
    result = measure(benchmark, lambda: evaluate(program, structure))
    record(
        benchmark,
        experiment="E1",
        nodes=n,
        tuples=len(result.goal_relation),
    )


def bench_path_systems(benchmark):
    """Section 1's PTIME-complete plain-Datalog query [Coo74]."""
    import random

    from repro.datalog.library import path_systems_program, solve_path_system
    from repro.structures import Structure, Vocabulary

    rng = random.Random(11)
    nodes = list(range(20))
    axioms = rng.sample(nodes, 3)
    rules = [tuple(rng.choice(nodes) for __ in range(3)) for __ in range(40)]
    voc = Vocabulary({"Axiom": 1, "Rule": 3})
    structure = Structure(
        voc, nodes, {"Axiom": [(a,) for a in axioms], "Rule": rules}
    )
    program = path_systems_program()

    result = measure(benchmark, lambda: evaluate(program, structure))
    expected = solve_path_system(nodes, axioms, rules)
    assert {x for (x,) in result.goal_relation} == set(expected)
    record(
        benchmark,
        experiment="E1",
        derivable=len(expected),
        nodes=len(nodes),
    )


@pytest.mark.parametrize("engine", METHODS)
def bench_engine_matrix_transitive_closure(benchmark, engine):
    """The engine matrix on Example 2.2: same fixpoint, three engines."""
    structure = path_graph(12).to_structure()
    program = transitive_closure_program()
    result = measure(
        benchmark, lambda: evaluate(program, structure, method=engine)
    )
    assert len(result.goal_relation) == 12 * 11 // 2
    record(benchmark, experiment="E1", engine=engine, nodes=12)


@pytest.mark.parametrize("engine", METHODS)
def bench_engine_matrix_avoiding_path(benchmark, engine):
    """The engine matrix on Example 2.1 (a ternary recursive query)."""
    structure = random_digraph(8, 0.3, seed=8).to_structure()
    program = avoiding_path_program()
    result = measure(
        benchmark, lambda: evaluate(program, structure, method=engine)
    )
    reference = evaluate(program, structure, method="naive")
    assert result.goal_relation == reference.goal_relation
    record(
        benchmark,
        experiment="E1",
        engine=engine,
        nodes=8,
        tuples=len(result.goal_relation),
    )


def bench_strong_monotonicity_separation(benchmark):
    """TC survives element identification; w-avoiding path does not --
    the exact dividing line of Section 2."""
    g = DiGraph(nodes=["w"], edges=[("v0", "v1"), ("v1", "v2")])
    s = g.to_structure()
    tc = transitive_closure_program()
    avoiding = avoiding_path_program()

    def separation():
        return (
            is_strongly_monotone_on(tc, s, "w", "v1"),
            is_strongly_monotone_on(avoiding, s, "w", "v1"),
        )

    tc_strong, avoiding_strong = benchmark(separation)
    assert tc_strong and not avoiding_strong
    record(
        benchmark,
        experiment="E1",
        tc_strongly_monotone=tc_strong,
        avoiding_strongly_monotone=avoiding_strong,
    )


def main(argv=None):
    """CI smoke: every engine, every library program, must agree.

    Prints a wall-clock table (informational; agreement is the check)
    and, with ``--json PATH``, writes the runs as shared-schema rows
    (name, params, engine, wall_ms, counters) for the CI artifact.
    """
    import argparse
    import sys

    from _harness import timed_row, write_rows
    from repro.datalog import evaluate_algebra
    from repro.datalog.library import q_program

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller structures, one structure per program (CI smoke)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the timing rows as a JSON array",
    )
    args = parser.parse_args(argv)

    nodes = 5 if args.quick else 7
    seeds = (3,) if args.quick else (3, 5, 9)
    programs = {
        "transitive-closure": transitive_closure_program(),
        "avoiding-path": avoiding_path_program(),
        "q-2-0": q_program(2, 0),
        "q-1-1": q_program(1, 1),
    }
    engines = list(METHODS) + ["algebra"]

    failures = 0
    rows = []
    print(f"{'program':<20} {'structure':<12} " +
          " ".join(f"{engine:>10}" for engine in engines))
    for name, program in programs.items():
        for seed in seeds:
            structure = random_digraph(nodes, 0.3, seed).to_structure()
            timings = {}
            relations = {}
            for engine in engines:
                if engine == "algebra":
                    run = lambda: evaluate_algebra(program, structure)
                else:
                    run = lambda e=engine: evaluate(
                        program, structure, method=e
                    )
                result, row = timed_row(
                    name, run, engine=engine,
                    params={"nodes": nodes, "seed": seed},
                )
                timings[engine] = row["wall_ms"]
                relations[engine] = result.relations
                rows.append(row)
            line = f"{name:<20} n={nodes},s={seed:<4} " + " ".join(
                f"{timings[engine]:>8.1f}ms" for engine in engines
            )
            agree = all(
                relations[engine] == relations["naive"] for engine in engines
            )
            if not agree:
                failures += 1
                line += "  MISMATCH"
            print(line)
    if args.json:
        write_rows(args.json, rows, bench="datalog_programs")
        print(f"wrote {len(rows)} rows to {args.json}")
    if failures:
        print(f"{failures} engine mismatch(es)", file=sys.stderr)
        return 1
    print("all engines agree on all programs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
