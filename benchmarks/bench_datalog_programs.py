"""E1 -- Examples 2.1 / 2.2: the paper's flagship programs.

Regenerates: TC and the w-avoiding-path query computed by the engine,
with their ground-truth relations, across growing path graphs; plus the
monotone-but-not-strongly-monotone separation of Section 2.
"""

import pytest

from _harness import record
from repro.core.expressibility import is_strongly_monotone_on
from repro.datalog import evaluate
from repro.datalog.library import (
    avoiding_path_program,
    transitive_closure_program,
)
from repro.graphs import DiGraph
from repro.graphs.generators import path_graph, random_digraph


@pytest.mark.parametrize("n", [6, 10, 14])
def bench_transitive_closure(benchmark, n):
    structure = path_graph(n).to_structure()
    program = transitive_closure_program()
    result = benchmark(lambda: evaluate(program, structure))
    expected = n * (n - 1) // 2
    assert len(result.goal_relation) == expected
    record(benchmark, experiment="E1", nodes=n, tuples=expected)


@pytest.mark.parametrize("n", [5, 7, 9])
def bench_avoiding_path(benchmark, n):
    structure = random_digraph(n, 0.3, seed=n).to_structure()
    program = avoiding_path_program()
    result = benchmark(lambda: evaluate(program, structure))
    record(
        benchmark,
        experiment="E1",
        nodes=n,
        tuples=len(result.goal_relation),
    )


def bench_path_systems(benchmark):
    """Section 1's PTIME-complete plain-Datalog query [Coo74]."""
    import random

    from repro.datalog.library import path_systems_program, solve_path_system
    from repro.structures import Structure, Vocabulary

    rng = random.Random(11)
    nodes = list(range(20))
    axioms = rng.sample(nodes, 3)
    rules = [tuple(rng.choice(nodes) for __ in range(3)) for __ in range(40)]
    voc = Vocabulary({"Axiom": 1, "Rule": 3})
    structure = Structure(
        voc, nodes, {"Axiom": [(a,) for a in axioms], "Rule": rules}
    )
    program = path_systems_program()

    result = benchmark(lambda: evaluate(program, structure))
    expected = solve_path_system(nodes, axioms, rules)
    assert {x for (x,) in result.goal_relation} == set(expected)
    record(
        benchmark,
        experiment="E1",
        derivable=len(expected),
        nodes=len(nodes),
    )


def bench_strong_monotonicity_separation(benchmark):
    """TC survives element identification; w-avoiding path does not --
    the exact dividing line of Section 2."""
    g = DiGraph(nodes=["w"], edges=[("v0", "v1"), ("v1", "v2")])
    s = g.to_structure()
    tc = transitive_closure_program()
    avoiding = avoiding_path_program()

    def separation():
        return (
            is_strongly_monotone_on(tc, s, "w", "v1"),
            is_strongly_monotone_on(avoiding, s, "w", "v1"),
        )

    tc_strong, avoiding_strong = benchmark(separation)
    assert tc_strong and not avoiding_strong
    record(
        benchmark,
        experiment="E1",
        tc_strongly_monotone=tc_strong,
        avoiding_strongly_monotone=avoiding_strong,
    )
