"""Scenario: playing the paper's games move by move (Section 4).

Reproduces Examples 4.4 and 4.5 interactively: the exact solver decides
the winner, a winning-strategy family drives Player II when he wins, and
the solver-extracted adversary actually defeats him when Player I wins
-- printing the losing line, which matches the paper's narrative
("Player I moves along the path and forces Player II off the end").

Run:  python examples/pebble_games.py
"""

from repro.games import solve_existential_game
from repro.games.simulate import (
    FamilyStrategy,
    RandomPlayerOne,
    SolverPlayerOne,
    run_existential_game,
)
from repro.graphs.generators import crossed_paths_structure_pair, path_pair_structures


def describe(transcript) -> str:
    if transcript.player_two_survived:
        return f"Player II survived {transcript.rounds_played} rounds"
    return f"Player II lost in round {transcript.failure_round}"


def main() -> None:
    # ------------------------------------------------------------------
    # Example 4.4: a 3-node path vs a 6-node path.
    # ------------------------------------------------------------------
    short, long_ = path_pair_structures(3, 6)
    print("Example 4.4 -- paths of different length")

    forward = solve_existential_game(short, long_, k=2)
    print(f"  (short, long), k=2: winner {forward.winner}")
    strategy = FamilyStrategy(forward.family, long_)
    transcript = run_existential_game(
        short, long_, 2, RandomPlayerOne(short, seed=11), strategy, rounds=60
    )
    print(f"    vs random adversary: {describe(transcript)}")

    backward = solve_existential_game(long_, short, k=2)
    print(f"  (long, short), k=2: winner {backward.winner}")
    adversary = SolverPlayerOne(backward, long_, short)
    victim = FamilyStrategy(backward.family, short)  # best effort from what's left
    transcript = run_existential_game(
        long_, short, 2, adversary, victim, rounds=60
    )
    print(f"    optimal Player I vs best-effort II: {describe(transcript)}")
    print("    Player I's winning line (walking two pebbles down the long path):")
    for move, answer in transcript.history:
        print(f"      {move} -> II answers {answer!r}")

    # ------------------------------------------------------------------
    # Example 4.5: disjoint paths vs paths crossing in the middle.
    # ------------------------------------------------------------------
    disjoint, crossed = crossed_paths_structure_pair(n=2)
    print("\nExample 4.5 -- disjoint vs crossed paths (n=2, paths of 5 nodes)")
    for k in (2, 3):
        result = solve_existential_game(disjoint, crossed, k=k)
        note = (
            "(the paper plays the 3-pebble game; I in fact wins already "
            "with 2: B has a unique 'crossing' middle node)"
            if k == 2
            else "(paper: Player I wins the existential 3-pebble game)"
        )
        print(f"  (disjoint, crossed), k={k}: winner {result.winner} {note}")
    result3 = solve_existential_game(disjoint, crossed, k=3)
    adversary = SolverPlayerOne(result3, disjoint, crossed)
    victim = FamilyStrategy(result3.family, crossed)
    transcript = run_existential_game(
        disjoint, crossed, 3, adversary, victim, rounds=80
    )
    print(f"  optimal Player I with 3 pebbles: {describe(transcript)}")


if __name__ == "__main__":
    main()
