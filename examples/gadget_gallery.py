"""Scenario: rendering the paper's gadgets for inspection (Figures 1-6).

Writes Graphviz DOT files for:

* the switch gadget (Figure 1), with its six named passing paths
  highlighted in pairs;
* ``G_phi`` for the paper's own Figure 5 formula ``x1 | x1`` with the
  satisfying routing highlighted;
* ``G_phi`` for the Figure 6 formula ``x1 & ~x1`` (no routing exists).

Render with e.g. ``dot -Tsvg switch.dot -o switch.svg``.

Run:  python examples/gadget_gallery.py [output-directory]
"""

import pathlib
import sys
import tempfile

from repro.cnf import CnfFormula
from repro.fhw.reduction import sat_to_disjoint_paths
from repro.fhw.switch import build_switch, check_switch_lemma
from repro.io.dot import reduction_to_dot, to_dot


def main(output_dir: str | None = None) -> None:
    directory = pathlib.Path(
        output_dir or tempfile.mkdtemp(prefix="repro-gadgets-")
    )
    directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Figure 1: the switch, with the p-paths and q-paths highlighted.
    # ------------------------------------------------------------------
    switch = build_switch()
    report = check_switch_lemma(switch)
    print(f"switch: 32 nodes, Lemma 6.4 verified: {report.holds}")
    named = switch.paths().named()
    dot = to_dot(
        switch.graph(),
        name="switch",
        highlight_paths=[
            named["p_ca"], named["p_bd"], named["p_ef"],
            named["q_ca"], named["q_bd"], named["q_gh"],
        ],
        node_labels={
            node: node[1] for node in switch.graph().nodes
        },
    )
    (directory / "switch.dot").write_text(dot)

    # ------------------------------------------------------------------
    # Figure 5: G_phi for x1 | x1, with the routed disjoint paths.
    # ------------------------------------------------------------------
    figure5 = sat_to_disjoint_paths(CnfFormula.parse("x1 | x1"))
    print(f"Figure 5 instance: {len(figure5.graph)} nodes "
          "(satisfiable; paths highlighted)")
    (directory / "figure5.dot").write_text(
        reduction_to_dot(figure5, {"x1": True})
    )

    # ------------------------------------------------------------------
    # Figure 6: G_phi for x1 & ~x1 (unsatisfiable; nothing to route).
    # ------------------------------------------------------------------
    figure6 = sat_to_disjoint_paths(CnfFormula.parse("x1; ~x1"))
    print(f"Figure 6 instance: {len(figure6.graph)} nodes "
          "(unsatisfiable; no disjoint paths exist)")
    (directory / "figure6.dot").write_text(reduction_to_dot(figure6))

    print(f"wrote DOT files to {directory}/")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
