"""Quickstart: the Datalog(!=) engine and the L^k toolbox in five minutes.

Runs the paper's two flagship programs (Examples 2.1 / 2.2), shows the
stage semantics, translates a program into L^{l+r} stage formulas
(Theorem 3.6), and decides an existential pebble game (Section 4).

Run:  python examples/quickstart.py
"""

from repro.datalog import evaluate, parse_program, stages
from repro.datalog.library import avoiding_path_program, transitive_closure_program
from repro.games import preceq_k, solve_existential_game
from repro.graphs.generators import path_graph, path_pair_structures
from repro.logic import evaluate_formula, fixpoint_family, translate_program, variable_width
from repro.logic.evaluation import satisfying_tuples


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Evaluate the paper's programs on a small graph.
    # ------------------------------------------------------------------
    graph = path_graph(5)  # v0 -> v1 -> v2 -> v3 -> v4
    structure = graph.to_structure()

    tc = transitive_closure_program()  # Example 2.2
    result = evaluate(tc, structure)
    print("Transitive closure of a 5-node path:")
    print(f"  {len(result.goal_relation)} reachable pairs "
          f"(expected 10), fixpoint in {result.iterations} rounds")

    avoiding = avoiding_path_program()  # Example 2.1
    t = evaluate(avoiding, structure).goal_relation
    print("w-avoiding paths T(x, y, w):")
    print(f"  ('v0', 'v2', 'v4') in T: {('v0', 'v2', 'v4') in t}")
    print(f"  ('v0', 'v2', 'v1') in T: {('v0', 'v2', 'v1') in t} "
          "(the only v0->v2 path goes through v1)")

    # ------------------------------------------------------------------
    # 2. Stage semantics: Theta^1 <= Theta^2 <= ... (Section 2).
    # ------------------------------------------------------------------
    stage_list = stages(tc, structure)
    print("\nStages of the TC operator:")
    for n, stage in enumerate(stage_list, start=1):
        print(f"  Theta^{n}: {len(stage['S'])} tuples")

    # ------------------------------------------------------------------
    # 3. Theorem 3.6: the program as L^{l+r} stage formulas.
    # ------------------------------------------------------------------
    translation = translate_program(tc)
    phi2 = translation.stage_formula("S", 2)
    actual, claimed = translation.audit_width("S", 4)
    print("\nTheorem 3.6 translation of TC:")
    print(f"  phi^2 uses {variable_width(phi2)} distinct variables")
    print(f"  phi^4 width {actual} <= claimed bound l + r = {claimed}")
    engine_stage2 = stage_list[1]["S"]
    formula_stage2 = satisfying_tuples(
        phi2, structure, translation.head_variables("S")
    )
    print(f"  phi^2 tuples == engine stage 2: {formula_stage2 == engine_stage2}")

    family = fixpoint_family(translation)
    print(f"  pi^inf as infinitary disjunction: {family}")
    print(
        "  v0 reaches v4 per the formula: "
        f"{evaluate_formula(family.expand(structure), structure, dict(zip(translation.head_variables('S'), ['v0', 'v4'])))}"
    )

    # ------------------------------------------------------------------
    # 4. Pebble games: Example 4.4 (short path vs long path).
    # ------------------------------------------------------------------
    short, long_ = path_pair_structures(3, 6)
    print("\nExistential 2-pebble games (Example 4.4):")
    print(f"  short <=^2 long: {preceq_k(short, long_, 2)} (II copies the embedding)")
    print(f"  long <=^2 short: {preceq_k(long_, short, 2)} (I walks off the short path)")
    result = solve_existential_game(short, long_, 2)
    print(f"  II's winning family has {len(result.family)} positions")


if __name__ == "__main__":
    main()
