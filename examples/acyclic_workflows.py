"""Scenario: disjoint escalation chains in a workflow DAG (Theorem 6.2).

An incident pipeline is a DAG of hand-off steps.  Compliance wants two
*node-disjoint* escalation chains -- primary (intake -> resolver) and
audit (monitor -> archiver) -- so no single step sits on both chains.
On general graphs this two-disjoint-paths question is the NP-complete
H1 query; on DAGs the paper makes it a Datalog(!=) query via a
two-player pebble game.  This example runs all four deciders and prints
the game program.

Run:  python examples/acyclic_workflows.py
"""

import random

from repro.datalog.homeo import two_disjoint_paths_acyclic_program
from repro.fhw.homeomorphism import is_homeomorphic_to_distinguished_subgraph
from repro.fhw.pattern_class import pattern_h1
from repro.games.acyclic import acyclic_game_winner
from repro.games.solitaire import solitaire_game_solvable
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import layered_random_dag


def main() -> None:
    pattern = pattern_h1()
    query = two_disjoint_paths_acyclic_program()
    print("Theorem 6.2 game program for two disjoint paths on DAGs:")
    print(f"  {len(query.program)} rules, goal {query.program.goal}()")
    print("  sample rules:")
    for rule in query.program.rules[:6]:
        print(f"    {rule}")
    print("    ...")

    # A hand-built pipeline where both chains exist.
    pipeline = DiGraph(edges=[
        ("intake", "triage"), ("triage", "resolver"),
        ("monitor", "scan"), ("scan", "archiver"),
        ("intake", "scan"), ("triage", "archiver"),
    ])
    assignment = {
        "s1": "intake", "s2": "resolver", "s3": "monitor", "s4": "archiver",
    }
    print("\nHand-built pipeline:")
    _report(pattern, query, pipeline, assignment)

    # A bottleneck pipeline: every chain must pass through 'review'.
    bottleneck = DiGraph(edges=[
        ("intake", "review"), ("review", "resolver"),
        ("monitor", "review"), ("review", "archiver"),
    ])
    print("Bottleneck pipeline (shared 'review' step):")
    _report(pattern, query, bottleneck, assignment)

    # Random layered DAGs: all deciders agree everywhere.
    rng = random.Random(3)
    agreements = trials = 0
    for seed in range(5):
        dag = layered_random_dag(4, 3, 0.5, seed)
        nodes = sorted(dag.nodes)
        for __ in range(4):
            picks = rng.sample(nodes, 4)
            mapping = dict(zip(sorted(pattern.nodes), picks))
            verdicts = {
                "exact": is_homeomorphic_to_distinguished_subgraph(
                    pattern, dag, mapping
                ),
                "game": acyclic_game_winner(dag, pattern, mapping) == "II",
                "solitaire": solitaire_game_solvable(dag, pattern, mapping),
                "datalog": query.decide(dag, mapping),
            }
            trials += 1
            agreements += len(set(verdicts.values())) == 1
    print(f"Random layered DAGs: all four deciders agreed on "
          f"{agreements}/{trials} instances")


def _report(pattern, query, graph, assignment) -> None:
    mapping = {
        node: assignment[name]
        for node, name in zip(sorted(pattern.nodes), ["s1", "s2", "s3", "s4"])
    }
    exact = is_homeomorphic_to_distinguished_subgraph(pattern, graph, mapping)
    game = acyclic_game_winner(graph, pattern, mapping)
    datalog = query.decide(graph, mapping)
    print(f"  exact embedding: {exact}; game winner: {game}; "
          f"Datalog program: {datalog}\n")


if __name__ == "__main__":
    main()
