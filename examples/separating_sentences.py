"""Scenario: explaining WHY a query transfer fails (Corollary 4.9).

When ``A <=^k B`` fails, the paper's proof doesn't just say Player I
wins -- it builds a concrete L^k sentence true in A and false in B.
This example extracts those sentences for the paper's own structures
and then uses Proposition 4.2 to *define* a class of graphs by an L^k
sentence synthesised from the games.

Run:  python examples/separating_sentences.py
"""

from repro.graphs.generators import (
    crossed_paths_structure_pair,
    cycle_graph,
    path_graph,
    path_pair_structures,
)
from repro.logic import (
    defining_sentence,
    evaluate_formula,
    formula_size,
    separating_sentence,
    simplify_formula,
    variable_width,
)


def main() -> None:
    # ------------------------------------------------------------------
    # Example 4.4 backward: a 6-path is not <=^2 a 3-path.  Witness it.
    # ------------------------------------------------------------------
    short, long_ = path_pair_structures(3, 6)
    print("Example 4.4: does every L^2 sentence transfer long -> short?")
    raw = separating_sentence(long_, short, 2)
    sentence = simplify_formula(raw)
    print(f"  no -- separating sentence ({variable_width(sentence)} vars, "
          f"{formula_size(raw)} -> {formula_size(sentence)} nodes):")
    print(f"    {sentence}")
    print(f"  true in the 6-path: {evaluate_formula(sentence, long_)}")
    print(f"  true in the 3-path: {evaluate_formula(sentence, short)}")

    print("\n  the forward direction has no separator "
          f"(II wins): {separating_sentence(short, long_, 2) is None}")

    # ------------------------------------------------------------------
    # Example 4.5: three variables expose the crossing.
    # ------------------------------------------------------------------
    disjoint, crossed = crossed_paths_structure_pair(1)
    sentence = separating_sentence(disjoint, crossed, 3)
    print("\nExample 4.5: disjoint paths vs crossed paths, k = 3")
    print(f"  separating sentence uses {variable_width(sentence)} variables")
    print(f"  A |= phi: {evaluate_formula(sentence, disjoint)}, "
          f"B |= phi: {evaluate_formula(sentence, crossed)}")

    # ------------------------------------------------------------------
    # Proposition 4.2: define "contains a cycle" within a universe.
    # ------------------------------------------------------------------
    universe = [
        path_graph(2).to_structure(),
        path_graph(4).to_structure(),
        cycle_graph(3).to_structure(),
        cycle_graph(4).to_structure(),
    ]
    labels = ["2-path", "4-path", "3-cycle", "4-cycle"]
    members = [2, 3]
    print("\nProposition 4.2: defining {3-cycle, 4-cycle} in L^2")
    sentence = defining_sentence(universe, members, 2)
    for label, structure, index in zip(labels, universe, range(4)):
        verdict = evaluate_formula(sentence, structure)
        marker = "member" if index in members else "non-member"
        print(f"  {label:<8} ({marker}): {verdict}")


if __name__ == "__main__":
    main()
