"""Scenario: certifying that a query is NOT expressible (Theorem 6.6).

The two-disjoint-paths query (pattern H1) cannot be expressed in
Datalog(!=) -- and unlike the complexity dichotomy, this needs no
P != NP assumption.  The paper's witness, made executable here:

1. build ``B_k = G_{phi_k}`` from the unsatisfiable complete formula;
2. build ``A_k`` -- two plain paths of the same standard lengths;
3. check A_k *has* the disjoint paths and B_k has *none* (exact oracle
   for k = 1, construction invariants beyond);
4. let the proof's Player II strategy survive adversarial existential
   k-pebble play on (A_k, B_k) -- with k+1 pebbles a scripted Player I
   defeats it, exhibiting the threshold.

Run:  python examples/inexpressibility.py
"""

from repro.cnf.assignments import InconsistentAssignment
from repro.core import theorem_66_certificate
from repro.fhw.reduction import ColumnSlot, ClauseSlot
from repro.games.simulate import PlaceMove, RandomPlayerOne, ScriptedPlayerOne, run_existential_game
from repro.graphs.paths import node_disjoint_simple_paths


def main() -> None:
    k = 2
    cert = theorem_66_certificate(k)
    print(f"Certificate against L^{k} for the H1 query")
    print(f"  A_{k}: {len(cert.a)} nodes (two disjoint paths)")
    print(f"  B_{k}: {len(cert.b)} nodes (G of the complete formula phi_{k})")

    # A_k has the disjoint paths by construction.
    d = cert.a_graph.distinguished
    witness = node_disjoint_simple_paths(
        cert.a_graph, [(d["s1"], d["s2"]), (d["s3"], d["s4"])]
    )
    print(f"  A_{k} satisfies the query: {witness is not None}")

    # B_1 is small enough for the exact (exponential) oracle.
    small = theorem_66_certificate(1)
    ds = small.b_graph.distinguished
    refute = node_disjoint_simple_paths(
        small.b_graph, [(ds["s1"], ds["s2"]), (ds["s3"], ds["s4"])]
    )
    print(f"  B_1 falsifies the query (exact search): {refute is None}")

    # Player II survives adversarial play with k pebbles...
    survived = 0
    for seed in range(25):
        transcript = run_existential_game(
            cert.a, cert.b, k,
            RandomPlayerOne(cert.a, seed=seed),
            cert.fresh_strategy(), rounds=250,
        )
        survived += transcript.player_two_survived
    print(f"  Player II survived {survived}/25 random k-pebble adversaries")

    # ... but k+1 pebbles let Player I pin all k variables and then hit
    # the all-negative clause: the formula-game bookkeeping is cornered.
    instance = cert.fresh_strategy().instance
    p2_slots = instance.p2_slots()
    moves = []
    pebble = 0
    for variable in instance.formula.variables:
        index = next(
            i for i, slot in enumerate(p2_slots)
            if isinstance(slot, ColumnSlot) and slot.variable == variable
        )
        moves.append(PlaceMove(pebble, ("q", index)))
        pebble += 1
    # The all-negative clause is the last one of phi_k.
    target_clause = len(instance.formula.clauses) - 1
    index = next(
        i for i, slot in enumerate(p2_slots)
        if isinstance(slot, ClauseSlot) and slot.clause_index == target_clause
    )
    moves.append(PlaceMove(pebble, ("q", index)))

    strategy = cert.fresh_strategy()
    try:
        transcript = run_existential_game(
            cert.a, cert.b, k + 1,
            ScriptedPlayerOne(moves), strategy, rounds=len(moves),
        )
        beaten = not transcript.player_two_survived
    except InconsistentAssignment:
        beaten = True
    print(f"  scripted Player I with {k + 1} pebbles defeats the strategy: {beaten}")
    print("  (matching the paper: phi_k supports exactly k pebbles)")


if __name__ == "__main__":
    main()
