"""Scenario: vertex-disjoint routing in a data-centre fabric (Theorem 6.1).

A controller wants k vertex-disjoint paths from an ingress switch to k
egress switches (so one failed middlebox never cuts two routes).  That
is exactly the H-subgraph homeomorphism query for the out-star pattern
-- a class-C pattern -- which the paper proves expressible in
Datalog(!=).  This example runs all three deciders on a random fabric
and shows they agree:

* the generated Datalog(!=) program of Theorem 6.1 (``Q_{k,0}``);
* the FHW polynomial algorithm (max flow / Menger);
* the exact exponential embedding search (ground truth).

Run:  python examples/disjoint_routes.py
"""

import itertools
import random

from repro.core import classify_query
from repro.datalog.homeo import class_c_program
from repro.fhw.homeomorphism import (
    homeomorphic_via_flow,
    is_homeomorphic_to_distinguished_subgraph,
)
from repro.flow import max_node_disjoint_paths, separating_nodes
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_digraph


def main() -> None:
    k = 2
    star = DiGraph(edges=[("root", f"leaf{i}") for i in range(1, k + 1)])

    classification = classify_query(star)
    print(f"Pattern: out-star with {k} leaves")
    print(f"  in class C: {classification.in_class_c}")
    print(f"  complexity: {classification.complexity}")
    print(f"  general inputs: {classification.general_inputs}")

    query = class_c_program(star)
    print(f"\nGenerated program ({len(query.program)} rules, "
          f"goal {query.program.goal}):")
    for rule in query.program.rules:
        print(f"  {rule}")

    fabric = random_digraph(9, 0.22, seed=7)
    nodes = sorted(fabric.nodes)
    rng = random.Random(1)
    print(f"\nFabric: {len(fabric)} switches, {fabric.number_of_edges()} links")

    agreements = 0
    routable = 0
    for trial in range(8):
        ingress, *egress = rng.sample(nodes, k + 1)
        assignment = dict(zip(query.goal_argument_nodes, [ingress, *egress]))
        datalog_says = query.decide(fabric, assignment)
        flow_says = homeomorphic_via_flow(star, fabric, assignment)
        exact_says = is_homeomorphic_to_distinguished_subgraph(
            star, fabric, assignment
        )
        agreements += datalog_says == flow_says == exact_says
        routable += exact_says
        verdict = "routable" if exact_says else "NOT routable"
        print(f"  {ingress} -> {egress}: {verdict} "
              f"(datalog={datalog_says}, flow={flow_says}, exact={exact_says})")
        if not exact_says:
            cut = separating_nodes(fabric, ingress, egress)
            print(f"    separating middleboxes (Menger): {sorted(cut)}")
        else:
            __, paths = max_node_disjoint_paths(fabric, ingress, egress)
            for path in paths:
                print(f"    route: {' -> '.join(str(v) for v in path)}")
    print(f"\nAll three deciders agreed on {agreements}/8 trials")


if __name__ == "__main__":
    main()
