"""EXPLAIN ANALYZE: plan-node statistics from the plan engines.

The differential core of the suite: the interpreter
(:mod:`repro.datalog.evaluation`) and the generated functions
(:mod:`repro.datalog.codegen`) run the same
:class:`~repro.datalog.planner.RulePlan` steps, so every count --
rows in, rows out, invocations, firings -- must agree
binding-for-binding between them.  Wall time is the only
engine-specific field, and ``counts_view()`` strips it.
"""

import pytest

from repro.datalog.codegen import rule_sources
from repro.datalog.evaluation import ANALYZE_ENGINES, evaluate, query
from repro.datalog.library import (
    library_programs,
    q_program,
    transitive_closure_program,
)
from repro.graphs.generators import path_graph, random_digraph
from repro.obs import metrics as metrics_module
from repro.obs.analyze import render_plan_profile


@pytest.fixture(autouse=True)
def _metrics_restored():
    yield
    metrics_module.disable_metrics()


def _corpus():
    """(label, program, structure) pairs the differential suite sweeps.

    Every graph-EDB library program (``path-systems`` wants an
    Axiom/Rule EDB a digraph cannot interpret, so it sits this out).
    """
    cases = []
    for name, program in sorted(library_programs().items()):
        if set(program.edb_predicates) != {"E"}:
            continue
        cases.append((name, program, random_digraph(7, 0.3, seed=3)))
    cases.append(("q21", q_program(2, 1), random_digraph(8, 0.25, seed=5)))
    cases.append(("tc-path", transitive_closure_program(), path_graph(6)))
    return cases


class TestCollection:
    def test_off_by_default(self):
        result = evaluate(
            transitive_closure_program(),
            path_graph(4).to_structure(),
            method="indexed",
            collect_profile=True,
        )
        assert result.profile is not None
        assert result.profile.plans is None

    def test_analyze_forces_a_profile(self):
        result = evaluate(
            transitive_closure_program(),
            path_graph(4).to_structure(),
            method="indexed",
            collect_analyze=True,
        )
        plans = result.profile.plans
        assert plans is not None
        assert plans.engine == "indexed"
        assert plans.rounds == result.iterations
        assert plans.total_rows_processed > 0

    @pytest.mark.parametrize("engine", ["naive", "seminaive"])
    def test_non_plan_engines_reject_analyze(self, engine):
        with pytest.raises(ValueError, match="plan"):
            evaluate(
                transitive_closure_program(),
                path_graph(4).to_structure(),
                method=engine,
                collect_analyze=True,
            )

    def test_analyze_does_not_change_the_result(self):
        program = q_program(2, 1)
        structure = random_digraph(8, 0.25, seed=5).to_structure()
        for engine in ANALYZE_ENGINES:
            plain = evaluate(program, structure, method=engine)
            analyzed = evaluate(
                program, structure, method=engine, collect_analyze=True
            )
            assert plain.relations == analyzed.relations
            assert plain.iterations == analyzed.iterations

    def test_firings_match_the_profile(self):
        result = evaluate(
            transitive_closure_program(),
            path_graph(5).to_structure(),
            method="indexed",
            collect_profile=True,
            collect_analyze=True,
        )
        profile = result.profile
        for rule_stats, fired in zip(
            profile.plans.rules, profile.total_rule_firings()
        ):
            assert rule_stats.fired == fired


class TestDifferential:
    """Indexed and codegen agree node-for-node on the whole corpus."""

    @pytest.mark.parametrize(
        "label,program,graph",
        _corpus(),
        ids=[label for label, __, __ in _corpus()],
    )
    def test_counts_agree_binding_for_binding(self, label, program, graph):
        structure = graph.to_structure()
        views = {}
        relations = {}
        for engine in ANALYZE_ENGINES:
            result = evaluate(
                program, structure, method=engine, collect_analyze=True
            )
            views[engine] = result.profile.plans.counts_view()
            relations[engine] = result.relations
        assert relations["indexed"] == relations["codegen"]
        assert views["indexed"] == views["codegen"]

    def test_goal_directed_analyze_agrees_too(self):
        from repro.datalog.ast import Atom, Constant, Variable

        program = transitive_closure_program()
        structure = path_graph(6).to_structure().with_constants(
            {"__g1": "v0"}
        )
        goal = Atom(program.goal, (Constant("__g1"), Variable("y")))
        views = {}
        for engine in ANALYZE_ENGINES:
            outcome = query(
                program,
                structure,
                goal,
                engine=engine,
                magic=True,
                collect_analyze=True,
            )
            plans = outcome.result.profile.plans
            assert plans is not None and plans.total_rows_processed > 0
            views[engine] = plans.counts_view()
        assert views["indexed"] == views["codegen"]

    def test_query_rejects_analyze_on_algebra(self):
        from repro.datalog.ast import Atom, Variable

        program = transitive_closure_program()
        goal = Atom(program.goal, (Variable("x"), Variable("y")))
        with pytest.raises(ValueError, match="algebra"):
            query(
                program,
                path_graph(4).to_structure(),
                goal,
                engine="algebra",
                collect_analyze=True,
            )


class TestMetricsCrossCheck:
    """Analyze counts and the index-layer counters describe one truth.

    Indexed engine only: the codegen engine's generated functions read
    the store's raw dictionaries directly (that is the point of
    codegen) and therefore never pass through the index-layer counter
    sites -- its analyze counts, pinned equal to the indexed engine's
    by :class:`TestDifferential`, are the observability there.
    """

    def test_counts_match_index_counters(self):
        program = transitive_closure_program()
        structure = path_graph(6).to_structure()
        registry = metrics_module.enable_metrics(
            metrics_module.MetricsRegistry()
        )
        try:
            result = evaluate(
                program,
                structure,
                method="indexed",
                collect_analyze=True,
            )
        finally:
            metrics_module.disable_metrics()
        counters = registry.snapshot()["counters"]
        probes = delta_probes = extended = 0
        for rule in result.profile.plans.rules:
            for plan in rule.plans:
                for node in plan.nodes:
                    if node.kind in ("probe", "scan"):
                        probes += node.rows_in
                        extended += node.rows_out
                    elif node.kind == "delta":
                        delta_probes += node.rows_in
                        extended += node.rows_out
        assert probes == counters["index.probes"]
        assert delta_probes == counters["index.delta_probes"]
        assert extended == counters["index.bindings_extended"]


class TestCodegenHygiene:
    def test_disabled_source_is_byte_identical(self):
        """analyze=False must not leave any instrumentation behind."""
        for full, deltas in rule_sources(q_program(2, 1)):
            for source in [full.source] + [
                delta.source for __, delta in deltas
            ]:
                assert "_an" not in source
                assert "_i0" not in source


class TestRendering:
    def test_render_marks_the_hottest_node(self):
        result = evaluate(
            transitive_closure_program(),
            path_graph(6).to_structure(),
            method="indexed",
            collect_analyze=True,
        )
        text = render_plan_profile(result.profile.plans, name="tc")
        assert text.startswith("EXPLAIN ANALYZE tc:")
        assert "<-- hottest" in text
        assert "rows in=" in text
        assert "delta plan (dS)" in text

    def test_json_shapes_round_trip(self):
        import io
        import json

        result = evaluate(
            transitive_closure_program(),
            path_graph(5).to_structure(),
            method="codegen",
            collect_analyze=True,
        )
        plans = result.profile.plans
        stream = io.StringIO()
        plans.write_json(stream)
        loaded = json.loads(stream.getvalue())
        assert loaded["engine"] == "codegen"
        assert loaded["total_rows_processed"] == plans.total_rows_processed
        summary = plans.summary()
        assert {row["rule"] for row in summary["rules"]} == {
            rule.index for rule in plans.rules
        }
        assert all("hottest" in row for row in summary["rules"])
