"""Randomised cross-validation of the fixpoint engine.

Hypothesis generates small random Datalog(!=) programs over the graph
vocabulary; the properties checked:

* naive and semi-naive evaluation compute identical fixpoints;
* the fixpoint is indeed a fixpoint (one more operator application adds
  nothing) and contains stage 1;
* every Datalog(!=) program is monotone under adding edges (the paper's
  Section 2 invariant), and pure Datalog programs are preserved under
  element identification.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.expressibility import identify_elements
from repro.datalog.ast import Atom, Inequality, Program, Rule, Variable
from repro.datalog.evaluation import evaluate, stages
from repro.graphs.generators import random_digraph

_VARS = [Variable(name) for name in ("x", "y", "z")]


@st.composite
def random_programs(draw):
    """A random recursive program with one binary IDB ``P`` over ``E``."""
    rule_count = draw(st.integers(min_value=1, max_value=3))
    allow_neq = draw(st.booleans())
    rules = []
    for __ in range(rule_count):
        head_vars = draw(
            st.lists(st.sampled_from(_VARS), min_size=2, max_size=2)
        )
        body: list = []
        for __ in range(draw(st.integers(min_value=1, max_value=3))):
            predicate = draw(st.sampled_from(["E", "P"]))
            args = draw(
                st.lists(st.sampled_from(_VARS), min_size=2, max_size=2)
            )
            body.append(Atom(predicate, tuple(args)))
        if allow_neq and draw(st.booleans()):
            left, right = draw(
                st.lists(st.sampled_from(_VARS), min_size=2, max_size=2)
            )
            body.append(Inequality(left, right))
        rules.append(Rule(Atom("P", tuple(head_vars)), body))
    # Guarantee E occurs somewhere so the program has an EDB.
    rules.append(
        Rule(Atom("P", (_VARS[0], _VARS[1])), [Atom("E", (_VARS[0], _VARS[1]))])
    )
    return Program(rules, goal="P")


@settings(max_examples=40, deadline=None)
@given(random_programs(), st.integers(min_value=0, max_value=1_000))
def test_all_engines_agree(program, seed):
    from repro.datalog import evaluate_algebra

    structure = random_digraph(4, 0.35, seed).to_structure()
    naive = evaluate(program, structure, method="naive").relations
    semi = evaluate(program, structure, method="seminaive").relations
    indexed = evaluate(program, structure, method="indexed").relations
    algebra = evaluate_algebra(program, structure).relations
    assert naive == semi == indexed == algebra


@settings(max_examples=25, deadline=None)
@given(random_programs(), st.integers(min_value=0, max_value=1_000))
def test_fixpoint_is_a_fixpoint(program, seed):
    structure = random_digraph(4, 0.35, seed).to_structure()
    stage_list = stages(program, structure)
    assert stage_list[-1] == stage_list[-2] if len(stage_list) > 1 else True
    assert stage_list[0]["P"] <= stage_list[-1]["P"]


@settings(max_examples=25, deadline=None)
@given(random_programs(), st.integers(min_value=0, max_value=1_000))
def test_monotone_under_adding_edges(program, seed):
    """Section 2: Datalog(!=) queries are preserved by adding tuples."""
    g = random_digraph(4, 0.3, seed)
    rng = random.Random(seed)
    nodes = sorted(g.nodes)
    extra = {(rng.choice(nodes), rng.choice(nodes)) for __ in range(2)}
    bigger = g.add_edges(extra)
    before = evaluate(program, g.to_structure()).goal_relation
    after = evaluate(program, bigger.to_structure()).goal_relation
    assert before <= after


@settings(max_examples=25, deadline=None)
@given(random_programs(), st.integers(min_value=0, max_value=1_000))
def test_pure_programs_survive_identification(program, seed):
    """Section 2: pure Datalog queries are strongly monotone."""
    if not program.is_pure_datalog():
        return
    structure = random_digraph(4, 0.3, seed).to_structure()
    elements = sorted(structure.universe)
    if len(elements) < 2:
        return
    victim, survivor = elements[0], elements[1]
    quotient = identify_elements(structure, victim, survivor)

    def image(x):
        return survivor if x == victim else x

    before = evaluate(program, structure).goal_relation
    after = evaluate(program, quotient).goal_relation
    assert all(
        tuple(image(x) for x in row) in after for row in before
    )
