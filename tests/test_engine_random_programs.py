"""Randomised cross-validation of the fixpoint engine.

Hypothesis generates small random Datalog(!=) programs over the graph
vocabulary; the properties checked:

* naive and semi-naive evaluation compute identical fixpoints;
* the fixpoint is indeed a fixpoint (one more operator application adds
  nothing) and contains stage 1;
* every Datalog(!=) program is monotone under adding edges (the paper's
  Section 2 invariant), and pure Datalog programs are preserved under
  element identification.

The second half is the goal-directed equivalence harness: a *seeded*
stream (plain ``random``, so the corpus size is guaranteed, not
budgeted) of random (program, structure, goal atom) triples -- goal
atoms mix bound (constant) and free positions, programs carry
constants and ``!=`` constraints -- on which the magic-sets rewrite of
:mod:`repro.datalog.magic` must produce exactly the answers of direct
evaluate-then-filter, under every engine.  These tests carry the
``magic_equivalence`` marker so CI can select them explicitly.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.expressibility import identify_elements
from repro.datalog.ast import (
    Atom,
    Constant,
    Equality,
    Inequality,
    Program,
    Rule,
    Variable,
)
from repro.datalog.evaluation import QUERY_ENGINES, evaluate, query, stages
from repro.graphs.generators import random_digraph

_VARS = [Variable(name) for name in ("x", "y", "z")]


@st.composite
def random_programs(draw):
    """A random recursive program with one binary IDB ``P`` over ``E``."""
    rule_count = draw(st.integers(min_value=1, max_value=3))
    allow_neq = draw(st.booleans())
    rules = []
    for __ in range(rule_count):
        head_vars = draw(
            st.lists(st.sampled_from(_VARS), min_size=2, max_size=2)
        )
        body: list = []
        for __ in range(draw(st.integers(min_value=1, max_value=3))):
            predicate = draw(st.sampled_from(["E", "P"]))
            args = draw(
                st.lists(st.sampled_from(_VARS), min_size=2, max_size=2)
            )
            body.append(Atom(predicate, tuple(args)))
        if allow_neq and draw(st.booleans()):
            left, right = draw(
                st.lists(st.sampled_from(_VARS), min_size=2, max_size=2)
            )
            body.append(Inequality(left, right))
        rules.append(Rule(Atom("P", tuple(head_vars)), body))
    # Guarantee E occurs somewhere so the program has an EDB.
    rules.append(
        Rule(Atom("P", (_VARS[0], _VARS[1])), [Atom("E", (_VARS[0], _VARS[1]))])
    )
    return Program(rules, goal="P")


@settings(max_examples=40, deadline=None)
@given(random_programs(), st.integers(min_value=0, max_value=1_000))
def test_all_engines_agree(program, seed):
    from repro.datalog import evaluate_algebra

    structure = random_digraph(4, 0.35, seed).to_structure()
    naive = evaluate(program, structure, method="naive").relations
    semi = evaluate(program, structure, method="seminaive").relations
    indexed = evaluate(program, structure, method="indexed").relations
    codegen = evaluate(program, structure, method="codegen").relations
    algebra = evaluate_algebra(program, structure).relations
    assert naive == semi == indexed == codegen == algebra


@settings(max_examples=25, deadline=None)
@given(random_programs(), st.integers(min_value=0, max_value=1_000))
def test_fixpoint_is_a_fixpoint(program, seed):
    structure = random_digraph(4, 0.35, seed).to_structure()
    stage_list = stages(program, structure)
    assert stage_list[-1] == stage_list[-2] if len(stage_list) > 1 else True
    assert stage_list[0]["P"] <= stage_list[-1]["P"]


@settings(max_examples=25, deadline=None)
@given(random_programs(), st.integers(min_value=0, max_value=1_000))
def test_monotone_under_adding_edges(program, seed):
    """Section 2: Datalog(!=) queries are preserved by adding tuples."""
    g = random_digraph(4, 0.3, seed)
    rng = random.Random(seed)
    nodes = sorted(g.nodes)
    extra = {(rng.choice(nodes), rng.choice(nodes)) for __ in range(2)}
    bigger = g.add_edges(extra)
    before = evaluate(program, g.to_structure()).goal_relation
    after = evaluate(program, bigger.to_structure()).goal_relation
    assert before <= after


@settings(max_examples=25, deadline=None)
@given(random_programs(), st.integers(min_value=0, max_value=1_000))
def test_pure_programs_survive_identification(program, seed):
    """Section 2: pure Datalog queries are strongly monotone."""
    if not program.is_pure_datalog():
        return
    structure = random_digraph(4, 0.3, seed).to_structure()
    elements = sorted(structure.universe)
    if len(elements) < 2:
        return
    victim, survivor = elements[0], elements[1]
    quotient = identify_elements(structure, victim, survivor)

    def image(x):
        return survivor if x == victim else x

    before = evaluate(program, structure).goal_relation
    after = evaluate(program, quotient).goal_relation
    assert all(
        tuple(image(x) for x in row) in after for row in before
    )


# ---------------------------------------------------------------------------
# Goal-directed (magic-sets) equivalence harness
# ---------------------------------------------------------------------------

#: Number of seeded random (program, structure, goal atom) triples; the
#: acceptance bar is "at least 200".
TRIPLE_COUNT = 220

#: predicate name -> (arity, is_edb); mirrors the differential harness.
_PREDICATES = {"E": (2, True), "P": (2, False), "R": (1, False)}
_CORPUS_VARIABLES = tuple(Variable(n) for n in ("x", "y", "z", "u"))
_CORPUS_CONSTANTS = (Constant("c1"), Constant("c2"))


def _corpus_term(rng: random.Random):
    """A body/head term: mostly variables, occasionally a constant."""
    if rng.random() < 0.12:
        return rng.choice(_CORPUS_CONSTANTS)
    return rng.choice(_CORPUS_VARIABLES)


def _corpus_rule(rng: random.Random) -> Rule:
    head_name = rng.choice(["P", "P", "R"])  # goal predicates favoured
    arity, __ = _PREDICATES[head_name]
    head = Atom(
        head_name,
        tuple(
            _corpus_term(rng) if rng.random() < 0.08
            else rng.choice(_CORPUS_VARIABLES)
            for __ in range(arity)
        ),
    )
    body: list = []
    for __ in range(rng.randint(1, 3)):
        name = rng.choice(["E", "E", "P", "R"])
        atom_arity, __unused = _PREDICATES[name]
        body.append(
            Atom(name, tuple(_corpus_term(rng) for __ in range(atom_arity)))
        )
    for __ in range(rng.randint(0, 2)):
        left, right = _corpus_term(rng), _corpus_term(rng)
        constraint = Inequality if rng.random() < 0.8 else Equality
        body.append(constraint(left, right))
    rng.shuffle(body)
    return Rule(head, body)


def _corpus_program(rng: random.Random, goal: str) -> Program:
    rules = [_corpus_rule(rng) for __ in range(rng.randint(1, 3))]
    # Guarantee E occurs and that P and R are always defined, exactly as
    # the differential harness does.
    rules.append(
        Rule(
            Atom("P", (_CORPUS_VARIABLES[0], _CORPUS_VARIABLES[1])),
            [Atom("E", (_CORPUS_VARIABLES[0], _CORPUS_VARIABLES[1]))],
        )
    )
    rules.append(
        Rule(
            Atom("R", (_CORPUS_VARIABLES[1],)),
            [Atom("E", (_CORPUS_VARIABLES[0], _CORPUS_VARIABLES[1]))],
        )
    )
    return Program(rules, goal=goal)


def magic_corpus_triple(rng: random.Random):
    """One seeded (program, structure, goal atom) triple.

    The structure interprets the program's ``c1``/``c2`` constants and
    one ``g{i}`` constant per bound goal position; free goal positions
    draw from two variables, so repeated free variables (diagonal
    bindings) occur.  Shared by the metamorphic suite.
    """
    goal = rng.choice(["P", "R"])
    program = _corpus_program(rng, goal)
    nodes_count = rng.randint(3, 5)
    structure = random_digraph(
        nodes_count, rng.uniform(0.15, 0.5), rng.randrange(10**6)
    ).to_structure()
    nodes = sorted(structure.universe)
    assignment = {"c1": rng.choice(nodes), "c2": rng.choice(nodes)}
    arity, __ = _PREDICATES[goal]
    free_pool = (Variable("a1"), Variable("a2"))
    args = []
    for position in range(arity):
        if rng.random() < 0.55:
            name = f"g{position + 1}"
            assignment[name] = rng.choice(nodes)
            args.append(Constant(name))
        else:
            args.append(rng.choice(free_pool))
    return (
        program,
        structure.with_constants(assignment),
        Atom(goal, tuple(args)),
    )


@pytest.mark.magic_equivalence
def test_magic_equivalence_corpus():
    """The acceptance corpus: >= 200 seeded triples on which the magic
    rewrite answers exactly as direct evaluate-then-filter, under every
    engine (algebra included)."""
    rng = random.Random(20260805)
    direct_cross_checked = 0
    for index in range(TRIPLE_COUNT):
        program, structure, goal_atom = magic_corpus_triple(rng)
        direct = query(
            program, structure, goal_atom, engine="naive", magic=False
        )
        for engine in QUERY_ENGINES:
            magic = query(
                program, structure, goal_atom, engine=engine, magic=True
            )
            assert magic.answers == direct.answers, (index, engine)
        if index % 8 == 0:
            # Direct-mode filtering is engine-independent too.
            for engine in ("indexed", "algebra"):
                also = query(
                    program, structure, goal_atom, engine=engine, magic=False
                )
                assert also.answers == direct.answers, (index, engine)
            direct_cross_checked += 1
    assert direct_cross_checked >= 20


@pytest.mark.magic_equivalence
def test_magic_equivalence_library_programs():
    """Every goal-bound library program: magic == direct, all engines,
    fully bound and partially bound."""
    from repro.datalog.library import goal_bound_library

    rng = random.Random(61)
    for name, (program, goal_atom) in sorted(goal_bound_library().items()):
        for seed in (1, 4):
            structure = random_digraph(6, 0.3, seed).to_structure()
            nodes = sorted(structure.universe)
            assignment = {
                term.name: rng.choice(nodes)
                for term in goal_atom.args
                if isinstance(term, Constant)
            }
            bound = structure.with_constants(assignment)
            # A partially bound variant: only the first position stays
            # bound, the rest go free.
            partial = Atom(
                goal_atom.predicate,
                tuple(
                    term if position == 0 else Variable(f"v{position}")
                    for position, term in enumerate(goal_atom.args)
                ),
            )
            for atom in (goal_atom, partial):
                direct = query(
                    program, bound, atom, engine="indexed", magic=False
                )
                for engine in QUERY_ENGINES:
                    magic = query(
                        program, bound, atom, engine=engine, magic=True
                    )
                    assert magic.answers == direct.answers, (
                        name, seed, engine, atom,
                    )
            # Work reduction on the fully bound goal (the demand
            # bookkeeping can cost extra tuples under weak bindings;
            # bench_magic_sets.py pins the strict reduction).
            magic = query(program, bound, goal_atom, magic=True)
            direct = query(program, bound, goal_atom, magic=False)
            assert magic.derived_tuples < direct.derived_tuples, name
