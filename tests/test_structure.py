"""Unit tests for finite structures."""

import pytest

from repro.structures import Structure, Vocabulary


@pytest.fixture
def triangle():
    voc = Vocabulary.graph()
    return Structure(voc, {1, 2, 3}, {"E": [(1, 2), (2, 3), (3, 1)]})


class TestConstruction:
    def test_basic(self, triangle):
        assert len(triangle) == 3
        assert triangle.holds("E", (1, 2))
        assert not triangle.holds("E", (2, 1))

    def test_missing_relation_is_empty(self):
        s = Structure(Vocabulary.graph(), {1})
        assert s.relation("E") == frozenset()

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValueError):
            Structure(Vocabulary.graph(), {1}, {"R": [(1,)]})

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Structure(Vocabulary.graph(), {1}, {"E": [(1,)]})

    def test_tuple_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            Structure(Vocabulary.graph(), {1}, {"E": [(1, 2)]})

    def test_constants_required(self):
        voc = Vocabulary.graph(constants=("s",))
        with pytest.raises(ValueError):
            Structure(voc, {1}, {})
        s = Structure(voc, {1}, {}, {"s": 1})
        assert s.constants == {"s": 1}

    def test_constant_outside_universe_rejected(self):
        voc = Vocabulary.graph(constants=("s",))
        with pytest.raises(ValueError):
            Structure(voc, {1}, {}, {"s": 2})

    def test_unknown_constant_rejected(self):
        with pytest.raises(ValueError):
            Structure(Vocabulary.graph(), {1}, {}, {"s": 1})

    def test_constant_elements_in_order(self):
        voc = Vocabulary.graph(constants=("s", "t"))
        s = Structure(voc, {1, 2}, {}, {"s": 2, "t": 1})
        assert s.constant_elements() == (2, 1)


class TestDerived:
    def test_induced(self, triangle):
        sub = triangle.induced({1, 2})
        assert sub.relation("E") == frozenset({(1, 2)})
        assert len(sub) == 2

    def test_induced_must_keep_constants(self):
        voc = Vocabulary.graph(constants=("s",))
        s = Structure(voc, {1, 2}, {"E": [(1, 2)]}, {"s": 1})
        with pytest.raises(ValueError):
            s.induced({2})

    def test_rename(self, triangle):
        renamed = triangle.rename(lambda x: x * 10)
        assert renamed.holds("E", (10, 20))
        assert 1 not in renamed

    def test_rename_must_be_injective(self, triangle):
        with pytest.raises(ValueError):
            triangle.rename(lambda x: 0)

    def test_with_constants(self, triangle):
        expanded = triangle.with_constants({"s": 1})
        assert expanded.constants == {"s": 1}
        assert expanded.vocabulary.has_constant("s")

    def test_reduct(self):
        voc = Vocabulary({"E": 2, "P": 1})
        s = Structure(voc, {1, 2}, {"E": [(1, 2)], "P": [(1,)]})
        reduct = s.reduct(Vocabulary.graph())
        assert reduct.vocabulary == Vocabulary.graph()
        assert reduct.relation("E") == frozenset({(1, 2)})

    def test_disjoint_union(self, triangle):
        union = triangle.disjoint_union(triangle)
        assert len(union) == 6
        assert union.holds("E", ((0, 1), (0, 2)))
        assert union.holds("E", ((1, 1), (1, 2)))

    def test_disjoint_union_rejects_constants(self):
        voc = Vocabulary.graph(constants=("s",))
        s = Structure(voc, {1}, {}, {"s": 1})
        with pytest.raises(ValueError):
            s.disjoint_union(s)


class TestEquality:
    def test_equal_structures(self, triangle):
        other = Structure(
            Vocabulary.graph(), {3, 2, 1}, {"E": [(2, 3), (1, 2), (3, 1)]}
        )
        assert triangle == other
        assert hash(triangle) == hash(other)

    def test_describe_is_deterministic(self, triangle):
        assert triangle.describe() == triangle.describe()
        assert "universe" in triangle.describe()
