"""Tests for the paper's concrete programs (Theorem 6.1 family)."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import analyze_program, evaluate
from repro.datalog.library import (
    avoiding_path_program,
    q_predicate_name,
    q_program,
    rooted_star_homeomorphism_program,
    transitive_closure_program,
    two_disjoint_paths_from_source_program,
)
from repro.flow import has_node_disjoint_paths_to_targets
from repro.graphs import DiGraph
from repro.graphs.generators import random_digraph


class TestAnalysis:
    def test_tc_is_pure_recursive(self):
        analysis = analyze_program(transitive_closure_program())
        assert analysis.is_pure_datalog
        assert analysis.recursive_predicates == {"S"}
        assert analysis.max_idb_arity == 2

    def test_avoiding_path_is_impure(self):
        analysis = analyze_program(avoiding_path_program())
        assert not analysis.is_pure_datalog
        assert analysis.translation_width == 4 + 3  # l=4 variables, r=3

    def test_q_program_enumerates_avoided_variables(self):
        analysis = analyze_program(q_program(1, 2))
        assert analysis.universe_enumerated  # t1, t2 unbound in base rule


class TestPathSystems:
    """Section 1's PTIME-complete plain-Datalog example [Coo74]."""

    def _structure(self, nodes, axioms, rules):
        from repro.structures import Structure, Vocabulary

        voc = Vocabulary({"Axiom": 1, "Rule": 3})
        return Structure(
            voc, nodes,
            {"Axiom": [(a,) for a in axioms], "Rule": rules},
        )

    def test_small_system(self):
        from repro.datalog.library import (
            path_systems_program,
            solve_path_system,
        )

        nodes = range(6)
        axioms = [0, 1]
        rules = [(2, 0, 1), (3, 2, 1), (4, 3, 5)]  # 4 blocked: 5 underivable
        program = path_systems_program()
        relation = evaluate(
            program, self._structure(nodes, axioms, rules)
        ).goal_relation
        assert {x for (x,) in relation} == set(
            solve_path_system(nodes, axioms, rules)
        ) == {0, 1, 2, 3}

    def test_is_pure_datalog(self):
        from repro.datalog.library import path_systems_program

        assert path_systems_program().is_pure_datalog()

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_closure_on_random_systems(self, seed):
        from repro.datalog.library import (
            path_systems_program,
            solve_path_system,
        )

        rng = random.Random(seed)
        nodes = list(range(8))
        axioms = rng.sample(nodes, 2)
        rules = [
            tuple(rng.choice(nodes) for __ in range(3)) for __ in range(12)
        ]
        relation = evaluate(
            path_systems_program(), self._structure(nodes, axioms, rules)
        ).goal_relation
        assert {x for (x,) in relation} == set(
            solve_path_system(nodes, axioms, rules)
        )


class TestTwoDisjointPathsFromSource:
    def test_agrees_with_flow(self):
        program = two_disjoint_paths_from_source_program()
        for seed in range(5):
            g = random_digraph(7, 0.25, seed)
            relation = evaluate(program, g.to_structure()).goal_relation
            nodes = sorted(g.nodes)
            for s, s1, s2 in itertools.permutations(nodes[:5], 3):
                expected = has_node_disjoint_paths_to_targets(g, s, [s1, s2])
                assert ((s, s1, s2) in relation) == expected


class TestQPrograms:
    def test_q1_is_avoiding_path(self):
        from repro.graphs.paths import avoiding_path_exists

        program = q_program(1, 1)
        for seed in range(4):
            g = random_digraph(6, 0.3, seed)
            relation = evaluate(program, g.to_structure()).goal_relation
            for s, s1, t1 in itertools.product(g.nodes, repeat=3):
                assert ((s, s1, t1) in relation) == avoiding_path_exists(
                    g, s, s1, {t1}
                )

    @pytest.mark.parametrize("k,l", [(2, 0), (2, 1), (3, 0)])
    def test_q_matches_flow_oracle(self, k, l):
        program = q_program(k, l)
        rng = random.Random(k * 10 + l)
        for seed in range(3):
            size = 7 if k == 2 else 6
            g = random_digraph(size, 0.25, seed)
            relation = evaluate(program, g.to_structure()).goal_relation
            nodes = sorted(g.nodes)
            for __ in range(12):
                picks = rng.sample(nodes, 1 + k + l)
                s, targets, avoided = picks[0], picks[1:1 + k], picks[1 + k:]
                expected = has_node_disjoint_paths_to_targets(
                    g, s, targets, avoid=avoided
                )
                assert ((s, *targets, *avoided) in relation) == expected

    def test_regression_avoided_node_on_sk_path(self):
        """The 7-node instance on which the paper's displayed rules
        (without the ``sk != t_i`` inequalities) over-approximate: the
        only {5}-avoiding route to node 0 passes through target 1, yet a
        5-using derivation sneaks through.  Our generated rules carry
        the inequalities and must answer False."""
        g = DiGraph(edges=[
            (0, 1), (1, 3), (1, 4), (2, 1), (2, 5), (3, 1), (3, 2),
            (4, 0), (4, 2), (4, 3), (5, 0), (5, 1), (5, 2), (5, 6), (6, 3),
        ])
        relation = evaluate(q_program(2, 1), g.to_structure()).goal_relation
        assert (3, 1, 0, 5) not in relation
        assert not has_node_disjoint_paths_to_targets(g, 3, [1, 0], avoid=[5])

    def test_auxiliary_predicates_present(self):
        program = q_program(3, 0)
        assert q_predicate_name(3, 0) in program.idb_predicates
        assert q_predicate_name(2, 1) in program.idb_predicates
        assert q_predicate_name(1, 2) in program.idb_predicates

    def test_reverse_orientation(self):
        # Paths INTO s from the targets.
        program = q_program(2, 0, reverse=True)
        g = DiGraph(edges=[("a", "s"), ("b", "s")])
        relation = evaluate(program, g.to_structure()).goal_relation
        assert ("s", "a", "b") in relation

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            q_program(0, 0)


class TestRootedStarPrograms:
    def _assignments(self, g, count, rng):
        nodes = sorted(g.nodes)
        for __ in range(count):
            yield rng.sample(nodes, 3)

    def test_star_without_loop(self):
        from repro.fhw.homeomorphism import is_homeomorphic_to_distinguished_subgraph

        star = DiGraph(edges=[("r", "u"), ("r", "v")])
        program = rooted_star_homeomorphism_program(2)
        rng = random.Random(0)
        for seed in range(3):
            g = random_digraph(6, 0.3, seed)
            relation = evaluate(program, g.to_structure()).goal_relation
            for s, s1, s2 in self._assignments(g, 6, rng):
                expected = is_homeomorphic_to_distinguished_subgraph(
                    star, g, {"r": s, "u": s1, "v": s2}
                )
                assert ((s, s1, s2) in relation) == expected

    def test_pure_self_loop(self):
        from repro.fhw.homeomorphism import is_homeomorphic_to_distinguished_subgraph

        loop = DiGraph(edges=[("r", "r")])
        program = rooted_star_homeomorphism_program(0, self_loop=True)
        for seed in range(4):
            g = random_digraph(6, 0.3, seed, loops=(seed % 2 == 0))
            relation = evaluate(program, g.to_structure()).goal_relation
            for s in g.nodes:
                expected = is_homeomorphic_to_distinguished_subgraph(
                    loop, g, {"r": s}
                )
                assert ((s,) in relation) == expected

    def test_loop_plus_leaf(self):
        from repro.fhw.homeomorphism import is_homeomorphic_to_distinguished_subgraph

        pattern = DiGraph(edges=[("r", "r"), ("r", "u")])
        program = rooted_star_homeomorphism_program(1, self_loop=True)
        rng = random.Random(2)
        for seed in range(3):
            g = random_digraph(6, 0.35, seed, loops=True)
            relation = evaluate(program, g.to_structure()).goal_relation
            nodes = sorted(g.nodes)
            for __ in range(8):
                s, s1 = rng.sample(nodes, 2)
                expected = is_homeomorphic_to_distinguished_subgraph(
                    pattern, g, {"r": s, "u": s1}
                )
                assert ((s, s1) in relation) == expected

    def test_edgeless_rejected(self):
        with pytest.raises(ValueError):
            rooted_star_homeomorphism_program(0, self_loop=False)
