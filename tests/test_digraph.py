"""Unit tests for the directed-graph type."""

import pytest

from repro.graphs import DiGraph
from repro.structures import Vocabulary


@pytest.fixture
def diamond():
    return DiGraph(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestBasics:
    def test_nodes_from_edges(self, diamond):
        assert diamond.nodes == {"a", "b", "c", "d"}
        assert diamond.number_of_edges() == 4

    def test_degrees(self, diamond):
        assert diamond.out_degree("a") == 2
        assert diamond.in_degree("d") == 2
        assert diamond.successors("a") == {"b", "c"}
        assert diamond.predecessors("d") == {"b", "c"}

    def test_sources_and_sinks(self, diamond):
        assert diamond.sources() == {"a"}
        assert diamond.sinks() == {"d"}

    def test_isolated_nodes(self):
        g = DiGraph(nodes=["x", "y"], edges=[("x", "z")])
        assert g.isolated_nodes() == {"y"}
        assert g.without_isolated_nodes().nodes == {"x", "z"}

    def test_self_loop_allowed(self):
        g = DiGraph(edges=[("r", "r")])
        assert g.has_edge("r", "r")
        assert g.in_degree("r") == 1


class TestDistinguished:
    def test_distinguished_mapping(self, diamond):
        g = diamond.with_distinguished({"s": "a", "t": "d"})
        assert g.distinguished == {"s": "a", "t": "d"}
        assert g.distinguished_nodes() == ("a", "d")

    def test_distinct_required(self, diamond):
        with pytest.raises(ValueError):
            diamond.with_distinguished({"s": "a", "t": "a"})

    def test_must_be_present(self, diamond):
        with pytest.raises(ValueError):
            diamond.with_distinguished({"s": "zz"})

    def test_removal_protects_distinguished(self, diamond):
        g = diamond.with_distinguished({"s": "a"})
        with pytest.raises(ValueError):
            g.remove_nodes(["a"])

    def test_isolated_distinguished_survive_strip(self):
        g = DiGraph(nodes=["x", "y"], edges=[("x", "z")]).with_distinguished(
            {"s": "y"}
        )
        assert "y" in g.without_isolated_nodes()


class TestDerivedGraphs:
    def test_add_edges(self, diamond):
        g = diamond.add_edges([("d", "e")])
        assert g.has_edge("d", "e")
        assert len(g) == 5

    def test_add_nodes(self, diamond):
        g = diamond.add_nodes(["island"])
        assert "island" in g
        assert g.isolated_nodes() == {"island"}

    def test_remove_nodes(self, diamond):
        g = diamond.remove_nodes(["b"])
        assert "b" not in g
        assert not g.has_edge("a", "b")
        assert g.has_edge("a", "c")

    def test_subgraph(self, diamond):
        sub = diamond.subgraph({"a", "b", "d"})
        assert sub.edges == {("a", "b"), ("b", "d")}

    def test_reverse(self, diamond):
        rev = diamond.reverse()
        assert rev.has_edge("b", "a")
        assert rev.sources() == {"d"}

    def test_reverse_involution(self, diamond):
        assert diamond.reverse().reverse() == diamond

    def test_relabel(self, diamond):
        g = diamond.relabel(lambda v: v.upper())
        assert g.has_edge("A", "B")

    def test_relabel_rejects_collisions(self, diamond):
        with pytest.raises(ValueError):
            diamond.relabel(lambda v: "same")

    def test_disjoint_union(self, diamond):
        g = diamond.disjoint_union(diamond)
        assert len(g) == 8
        assert g.has_edge((0, "a"), (0, "b"))
        assert g.has_edge((1, "a"), (1, "b"))


class TestStructureView:
    def test_to_structure(self, diamond):
        s = diamond.with_distinguished({"s": "a"}).to_structure()
        assert s.vocabulary == Vocabulary.graph(constants=("s",))
        assert s.holds("E", ("a", "b"))
        assert s.constants == {"s": "a"}

    def test_equality(self, diamond):
        same = DiGraph(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        assert diamond == same
        assert hash(diamond) == hash(same)
