"""The bench observatory: documents, row alignment, the regression gate."""

import json

import pytest

from repro.obs.bench import (
    ROW_KEYS,
    SCHEMA_VERSION,
    compare,
    load_document,
    machine_info,
    make_document,
    normalize_row,
    parse_document,
    render_compare,
    render_report,
    row_key,
)


def _row(name="tc", engine="indexed", wall=10.0, counters=None, **params):
    return {
        "name": name,
        "params": params,
        "engine": engine,
        "wall_ms": wall,
        "counters": counters if counters is not None else {"rounds": 5},
        "analyze": None,
    }


class TestDocuments:
    def test_make_document_shape(self):
        doc = make_document("codegen", [_row(n=10)])
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["bench"] == "codegen"
        assert set(doc["machine"]) == set(machine_info())
        assert set(doc["rows"][0]) == ROW_KEYS

    def test_machine_info_records_the_toolbox_version(self):
        from repro._version import __version__

        machine = machine_info()
        assert machine["version"] == __version__
        assert list(machine)[0] == "version"

    def test_normalize_fills_optional_fields(self):
        bare = {"name": "tc", "wall_ms": 1.0}
        row = normalize_row(bare)
        assert set(row) == ROW_KEYS
        assert row["params"] == {} and row["counters"] == {}
        assert row["engine"] is None and row["analyze"] is None

    def test_parse_accepts_schema_1_bare_lists(self):
        legacy = [
            {"name": "tc", "params": {}, "engine": None, "wall_ms": 2.0,
             "counters": {}},
        ]
        document = parse_document(legacy, path="old.json")
        assert document.schema == 1
        assert document.machine == {}
        assert set(document.rows[0]) == ROW_KEYS
        assert document.label == "old.json"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="bench document"):
            parse_document({"not": "a document"})
        with pytest.raises(ValueError, match="bad.json"):
            parse_document("a string", path="bad.json")

    def test_load_document_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(make_document("x", [_row()])))
        document = load_document(str(path))
        assert document.schema == SCHEMA_VERSION
        assert document.bench == "x"
        assert document.path == str(path)

    def test_row_key_is_stable_under_param_order(self):
        a = _row(k=2, l=1)
        b = dict(a, params={"l": 1, "k": 2})
        assert row_key(a) == row_key(b)
        assert row_key(_row(engine="codegen")) != row_key(a)


class TestCompareGate:
    def _docs(self, old_rows, new_rows):
        return (
            parse_document(make_document("g", old_rows)),
            parse_document(make_document("g", new_rows)),
        )

    def test_identical_documents_pass(self):
        old, new = self._docs([_row()], [_row()])
        report = compare(old, new)
        assert report.ok
        assert not report.regressions and not report.missing

    def test_synthetic_2x_slowdown_trips_wall_mode(self):
        old, new = self._docs([_row(wall=10.0)], [_row(wall=20.0)])
        report = compare(old, new, threshold=1.25, mode="wall")
        assert not report.ok
        (regression,) = report.regressions
        assert regression.metric == "wall_ms"
        assert regression.ratio == pytest.approx(2.0)

    def test_within_threshold_passes(self):
        old, new = self._docs([_row(wall=10.0)], [_row(wall=12.0)])
        assert compare(old, new, threshold=1.25).ok

    def test_counters_mode_is_wall_blind(self):
        # Twice the wall time but identical work: counters mode passes.
        old, new = self._docs(
            [_row(wall=10.0, counters={"probes": 100})],
            [_row(wall=20.0, counters={"probes": 100})],
        )
        assert compare(old, new, mode="counters").ok

    def test_counters_mode_trips_on_extra_work(self):
        old, new = self._docs(
            [_row(counters={"probes": 100, "rounds": 5})],
            [_row(counters={"probes": 260, "rounds": 5})],
        )
        report = compare(old, new, mode="counters")
        assert not report.ok
        (regression,) = report.regressions
        assert regression.metric == "counters.probes"
        assert regression.ratio == pytest.approx(2.6)

    def test_new_counter_from_zero_is_infinite_ratio(self):
        old, new = self._docs(
            [_row(counters={})], [_row(counters={"probes": 1})]
        )
        report = compare(old, new, mode="counters")
        assert not report.ok

    def test_missing_rows_fail_the_gate(self):
        old, new = self._docs([_row(), _row(name="other")], [_row()])
        report = compare(old, new)
        assert not report.ok
        assert len(report.missing) == 1 and not report.regressions

    def test_added_rows_are_informational(self):
        old, new = self._docs([_row()], [_row(), _row(name="extra")])
        report = compare(old, new)
        assert report.ok
        assert len(report.added) == 1

    def test_parameter_validation(self):
        old, new = self._docs([_row()], [_row()])
        with pytest.raises(ValueError, match="mode"):
            compare(old, new, mode="vibes")
        with pytest.raises(ValueError, match="threshold"):
            compare(old, new, threshold=0.0)


class TestRendering:
    def test_report_lists_rows(self):
        document = parse_document(make_document("codegen", [_row(n=12)]))
        text = render_report([document])
        assert "schema 2" in text
        assert "tc|indexed|" in text

    def test_compare_verdict_lines(self):
        old = parse_document(make_document("g", [_row(wall=10.0)]))
        new = parse_document(make_document("g", [_row(wall=40.0)]))
        text = render_compare(compare(old, new))
        assert "REGRESSED" in text
        assert text.rstrip().endswith("1 regression(s), 0 missing row(s)")
        ok_text = render_compare(compare(old, old))
        assert "OK: 1 rows within threshold" in ok_text
