"""Cross-validation of the paper's literal Win_k algorithm (Prop 5.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.games import solve_existential_game
from repro.games.win_algorithm import paper_win_algorithm
from repro.graphs.generators import path_pair_structures, random_digraph
from repro.structures import Structure, Vocabulary


class TestAgainstMainSolver:
    def test_example_44(self):
        short, long_ = path_pair_structures(2, 4)
        assert paper_win_algorithm(short, long_, 2) == "II"
        assert paper_win_algorithm(long_, short, 2) == "I"

    def test_single_pebble(self):
        short, long_ = path_pair_structures(2, 3)
        assert paper_win_algorithm(long_, short, 1) == "II"

    def test_constants(self):
        voc = Vocabulary.graph(constants=("s",))
        a = Structure(voc, {1, 2}, {"E": [(1, 2)]}, {"s": 1})
        b = Structure(voc, {1, 2}, {"E": [(2, 1)]}, {"s": 1})
        assert paper_win_algorithm(a, b, 1) == "I"

    def test_homomorphism_variant(self):
        """Path into a short cycle: II wins by wrapping (any variant at
        k = 2); with 3 pebbles injectivity bites -- I pins the cycle."""
        from repro.graphs.generators import cycle_graph, path_graph

        path = path_graph(4).to_structure()
        cycle = cycle_graph(3).to_structure()
        assert paper_win_algorithm(path, cycle, 2, injective=False) == "II"
        assert paper_win_algorithm(path, cycle, 2, injective=True) == "II"
        longer = path_graph(6).to_structure()
        assert paper_win_algorithm(longer, cycle, 3, injective=False) == "II"
        assert paper_win_algorithm(longer, cycle, 3, injective=True) == "I"

    def test_bad_k(self):
        a = path_pair_structures(2, 2)[0]
        with pytest.raises(ValueError):
            paper_win_algorithm(a, a, 0)

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=2_000))
    def test_agrees_with_quotient_solver(self, seed):
        """The configuration-space algorithm and the partial-map solver
        pick the same winner."""
        a = random_digraph(3, 0.4, seed).to_structure()
        b = random_digraph(3, 0.4, seed + 5_000).to_structure()
        k = 2
        expected = solve_existential_game(a, b, k).winner
        assert paper_win_algorithm(a, b, k) == expected
