"""Tests for the L^k formula AST, evaluation, width, and the Section 3
examples."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.ast import Variable
from repro.logic import (
    And,
    AtomF,
    Eq,
    Exists,
    Neq,
    Or,
    cardinality_at_least,
    cardinality_exactly,
    cardinality_in,
    evaluate_formula,
    falsum,
    free_variables,
    is_existential_positive,
    path_formula,
    path_length_in,
    transitive_closure_family,
    variable_width,
    verum,
)
from repro.logic.formulas import Not
from repro.logic.width import uses_inequality
from repro.structures import Structure, Vocabulary
from repro.graphs.generators import cycle_graph, path_graph, random_digraph

X, Y = Variable("x"), Variable("y")


def total_order(n):
    voc = Vocabulary({"<": 2})
    universe = range(n)
    tuples = [(i, j) for i in range(n) for j in range(n) if i < j]
    return Structure(voc, universe, {"<": tuples})


class TestEvaluation:
    def test_atoms_and_quantifiers(self):
        s = path_graph(3).to_structure()
        formula = Exists(X, Exists(Y, AtomF("E", (X, Y))))
        assert evaluate_formula(formula, s)

    def test_truth_constants(self):
        s = path_graph(2).to_structure()
        assert evaluate_formula(verum(), s)
        assert not evaluate_formula(falsum(), s)

    def test_equality_and_inequality(self):
        s = path_graph(2).to_structure()
        assert evaluate_formula(Eq(X, X), s, {X: "v0"})
        assert evaluate_formula(Neq(X, Y), s, {X: "v0", Y: "v1"})
        assert not evaluate_formula(Neq(X, Y), s, {X: "v0", Y: "v0"})

    def test_negation(self):
        s = path_graph(2).to_structure()
        assert evaluate_formula(
            Not(AtomF("E", (X, Y))), s, {X: "v1", Y: "v0"}
        )

    def test_shadowing_requantification(self):
        # (exists x)(E(x,y) & (exists y) E(y, y)) -- inner y shadows.
        s = path_graph(2).to_structure()
        inner = Exists(Y, Eq(Y, Y))
        formula = Exists(X, And([AtomF("E", (X, Y)), inner]))
        assert evaluate_formula(formula, s, {Y: "v1"})

    def test_unassigned_free_variable_raises(self):
        s = path_graph(2).to_structure()
        with pytest.raises(ValueError, match="free variable"):
            evaluate_formula(AtomF("E", (X, Y)), s, {X: "v0"})


class TestWidth:
    def test_variable_width(self):
        formula = Exists(X, Exists(Y, AtomF("E", (X, Y))))
        assert variable_width(formula) == 2

    def test_free_variables(self):
        formula = Exists(X, AtomF("E", (X, Y)))
        assert free_variables(formula) == {Y}

    def test_is_existential_positive(self):
        assert is_existential_positive(Exists(X, AtomF("E", (X, X))))
        assert not is_existential_positive(Not(AtomF("E", (X, X))))

    def test_uses_inequality(self):
        assert uses_inequality(Neq(X, Y))
        assert not uses_inequality(Eq(X, Y))


class TestExample33:
    """Cardinalities of total orders in two variables."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_tau_n(self, n):
        for size in range(1, 7):
            s = total_order(size)
            assert evaluate_formula(cardinality_at_least(n), s) == (size >= n)

    def test_tau_uses_two_variables(self):
        assert variable_width(cardinality_at_least(5)) == 2

    def test_rho_n(self):
        for size in range(1, 6):
            s = total_order(size)
            for n in range(1, 6):
                assert evaluate_formula(cardinality_exactly(n), s) == (
                    size == n
                )

    def test_cardinality_in_set(self):
        evens = cardinality_in(lambda n: n % 2 == 0)
        for size in range(1, 7):
            assert evaluate_formula(
                evens.expand(total_order(size)), total_order(size)
            ) == (size % 2 == 0)

    def test_cardinality_in_collection(self):
        member = cardinality_in({2, 5})
        assert evaluate_formula(member.expand(total_order(5)), total_order(5))
        assert not evaluate_formula(
            member.expand(total_order(4)), total_order(4)
        )


class TestExample34:
    """Walks of length n in three variables."""

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_path_formula_on_path_graph(self, n):
        s = path_graph(5).to_structure()
        formula = path_formula(n)
        assert evaluate_formula(
            formula, s, {X: "v0", Y: f"v{n}"}
        )
        assert not evaluate_formula(formula, s, {X: "v0", Y: "v0"})

    def test_three_variables_suffice(self):
        assert variable_width(path_formula(7)) == 3

    def test_walks_not_simple_paths(self):
        # On a 3-cycle there is a walk of length 4 from v0 to v1.
        s = cycle_graph(3).to_structure()
        assert evaluate_formula(path_formula(4), s, {X: "v0", Y: "v1"})

    def test_transitive_closure_family(self):
        family = transitive_closure_family()
        s = path_graph(4).to_structure()
        expanded = family.expand(s)
        assert evaluate_formula(expanded, s, {X: "v0", Y: "v3"})
        assert not evaluate_formula(expanded, s, {X: "v3", Y: "v0"})

    def test_even_walk_family(self):
        even = path_length_in(lambda n: n % 2 == 0)
        s = path_graph(5).to_structure()
        expanded = even.expand(s)
        assert evaluate_formula(expanded, s, {X: "v0", Y: "v2"})
        assert not evaluate_formula(expanded, s, {X: "v0", Y: "v1"})

    def test_family_against_walk_ground_truth(self):
        """The infinitary membership formula vs. matrix-power walks."""
        even = path_length_in(lambda n: n % 2 == 0)
        for seed in range(3):
            g = random_digraph(5, 0.3, seed)
            s = g.to_structure()
            bound = 2 * len(s) * len(s) + len(s) + 1
            # Ground truth: walk lengths by dynamic programming.
            reach = {0: {(v, v) for v in g.nodes}}
            for n in range(1, bound + 1):
                reach[n] = {
                    (u, w)
                    for (u, v) in reach[n - 1]
                    for w in g.successors(v)
                }
            expanded = even.expand(s)
            for u in g.nodes:
                for v in g.nodes:
                    expected = any(
                        (u, v) in reach[n]
                        for n in range(1, bound + 1)
                        if n % 2 == 0
                    )
                    assert evaluate_formula(
                        expanded, s, {X: u, Y: v}
                    ) == expected
