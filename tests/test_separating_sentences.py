"""Tests for the constructive Corollary 4.9 / Proposition 4.2."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.games import preceq_k
from repro.graphs.generators import (
    crossed_paths_structure_pair,
    cycle_graph,
    path_graph,
    path_pair_structures,
    random_digraph,
)
from repro.logic import (
    NotClosedUnderPreceq,
    check_closure,
    defining_sentence,
    evaluate_formula,
    is_existential_positive,
    separating_sentence,
    variable_width,
)
from repro.structures import Structure, Vocabulary


class TestSeparatingSentence:
    def test_none_when_player_two_wins(self):
        short, long_ = path_pair_structures(3, 6)
        assert separating_sentence(short, long_, 2) is None

    def test_example_44_backward(self):
        short, long_ = path_pair_structures(3, 6)
        phi = separating_sentence(long_, short, 2)
        assert phi is not None
        assert evaluate_formula(phi, long_)
        assert not evaluate_formula(phi, short)
        assert variable_width(phi) <= 2
        assert is_existential_positive(phi)

    def test_example_45(self):
        disjoint, crossed = crossed_paths_structure_pair(1)
        phi = separating_sentence(disjoint, crossed, 3)
        assert phi is not None
        assert evaluate_formula(phi, disjoint)
        assert not evaluate_formula(phi, crossed)
        assert variable_width(phi) <= 3

    def test_constant_level_separation(self):
        voc = Vocabulary.graph(constants=("s", "t"))
        a = Structure(voc, {1, 2}, {"E": [(1, 2)]}, {"s": 1, "t": 2})
        b = Structure(voc, {1}, {"E": []}, {"s": 1, "t": 1})
        phi = separating_sentence(a, b, 1)
        assert phi is not None
        assert evaluate_formula(phi, a) and not evaluate_formula(phi, b)
        assert variable_width(phi) <= 1

    def test_relational_constant_separation(self):
        voc = Vocabulary.graph(constants=("s", "t"))
        a = Structure(voc, {1, 2}, {"E": [(1, 2)]}, {"s": 1, "t": 2})
        b = Structure(voc, {1, 2}, {"E": [(2, 1)]}, {"s": 1, "t": 2})
        phi = separating_sentence(a, b, 1)
        assert phi is not None
        assert evaluate_formula(phi, a) and not evaluate_formula(phi, b)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_extracted_sentences_are_correct(self, seed):
        """Property: whenever Player I wins, the extracted sentence is a
        genuine L^k separator (model-checked on both sides)."""
        a = random_digraph(4, 0.35, seed).to_structure()
        b = random_digraph(4, 0.35, seed + 9999).to_structure()
        k = 2
        phi = separating_sentence(a, b, k)
        if phi is None:
            assert preceq_k(a, b, k)
            return
        assert evaluate_formula(phi, a)
        assert not evaluate_formula(phi, b)
        assert variable_width(phi) <= k
        assert is_existential_positive(phi)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2_000))
    def test_completeness_direction(self, seed):
        """When Player II wins, no separator comes out -- consistent
        with Theorem 4.8 (every L^k sentence transfers)."""
        a = random_digraph(3, 0.4, seed).to_structure()
        b = random_digraph(4, 0.5, seed + 77).to_structure()
        assert (separating_sentence(a, b, 2) is None) == preceq_k(a, b, 2)


class TestHomomorphismVariant:
    """Remark 4.12 constructively: inequality-free separators."""

    def test_cycle_into_path_gets_inequality_free_separator(self):
        from repro.graphs.generators import cycle_graph
        from repro.logic.width import uses_inequality

        cycle = cycle_graph(3).to_structure()
        path = path_graph(7).to_structure()
        phi = separating_sentence(cycle, path, 2, injective=False)
        assert phi is not None
        assert evaluate_formula(phi, cycle)
        assert not evaluate_formula(phi, path)
        assert not uses_inequality(phi)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=3_000))
    def test_random_homomorphism_separators(self, seed):
        from repro.logic.width import uses_inequality

        a = random_digraph(4, 0.35, seed).to_structure()
        b = random_digraph(4, 0.35, seed + 4242).to_structure()
        phi = separating_sentence(a, b, 2, injective=False)
        if phi is None:
            assert preceq_k(a, b, 2, injective=False)
            return
        assert evaluate_formula(phi, a)
        assert not evaluate_formula(phi, b)
        assert not uses_inequality(phi)
        assert variable_width(phi) <= 2


class TestDefinability:
    @pytest.fixture
    def universe(self):
        return [
            path_graph(2).to_structure(),
            path_graph(3).to_structure(),
            cycle_graph(3).to_structure(),
            cycle_graph(4).to_structure(),
        ]

    def test_cyclic_class_is_definable(self, universe):
        """"Contains a cycle" is closed under <=^2 within this universe
        and the constructed sentence defines exactly it."""
        members = [2, 3]
        sentence = defining_sentence(universe, members, 2)
        for index, structure in enumerate(universe):
            assert evaluate_formula(sentence, structure) == (index in members)

    def test_closure_violation_detected(self, universe):
        """"Is the 2-path" is not closed: the 2-path <=^2 the 3-path."""
        with pytest.raises(NotClosedUnderPreceq) as info:
            defining_sentence(universe, [0], 2)
        assert info.value.member == 0

    def test_empty_class(self, universe):
        sentence = defining_sentence(universe, [], 2)
        assert all(
            not evaluate_formula(sentence, s) for s in universe
        )

    def test_check_closure_passes_on_closed_class(self, universe):
        check_closure(universe, [2, 3], 2)  # no exception

    def test_remark_411_normal_form_shape(self, universe):
        """Remark 4.11: the defining sentence is a disjunction of
        conjunctions of first-order L^k sentences."""
        from repro.logic import And, Or
        from repro.logic.width import free_variables

        sentence = defining_sentence(universe, [2, 3], 2)
        assert isinstance(sentence, Or)
        for disjunct in sentence.subformulas:
            assert isinstance(disjunct, And)
            for conjunct in disjunct.subformulas:
                assert free_variables(conjunct) == frozenset()
