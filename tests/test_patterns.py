"""Tests for pattern-based queries (Definition 5.1, Propositions 5.3-5.4)."""

import pytest

from repro.graphs import DiGraph
from repro.graphs.generators import path_graph, random_digraph
from repro.patterns import (
    EvenSimplePathQuery,
    HomeomorphismQuery,
    SimplePathLengthQuery,
    decide_via_embedding,
    decide_via_game,
)
from repro.structures import find_one_to_one_homomorphism


def esp_instance(graph, source, target):
    return graph.with_distinguished({"s": source, "t": target}).to_structure()


class TestEvenSimplePath:
    def test_patterns_are_odd_vertex_paths(self):
        query = EvenSimplePathQuery()
        structure = esp_instance(path_graph(5), "v0", "v4")
        patterns = list(query.patterns(structure))
        assert patterns  # lengths 2 and 4 fit in 5 nodes
        assert all(len(p) % 2 == 1 for p in patterns)
        assert {len(p) for p in patterns} == {3, 5}

    def test_patterns_satisfy_the_query(self):
        """Definition 5.1 condition (2)."""
        query = EvenSimplePathQuery()
        structure = esp_instance(path_graph(5), "v0", "v4")
        for pattern in query.patterns(structure):
            assert query.holds_exact(pattern)

    def test_embedding_decision_equals_exact(self):
        """Definition 5.1 condition (3), on random graphs."""
        query = EvenSimplePathQuery()
        for seed in range(6):
            g = random_digraph(6, 0.3, seed)
            nodes = sorted(g.nodes)
            structure = esp_instance(g, nodes[0], nodes[-1])
            assert decide_via_embedding(query, structure) == (
                query.holds_exact(structure)
            )

    def test_simple_positive_and_negative(self):
        query = EvenSimplePathQuery()
        assert query.holds_exact(esp_instance(path_graph(3), "v0", "v2"))
        assert not query.holds_exact(esp_instance(path_graph(4), "v0", "v3"))

    def test_game_decision_never_misses(self):
        """Proposition 5.4's sound half: an embedding always lets
        Player II win, so the game decision covers every yes-instance."""
        query = EvenSimplePathQuery()
        for seed in range(4):
            g = random_digraph(6, 0.3, seed)
            nodes = sorted(g.nodes)
            structure = esp_instance(g, nodes[0], nodes[-1])
            if decide_via_embedding(query, structure):
                assert decide_via_game(query, structure, k=2)

    def test_game_decision_overshoots_at_small_k(self):
        """The slack that *is* the inexpressibility result: for a query
        outside L^k the game test may accept no-instances.  Here the only
        simple s-t path is odd, but a single pebble cannot see global
        parity, so the even path pattern survives the 1-pebble game."""
        query = EvenSimplePathQuery()
        g = DiGraph(
            nodes=["z"], edges=[("s", "t"), ("s", "u"), ("w", "t")]
        )  # z pads the universe so the 5-node pattern is generated
        structure = esp_instance(g, "s", "t")
        assert not query.holds_exact(structure)
        assert decide_via_game(query, structure, k=1)


class TestSimplePathLengthQuery:
    def test_custom_membership(self):
        query = SimplePathLengthQuery(lambda n: n == 3, name="exactly-3")
        assert query.holds_exact(esp_instance(path_graph(4), "v0", "v3"))
        assert not query.holds_exact(esp_instance(path_graph(3), "v0", "v2"))

    def test_pattern_count_bound(self):
        query = EvenSimplePathQuery()
        structure = esp_instance(path_graph(6), "v0", "v5")
        patterns = list(query.patterns(structure))
        assert len(patterns) <= query.pattern_count_bound(structure)


class TestHomeomorphismQuery:
    @pytest.fixture
    def h1_query(self):
        from repro.fhw.pattern_class import pattern_h1

        return HomeomorphismQuery(pattern_h1())

    def test_patterns_are_subdivisions(self, h1_query):
        g = DiGraph(edges=[
            ("a", "b"), ("c", "m"), ("m", "d"),
        ])
        structure = h1_query.instance(
            g, {"s1": "a", "s2": "b", "s3": "c", "s4": "d"}
        )
        patterns = list(h1_query.patterns(structure))
        assert patterns
        sizes = {len(p) for p in patterns}
        assert 4 in sizes and 5 in sizes

    def test_patterns_satisfy_query(self, h1_query):
        g = DiGraph(edges=[("a", "b"), ("c", "m"), ("m", "d")])
        structure = h1_query.instance(
            g, {"s1": "a", "s2": "b", "s3": "c", "s4": "d"}
        )
        for pattern in h1_query.patterns(structure):
            assert h1_query.holds_exact(pattern)

    def test_embedding_decision_equals_exact(self, h1_query):
        import random

        rng = random.Random(3)
        for seed in range(3):
            g = random_digraph(6, 0.3, seed)
            nodes = sorted(g.nodes)
            assignment = dict(
                zip(("s1", "s2", "s3", "s4"), rng.sample(nodes, 4))
            )
            structure = h1_query.instance(g, assignment)
            assert decide_via_embedding(h1_query, structure) == (
                h1_query.holds_exact(structure)
            )

    def test_self_loop_subdivision(self):
        loop = DiGraph(edges=[("r", "r")])
        query = HomeomorphismQuery(loop)
        cycle = DiGraph(edges=[("s", "x"), ("x", "s")])
        structure = query.instance(cycle, {"r": "s"})
        assert decide_via_embedding(query, structure)
        assert query.holds_exact(structure)
