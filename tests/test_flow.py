"""Unit and property tests for max flow and node-disjoint paths."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flow import (
    has_node_disjoint_paths_to_targets,
    max_flow,
    max_node_disjoint_paths,
    separating_nodes,
)
from repro.graphs import DiGraph, node_disjoint_simple_paths
from repro.graphs.generators import random_digraph


class TestMaxFlow:
    def test_single_edge(self):
        result = max_flow({("s", "t"): 3}, "s", "t")
        assert result.value == 3
        assert result.flow == {("s", "t"): 3}

    def test_bottleneck(self):
        capacities = {("s", "a"): 5, ("a", "t"): 2}
        assert max_flow(capacities, "s", "t").value == 2

    def test_parallel_routes(self):
        capacities = {
            ("s", "a"): 1, ("a", "t"): 1,
            ("s", "b"): 1, ("b", "t"): 1,
        }
        assert max_flow(capacities, "s", "t").value == 2

    def test_min_cut(self):
        capacities = {("s", "a"): 2, ("a", "t"): 1, ("s", "t"): 1}
        result = max_flow(capacities, "s", "t")
        assert result.value == 2
        cut = result.min_cut_edges(capacities)
        assert sum(capacities[e] for e in cut) == result.value

    def test_disconnected(self):
        assert max_flow({("a", "b"): 1}, "s", "t" ).value == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            max_flow({("s", "t"): -1}, "s", "t")

    def test_rejects_equal_terminals(self):
        with pytest.raises(ValueError):
            max_flow({}, "s", "s")


class TestDisjointPaths:
    def test_parallel_routes(self):
        g = DiGraph(edges=[("s", "a"), ("a", "t1"), ("s", "b"), ("b", "t2")])
        count, paths = max_node_disjoint_paths(g, "s", ["t1", "t2"])
        assert count == 2
        assert {p[-1] for p in paths} == {"t1", "t2"}

    def test_shared_interior_blocks(self):
        g = DiGraph(edges=[("s", "v"), ("v", "t1"), ("v", "t2")])
        count, __ = max_node_disjoint_paths(g, "s", ["t1", "t2"])
        assert count == 1
        assert not has_node_disjoint_paths_to_targets(g, "s", ["t1", "t2"])

    def test_direct_edges(self):
        g = DiGraph(edges=[("s", "t1"), ("s", "t2")])
        assert has_node_disjoint_paths_to_targets(g, "s", ["t1", "t2"])

    def test_avoid_set(self):
        g = DiGraph(edges=[("s", "a"), ("a", "t")])
        assert has_node_disjoint_paths_to_targets(g, "s", ["t"])
        assert not has_node_disjoint_paths_to_targets(g, "s", ["t"], avoid={"a"})

    def test_target_cannot_be_crossed(self):
        # Reaching t2 requires passing through t1: forbidden.
        g = DiGraph(edges=[("s", "t1"), ("t1", "t2")])
        count, __ = max_node_disjoint_paths(g, "s", ["t1", "t2"])
        assert count == 1

    def test_separating_nodes_menger(self):
        g = DiGraph(edges=[("s", "v"), ("v", "t1"), ("v", "t2")])
        cut = separating_nodes(g, "s", ["t1", "t2"])
        assert cut == {"v"}

    def test_duplicate_targets_rejected(self):
        g = DiGraph(edges=[("s", "t")])
        with pytest.raises(ValueError):
            max_node_disjoint_paths(g, "s", ["t", "t"])

    def test_source_in_targets_rejected(self):
        g = DiGraph(edges=[("s", "t")])
        with pytest.raises(ValueError):
            max_node_disjoint_paths(g, "s", ["s"])


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_flow_agrees_with_exact_search(seed):
    """Menger executably: the flow verdict matches the exponential
    disjoint-path search on random graphs."""
    g = random_digraph(7, 0.25, seed)
    nodes = sorted(g.nodes)
    source, t1, t2 = nodes[0], nodes[3], nodes[5]
    flow_says = has_node_disjoint_paths_to_targets(g, source, [t1, t2])
    exact = node_disjoint_simple_paths(g, [(source, t1), (source, t2)])
    assert flow_says == (exact is not None)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_returned_paths_are_disjoint(seed):
    """The extracted flow paths are simple, edge-valid, and share only
    the source."""
    g = random_digraph(8, 0.3, seed)
    nodes = sorted(g.nodes)
    source, targets = nodes[0], [nodes[4], nodes[6]]
    count, paths = max_node_disjoint_paths(g, source, targets)
    assert count == len(paths)
    seen_interiors = set()
    for path in paths:
        assert path[0] == source
        assert path[-1] in targets
        assert len(set(path)) == len(path)
        assert all(g.has_edge(u, v) for u, v in zip(path, path[1:]))
        interior = set(path[1:])
        assert not (interior & seen_interiors)
        seen_interiors |= interior


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_separator_actually_separates(seed):
    """Removing the Menger separator kills every source -> target path."""
    g = random_digraph(8, 0.3, seed)
    nodes = sorted(g.nodes)
    source, targets = nodes[0], [nodes[4], nodes[6]]
    count, __ = max_node_disjoint_paths(g, source, targets)
    cut = separating_nodes(g, source, targets)
    assert len(cut) == count  # max-flow = min-cut
    if source in cut:
        return
    survivors = [t for t in targets if t not in cut]
    reduced = g.remove_nodes(cut - {source})
    from repro.graphs import has_path
    assert all(not has_path(reduced, source, t) for t in survivors)
