"""Differential testing of incremental maintenance against re-evaluation.

The contract of :class:`~repro.datalog.incremental.IncrementalSession`
is observational: after *every* update, the maintained IDB relations
equal a from-scratch ``evaluate()`` on the mutated database -- for
every engine.  This harness pins that property on

* a seeded stream of >= 200 random update sequences over random
  Datalog(!=) programs (the PR-1 generator: recursion, inequalities,
  equalities, head-only variables), and
* every graph program of :mod:`repro.datalog.library` under dedicated
  insert/delete churn.

Deletions additionally audit the Delete/Rederive bookkeeping: what DRed
reports removed is exactly what left the view (nothing over-deleted is
left behind, nothing extra disappears), and the provenance counts stay
exact across the whole sequence (every tuple in the view has a
derivation, every tracked count matches a fresh enumeration).
"""

import random

import pytest

from repro.datalog.evaluation import METHODS, evaluate
from repro.datalog.incremental import IncrementalSession

from tests.test_engine_differential import (
    GRAPH_LIBRARY_PROGRAMS,
    _random_program,
    _random_structure,
)

#: Number of seeded random update sequences; the acceptance bar is
#: "at least 200".
SEQUENCE_COUNT = 210

#: Updates per random sequence (a mix of inserts and deletes).
SEQUENCE_LENGTH = 6


def _assert_session_matches_scratch(session, check_all_engines=True):
    """The maintained view equals from-scratch evaluation, per engine."""
    methods = METHODS if check_all_engines else ("indexed",)
    expected = None
    for method in methods:
        full = session.reevaluate(method=method)
        view = {
            predicate: frozenset(full.relations[predicate])
            for predicate in session.program.idb_predicates
        }
        if expected is None:
            expected = view
            assert session.relations == view, method
        else:  # engines agree among themselves (PR-1 property, re-pinned)
            assert view == expected, method
    return expected


def _assert_dred_bookkeeping(session, result):
    """DRed's report is exact: overdeleted splits into rederived (still
    present) and idb_removed (gone), with nothing left behind."""
    for predicate, rows in result.overdeleted.items():
        removed = result.idb_removed.get(predicate, frozenset())
        rederived = result.rederived.get(predicate, frozenset())
        assert rederived <= rows
        assert removed == rows - rederived
        current = session.relations[predicate]
        assert not removed & current, "over-deleted tuple left behind"
        assert rederived <= current, "rederived tuple missing"


def _assert_provenance_exact(session):
    """Each maintained tuple is supported; counts match a re-enumeration."""
    fresh = IncrementalSession(
        session.program,
        session.structure,
        extra_edb=session.current_extra_edb(),
    )
    for predicate, rows in session.relations.items():
        for row in rows:
            assert session.derivation_count(predicate, row) == \
                fresh.derivation_count(predicate, row), (predicate, row)


def _random_update(rng, session, nodes):
    edb = sorted(session.program.edb_predicates)
    predicate = rng.choice(edb)
    arity = session.program.arity(predicate)
    rows = [
        tuple(rng.choice(nodes) for __ in range(arity))
        for __ in range(rng.randint(1, 2))
    ]
    if rng.random() < 0.5:
        return session.insert_facts(predicate, rows)
    return session.delete_facts(predicate, rows)


def test_random_update_sequences_match_scratch_evaluation():
    """The acceptance corpus: >= 200 seeded update sequences, checked
    against every engine after every single update."""
    rng = random.Random(20260805)
    deletes_checked = 0
    for sequence in range(SEQUENCE_COUNT):
        program = _random_program(rng)
        structure = _random_structure(rng)
        session = IncrementalSession(program, structure)
        nodes = sorted(structure.universe)
        for __ in range(SEQUENCE_LENGTH):
            result = _random_update(rng, session, nodes)
            _assert_session_matches_scratch(session)
            if result.kind == "delete":
                _assert_dred_bookkeeping(session, result)
                deletes_checked += 1
        if sequence % 16 == 0:
            _assert_provenance_exact(session)
    assert deletes_checked >= SEQUENCE_COUNT  # both kinds well exercised


@pytest.mark.parametrize("name", sorted(GRAPH_LIBRARY_PROGRAMS))
def test_library_programs_under_churn(name):
    """Every paper program stays correct under random edge churn."""
    program = GRAPH_LIBRARY_PROGRAMS[name]
    rng = random.Random(hash(name) % (2**32))
    for __ in range(3):
        structure = _random_structure(rng)
        session = IncrementalSession(program, structure)
        nodes = sorted(structure.universe)
        for __ in range(5):
            result = _random_update(rng, session, nodes)
            _assert_session_matches_scratch(session)
            if result.kind == "delete":
                _assert_dred_bookkeeping(session, result)


def test_drain_and_refill_transitive_closure():
    """Delete every edge one by one (down to the empty view), then
    re-insert them one by one; correct at every step."""
    program = GRAPH_LIBRARY_PROGRAMS["transitive-closure"]
    structure = _random_structure(random.Random(11))
    session = IncrementalSession(program, structure)
    edges = sorted(session.current_extra_edb()["E"])
    for edge in edges:
        session.delete_facts("E", [edge])
        _assert_session_matches_scratch(session, check_all_engines=False)
    assert session.goal_relation == frozenset()
    for edge in edges:
        session.insert_facts("E", [edge])
        _assert_session_matches_scratch(session, check_all_engines=False)
    assert session.relations == {
        predicate: frozenset(rows)
        for predicate, rows in session.initial_result.relations.items()
    }


def test_batch_updates_match_scratch_evaluation():
    """Multi-row inserts and deletes (not just single facts)."""
    rng = random.Random(3)
    for __ in range(20):
        program = _random_program(rng)
        structure = _random_structure(rng)
        session = IncrementalSession(program, structure)
        nodes = sorted(structure.universe)
        batch = [
            (rng.choice(nodes), rng.choice(nodes)) for __ in range(4)
        ]
        session.insert_facts("E", batch)
        _assert_session_matches_scratch(session)
        session.delete_facts("E", batch)
        _assert_session_matches_scratch(session)


def test_extra_edb_sessions_are_maintainable():
    """Sessions built over extra_edb relations accept updates on them."""
    rng = random.Random(9)
    program = _random_program(rng)
    structure = _random_structure(rng)
    base = evaluate(program, structure)
    extra = {"E": set(structure.relation("E"))}
    session = IncrementalSession(program, structure, extra_edb=extra)
    assert session.relations == {
        p: frozenset(base.relations[p]) for p in program.idb_predicates
    }
    nodes = sorted(structure.universe)
    session.insert_facts("E", [(nodes[0], nodes[-1])])
    _assert_session_matches_scratch(session)
