"""Worker-kill robustness of the parallel engine (fault_injection).

Extends the deterministic fault harness to the ``kill_worker`` site:
the coordinator hits it once per live worker at the top of every
dispatched round, and translates an injected fault into a *real*
``SIGKILL`` of that worker -- so what these trials exercise is the
production death-detection path, not the injection plumbing.  The
contract pinned here, for every (round, worker) pair the census
enumerates:

* the death surfaces as :class:`repro.datalog.parallel.WorkerDied`
  (never a hang, never a corrupted result);
* shard results merge only after the whole round returns, so the
  database -- and the last ``checkpoint_sink`` emission -- still
  describe the previous barrier;
* resuming from that checkpoint is *bit-identical* to an unkilled
  run: relations, goal, iteration count, stage sequence, and semantic
  profile view (and the resume may run under a different worker count
  or a different engine entirely).

Also covered: the standard round/rule sites keep working on the
parallel engine (inline and pool), and a poisoned pool is rebuilt
transparently on the next evaluation.
"""

import random

import pytest

from repro.datalog import evaluate
from repro.datalog.evaluation import METHODS
from repro.datalog.library import library_programs
from repro.datalog.parallel import WorkerDied, shutdown_workers
from repro.graphs.generators import path_graph, random_digraph
from repro.testing import InjectedFault, census, inject

pytestmark = pytest.mark.fault_injection

#: Pool size for the kill sweeps (every worker of every round is shot).
WORKERS = 2

GRAPH_PROGRAMS = {
    name: program
    for name, program in library_programs().items()
    if name != "path-systems"
}


@pytest.fixture(scope="module", autouse=True)
def _pools_torn_down():
    yield
    shutdown_workers()


def _full_run(program, structure, workers=WORKERS):
    return evaluate(
        program,
        structure,
        method="parallel",
        workers=workers,
        collect_stages=True,
        collect_profile=True,
    )


class TestKillEveryRoundAndWorker:
    @pytest.mark.parametrize("name", sorted(GRAPH_PROGRAMS))
    def test_kill_every_worker_at_every_round_then_resume(self, name):
        """The headline sweep: for every (round r, worker w) hit the
        census enumerates, kill w at r and resume bit-identically."""
        program = GRAPH_PROGRAMS[name]
        structure = random_digraph(
            5, 0.35, seed=23, loops=True
        ).to_structure()
        full = _full_run(program, structure)
        with census() as counts:
            evaluate(program, structure, method="parallel", workers=WORKERS)
        kill_sites = counts.hits("kill_worker")
        assert kill_sites >= WORKERS  # at least round 1, every worker
        killed = 0
        for occurrence in range(1, kill_sites + 1):
            round_index = (occurrence - 1) // WORKERS + 1
            worker = (occurrence - 1) % WORKERS
            sink: list = []
            with inject("kill_worker", occurrence):
                try:
                    evaluate(
                        program, structure, method="parallel",
                        workers=WORKERS, collect_stages=True,
                        collect_profile=True,
                        checkpoint_sink=sink.append,
                    )
                    # The killed worker drew no unit before the
                    # fixpoint converged; the run completing unharmed
                    # is the correct outcome -- but it must still be
                    # the right fixpoint.
                    continue
                except WorkerDied as exc:
                    died = exc  # the as-name is unbound after the block
                    killed += 1
                    assert died.worker == worker, (occurrence,)
                    assert died.round_index >= round_index, (occurrence,)
            # The last emission describes the barrier before the death.
            assert len(sink) == died.round_index - 1, (name, occurrence)
            if not sink:
                continue  # died in round 1: nothing to resume from
            resumed = evaluate(
                program, structure, method="parallel", workers=WORKERS,
                collect_stages=True, collect_profile=True,
                resume_from=sink[-1],
            )
            assert resumed.relations == full.relations, (name, occurrence)
            assert resumed.goal_relation == full.goal_relation
            assert resumed.iterations == full.iterations, (name, occurrence)
            assert resumed.stages == full.stages, (name, occurrence)
            assert (
                resumed.profile.semantic_view()
                == full.profile.semantic_view()
            ), (name, occurrence)
        assert killed > 0, name

    def test_resume_under_different_worker_count_and_engine(self):
        """A kill survivor's checkpoint is engine- and pool-portable."""
        program = GRAPH_PROGRAMS["transitive-closure"]
        structure = path_graph(9).to_structure()
        full = _full_run(program, structure)
        sink: list = []
        with inject("kill_worker", 2 * WORKERS + 1):  # round 3, worker 0
            with pytest.raises(WorkerDied):
                evaluate(
                    program, structure, method="parallel",
                    workers=WORKERS, collect_stages=True,
                    collect_profile=True, checkpoint_sink=sink.append,
                )
        assert sink
        for method, workers in [
            ("parallel", 4),
            ("parallel", 1),
            ("indexed", 1),
            ("codegen", 1),
        ]:
            resumed = evaluate(
                program, structure, method=method, workers=workers,
                collect_stages=True, collect_profile=True,
                resume_from=sink[-1],
            )
            assert resumed.relations == full.relations, (method, workers)
            assert resumed.iterations == full.iterations, (method, workers)
            assert resumed.stages == full.stages, (method, workers)
            assert (
                resumed.profile.semantic_view()
                == full.profile.semantic_view()
            ), (method, workers)

    def test_seeded_random_kill_trials(self):
        """Random programs, random kill occurrences: 40 seeded trials."""
        rng = random.Random(20260808)
        for trial in range(40):
            nodes = rng.randint(4, 6)
            structure = random_digraph(
                nodes, rng.uniform(0.2, 0.5), rng.randrange(10**6)
            ).to_structure()
            program = GRAPH_PROGRAMS[
                rng.choice(sorted(GRAPH_PROGRAMS))
            ]
            full = _full_run(program, structure)
            with census() as counts:
                evaluate(
                    program, structure, method="parallel", workers=WORKERS
                )
            sites = counts.hits("kill_worker")
            occurrence = rng.randint(1, sites)
            sink: list = []
            try:
                with inject("kill_worker", occurrence):
                    evaluate(
                        program, structure, method="parallel",
                        workers=WORKERS, collect_stages=True,
                        checkpoint_sink=sink.append,
                    )
                continue  # worker never drew a unit; run completed
            except WorkerDied:
                pass
            if not sink:
                continue
            resumed = evaluate(
                program, structure, method="parallel", workers=WORKERS,
                collect_stages=True, resume_from=sink[-1],
            )
            assert resumed.relations == full.relations, trial
            assert resumed.iterations == full.iterations, trial
            assert resumed.stages == full.stages, trial


class TestStandardSitesStillFire:
    """The pre-existing sites stay engine-portable on parallel."""

    def test_round_site_fires_inline_and_pool(self):
        program = GRAPH_PROGRAMS["transitive-closure"]
        structure = path_graph(6).to_structure()
        for workers in (1, WORKERS):
            with pytest.raises(InjectedFault):
                with inject("round", 2):
                    evaluate(
                        program, structure, method="parallel",
                        workers=workers,
                    )
            # The crash leaves no residue: the next run is clean.
            result = evaluate(
                program, structure, method="parallel", workers=workers
            )
            reference = evaluate(program, structure, method="indexed")
            assert result.relations == reference.relations

    def test_rule_site_fires_inline_and_pool(self):
        program = GRAPH_PROGRAMS["transitive-closure"]
        structure = path_graph(6).to_structure()
        for workers in (1, WORKERS):
            with pytest.raises(InjectedFault):
                with inject("rule", 3):
                    evaluate(
                        program, structure, method="parallel",
                        workers=workers,
                    )

    def test_kill_worker_site_never_fires_inline(self):
        """workers=1 has no pool, so an armed kill_worker plan must be
        inert and the run must complete normally."""
        program = GRAPH_PROGRAMS["transitive-closure"]
        structure = path_graph(6).to_structure()
        with inject("kill_worker", 1) as plan:
            result = evaluate(
                program, structure, method="parallel", workers=1
            )
        assert plan.hits("kill_worker") == 0
        reference = evaluate(program, structure, method="indexed")
        assert result.relations == reference.relations


class TestPoolRecovery:
    def test_broken_pool_is_rebuilt_for_the_next_evaluation(self):
        program = GRAPH_PROGRAMS["transitive-closure"]
        structure = path_graph(8).to_structure()
        reference = evaluate(program, structure, method="indexed")
        with inject("kill_worker", 1):
            with pytest.raises(WorkerDied):
                evaluate(
                    program, structure, method="parallel", workers=WORKERS
                )
        # No explicit cleanup: the next call detects the poisoned pool,
        # tears it down, and forks a fresh one.
        result = evaluate(
            program, structure, method="parallel", workers=WORKERS
        )
        assert result.relations == reference.relations
