"""Unit tests for adornments, the magic-sets rewrite, and query().

The equivalence corpora (``tests/test_engine_random_programs.py``,
``tests/test_magic_metamorphic.py``) pin correctness statistically;
this file pins the *shape* of the rewrite on the textbook case, the
validation errors, and the goal-directed query API.
"""

import pytest

from repro.datalog import (
    Atom,
    Constant,
    Program,
    Rule,
    Variable,
    evaluate,
    magic_rewrite,
    parse_program,
    query,
)
from repro.datalog.library import (
    goal_bound_library,
    goal_bound_transitive_closure,
    transitive_closure_program,
)
from repro.datalog.magic import (
    goal_adornment,
    goal_atom_from_adornment,
    goal_matches,
)
from repro.graphs.generators import path_graph, random_digraph


@pytest.fixture
def tc_bound():
    """TC with src/dst bound to the ends of a 5-path."""
    program, goal_atom = goal_bound_transitive_closure()
    structure = path_graph(5).to_structure().with_constants(
        {"src": "v0", "dst": "v4"}
    )
    return program, structure, goal_atom


class TestAdornment:
    def test_goal_adornment(self):
        atom = Atom("T", (Constant("a"), Variable("y"), Constant("w")))
        assert goal_adornment(atom) == "bfb"

    def test_from_adornment_shape(self):
        program = transitive_closure_program()
        atom = goal_atom_from_adornment(program, "bf")
        assert atom == Atom("S", (Constant("g1"), Variable("f2")))
        assert goal_adornment(atom) == "bf"

    def test_from_adornment_rejects_bad_pattern(self):
        program = transitive_closure_program()
        with pytest.raises(ValueError, match="adornment"):
            goal_atom_from_adornment(program, "bbb")
        with pytest.raises(ValueError, match="adornment"):
            goal_atom_from_adornment(program, "bx")

    def test_from_adornment_rejects_edb(self):
        program = transitive_closure_program()
        with pytest.raises(ValueError, match="IDB"):
            goal_atom_from_adornment(program, "bb", predicate="E")


class TestRewriteShape:
    def test_textbook_transitive_closure(self):
        """S($src, $dst): the classical bb magic program."""
        program, goal_atom = goal_bound_transitive_closure()
        rewrite = magic_rewrite(program, goal_atom)
        assert rewrite.adornment == "bb"
        assert rewrite.adorned_goal == "S__bb"
        assert rewrite.seed == Rule(
            Atom("m__S__bb", (Constant("src"), Constant("dst")))
        )
        # One magic rule per IDB body occurrence (the recursive S atom),
        # one adorned rule per original rule.
        assert len(rewrite.adorned_rules) == 2
        assert len(rewrite.magic_rules) == 2  # seed + recursive demand
        assert rewrite.program.idb_predicates == {"S__bb", "m__S__bb"}
        assert rewrite.program.edb_predicates == {"E"}
        # Every adorned rule is guarded by its magic atom first.
        for rule in rewrite.adorned_rules:
            first = rule.body[0]
            assert isinstance(first, Atom)
            assert first.predicate == "m__S__bb"

    def test_free_positions_make_smaller_magic_predicates(self):
        program = transitive_closure_program()
        rewrite = magic_rewrite(
            program, Atom("S", (Constant("g"), Variable("y")))
        )
        assert rewrite.adorned_goal == "S__bf"
        assert rewrite.program.arity("m__S__bf") == 1

    def test_all_free_goal_gets_nullary_magic(self):
        program = transitive_closure_program()
        rewrite = magic_rewrite(
            program, Atom("S", (Variable("x"), Variable("y")))
        )
        assert rewrite.program.arity("m__S__ff") == 0
        assert rewrite.seed == Rule(Atom("m__S__ff", ()))

    def test_separator_widens_on_collision(self):
        program = parse_program(
            """
            Q__x(a, b) :- E(a, b).
            Q__x(a, b) :- E(a, c), Q__x(c, b).
            """,
            goal="Q__x",
        )
        rewrite = magic_rewrite(
            program, Atom("Q__x", (Constant("g"), Variable("y")))
        )
        assert "___" in rewrite.adorned_goal
        assert rewrite.adorned_goal.startswith("Q__x___")

    def test_rejects_edb_goal_atom(self):
        program = transitive_closure_program()
        with pytest.raises(ValueError, match="IDB"):
            magic_rewrite(program, Atom("E", (Constant("a"), Variable("y"))))

    def test_rejects_arity_mismatch(self):
        program = transitive_closure_program()
        with pytest.raises(ValueError, match="arity"):
            magic_rewrite(program, Atom("S", (Constant("a"),)))

    def test_output_is_plain_datalog_neq(self):
        """The rewrite of every goal-bound library program re-parses as
        an ordinary Program -- all four engines can run it unchanged."""
        for name, (program, goal_atom) in goal_bound_library().items():
            rewrite = magic_rewrite(program, goal_atom)
            rebuilt = Program(rewrite.program.rules, goal=rewrite.program.goal)
            assert rebuilt == rewrite.program, name


class TestGoalMatches:
    def test_constant_positions_filter(self):
        atom = Atom("S", (Constant("src"), Variable("y")))
        constants = {"src": "a"}
        assert goal_matches(("a", "b"), atom, constants)
        assert not goal_matches(("b", "b"), atom, constants)

    def test_repeated_variables_require_equality(self):
        atom = Atom("S", (Variable("x"), Variable("x")))
        assert goal_matches(("a", "a"), atom, {})
        assert not goal_matches(("a", "b"), atom, {})


class TestQuery:
    def test_answers_and_work_reduction(self, tc_bound):
        program, structure, goal_atom = tc_bound
        magic = query(program, structure, goal_atom, magic=True)
        direct = query(program, structure, goal_atom, magic=False)
        assert magic.answers == direct.answers == {("v0", "v4")}
        assert magic.holds and direct.holds
        assert magic.derived_tuples < direct.derived_tuples
        assert magic.rewrite is not None and direct.rewrite is None

    def test_diagonal_binding(self):
        """A repeated free variable selects the diagonal: cycles."""
        program = transitive_closure_program()
        structure = random_digraph(5, 0.4, seed=2, loops=True).to_structure()
        x = Variable("x")
        outcome = query(program, structure, Atom("S", (x, x)), magic=True)
        full = evaluate(program, structure).goal_relation
        assert outcome.answers == {row for row in full if row[0] == row[1]}

    def test_unknown_engine_rejected(self, tc_bound):
        program, structure, goal_atom = tc_bound
        with pytest.raises(ValueError, match="engine"):
            query(program, structure, goal_atom, engine="warp")

    def test_uninterpreted_constant_rejected(self, tc_bound):
        program, structure, __ = tc_bound
        with pytest.raises(ValueError, match="does not\n?.*interpret"):
            query(
                program,
                structure,
                Atom("S", (Constant("nowhere"), Variable("y"))),
            )

    def test_non_idb_goal_atom_rejected(self, tc_bound):
        program, structure, __ = tc_bound
        with pytest.raises(ValueError, match="IDB"):
            query(program, structure, Atom("E", (Variable("x"), Variable("y"))))

    def test_extra_edb_passthrough(self):
        """Theorem 6.1's layered style: an EDB fed in as a relation."""
        layered = Program(
            [
                Rule(
                    Atom("D", (Variable("x"), Variable("y"))),
                    [Atom("T", (Variable("x"), Variable("y")))],
                ),
                Rule(
                    Atom("D", (Variable("x"), Variable("y"))),
                    [
                        Atom("D", (Variable("x"), Variable("z"))),
                        Atom("T", (Variable("z"), Variable("y"))),
                    ],
                ),
            ],
            goal="D",
        )
        structure = path_graph(4).to_structure().with_constants({"s": "v0"})
        t_relation = {("v0", "v1"), ("v1", "v2"), ("v2", "v3")}
        goal_atom = Atom("D", (Constant("s"), Variable("y")))
        magic = query(
            layered, structure, goal_atom,
            extra_edb={"T": t_relation}, magic=True,
        )
        direct = query(
            layered, structure, goal_atom,
            extra_edb={"T": t_relation}, magic=False,
        )
        assert magic.answers == direct.answers
        assert magic.answers == {("v0", "v1"), ("v0", "v2"), ("v0", "v3")}

    def test_junk_edb_rules_only_break_direct_evaluation(self):
        """A goal-unreachable rule over an EDB the structure does not
        interpret: full evaluation refuses, the magic rewrite visits
        only goal-reachable rules and answers anyway."""
        program = parse_program(
            """
            S(x, y) :- E(x, y).
            S(x, y) :- E(x, z), S(z, y).
            Junk(x) :- F(x, x).
            """,
            goal="S",
        )
        structure = path_graph(3).to_structure().with_constants(
            {"src": "v0", "dst": "v2"}
        )
        goal_atom = Atom("S", (Constant("src"), Constant("dst")))
        with pytest.raises(ValueError, match="F"):
            evaluate(program, structure)
        outcome = query(program, structure, goal_atom, magic=True)
        assert outcome.answers == {("v0", "v2")}

    def test_rewrite_metrics(self, tc_bound):
        from repro.obs import metrics as _metrics

        program, structure, goal_atom = tc_bound
        registry = _metrics.enable_metrics(_metrics.MetricsRegistry())
        try:
            query(program, structure, goal_atom, magic=True)
        finally:
            _metrics.disable_metrics()
        counters = registry.snapshot()["counters"]
        assert counters["magic.rewrites"] == 1
        assert counters["magic.adorned_rules"] == 2
        assert counters["magic.magic_rules"] == 2
