"""Tests for the k-pebble game on CNF formulas (Definition 6.5)."""

import pytest

from repro.cnf import (
    CnfFormula,
    InconsistentAssignment,
    Literal,
    complete_formula,
    is_satisfiable,
    pigeonhole_style_formula,
)
from repro.games.formula_game import (
    OptimalFormulaPlayerOne,
    PaperPhiKStrategy,
    RandomFormulaPlayerOne,
    formula_game_player_one_move,
    run_formula_game,
    solve_formula_game,
)


class TestSolver:
    def test_satisfiable_formula_player_two_wins_all_k(self):
        phi = CnfFormula.parse("x1 | x2; ~x1 | x2")
        assert is_satisfiable(phi)
        for k in (1, 2, 3):
            assert solve_formula_game(phi, k).player_two_wins

    @pytest.mark.parametrize("k", [1, 2])
    def test_complete_formula_threshold(self, k):
        """Player II wins the k-pebble game on phi_k, loses with k+1."""
        phi = complete_formula(k)
        assert solve_formula_game(phi, k).player_two_wins
        assert not solve_formula_game(phi, k + 1).player_two_wins

    def test_pigeonhole_two_pebbles(self):
        """The paper's example: I wins the 2-pebble game on
        x1 & ... & xk & (~x1 | ... | ~xk)."""
        phi = pigeonhole_style_formula(3)
        assert not solve_formula_game(phi, 2).player_two_wins
        # With a single pebble Player I never forces a conflict.
        assert solve_formula_game(phi, 1).player_two_wins

    def test_unsat_with_k_vars_loses_k_plus_1(self):
        phi = CnfFormula.parse("x1 | x2; ~x1; ~x2")
        assert not is_satisfiable(phi)
        assert not solve_formula_game(phi, 3).player_two_wins

    def test_bad_k(self):
        with pytest.raises(ValueError):
            solve_formula_game(complete_formula(1), 0)


class TestPaperStrategy:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_survives_random_play_on_phi_k(self, k):
        phi = complete_formula(k)
        for seed in range(10):
            strategy = PaperPhiKStrategy(phi, k)
            adversary = RandomFormulaPlayerOne(phi, k, seed=seed)
            transcript = run_formula_game(phi, k, adversary, strategy, rounds=120)
            assert transcript.player_two_survived

    def test_clause_response_is_a_clause_literal(self):
        phi = complete_formula(2)
        strategy = PaperPhiKStrategy(phi, 2)
        chosen = strategy.respond(0, 0)
        assert chosen in set(phi.clauses[0].literals)
        assert strategy.value_of(chosen) is True

    def test_literal_values_maintained_then_released(self):
        phi = complete_formula(2)
        strategy = PaperPhiKStrategy(phi, 2)
        x1 = Literal("x1")
        assert strategy.respond(0, x1) is True
        assert strategy.respond(1, x1.complement) is False  # maintained
        strategy.release(0)
        assert strategy.value_of(x1) is True  # still supported by pebble 1
        strategy.release(1)
        assert strategy.value_of(x1) is None  # evaporated

    def test_k_plus_one_pebbles_corner_the_strategy(self):
        """Pin all k variables true, then challenge the all-negative
        clause: the strategy is cornered (Player I's (k+1)-pebble win)."""
        k = 2
        phi = complete_formula(k)
        strategy = PaperPhiKStrategy(phi, k + 1)
        for pebble, variable in enumerate(phi.variables):
            strategy.respond(pebble, Literal(variable))
        all_negative = next(
            index
            for index, clause in enumerate(phi.clauses)
            if all(not lit.positive for lit in clause.literals)
        )
        with pytest.raises(InconsistentAssignment):
            strategy.respond(k, all_negative)


class TestOptimalPlayerOne:
    @pytest.mark.parametrize("k", [1, 2])
    def test_defeats_paper_strategy_with_extra_pebble(self, k):
        """The solver-extracted adversary beats PaperPhiKStrategy in the
        (k+1)-pebble game on phi_k -- automatically, no hand scripting."""
        phi = complete_formula(k)
        result = solve_formula_game(phi, k + 1)
        assert not result.player_two_wins
        adversary = OptimalFormulaPlayerOne(result, phi)
        strategy = PaperPhiKStrategy(phi, k + 1)
        transcript = run_formula_game(
            phi, k + 1, adversary, strategy, rounds=100
        )
        assert not transcript.player_two_survived

    def test_defeats_paper_strategy_on_pigeonhole(self):
        phi = pigeonhole_style_formula(3)
        result = solve_formula_game(phi, 2)
        adversary = OptimalFormulaPlayerOne(result, phi)
        strategy = PaperPhiKStrategy(phi, 2)
        transcript = run_formula_game(phi, 2, adversary, strategy, rounds=60)
        assert not transcript.player_two_survived

    def test_refuses_lost_causes(self):
        phi = complete_formula(2)
        result = solve_formula_game(phi, 2)
        with pytest.raises(ValueError):
            OptimalFormulaPlayerOne(result, phi)

    def test_move_extraction_is_rank_decreasing(self):
        phi = complete_formula(1)
        result = solve_formula_game(phi, 2)
        assert not result.player_two_wins
        state = ()
        rank = result.ranks[state]
        kind, payload = formula_game_player_one_move(result, state, phi)
        assert kind == "place"

    def test_no_move_from_live_state(self):
        phi = complete_formula(2)
        result = solve_formula_game(phi, 2)
        with pytest.raises(ValueError):
            formula_game_player_one_move(result, (), phi)


class TestRunner:
    def test_removal_releases_support(self):
        phi = complete_formula(2)
        strategy = PaperPhiKStrategy(phi, 2)

        class Script:
            def __init__(self):
                self.moves = [
                    ("place", 0, Literal("x1")),
                    ("remove", 0),
                    ("place", 0, Literal("x1", False)),
                ]

            def next_move(self, placed, responses=None):
                return self.moves.pop(0) if self.moves else None

        transcript = run_formula_game(phi, 2, Script(), strategy, rounds=10)
        assert transcript.player_two_survived
        # After re-assignment the fresh value sticks: ~x1 true now.
        assert strategy.value_of(Literal("x1", False)) is True
