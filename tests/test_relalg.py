"""Tests for the bounded-arity relational algebra (Section 3's remark)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.ast import Constant, Variable
from repro.graphs.generators import path_graph, random_digraph
from repro.logic import (
    And,
    AtomF,
    Eq,
    Exists,
    Neq,
    Or,
    evaluate_formula,
    falsum,
    path_formula,
    transitive_closure_family,
    variable_width,
    verum,
)
from repro.logic.evaluation import satisfying_tuples
from repro.relalg import (
    Base,
    Join,
    Project,
    Relation,
    Select,
    Union,
    Universe,
    compile_formula,
    evaluate_expression,
    expression_width,
)
from repro.relalg.expressions import Condition
from repro.structures import Structure, Vocabulary

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture
def chain():
    return path_graph(4).to_structure()


class TestRelation:
    def test_construction(self):
        r = Relation(("a", "b"), {(1, 2), (3, 4)})
        assert r.arity == 2 and len(r) == 2

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Relation(("a", "a"), ())

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            Relation(("a",), {(1, 2)})

    def test_reorder(self):
        r = Relation(("a", "b"), {(1, 2)})
        assert r.reorder(("b", "a")).rows == frozenset({(2, 1)})


class TestOperators:
    def test_base_and_universe(self, chain):
        edges = evaluate_expression(Base("E", ("u", "v")), chain)
        assert len(edges) == 3
        universe = evaluate_expression(Universe("w"), chain)
        assert len(universe) == 4

    def test_base_repeated_columns_mean_equality(self, chain):
        loops = evaluate_expression(Base("E", ("u", "u")), chain)
        assert len(loops) == 0  # the path has no self-loops

    def test_select_and_constants(self):
        g = path_graph(3).with_distinguished({"s": "v0"})
        s = g.to_structure()
        expr = Select(
            Base("E", ("u", "v")),
            (Condition("u", "=", "s", right_is_constant=True),),
        )
        assert evaluate_expression(expr, s).rows == frozenset(
            {("v0", "v1")}
        )

    def test_join_is_natural(self, chain):
        two_step = Join(Base("E", ("u", "v")), Base("E", ("v", "w")))
        rows = evaluate_expression(two_step, chain).rows
        assert ("v0", "v1", "v2") in rows
        assert len(rows) == 2

    def test_union_reorders_columns(self, chain):
        left = Base("E", ("u", "v"))
        right = Project(
            Join(Base("E", ("v", "u")), Universe("u")), ("v", "u")
        )
        # Same column set in different order: union must align.
        both = Union((left, Select(right, ())))
        value = evaluate_expression(both, chain)
        assert value.columns == ("u", "v")

    def test_rename(self, chain):
        from repro.relalg import Rename

        renamed = Rename(Base("E", ("u", "v")), {"u": "tail", "v": "head"})
        value = evaluate_expression(renamed, chain)
        assert value.columns == ("tail", "head")
        assert ("v0", "v1") in value.rows

    def test_rename_must_be_injective(self, chain):
        from repro.relalg import Rename

        bad = Rename(Base("E", ("u", "v")), {"u": "x", "v": "x"})
        with pytest.raises(ValueError, match="injective"):
            evaluate_expression(bad, chain)

    def test_projection(self, chain):
        heads = Project(Base("E", ("u", "v")), ("v",))
        assert evaluate_expression(heads, chain).rows == frozenset(
            {("v1",), ("v2",), ("v3",)}
        )


class TestCompiler:
    def _check(self, formula, structure, free):
        """Compiled relation == direct satisfying-assignment set."""
        expression = compile_formula(formula)
        relation = evaluate_expression(expression, structure)
        names = tuple(sorted(v.name for v in free))
        assert set(relation.columns) == set(names)
        relation = relation.reorder(names)
        ordered_vars = tuple(
            Variable(name) for name in names
        )
        expected = satisfying_tuples(formula, structure, ordered_vars)
        assert relation.rows == expected

    def test_atoms(self, chain):
        self._check(AtomF("E", (X, Y)), chain, [X, Y])

    def test_repeated_variable_atom(self, chain):
        self._check(AtomF("E", (X, X)), chain, [X])

    def test_atom_with_constant(self):
        g = path_graph(3).with_distinguished({"s": "v0"})
        s = g.to_structure()
        self._check(AtomF("E", (Constant("s"), X)), s, [X])

    def test_conjunction_and_exists(self, chain):
        formula = Exists(Z, And([AtomF("E", (X, Z)), AtomF("E", (Z, Y))]))
        self._check(formula, chain, [X, Y])

    def test_disjunction_pads_columns(self, chain):
        formula = Or([AtomF("E", (X, Y)), Eq(X, X)])
        self._check(formula, chain, [X, Y])

    def test_inequalities(self, chain):
        self._check(Neq(X, Y), chain, [X, Y])
        self._check(And([AtomF("E", (X, Y)), Neq(X, Y)]), chain, [X, Y])

    def test_truth_and_falsity(self, chain):
        assert len(evaluate_expression(compile_formula(verum()), chain)) == 1
        assert len(evaluate_expression(compile_formula(falsum()), chain)) == 0

    def test_constant_comparisons(self):
        g = path_graph(3).with_distinguished({"s": "v0", "t": "v2"})
        s = g.to_structure()
        same = compile_formula(Eq(Constant("s"), Constant("s")))
        different = compile_formula(Eq(Constant("s"), Constant("t")))
        assert len(evaluate_expression(same, s)) == 1
        assert len(evaluate_expression(different, s)) == 0

    def test_exists_over_absent_variable(self):
        from repro.graphs import DiGraph

        empty = DiGraph(nodes=[]).to_structure()
        nonempty = path_graph(2).to_structure()
        formula = Exists(Z, verum())
        expression = compile_formula(formula)
        assert len(evaluate_expression(expression, nonempty)) == 1
        assert len(evaluate_expression(expression, empty)) == 0

    def test_paper_path_formulas(self, chain):
        for n in (1, 2, 3):
            self._check(path_formula(n), chain, [X, Y])

    def test_infinitary_requires_expansion(self, chain):
        family = transitive_closure_family()
        with pytest.raises(TypeError, match="expand"):
            compile_formula(family)
        self._check(family.expand(chain), chain, [X, Y])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2_000), st.integers(min_value=1, max_value=4))
    def test_path_formulas_on_random_graphs(self, seed, n):
        structure = random_digraph(4, 0.4, seed).to_structure()
        self._check(path_formula(n), structure, [X, Y])


class TestWidthDiscipline:
    def test_three_variable_formulas_stay_at_width_three(self, chain):
        """The Section 3 remark: subexpression arity <= max(k, r)."""
        for n in (2, 4, 6):
            formula = path_formula(n)
            expression = compile_formula(formula)
            assert expression_width(expression) <= max(
                variable_width(formula), 2
            )

    def test_stage_formulas_respect_the_bound(self):
        from repro.datalog.library import transitive_closure_program
        from repro.logic import translate_program

        translation = translate_program(transitive_closure_program())
        formula = translation.stage_formula("S", 3)
        expression = compile_formula(formula)
        assert expression_width(expression) <= max(
            variable_width(formula), 2
        )

    def test_width_counts_base_arity(self):
        voc = Vocabulary({"R": 3})
        expression = compile_formula(
            Exists(Y, Exists(Z, AtomF("R", (X, Y, Z))))
        )
        assert expression_width(expression) == 3
