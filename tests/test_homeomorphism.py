"""Tests for the homeomorphic-embedding checkers."""

import random

import pytest

from repro.fhw.homeomorphism import (
    homeomorphic_via_flow,
    homeomorphism_embedding,
    is_homeomorphic_to_distinguished_subgraph,
)
from repro.fhw.pattern_class import pattern_h1
from repro.graphs import DiGraph
from repro.graphs.generators import random_digraph


class TestExactChecker:
    def test_identity_embedding(self):
        pattern = pattern_h1()
        mapping = {v: v for v in pattern.nodes}
        paths = homeomorphism_embedding(pattern, pattern, mapping)
        assert paths is not None
        assert all(len(path) == 2 for path in paths)

    def test_subdivided_edges(self):
        pattern = DiGraph(edges=[("u", "v")])
        graph = DiGraph(edges=[("a", "m"), ("m", "b")])
        assert is_homeomorphic_to_distinguished_subgraph(
            pattern, graph, {"u": "a", "v": "b"}
        )

    def test_paths_must_be_node_disjoint(self):
        pattern = pattern_h1()
        graph = DiGraph(edges=[
            ("s1", "v"), ("v", "t1"), ("s2", "v"), ("v", "t2"),
        ])
        mapping = {"s1": "s1", "s2": "t1", "s3": "s2", "s4": "t2"}
        assert not is_homeomorphic_to_distinguished_subgraph(
            pattern, graph, mapping
        )

    def test_distinguished_nodes_block_interiors(self):
        # The only u -> v route passes through the node assigned to w.
        pattern = DiGraph(edges=[("u", "v"), ("w", "v")])
        graph = DiGraph(edges=[("a", "c"), ("c", "b"), ("c", "b2")])
        # u -> v must go a -> c -> b, but c interprets w: forbidden.
        assert not is_homeomorphic_to_distinguished_subgraph(
            pattern, graph, {"u": "a", "v": "b", "w": "c"}
        )

    def test_self_loop_needs_cycle(self):
        pattern = DiGraph(edges=[("r", "r")])
        with_cycle = DiGraph(edges=[("s", "x"), ("x", "s")])
        without = DiGraph(edges=[("s", "x"), ("x", "y")])
        assert is_homeomorphic_to_distinguished_subgraph(
            pattern, with_cycle, {"r": "s"}
        )
        assert not is_homeomorphic_to_distinguished_subgraph(
            pattern, without, {"r": "s"}
        )

    def test_assignment_validation(self):
        pattern = pattern_h1()
        graph = DiGraph(edges=[("a", "b")])
        with pytest.raises(ValueError, match="misses"):
            is_homeomorphic_to_distinguished_subgraph(pattern, graph, {})
        with pytest.raises(ValueError, match="injective"):
            is_homeomorphic_to_distinguished_subgraph(
                pattern, graph,
                {"s1": "a", "s2": "a", "s3": "b", "s4": "b"},
            )


class TestFlowChecker:
    def test_rejects_patterns_outside_c(self):
        graph = DiGraph(edges=[("a", "b"), ("c", "d")])
        with pytest.raises(ValueError, match="class C"):
            homeomorphic_via_flow(
                pattern_h1(), graph,
                {"s1": "a", "s2": "b", "s3": "c", "s4": "d"},
            )

    @pytest.mark.parametrize("orientation", ["out", "in"])
    def test_matches_exact_on_random_graphs(self, orientation):
        if orientation == "out":
            pattern = DiGraph(edges=[("r", "u"), ("r", "v")])
        else:
            pattern = DiGraph(edges=[("u", "r"), ("v", "r")])
        rng = random.Random(42)
        for seed in range(4):
            graph = random_digraph(7, 0.25, seed)
            nodes = sorted(graph.nodes)
            for __ in range(6):
                picks = rng.sample(nodes, 3)
                assignment = dict(zip(("r", "u", "v"), picks))
                assert homeomorphic_via_flow(
                    pattern, graph, assignment
                ) == is_homeomorphic_to_distinguished_subgraph(
                    pattern, graph, assignment
                )

    def test_self_loop_cases_match_exact(self):
        pattern = DiGraph(edges=[("r", "r"), ("r", "u")])
        rng = random.Random(7)
        for seed in range(4):
            graph = random_digraph(6, 0.3, seed, loops=True)
            nodes = sorted(graph.nodes)
            for __ in range(6):
                r, u = rng.sample(nodes, 2)
                assignment = {"r": r, "u": u}
                assert homeomorphic_via_flow(
                    pattern, graph, assignment
                ) == is_homeomorphic_to_distinguished_subgraph(
                    pattern, graph, assignment
                )

    def test_pure_loop_uses_long_cycles(self):
        pattern = DiGraph(edges=[("r", "r")])
        cycle = DiGraph(edges=[("s", "x"), ("x", "y"), ("y", "s")])
        assert homeomorphic_via_flow(pattern, cycle, {"r": "s"})
