"""Tests for the existential k-pebble game solver (Sections 4-5)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.games import preceq_k, solve_existential_game, winning_family
from repro.games.existential import player_one_winning_move
from repro.graphs import DiGraph
from repro.graphs.generators import (
    crossed_paths_structure_pair,
    cycle_graph,
    path_graph,
    path_pair_structures,
    random_digraph,
)
from repro.structures import (
    Structure,
    Vocabulary,
    find_one_to_one_homomorphism,
    is_partial_one_to_one_homomorphism,
)


class TestExample44:
    """Paths of different length."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_short_preceq_long(self, k):
        short, long_ = path_pair_structures(3, 6)
        assert preceq_k(short, long_, k)

    @pytest.mark.parametrize("k", [2, 3])
    def test_long_not_preceq_short(self, k):
        short, long_ = path_pair_structures(3, 6)
        assert not preceq_k(long_, short, k)

    def test_one_pebble_cannot_tell(self):
        # With a single pebble no edge can ever be challenged.
        short, long_ = path_pair_structures(3, 6)
        assert preceq_k(long_, short, 1)

    def test_preceq_is_not_symmetric(self):
        short, long_ = path_pair_structures(2, 5)
        assert preceq_k(short, long_, 2) and not preceq_k(long_, short, 2)


class TestExample45:
    def test_player_one_wins_three_pebbles(self):
        disjoint, crossed = crossed_paths_structure_pair(1)
        assert not preceq_k(disjoint, crossed, 3)

    def test_crossed_preceq_disjoint_fails_too(self):
        # B has a degree-2 node A lacks; with 3 pebbles I exposes it.
        disjoint, crossed = crossed_paths_structure_pair(1)
        assert not preceq_k(crossed, disjoint, 3)


class TestRelationProperties:
    def test_reflexive(self):
        s = random_digraph(4, 0.4, seed=0).to_structure()
        assert preceq_k(s, s, 2)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_transitive(self, seed):
        a = random_digraph(3, 0.4, seed).to_structure()
        b = random_digraph(3, 0.4, seed + 1000).to_structure()
        c = random_digraph(3, 0.4, seed + 2000).to_structure()
        k = 2
        if preceq_k(a, b, k) and preceq_k(b, c, k):
            assert preceq_k(a, c, k)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_monotone_in_k(self, seed):
        """More pebbles only help Player I: <=^{k+1} implies <=^k."""
        a = random_digraph(4, 0.35, seed).to_structure()
        b = random_digraph(4, 0.35, seed + 7777).to_structure()
        if preceq_k(a, b, 3):
            assert preceq_k(a, b, 2)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_embedding_implies_preceq(self, seed):
        """Proposition 5.4's easy direction: a one-to-one homomorphism
        gives Player II a winning strategy for every k."""
        a = random_digraph(3, 0.3, seed).to_structure()
        b = random_digraph(5, 0.45, seed + 123).to_structure()
        if find_one_to_one_homomorphism(a, b) is not None:
            assert preceq_k(a, b, 3)


class TestWinningFamilies:
    def test_family_properties(self):
        """Definition 4.7: closure under subfunctions + forth property."""
        short, long_ = path_pair_structures(3, 5)
        k = 2
        family = winning_family(short, long_, k)
        assert family is not None and frozenset() in family
        for position in family:
            mapping = dict(position)
            assert is_partial_one_to_one_homomorphism(mapping, short, long_)
            # Closed under subfunctions.
            for pair in position:
                assert (position - {pair}) in family
            # Forth property up to k.
            if len(position) < k:
                sources = {p[0] for p in position}
                for x in short.universe:
                    if x in sources:
                        continue
                    assert any(
                        position | {(x, y)} in family
                        for y in long_.universe
                    )

    def test_no_family_when_player_one_wins(self):
        short, long_ = path_pair_structures(3, 6)
        assert winning_family(long_, short, 2) is None


class TestPlayerOneMoves:
    def test_winning_move_extraction(self):
        short, long_ = path_pair_structures(2, 4)
        result = solve_existential_game(long_, short, 2)
        assert result.winner == "I"
        kind, payload = player_one_winning_move(
            result, frozenset(), long_, short
        )
        assert kind == "place"
        assert payload in long_.universe

    def test_no_move_from_live_position(self):
        short, long_ = path_pair_structures(2, 4)
        result = solve_existential_game(short, long_, 2)
        with pytest.raises(ValueError):
            player_one_winning_move(result, frozenset(), short, long_)


class TestConstants:
    def test_constants_constrain_the_game(self):
        voc = Vocabulary.graph(constants=("s",))
        a = Structure(voc, {1, 2}, {"E": [(1, 2)]}, {"s": 1})
        # In B the constant sits at the END of the edge: Player I wins
        # immediately by pebbling 2 (s's successor in A has none in B).
        b = Structure(voc, {1, 2}, {"E": [(2, 1)]}, {"s": 1})
        assert not preceq_k(a, b, 1)

    def test_incompatible_constants_lose_instantly(self):
        voc = Vocabulary.graph(constants=("s", "t"))
        a = Structure(voc, {1, 2}, {"E": [(1, 2)]}, {"s": 1, "t": 2})
        b = Structure(voc, {1}, {"E": []}, {"s": 1, "t": 1})
        # s != t in A but s = t in B: not injective even at the start.
        result = solve_existential_game(a, b, 1)
        assert result.winner == "I"


class TestTupleExpansions:
    """Definition 4.1's general form: (A, a1..am) <=^k (B, b1..bm),
    realised by expanding both structures with constants."""

    def test_pointed_paths(self):
        short, long_ = path_pair_structures(3, 6)
        # Pointing at the path STARTS preserves the relation...
        a = short.with_constants({"p1": "a0"})
        b = long_.with_constants({"p1": "b0"})
        assert preceq_k(a, b, 2)
        # ... pointing the short end at a deep node breaks it: the
        # pointed node must still have two successors.
        b_deep = long_.with_constants({"p1": "b4"})
        assert not preceq_k(a, b_deep, 2)

    def test_expansion_refines_the_plain_relation(self):
        short, long_ = path_pair_structures(3, 6)
        assert preceq_k(short, long_, 2)
        # An expansion can only make Player II's life harder.
        a = short.with_constants({"p1": "a2"})  # the path's end
        b = long_.with_constants({"p1": "b0"})  # the path's start
        assert not preceq_k(a, b, 2)


class TestHomomorphismVariant:
    """Remark 4.12: the Datalog (inequality-free) game."""

    def test_collapse_is_fine_without_injectivity(self):
        # A long path maps homomorphically onto a cycle: II wins the
        # homomorphism game but loses the injective one (sizes differ).
        path = path_graph(6).to_structure()
        cycle = cycle_graph(3).to_structure()
        assert preceq_k(path, cycle, 2, injective=False)
        assert not preceq_k(path, cycle, 3)

    def test_cycle_into_path_fails_both(self):
        cycle = cycle_graph(3).to_structure()
        path = path_graph(7).to_structure()
        assert not preceq_k(cycle, path, 2, injective=False)


class TestSolverIsExact:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=300))
    def test_agrees_with_reference_minimax(self, seed):
        """Cross-check the elimination solver against a direct
        alpha-beta search of the game tree on tiny structures."""
        a = random_digraph(3, 0.4, seed).to_structure()
        b = random_digraph(3, 0.4, seed + 31).to_structure()
        k = 2
        result = solve_existential_game(a, b, k)

        from functools import lru_cache

        a_elems = tuple(sorted(a.universe, key=repr))
        b_elems = tuple(sorted(b.universe, key=repr))

        @lru_cache(maxsize=None)
        def player_two_survives(position, depth):
            if not is_partial_one_to_one_homomorphism(dict(position), a, b):
                return False
            if depth == 0:
                return True  # survived the horizon
            for pair in position:  # Player I removals
                if not player_two_survives(position - {pair}, depth - 1):
                    return False
            if len(position) < k:  # Player I placements
                sources = {p[0] for p in position}
                for x in a_elems:
                    if x in sources:
                        continue
                    if not any(
                        player_two_survives(position | {(x, y)}, depth - 1)
                        for y in b_elems
                    ):
                        return False
            return True

        # Player I's forcing lines alternate removals and placements; a
        # horizon of two moves per elimination round is sound.
        max_rank = max(result.ranks.values(), default=0)
        horizon = min(2 * max_rank + 4, 26)
        reference = player_two_survives(frozenset(), horizon)
        assert result.player_two_wins == reference
