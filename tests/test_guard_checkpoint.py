"""Checkpoint/resume: serialisation safety and resume determinism.

Two properties carry the tentpole:

* **safety** -- a checkpoint is fingerprinted against (program, EDB);
  offering it to a different program, a different database, or a
  corrupt file is rejected with :class:`CheckpointMismatch` *before*
  any state is adopted (resuming semi-naive state against the wrong
  rules would silently converge to a wrong fixpoint);
* **determinism** -- for every round cutoff ``r`` of every program in
  the corpus, interrupting at ``r`` and resuming reproduces the
  uninterrupted run *bit-identically*: same relations, same iteration
  count, same stage sequence, same semantic profile.
"""

import os
import pickle
import random

import pytest

from repro.datalog import evaluate
from repro.datalog.library import library_programs
from repro.graphs.generators import path_graph, random_digraph
from repro.guard import (
    RESUMABLE_ENGINES,
    BudgetExceeded,
    Checkpoint,
    CheckpointMismatch,
    ResourceBudget,
    edb_fingerprint,
    program_fingerprint,
)
from tests.test_engine_differential import _random_program, _random_structure

TC = library_programs()["transitive-closure"]


def _trip(program, structure, cutoff, method="indexed", **kwargs):
    """The BudgetExceeded from interrupting at round ``cutoff``."""
    with pytest.raises(BudgetExceeded) as info:
        evaluate(
            program, structure, method=method,
            budget=ResourceBudget(max_iterations=cutoff), **kwargs,
        )
    return info.value


class TestRoundTrip:
    STRUCTURE = path_graph(8).to_structure()

    def test_pickle_round_trip(self, tmp_path):
        exc = _trip(TC, self.STRUCTURE, 3)
        path = str(tmp_path / "ck.pkl")
        exc.checkpoint.save(path)
        loaded = Checkpoint.load(path)
        assert loaded == exc.checkpoint
        assert loaded.iteration == 3
        assert loaded.engine == "indexed"

    def test_loaded_checkpoint_resumes(self, tmp_path):
        exc = _trip(TC, self.STRUCTURE, 2)
        path = str(tmp_path / "ck.pkl")
        exc.checkpoint.save(path)
        full = evaluate(TC, self.STRUCTURE)
        resumed = evaluate(
            TC, self.STRUCTURE, resume_from=Checkpoint.load(path)
        )
        assert resumed.relations == full.relations
        assert resumed.iterations == full.iterations

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(CheckpointMismatch, match="not a readable"):
            Checkpoint.load(str(path))

    def test_wrong_payload_type_rejected(self, tmp_path):
        path = tmp_path / "wrong.pkl"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(CheckpointMismatch, match="does not contain"):
            Checkpoint.load(str(path))


class TestAtomicWrites:
    """Checkpoint saves are write-temp/fsync/rename: a reader never
    observes a half-written file, and torn bytes are rejected loudly."""

    def test_truncated_checkpoint_rejected_at_every_length(self, tmp_path):
        exc = _trip(TC, path_graph(8).to_structure(), 3)
        path = tmp_path / "ck.pkl"
        exc.checkpoint.save(str(path))
        payload = path.read_bytes()
        torn = tmp_path / "torn.pkl"
        # Every proper prefix must raise CheckpointMismatch -- the
        # contract a crash mid-write would otherwise violate.
        for cut in range(len(payload)):
            torn.write_bytes(payload[:cut])
            with pytest.raises(CheckpointMismatch):
                Checkpoint.load(str(torn))

    def test_truncated_maintenance_checkpoint_rejected(self, tmp_path):
        from repro.guard import MaintenanceCheckpoint

        ckpt = MaintenanceCheckpoint(
            program_fingerprint=program_fingerprint(TC),
            goal=TC.goal,
            edb={"E": frozenset({("a", "b")})},
            updates_applied=3,
        )
        path = tmp_path / "mc.pkl"
        ckpt.save(str(path))
        payload = path.read_bytes()
        torn = tmp_path / "torn.pkl"
        for cut in range(0, len(payload), 7):
            torn.write_bytes(payload[:cut])
            with pytest.raises(CheckpointMismatch):
                MaintenanceCheckpoint.load(str(torn))

    def test_save_replaces_not_appends(self, tmp_path):
        """An existing (stale) file is atomically replaced, so a save
        over garbage leaves a fully valid checkpoint."""
        path = tmp_path / "ck.pkl"
        path.write_bytes(b"stale garbage from a previous life" * 100)
        exc = _trip(TC, path_graph(8).to_structure(), 2)
        exc.checkpoint.save(str(path))
        assert Checkpoint.load(str(path)) == exc.checkpoint

    def test_save_leaves_no_temp_files(self, tmp_path):
        exc = _trip(TC, path_graph(8).to_structure(), 2)
        exc.checkpoint.save(str(tmp_path / "ck.pkl"))
        leftovers = [
            name for name in os.listdir(tmp_path) if name != "ck.pkl"
        ]
        assert leftovers == []

    def test_failed_pickle_cleans_up_and_keeps_the_old_file(self, tmp_path):
        from repro.guard import _atomic_pickle_dump

        path = tmp_path / "ck.pkl"
        exc = _trip(TC, path_graph(8).to_structure(), 2)
        exc.checkpoint.save(str(path))
        before = path.read_bytes()
        with pytest.raises(Exception):
            _atomic_pickle_dump(lambda: None, str(path))  # unpicklable
        assert path.read_bytes() == before
        assert os.listdir(tmp_path) == ["ck.pkl"]


class TestFingerprintSafety:
    STRUCTURE = path_graph(6).to_structure()

    def test_different_program_rejected(self):
        checkpoint = _trip(TC, self.STRUCTURE, 2).checkpoint
        other = library_programs()["avoiding-path"]
        with pytest.raises(CheckpointMismatch, match="different program"):
            evaluate(other, self.STRUCTURE, resume_from=checkpoint)

    def test_different_database_rejected(self):
        checkpoint = _trip(TC, self.STRUCTURE, 2).checkpoint
        other = random_digraph(6, 0.4, seed=3).to_structure()
        with pytest.raises(
            CheckpointMismatch, match="different extensional database"
        ):
            evaluate(TC, other, resume_from=checkpoint)

    def test_validate_is_order_sensitive_free(self):
        # The EDB fingerprint is canonical: row order cannot matter.
        structure = self.STRUCTURE
        edb = {"E": list(structure.relation("E"))}
        fp1 = edb_fingerprint(
            edb, structure.universe, structure.constants
        )
        fp2 = edb_fingerprint(
            {"E": list(reversed(edb["E"]))},
            structure.universe,
            structure.constants,
        )
        assert fp1 == fp2

    def test_program_fingerprint_sensitive_to_rules(self):
        assert program_fingerprint(TC) != program_fingerprint(
            library_programs()["avoiding-path"]
        )

    def test_non_resumable_engine_rejected(self):
        checkpoint = _trip(TC, self.STRUCTURE, 2).checkpoint
        with pytest.raises(ValueError, match="resum"):
            evaluate(TC, self.STRUCTURE, method="naive",
                     resume_from=checkpoint)


GRAPH_PROGRAMS = {
    name: program
    for name, program in library_programs().items()
    if name != "path-systems"  # non-graph vocabulary
}


@pytest.mark.parametrize("name", sorted(GRAPH_PROGRAMS))
def test_resume_determinism_every_round(name):
    """Kill at every round boundary, resume, demand bit-identical runs
    -- for every library program and both resumable engines."""
    program = GRAPH_PROGRAMS[name]
    structure = random_digraph(5, 0.35, seed=11, loops=True).to_structure()
    for method in RESUMABLE_ENGINES:
        full = evaluate(
            program, structure, method=method,
            collect_stages=True, collect_profile=True,
        )
        for cutoff in range(1, full.iterations):
            exc = _trip(
                program, structure, cutoff, method=method,
                collect_stages=True, collect_profile=True,
            )
            assert exc.checkpoint is not None
            assert exc.checkpoint.iteration == cutoff
            resumed = evaluate(
                program, structure, method=method,
                collect_stages=True, collect_profile=True,
                resume_from=exc.checkpoint,
            )
            key = (name, method, cutoff)
            assert resumed.relations == full.relations, key
            assert resumed.iterations == full.iterations, key
            assert resumed.stages == full.stages, key
            assert (
                resumed.profile.semantic_view()
                == full.profile.semantic_view()
            ), key


def test_cross_engine_resume():
    """Checkpoints carry *semantic* state: a checkpoint cut under any
    resumable engine finishes correctly under every other (and one cut
    by the naive engine's per-round emission resumes under all)."""
    structure = path_graph(9).to_structure()
    full = evaluate(TC, structure)
    for source in ("indexed", "seminaive", "naive", "codegen"):
        sink: list = []
        try:
            evaluate(
                TC, structure, method=source,
                budget=ResourceBudget(max_iterations=3),
                checkpoint_sink=sink.append,
            )
        except BudgetExceeded:
            pass
        assert sink, source
        checkpoint = sink[-1]
        for target in RESUMABLE_ENGINES:
            resumed = evaluate(
                TC, structure, method=target, resume_from=checkpoint
            )
            assert resumed.relations == full.relations, (source, target)
            assert resumed.iterations == full.iterations, (source, target)


def test_checkpoint_sink_every_round():
    """checkpoint_sink observes every completed round, in order."""
    structure = path_graph(7).to_structure()
    sink: list = []
    full = evaluate(TC, structure, checkpoint_sink=sink.append)
    assert [ck.iteration for ck in sink] == list(range(1, full.iterations + 1))
    # Any of them resumes to the same fixpoint.
    for checkpoint in (sink[0], sink[len(sink) // 2], sink[-1]):
        resumed = evaluate(TC, structure, resume_from=checkpoint)
        assert resumed.relations == full.relations


def test_resume_determinism_random_corpus():
    """Seeded random programs: resume reproduces relations and rounds."""
    rng = random.Random(77)
    for __ in range(15):
        program = _random_program(rng)
        structure = _random_structure(rng)
        full = evaluate(program, structure, collect_stages=True)
        for cutoff in range(1, full.iterations):
            exc = _trip(program, structure, cutoff, collect_stages=True)
            resumed = evaluate(
                program, structure, collect_stages=True,
                resume_from=exc.checkpoint,
            )
            assert resumed.relations == full.relations
            assert resumed.stages == full.stages


def test_zero_round_trip_has_no_checkpoint():
    """A budget that trips before any completed round carries no
    checkpoint (there is no boundary state to resume from)."""
    exc = _trip(TC, path_graph(5).to_structure(), 0)
    assert exc.checkpoint is None
    assert exc.partial.iterations == 0
