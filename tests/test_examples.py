"""Smoke tests: every example script runs to completion.

The examples double as executable documentation; this keeps them from
rotting as the library evolves.  Stdout is captured and spot-checked
for each script's headline output.
"""

import io
import pathlib
import runpy
from contextlib import redirect_stdout

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": "Transitive closure of a 5-node path",
    "disjoint_routes.py": "All three deciders agreed",
    "pebble_games.py": "Example 4.5",
    "acyclic_workflows.py": "all four deciders agreed",
    "inexpressibility.py": "scripted Player I",
    "separating_sentences.py": "separating sentence",
    "gadget_gallery.py": "Lemma 6.4 verified: True",
}


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs(script, tmp_path, monkeypatch):
    monkeypatch.setattr(
        "sys.argv", [script, str(tmp_path)]
    )
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    output = buffer.getvalue()
    assert EXPECTED_SNIPPETS[script] in output


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTED_SNIPPETS)
