"""Unit tests for incremental view maintenance and its provenance layer."""

import pytest

from repro.datalog.incremental import (
    IncrementalSession,
    Update,
    parse_update_script,
)
from repro.datalog.library import transitive_closure_program
from repro.datalog.parser import parse_program
from repro.datalog.provenance import SupportTable, support_key
from repro.graphs.digraph import DiGraph
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace


def _session(edges, nodes="abcd"):
    graph = DiGraph(nodes=nodes, edges=edges)
    return IncrementalSession(
        transitive_closure_program(), graph.to_structure()
    )


def _expected(session):
    full = session.reevaluate()
    return {
        predicate: frozenset(full.relations[predicate])
        for predicate in session.program.idb_predicates
    }


class TestSupportTable:
    def test_add_is_idempotent(self):
        table = SupportTable()
        key = support_key(0, [("a", "b")])
        assert table.add("S", ("a", "b"), key) is True
        assert table.add("S", ("a", "b"), key) is False
        assert table.count("S", ("a", "b")) == 1

    def test_distinct_supports_accumulate(self):
        table = SupportTable()
        table.add("S", ("a", "c"), support_key(0, [("a", "c")]))
        table.add("S", ("a", "c"), support_key(1, [("a", "b"), ("b", "c")]))
        assert table.count("S", ("a", "c")) == 2
        assert len(table.supports("S", ("a", "c"))) == 2

    def test_discard_is_idempotent(self):
        table = SupportTable()
        key = support_key(0, [("a", "b")])
        table.add("S", ("a", "b"), key)
        assert table.discard("S", ("a", "b"), key) is True
        assert table.discard("S", ("a", "b"), key) is False
        assert not table.supported("S", ("a", "b"))

    def test_drop_row_forgets_everything(self):
        table = SupportTable()
        table.add("S", ("a", "b"), support_key(0, [("a", "b")]))
        table.drop_row("S", ("a", "b"))
        assert table.count("S", ("a", "b")) == 0
        assert table.total_supports() == 0

    def test_counts_reports_only_live_rows(self):
        table = SupportTable()
        key = support_key(0, [("a", "b")])
        table.add("S", ("a", "b"), key)
        table.add("S", ("b", "c"), support_key(0, [("b", "c")]))
        table.discard("S", ("a", "b"), key)
        assert table.counts("S") == {("b", "c"): 1}

    def test_empty_body_support_mentions_no_tuple(self):
        key = support_key(3, [])
        assert key == (3, ())


class TestSessionBasics:
    def test_initial_fixpoint_matches_evaluate(self):
        session = _session([("a", "b"), ("b", "c")])
        assert session.relations == _expected(session)
        assert session.goal_relation == frozenset(
            {("a", "b"), ("a", "c"), ("b", "c")}
        )

    def test_insert_extends_closure(self):
        session = _session([("a", "b"), ("b", "c")])
        result = session.insert_facts("E", [("c", "d")])
        assert result.kind == "insert"
        assert result.applied == frozenset({("c", "d")})
        assert session.holds(("a", "d"))
        assert session.relations == _expected(session)

    def test_duplicate_insert_is_a_noop(self):
        session = _session([("a", "b")])
        result = session.insert_facts("E", [("a", "b")])
        assert result.applied == frozenset()
        assert result.idb_added == {}
        assert result.rounds == 0

    def test_delete_with_alternative_path_keeps_closure(self):
        # a->c directly and via b: deleting the shortcut changes nothing
        # semantically, and DRed rederives everything it over-deleted.
        session = _session([("a", "b"), ("b", "c"), ("a", "c")])
        before = session.relations
        result = session.delete_facts("E", [("a", "c")])
        assert session.relations == before
        assert result.idb_removed == {}
        assert result.overdeleted == result.rederived != {}

    def test_delete_without_alternative_shrinks_closure(self):
        session = _session([("a", "b"), ("b", "c")])
        result = session.delete_facts("E", [("b", "c")])
        assert not session.holds(("a", "c"))
        assert ("b", "c") in result.idb_removed["S"]
        assert session.relations == _expected(session)

    def test_absent_delete_is_a_noop(self):
        session = _session([("a", "b")])
        result = session.delete_facts("E", [("c", "d")])
        assert result.applied == frozenset()
        assert result.idb_removed == {}

    def test_rederived_is_contained_in_overdeleted(self):
        session = _session(
            [("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")]
        )
        result = session.delete_facts("E", [("a", "c")])
        for predicate, rows in result.rederived.items():
            assert rows <= result.overdeleted[predicate]

    def test_derivation_counts_track_distinct_paths(self):
        session = _session([("a", "b"), ("b", "c"), ("a", "c")])
        # a->c: one base derivation (edge) + one via b.
        assert session.derivation_count("S", ("a", "c")) == 2
        session.delete_facts("E", [("a", "c")])
        assert session.derivation_count("S", ("a", "c")) == 1

    def test_update_count_and_net_change(self):
        session = _session([("a", "b")])
        grown = session.insert_facts("E", [("b", "c")])
        shrunk = session.delete_facts("E", [("b", "c")])
        assert session.update_count == 2
        assert grown.net_change == 2  # (b,c) and (a,c)
        assert shrunk.net_change == -2

    def test_profile_mirrors_fixpoint_profile(self):
        session = _session([("a", "b"), ("b", "c")])
        result = session.insert_facts(
            "E", [("c", "d")], collect_profile=True
        )
        assert result.profile is not None
        assert result.profile.engine == "incremental-insert"
        assert len(result.profile.iterations) == result.rounds
        assert result.semantic_view() is not None

    def test_to_dict_is_json_shaped(self):
        session = _session([("a", "b")])
        summary = session.insert_facts("E", [("b", "c")]).to_dict()
        assert summary["kind"] == "insert"
        assert summary["applied"] == 1
        assert isinstance(summary["wall_ms"], float)


class TestValidation:
    def test_idb_predicate_rejected(self):
        session = _session([("a", "b")])
        with pytest.raises(ValueError, match="not an EDB predicate"):
            session.insert_facts("S", [("a", "b")])

    def test_arity_mismatch_rejected(self):
        session = _session([("a", "b")])
        with pytest.raises(ValueError, match="arity"):
            session.insert_facts("E", [("a", "b", "c")])

    def test_unknown_element_rejected(self):
        session = _session([("a", "b")])
        with pytest.raises(ValueError, match="universe"):
            session.insert_facts("E", [("a", "zz")])

    def test_delete_validates_too(self):
        session = _session([("a", "b")])
        with pytest.raises(ValueError, match="universe"):
            session.delete_facts("E", [("zz", "a")])


class TestCyclicSupports:
    """Mutually supporting rules: the case bare counters get wrong."""

    PROGRAM = parse_program(
        """
        P(x, y) :- Q(x, y).
        Q(x, y) :- P(x, y).
        P(x, y) :- E(x, y).
        """,
        goal="P",
    )

    def test_cycle_dies_with_its_edge(self):
        # P and Q support each other; only the E-rule grounds them.
        # Deleting the edge must empty both, despite the mutual
        # supports each tuple still counts for the other.
        graph = DiGraph(nodes="ab", edges=[("a", "b")])
        session = IncrementalSession(self.PROGRAM, graph.to_structure())
        assert session.holds(("a", "b"))
        session.delete_facts("E", [("a", "b")])
        assert session.relations == {"P": frozenset(), "Q": frozenset()}

    def test_every_edge_deletion_matches_scratch(self):
        graph = DiGraph(
            nodes="abc", edges=[("a", "b"), ("b", "c"), ("a", "c")]
        )
        session = IncrementalSession(self.PROGRAM, graph.to_structure())
        for edge in [("a", "c"), ("a", "b"), ("b", "c")]:
            session.delete_facts("E", [edge])
            full = session.reevaluate()
            assert session.relations == {
                p: frozenset(full.relations[p])
                for p in self.PROGRAM.idb_predicates
            }


class TestUpdateScripts:
    def test_parse_all_forms(self):
        updates = parse_update_script(
            "% header comment\n"
            "insert E a b\n"
            "+ E b c   % trailing comment\n"
            "delete E a b\n"
            "- E b c\n"
            "\n"
            "# done\n"
        )
        assert [u.kind for u in updates] == [
            "insert", "insert", "delete", "delete",
        ]
        assert updates[0] == Update("insert", "E", ("a", "b"))

    def test_malformed_line_is_located(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_update_script("insert E a b\nfrobnicate E a b\n")

    def test_missing_predicate_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_update_script("insert\n")

    def test_apply_script_replays_in_order(self):
        session = _session([("a", "b")])
        results = session.apply_script(
            parse_update_script("insert E b c\ndelete E a b\n")
        )
        assert [r.kind for r in results] == ["insert", "delete"]
        assert session.relations == _expected(session)
        assert session.goal_relation == frozenset({("b", "c")})


class TestObservability:
    def test_spans_and_counters_recorded(self):
        _metrics.enable_metrics()
        _trace.enable_tracing()
        try:
            session = _session([("a", "b"), ("b", "c")])
            session.insert_facts("E", [("c", "d")])
            session.delete_facts("E", [("a", "b")])
            kinds = [span.kind for span in _trace.tracer.spans]
            assert "incremental.insert" in kinds
            assert "incremental.delete" in kinds
            counters = _metrics.metrics.snapshot()["counters"]
            assert counters["incremental.inserts"] == 1
            assert counters["incremental.deletes"] == 1
            assert counters["incremental.delta_tuples_touched"] > 0
        finally:
            _metrics.disable_metrics()
            _trace.disable_tracing()


class TestSingleWriterContract:
    """Updates are single-writer: an overlapping ``apply`` -- from a
    second thread or reentrantly from inside the first -- must raise a
    clear ``RuntimeError`` and leave the in-flight update untouched.
    ``repro serve`` routes every update through one writer task and
    relies on this check as its backstop."""

    def test_overlap_raises_runtime_error(self):
        session = _session([("a", "b"), ("b", "c")])
        with session._exclusive_writer("insert", "E"):
            with pytest.raises(RuntimeError, match="single-writer"):
                session.insert_facts("E", [("c", "d")])
            with pytest.raises(RuntimeError, match="single-writer"):
                session.delete_facts("E", [("a", "b")])
        # The lock is released afterwards: normal updates proceed.
        session.insert_facts("E", [("c", "d")])
        assert session.relations == _expected(session)

    def test_concurrent_apply_from_second_thread(self, monkeypatch):
        import threading

        session = _session([("a", "b"), ("b", "c")])
        inside = threading.Event()
        release = threading.Event()
        original = session._insert_facts

        def slow_insert(predicate, rows, collect_profile=False):
            inside.set()
            assert release.wait(timeout=10)
            return original(predicate, rows, collect_profile)

        monkeypatch.setattr(session, "_insert_facts", slow_insert)
        first_result = {}

        def first_writer():
            first_result["value"] = session.insert_facts("E", [("c", "d")])

        thread = threading.Thread(target=first_writer)
        thread.start()
        try:
            assert inside.wait(timeout=10)
            # The first update is mid-apply on the other thread: a
            # second apply must be rejected immediately, not queued.
            with pytest.raises(RuntimeError, match="single-writer"):
                session.insert_facts("E", [("d", "a")])
            with pytest.raises(RuntimeError, match="concurrent or reentrant"):
                session.apply(Update("delete", "E", ("a", "b")))
        finally:
            release.set()
            thread.join(timeout=10)
        # The in-flight update completed untouched by the rejections.
        assert len(first_result["value"].applied) == 1
        assert session.update_count == 1
        assert session.relations == _expected(session)

    def test_reentrant_apply_raises(self, monkeypatch):
        session = _session([("a", "b"), ("b", "c")])
        original = session._insert_facts
        reentrant_error = {}

        def reentering_insert(predicate, rows, collect_profile=False):
            with pytest.raises(RuntimeError, match="single-writer") as info:
                session.delete_facts("E", [("a", "b")])
            reentrant_error["value"] = info.value
            return original(predicate, rows, collect_profile)

        monkeypatch.setattr(session, "_insert_facts", reentering_insert)
        session.insert_facts("E", [("c", "d")])
        assert "serialise updates through one writer" in str(
            reentrant_error["value"]
        )
        # The outer update itself was unaffected.
        assert session.update_count == 1
        assert session.relations == _expected(session)
