"""Tests for the Corollary 6.8 doubling reduction and its certificate."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import double_graph, even_simple_path_certificate
from repro.core.separations import T_NODE, midpoint
from repro.games.simulate import RandomPlayerOne, run_existential_game
from repro.graphs import DiGraph
from repro.graphs.generators import random_digraph
from repro.graphs.paths import (
    node_disjoint_simple_paths,
    simple_path_lengths,
)
from repro.patterns import EvenSimplePathQuery


def has_even_simple_path(graph, source, target):
    return any(
        n % 2 == 0 and n > 0
        for n in simple_path_lengths(graph, source, target)
    )


class TestDoubling:
    def test_shape(self):
        g = DiGraph(edges=[("a", "b")]).add_nodes(["c", "d"]).with_distinguished(
            {"s1": "a", "s2": "b", "s3": "c", "s4": "d"}
        )
        star = double_graph(g)
        assert star.has_edge("a", midpoint("a", "b"))
        assert star.has_edge(midpoint("a", "b"), "b")
        assert star.has_edge("b", "c")       # s2 -> s3
        assert star.has_edge("d", T_NODE)    # s4 -> t
        assert star.distinguished == {"s": "a", "t": T_NODE}

    def test_requires_four_distinguished(self):
        with pytest.raises(ValueError):
            double_graph(DiGraph(edges=[("a", "b")]))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_equivalence_on_random_graphs(self, seed):
        """Corollary 6.8's reduction identity, exhaustively checked:
        disjoint s1->s2 / s3->s4 paths in G  <=>  even simple s->t path
        in G*."""
        g = random_digraph(6, 0.3, seed)
        nodes = sorted(g.nodes)
        graph = g.with_distinguished(
            {"s1": nodes[0], "s2": nodes[1], "s3": nodes[2], "s4": nodes[3]}
        )
        disjoint = node_disjoint_simple_paths(
            graph, [(nodes[0], nodes[1]), (nodes[2], nodes[3])]
        ) is not None
        star = double_graph(graph)
        even = has_even_simple_path(star, nodes[0], T_NODE)
        assert disjoint == even


class TestCertificate:
    def test_sides(self):
        cert = even_simple_path_certificate(1)
        query = EvenSimplePathQuery()
        # A* has an even simple s -> t path; checking exhaustively on the
        # B* side is infeasible, so B*'s falsity follows from the (tested)
        # reduction identity plus B's falsity for k = 1... which is the
        # k = 2 base here; we check A* positively and B* via parity of
        # its only path shape through the clause block is impossible --
        # here we at least confirm the even path on A*.
        assert query.holds_exact(cert.a)

    def test_strategy_survives(self):
        cert = even_simple_path_certificate(1)
        for seed in range(8):
            transcript = run_existential_game(
                cert.a, cert.b, 1,
                RandomPlayerOne(cert.a, seed=seed),
                cert.fresh_strategy(), rounds=150,
            )
            assert transcript.player_two_survived

    def test_midpoint_answers_are_midpoints(self):
        from repro.games.simulate import PlaceMove, ScriptedPlayerOne

        cert = even_simple_path_certificate(1)
        # Find a midpoint node of A*.
        mid = next(
            node for node in cert.a_graph.nodes
            if isinstance(node, tuple) and len(node) == 3 and node[0] == "mid"
        )
        transcript = run_existential_game(
            cert.a, cert.b, 1,
            ScriptedPlayerOne([PlaceMove(0, mid)]),
            cert.fresh_strategy(), rounds=1,
        )
        assert transcript.player_two_survived
        __, answer = transcript.history[0]
        assert answer[0] == "mid"
