"""Unit and integration tests for the ``repro serve`` subsystem.

Covers the three layers bottom-up: the wire protocol (parsing,
validation, structured errors), the :class:`LiveView` (epochs, pinned
snapshots, both query paths, checkpoint/resume), and a live
:class:`ReproServer` exercised over real sockets (queries, updates,
subscriptions, tenant budgets, stats).  The serial-equivalence
differential suite and the kill/restart drill live in
``test_serve_differential.py`` and ``test_serve_faults.py``.
"""

import pytest

from repro.datalog.library import transitive_closure_program
from repro.graphs.digraph import DiGraph
from repro.guard import CheckpointMismatch, ResourceBudget
from repro.serve import protocol
from repro.serve.client import ServeError
from repro.serve.server import SERVE_ENGINES, ReproServer, ServeStats
from repro.serve.view import LiveView, ViewSnapshot, filter_rows

from tests.serve_utils import connect, running_server, tc_view


class TestProtocolParsing:
    def test_minimal_query(self):
        parsed = protocol.parse_request('{"op": "query"}')
        assert parsed == {
            "op": "query",
            "id": None,
            "tenant": None,
            "magic": False,
            "bind": None,
        }

    def test_bind_normalisation(self):
        parsed = protocol.parse_request(
            '{"op": "query", "bind": ["a", "_", null], "magic": true}'
        )
        assert parsed["bind"] == ["a", None, None]
        assert parsed["magic"] is True

    def test_integer_node_labels_round_trip(self):
        parsed = protocol.parse_request(
            '{"op": "insert", "predicate": "E", "row": [3, 7]}'
        )
        assert parsed["rows"] == [(3, 7)]
        query = protocol.parse_request('{"op": "query", "bind": [3, null]}')
        assert query["bind"] == [3, None]

    def test_update_row_and_rows(self):
        single = protocol.parse_request(
            '{"op": "insert", "predicate": "E", "row": ["a", "b"]}'
        )
        assert single["rows"] == [("a", "b")]
        multi = protocol.parse_request(
            '{"op": "delete", "predicate": "E", '
            '"rows": [["a", "b"], ["b", "c"]]}'
        )
        assert multi["rows"] == [("a", "b"), ("b", "c")]

    def test_id_and_tenant_pass_through(self):
        parsed = protocol.parse_request(
            '{"op": "ping", "id": 7, "tenant": "alice"}'
        )
        assert parsed["id"] == 7
        assert parsed["tenant"] == "alice"

    @pytest.mark.parametrize(
        "line,code",
        [
            ("", "parse_error"),
            ("not json", "parse_error"),
            ("[1, 2]", "parse_error"),
            ('{"no_op": 1}', "bad_request"),
            ('{"op": "frobnicate"}', "unknown_op"),
            ('{"op": "ping", "id": {"nested": 1}}', "bad_request"),
            ('{"op": "ping", "tenant": ""}', "bad_request"),
            ('{"op": "query", "magic": "yes"}', "bad_request"),
            ('{"op": "query", "bind": "ab"}', "bad_request"),
            ('{"op": "query", "bind": [true]}', "bad_request"),
            ('{"op": "query", "bind": [1.5]}', "bad_request"),
            ('{"op": "insert", "predicate": "E"}', "bad_request"),
            ('{"op": "insert", "predicate": "", "row": ["a"]}', "bad_request"),
            (
                '{"op": "insert", "predicate": "E", "rows": []}',
                "bad_request",
            ),
            (
                '{"op": "insert", "predicate": "E", "rows": [["a"], "b"]}',
                "bad_request",
            ),
            (
                '{"op": "insert", "predicate": "E", '
                '"row": ["a"], "rows": [["b"]]}',
                "bad_request",
            ),
        ],
    )
    def test_malformed_requests(self, line, code):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.parse_request(line)
        assert excinfo.value.code == code

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ValueError):
            protocol.ProtocolError("not_a_code", "boom")

    def test_encode_round_trips_as_one_line(self):
        import json

        payload = protocol.ok_response("ping", 3, epoch=4)
        encoded = protocol.encode(payload)
        assert encoded.endswith(b"\n")
        assert encoded.count(b"\n") == 1
        assert json.loads(encoded) == payload

    def test_error_response_coerces_unknown_code(self):
        response = protocol.error_response(None, "made_up", "x")
        assert response["error"]["code"] == "internal"

    def test_rows_payload_is_sorted_lists(self):
        assert protocol.rows_payload({("b", "a"), ("a", "b")}) == [
            ["a", "b"],
            ["b", "a"],
        ]


class TestFilterRows:
    ROWS = [("a", "b"), ("a", "c"), ("b", "c")]

    def test_none_binding_keeps_everything(self):
        assert sorted(filter_rows(self.ROWS, None)) == sorted(self.ROWS)

    def test_positional_filter(self):
        assert filter_rows(self.ROWS, ["a", None]) == [("a", "b"), ("a", "c")]
        assert filter_rows(self.ROWS, [None, "c"]) == [("a", "c"), ("b", "c")]
        assert filter_rows(self.ROWS, ["a", "c"]) == [("a", "c")]
        assert filter_rows(self.ROWS, ["c", None]) == []


class TestLiveView:
    def test_epoch_starts_at_zero_and_counts_updates(self):
        from repro.datalog.incremental import Update

        view = tc_view([("a", "b")])
        assert view.epoch == 0
        view.apply(Update("insert", "E", ("b", "c")))
        view.apply(Update("delete", "E", ("a", "b")))
        assert view.epoch == 2
        assert view.snapshot.epoch == 2

    def test_failed_update_does_not_move_the_epoch(self):
        from repro.datalog.incremental import Update

        view = tc_view([("a", "b")])
        before = view.snapshot
        with pytest.raises(ValueError):
            view.apply(Update("insert", "E", ("a", "zzz")))
        assert view.epoch == 0
        assert view.snapshot is before

    def test_snapshots_are_immutable_pins(self):
        from repro.datalog.incremental import Update

        view = tc_view([("a", "b"), ("b", "c")])
        pinned = view.snapshot
        before = set(pinned.goal_rows)
        view.apply(Update("insert", "E", ("c", "d")))
        # The pinned snapshot still answers at its own epoch.
        assert set(pinned.goal_rows) == before
        assert set(view.query_view(pinned, ["a", None])) == {
            row for row in before if row[0] == "a"
        }

    def test_view_and_magic_agree_on_pinned_snapshot(self):
        from repro.datalog.incremental import Update

        view = tc_view([("a", "b"), ("b", "c"), ("c", "d")])
        pinned = view.snapshot
        view.apply(Update("delete", "E", ("b", "c")))
        for bind in (None, ["a", None], [None, "d"], ["a", "d"], ["d", "a"]):
            filtered = set(view.query_view(pinned, bind))
            derived = set(view.query_magic(pinned, bind).answers)
            assert filtered == derived, bind

    def test_check_bind_rejects_bad_arity_and_nodes(self):
        view = tc_view([("a", "b")])
        with pytest.raises(ValueError, match="needs 2 entries"):
            view.query_view(view.snapshot, ["a"])
        with pytest.raises(ValueError, match="not in the graph"):
            view.query_view(view.snapshot, ["zzz", None])
        with pytest.raises(ValueError, match="unknown engine"):
            view.query_magic(view.snapshot, None, engine="nope")

    def test_checkpoint_resume_round_trip(self, tmp_path):
        from repro.datalog.incremental import Update

        view = tc_view([("a", "b"), ("b", "c")])
        view.apply(Update("insert", "E", ("c", "a")))
        path = str(tmp_path / "view.ckpt")
        view.checkpoint(path)
        resumed = LiveView.resume(
            transitive_closure_program(),
            DiGraph(nodes="abcd", edges=[("a", "b"), ("b", "c")])
            .to_structure(),
            path,
        )
        assert resumed.epoch == 1
        assert resumed.snapshot.goal_rows == view.snapshot.goal_rows
        assert resumed.snapshot.edb == view.snapshot.edb

    def test_resume_rejects_a_different_program(self, tmp_path):
        from repro.datalog.library import library_programs

        view = tc_view([("a", "b")])
        path = str(tmp_path / "view.ckpt")
        view.checkpoint(path)
        other = library_programs()["path-systems"]
        with pytest.raises(CheckpointMismatch):
            LiveView.resume(
                other,
                DiGraph(nodes="abcd", edges=[("a", "b")]).to_structure(),
                path,
            )


class TestServerIntegration:
    EDGES = [("a", "b"), ("b", "c"), ("c", "d")]

    def test_rejects_parallel_engine(self):
        view = tc_view(self.EDGES)
        assert "parallel" not in SERVE_ENGINES
        with pytest.raises(ValueError, match="unknown serve engine"):
            ReproServer(view, engine="parallel")

    def test_query_insert_subscribe_round_trip(self):
        with running_server(tc_view(self.EDGES)) as server:
            with connect(server) as client:
                assert client.ping()["epoch"] == 0
                full = client.query()
                assert full["epoch"] == 0
                assert ["a", "d"] in full["rows"]

                assert client.subscribe()["predicate"] == "S"
                inserted = client.insert("E", ["d", "a"])
                assert inserted["epoch"] == 1
                assert inserted["applied"] == 1
                (event,) = client.drain_events(1)
                assert event["event"] == "delta"
                assert event["epoch"] == 1
                assert ["d", "a"] in event["added"]

                bound = client.query(bind=["a", "_"])
                magic = client.query(bind=["a", "_"], magic=True)
                assert bound["epoch"] == magic["epoch"] == 1
                assert bound["rows"] == magic["rows"]

    def test_delete_pushes_removed_rows(self):
        with running_server(tc_view(self.EDGES)) as server:
            with connect(server) as client:
                client.subscribe()
                deleted = client.delete("E", ["b", "c"])
                assert deleted["epoch"] == 1
                (event,) = client.drain_events(1)
                assert ["a", "d"] in event["removed"]
                assert client.query()["rows"] == [["a", "b"], ["c", "d"]]

    def test_unsubscribe_stops_the_pushes(self):
        with running_server(tc_view(self.EDGES)) as server:
            with connect(server) as subscriber, connect(server) as writer:
                subscriber.subscribe()
                subscriber.unsubscribe()
                writer.insert("E", ["d", "a"])
                # The subscriber's next response would surface any stray
                # event first; drain via a plain request instead.
                assert subscriber.ping()["epoch"] == 1
                assert subscriber.events == []

    def test_structured_errors_keep_the_connection_alive(self):
        with running_server(tc_view(self.EDGES)) as server:
            with connect(server) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.insert("S", ["a", "b"])  # IDB: not updatable
                assert excinfo.value.code == "bad_request"
                with pytest.raises(ServeError) as excinfo:
                    client.query(bind=["zzz", "_"])
                assert excinfo.value.code == "bad_request"
                with pytest.raises(ServeError) as excinfo:
                    client.request("query", bind=["a"])
                assert excinfo.value.code == "bad_request"
                with pytest.raises(ServeError) as excinfo:
                    client.subscribe("E")  # EDB: not derivable
                assert excinfo.value.code == "bad_request"
                # Still serving after four rejected requests.
                assert client.ping()["ok"]

    def test_tenant_budget_trips_as_structured_error(self):
        budgets = {"tiny": ResourceBudget(max_tuples=1)}
        with running_server(
            tc_view(self.EDGES), tenant_budgets=budgets
        ) as server:
            with connect(server, tenant="tiny") as tiny:
                with pytest.raises(ServeError) as excinfo:
                    tiny.query(bind=["a", "_"], magic=True)
                assert excinfo.value.code == "budget_exceeded"
                # Non-magic reads never evaluate, so the budget cannot
                # trip them; the connection survived either way.
                assert tiny.query(bind=["a", "_"])["ok"]
            with connect(server) as unmetered:
                assert unmetered.query(bind=["a", "_"], magic=True)["ok"]

    def test_default_budget_applies_to_unnamed_tenants(self):
        with running_server(
            tc_view(self.EDGES),
            default_budget=ResourceBudget(max_tuples=1),
        ) as server:
            with connect(server) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.query(magic=True)
                assert excinfo.value.code == "budget_exceeded"

    def test_stats_reports_version_epoch_and_latency_quantiles(self):
        from repro._version import __version__

        with running_server(tc_view(self.EDGES)) as server:
            with connect(server, tenant="alice") as client:
                client.ping()
                client.query()
                client.insert("E", ["d", "a"])
                stats = client.stats()
        assert stats["version"] == __version__
        assert stats["protocol"] == protocol.PROTOCOL_VERSION
        assert stats["epoch"] == 1
        assert stats["goal"] == "S"
        assert stats["clients"] == 1
        assert stats["tenants"] == {"alice": 3}
        for verb in ("ping", "query", "insert"):
            summary = stats["verbs"][verb]
            assert summary["count"] >= 1
            assert (
                summary["p50_ms"]
                <= summary["p95_ms"]
                <= summary["p99_ms"]
            )

    def test_concurrent_clients_share_one_view(self):
        with running_server(tc_view(self.EDGES)) as server:
            clients = [connect(server) for _ in range(4)]
            try:
                for i, client in enumerate(clients):
                    response = client.insert("E", ["d", "a"])
                    # Idempotent insert: only the first applies, but
                    # every attempt is serialised and bumps the epoch.
                    assert response["epoch"] == i + 1
                    assert response["applied"] == (1 if i == 0 else 0)
                answers = [c.query()["rows"] for c in clients]
                assert all(rows == answers[0] for rows in answers)
            finally:
                for client in clients:
                    client.close()

    def test_checkpoint_cadence_counts_writes(self, tmp_path):
        path = str(tmp_path / "serve.ckpt")
        view = tc_view(self.EDGES)
        with running_server(
            view, checkpoint_path=path, checkpoint_every=2
        ) as server:
            with connect(server) as client:
                client.insert("E", ["d", "a"])   # epoch 1: no write
                client.insert("E", ["b", "d"])   # epoch 2: write 1
                client.delete("E", ["b", "d"])   # epoch 3: no write
                client.insert("E", ["a", "c"])   # epoch 4: write 2
                assert client.stats()["checkpoints_written"] == 2
        resumed = LiveView.resume(
            transitive_closure_program(),
            DiGraph(nodes="abcd", edges=self.EDGES).to_structure(),
            path,
        )
        assert resumed.epoch == 4
        assert resumed.snapshot.goal_rows == view.snapshot.goal_rows


class TestServeStats:
    def test_quantiles_are_nearest_rank(self):
        stats = ServeStats()
        for ms in range(1, 101):
            stats.observe("query", ms / 1000.0, None)
        summary = stats.summary()["verbs"]["query"]
        assert summary["count"] == 100
        assert summary["p50_ms"] == 50.0
        assert summary["p95_ms"] == 95.0
        assert summary["p99_ms"] == 99.0

    def test_tenant_counters_accumulate(self):
        stats = ServeStats()
        stats.observe("ping", 0.001, "a")
        stats.observe("query", 0.001, "a")
        stats.observe("query", 0.001, "b")
        stats.observe("query", 0.001, None)
        assert stats.summary()["tenants"] == {"a": 2, "b": 1}


class TestCliServeValidation:
    def test_serve_rejects_parallel_engine(self, capsys):
        from repro.cli import main

        code = main(
            ["serve", "transitive-closure", "missing.graph",
             "--engine", "parallel"]
        )
        assert code == 2
        assert "unknown serve engine" in capsys.readouterr().err

    def test_checkpoint_every_needs_checkpoint(self, capsys):
        from repro.cli import main

        code = main(
            ["serve", "transitive-closure", "missing.graph",
             "--checkpoint-every", "3"]
        )
        assert code == 2
        assert "--checkpoint-every needs --checkpoint" in (
            capsys.readouterr().err
        )

    def test_resume_needs_checkpoint_flag(self, capsys):
        from repro.cli import main

        code = main(
            ["serve", "transitive-closure", "missing.graph", "--resume"]
        )
        assert code == 2
        assert "--resume needs --checkpoint" in capsys.readouterr().err

    def test_malformed_tenant_spec(self, tmp_path, capsys):
        from repro.cli import main

        graph = tmp_path / "g.graph"
        graph.write_text("edge a b\n")
        code = main(
            ["serve", "transitive-closure", str(graph), "--tenant", "oops"]
        )
        assert code == 2
        assert "malformed --tenant" in capsys.readouterr().err

    def test_wal_needs_checkpoint(self, capsys):
        from repro.cli import main

        code = main(
            ["serve", "transitive-closure", "missing.graph",
             "--wal", "serve.wal"]
        )
        assert code == 2
        assert "--wal needs --checkpoint" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags,fragment",
        [
            (["--wal", "w", "--checkpoint", "c", "--fsync-interval", "0"],
             "--fsync-interval must be > 0"),
            (["--max-queue", "-1"], "--max-queue and --max-outbox"),
            (["--max-outbox", "-1"], "--max-queue and --max-outbox"),
            (["--history", "0"], "--history must be >= 1"),
        ],
    )
    def test_durability_flag_validation(self, capsys, flags, fragment):
        from repro.cli import main

        code = main(
            ["serve", "transitive-closure", "missing.graph", *flags]
        )
        assert code == 2
        assert fragment in capsys.readouterr().err


class TestProtocolV2:
    def test_protocol_version_bumped(self):
        assert protocol.PROTOCOL_VERSION == 2
        assert "health" in protocol.VERBS
        assert "overloaded" in protocol.ERROR_CODES

    def test_rid_parses_and_validates(self):
        parsed = protocol.parse_request(
            '{"op": "insert", "predicate": "E", "row": ["a", "b"], '
            '"rid": "c1-7"}'
        )
        assert parsed["rid"] == "c1-7"
        bare = protocol.parse_request(
            '{"op": "insert", "predicate": "E", "row": ["a", "b"]}'
        )
        assert bare["rid"] is None
        for bad in ('""', "7", "[1]"):
            with pytest.raises(protocol.ProtocolError) as excinfo:
                protocol.parse_request(
                    '{"op": "delete", "predicate": "E", "row": ["a"], '
                    f'"rid": {bad}}}'
                )
            assert excinfo.value.code == "bad_request"

    def test_from_epoch_parses_and_validates(self):
        parsed = protocol.parse_request(
            '{"op": "subscribe", "from_epoch": 12}'
        )
        assert parsed["from_epoch"] == 12
        assert protocol.parse_request('{"op": "subscribe"}')[
            "from_epoch"
        ] is None
        for bad in ("-1", "1.5", "true", '"3"'):
            with pytest.raises(protocol.ProtocolError) as excinfo:
                protocol.parse_request(
                    f'{{"op": "subscribe", "from_epoch": {bad}}}'
                )
            assert excinfo.value.code == "bad_request"

    def test_error_fields_ride_the_wire(self):
        error = protocol.ProtocolError(
            "overloaded", "queue full", retry_after_ms=75
        )
        assert error.fields == {"retry_after_ms": 75}
        response = protocol.error_response(
            4, error.code, str(error), **error.fields
        )
        assert response["error"]["retry_after_ms"] == 75
        assert response["error"]["code"] == "overloaded"

    def test_resync_event_shape(self):
        event = protocol.resync_event(
            9, "S", {("b", "a"), ("a", "b")}, "evicted"
        )
        assert event == {
            "event": "resync",
            "epoch": 9,
            "predicate": "S",
            "rows": [["a", "b"], ["b", "a"]],
            "reason": "evicted",
        }


class TestServerV2Integration:
    EDGES = [("a", "b"), ("b", "c"), ("c", "d")]

    def test_health_reports_pressure(self):
        with running_server(tc_view(self.EDGES), max_queue=8) as server:
            with connect(server) as client:
                client.insert("E", ["d", "a"])
                health = client.health()
        assert health["epoch"] == 1
        assert health["queue_depth"] == 0
        assert health["queue_capacity"] == 8
        assert health["clients"] == 1
        assert "wal" not in health  # no log attached

    def test_rid_dedupes_a_completed_request(self):
        with running_server(tc_view(self.EDGES)) as server:
            with connect(server) as client:
                first = client.insert("E", ["d", "a"], rid="req-1")
                assert first["epoch"] == 1
                assert "deduped" not in first
                retry = client.insert("E", ["d", "a"], rid="req-1")
                assert retry["deduped"] is True
                assert retry["epoch"] == 1
                assert retry["applied"] == first["applied"] == 1
                # The view moved once, not twice.
                assert client.ping()["epoch"] == 1
                assert client.stats()["deduped"] == 1

    def test_distinct_rids_apply_independently(self):
        with running_server(tc_view(self.EDGES)) as server:
            with connect(server) as client:
                client.insert("E", ["d", "a"], rid="x")
                client.delete("E", ["d", "a"], rid="y")
                assert client.ping()["epoch"] == 2

    def test_resubscribe_backfills_missed_deltas(self):
        with running_server(tc_view(self.EDGES)) as server:
            with connect(server) as writer, connect(server) as late:
                writer.insert("E", ["d", "a"])
                writer.delete("E", ["d", "a"])
                response = late.subscribe(from_epoch=0)
                assert response["backfilled"] == 2
                events = late.drain_events(2)
                assert [e["epoch"] for e in events] == [1, 2]
                assert ["d", "a"] in events[0]["added"]
                assert ["d", "a"] in events[1]["removed"]

    def test_resubscribe_past_the_history_resyncs(self):
        with running_server(tc_view(self.EDGES), history=1) as server:
            with connect(server) as writer, connect(server) as late:
                writer.insert("E", ["d", "a"])
                writer.insert("E", ["a", "c"])  # pushes epoch 1 out
                response = late.subscribe(from_epoch=0)
                assert response["backfilled"] == 0
                (event,) = late.drain_events(1)
                assert event["event"] == "resync"
                assert event["reason"] == "gap"
                assert event["epoch"] == 2
                assert event["rows"] == writer.query()["rows"]

    def test_up_to_date_resubscribe_backfills_nothing(self):
        with running_server(tc_view(self.EDGES)) as server:
            with connect(server) as client:
                client.insert("E", ["d", "a"])
                response = client.subscribe(from_epoch=1)
                assert response["backfilled"] == 0
                assert client.events == []
