"""Unit and property tests for the fixpoint engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import boolean_query, evaluate, parse_program, stages
from repro.datalog.library import (
    avoiding_path_program,
    transitive_closure_program,
)
from repro.graphs import DiGraph, has_path, reachable_from
from repro.graphs.generators import cycle_graph, path_graph, random_digraph


class TestTransitiveClosure:
    def test_on_path(self):
        result = evaluate(transitive_closure_program(), path_graph(4).to_structure())
        assert result.goal_relation == frozenset(
            (f"v{i}", f"v{j}") for i in range(4) for j in range(i + 1, 4)
        )

    def test_on_cycle(self):
        result = evaluate(transitive_closure_program(), cycle_graph(3).to_structure())
        assert len(result.goal_relation) == 9  # everything reaches everything

    def test_matches_bfs_on_random_graphs(self):
        program = transitive_closure_program()
        for seed in range(5):
            g = random_digraph(7, 0.25, seed)
            relation = evaluate(program, g.to_structure()).goal_relation
            for u in g.nodes:
                for v in g.nodes:
                    # TC holds iff a path with >= 1 edge runs u -> v.
                    nonempty = any(
                        v in reachable_from(g, w) for w in g.successors(u)
                    )
                    assert ((u, v) in relation) == nonempty


class TestAvoidingPath:
    def test_example_2_1_semantics(self):
        from repro.graphs.paths import avoiding_path_exists

        program = avoiding_path_program()
        for seed in range(4):
            g = random_digraph(6, 0.3, seed)
            relation = evaluate(program, g.to_structure()).goal_relation
            for x in g.nodes:
                for y in g.nodes:
                    for w in g.nodes:
                        assert ((x, y, w) in relation) == avoiding_path_exists(
                            g, x, y, {w}
                        )


class TestEngineMechanics:
    def test_naive_equals_seminaive_equals_indexed(self):
        program = avoiding_path_program()
        for seed in range(4):
            s = random_digraph(6, 0.3, seed).to_structure()
            naive = evaluate(program, s, method="naive").relations
            semi = evaluate(program, s, method="seminaive").relations
            indexed = evaluate(program, s, method="indexed").relations
            assert naive == semi == indexed

    def test_stages_are_increasing_and_converge(self):
        program = transitive_closure_program()
        s = path_graph(5).to_structure()
        stage_list = stages(program, s)
        for earlier, later in zip(stage_list, stage_list[1:]):
            assert earlier["S"] <= later["S"]
        final = evaluate(program, s).relations
        assert stage_list[-1] == final

    def test_stage_count_matches_depth(self):
        # On an n-node path TC needs n-1 stages to stabilise (+1 to detect).
        program = transitive_closure_program()
        stage_list = stages(program, path_graph(5).to_structure())
        assert len(stage_list) == 5

    def test_facts_and_constants(self):
        g = path_graph(3).with_distinguished({"t1": "v0", "t2": "v2"})
        program = parse_program(
            """
            D($t1, $t2).
            Goal() :- D(x, y), E(x, z), E(z, y).
            """,
            goal="Goal",
        )
        assert boolean_query(program, g.to_structure())

    def test_missing_constant_raises(self):
        program = parse_program("D(x) :- E(x, $s).", goal="D")
        with pytest.raises(ValueError, match="constant"):
            evaluate(program, path_graph(2).to_structure())

    def test_missing_edb_raises(self):
        program = parse_program("D(x) :- R(x).", goal="D")
        with pytest.raises(ValueError, match="EDB"):
            evaluate(program, path_graph(2).to_structure())

    def test_extra_edb_override(self):
        program = parse_program("D(x, y) :- R(x, y).", goal="D")
        s = path_graph(2).to_structure()
        result = evaluate(program, s, extra_edb={"R": [("v1", "v0")]})
        assert result.goal_relation == frozenset({("v1", "v0")})

    def test_universe_ranging_head_variable(self):
        # u occurs only in the head: it ranges over the whole universe.
        program = parse_program("D(x, u) :- E(x, y).", goal="D")
        s = path_graph(3).to_structure()
        result = evaluate(program, s).goal_relation
        assert result == frozenset(
            (x, u) for x in ("v0", "v1") for u in ("v0", "v1", "v2")
        )

    def test_head_only_variables_pinned_across_methods(self):
        """Regression: the free-variable universe product is hoisted out
        of the per-binding loop in ``_rule_bindings``; the result set on
        a program whose head mixes bound, free, and constrained-free
        variables must stay exactly this, for every engine."""
        program = parse_program(
            "D(x, u, w) :- E(x, y), u != w, u != x.", goal="D"
        )
        s = path_graph(3).to_structure()
        universe = ("v0", "v1", "v2")
        expected = frozenset(
            (x, u, w)
            for x in ("v0", "v1")  # E's sources
            for u in universe
            for w in universe
            if u != w and u != x
        )
        for method in ("naive", "seminaive", "indexed"):
            result = evaluate(program, s, method=method)
            assert result.goal_relation == expected, method

    def test_inequality_only_variable(self):
        program = parse_program("D(x) :- E(x, y), x != $s.", goal="D")
        g = path_graph(3).with_distinguished({"s": "v0"})
        assert evaluate(program, g.to_structure()).goal_relation == frozenset(
            {("v1",)}
        )

    def test_equality_binding(self):
        program = parse_program("D(x, z) :- E(x, y), z = y.", goal="D")
        s = path_graph(3).to_structure()
        assert evaluate(program, s).goal_relation == frozenset(
            {("v0", "v1"), ("v1", "v2")}
        )

    def test_nullary_goal(self):
        program = parse_program("Yes() :- E(x, y).", goal="Yes")
        assert boolean_query(program, path_graph(2).to_structure())
        assert not boolean_query(
            program, DiGraph(nodes=[1, 2]).to_structure()
        )

    def test_unknown_method_rejected(self):
        program = transitive_closure_program()
        with pytest.raises(ValueError):
            evaluate(program, path_graph(2).to_structure(), method="magic")


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_naive_seminaive_agree_on_random_graphs(seed):
    """Property: the two engines compute identical fixpoints."""
    program = parse_program(
        """
        S(x, y) :- E(x, y).
        S(x, y) :- S(x, z), S(z, y), x != y.
        """,
        goal="S",
    )
    s = random_digraph(6, 0.3, seed).to_structure()
    assert (
        evaluate(program, s, method="naive").relations
        == evaluate(program, s, method="seminaive").relations
        == evaluate(program, s, method="indexed").relations
    )
