"""Tests for the monotonicity / preservation properties (Section 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    is_monotone_on,
    is_strongly_monotone_on,
    random_extension,
    random_identification,
)
from repro.core.expressibility import identify_elements
from repro.datalog import evaluate, parse_program
from repro.datalog.library import (
    avoiding_path_program,
    transitive_closure_program,
)
from repro.graphs import DiGraph
from repro.graphs.generators import path_graph, random_digraph


class TestHelpers:
    def test_random_extension_is_superstructure(self):
        s = path_graph(3).to_structure()
        bigger = random_extension(s, seed=1)
        assert s.universe <= bigger.universe
        assert s.relation("E") <= bigger.relation("E")

    def test_identify_elements(self):
        s = path_graph(3).to_structure()
        q = identify_elements(s, "v2", "v0")
        assert len(q) == 2
        assert q.holds("E", ("v1", "v0"))  # the v1 -> v2 edge collapsed

    def test_identification_protects_constants(self):
        g = path_graph(3).with_distinguished({"s": "v0", "t": "v2"})
        result = random_identification(g.to_structure(), seed=0)
        assert result is None  # only v1 is unprotected: nothing to merge


class TestDatalogStrongMonotonicity:
    """Pure Datalog queries are strongly monotone."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_tc_preserved_under_extension(self, seed):
        program = transitive_closure_program()
        s = random_digraph(5, 0.3, seed).to_structure()
        assert is_monotone_on(program, s, random_extension(s, seed))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_tc_preserved_under_identification(self, seed):
        program = transitive_closure_program()
        s = random_digraph(5, 0.3, seed).to_structure()
        result = random_identification(s, seed)
        if result is None:
            return
        __, victim, survivor = result
        assert is_strongly_monotone_on(program, s, victim, survivor)


class TestDatalogNeqMonotonicity:
    """Datalog(!=) queries are monotone but not strongly monotone."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_avoiding_path_preserved_under_extension(self, seed):
        program = avoiding_path_program()
        s = random_digraph(5, 0.3, seed).to_structure()
        assert is_monotone_on(program, s, random_extension(s, seed))

    def test_avoiding_path_not_strongly_monotone(self):
        """The paper's Section 2 remark, witnessed concretely: collapse
        the avoided node onto the path and the w-avoiding path dies."""
        program = avoiding_path_program()
        # v0 -> v1 -> v2 with a spare node w.
        g = DiGraph(nodes=["w"], edges=[("v0", "v1"), ("v1", "v2")])
        s = g.to_structure()
        before = evaluate(program, s).goal_relation
        assert ("v0", "v2", "w") in before
        # Identify w with v1: the only v0 -> v2 path now goes through w.
        assert not is_strongly_monotone_on(program, s, "w", "v1")

    def test_inequality_filters_under_identification(self):
        program = parse_program("D(x, y) :- E(x, y), x != y.", goal="D")
        g = DiGraph(edges=[("a", "b")])
        s = g.to_structure()
        assert not is_strongly_monotone_on(program, s, "b", "a")
