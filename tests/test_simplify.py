"""Tests for the formula simplifier."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.ast import Variable
from repro.graphs.generators import random_digraph
from repro.logic import (
    And,
    AtomF,
    Eq,
    Exists,
    Neq,
    Or,
    evaluate_formula,
    falsum,
    formula_size,
    path_formula,
    separating_sentence,
    simplify_formula,
    variable_width,
    verum,
)
from repro.logic.formulas import Not
from repro.logic.evaluation import enumerate_assignments
from repro.logic.width import free_variables
from repro.graphs.generators import path_pair_structures

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
EDGE = AtomF("E", (X, Y))


class TestRules:
    def test_trivial_equality(self):
        assert simplify_formula(Eq(X, X)) == verum()
        assert simplify_formula(Neq(X, X)) == falsum()

    def test_conjunction_absorbs_truth(self):
        assert simplify_formula(And([verum(), EDGE, verum()])) == EDGE

    def test_conjunction_collapses_on_falsity(self):
        assert simplify_formula(And([EDGE, falsum()])) == falsum()

    def test_disjunction_dual(self):
        assert simplify_formula(Or([EDGE, verum()])) == verum()
        assert simplify_formula(Or([falsum(), EDGE])) == EDGE

    def test_flattening_and_dedup(self):
        nested = And([And([EDGE, EDGE]), And([EDGE])])
        assert simplify_formula(nested) == EDGE

    def test_exists_keeps_empty_structure_semantics(self):
        """(exists v) TRUE must stay quantified (false on empty universe)."""
        formula = simplify_formula(Exists(X, verum()))
        assert isinstance(formula, Exists)

    def test_exists_of_false_is_false(self):
        assert simplify_formula(Exists(X, falsum())) == falsum()

    def test_double_negation(self):
        assert simplify_formula(Not(Not(EDGE))) == EDGE

    def test_size_measure(self):
        assert formula_size(EDGE) == 1
        assert formula_size(And([EDGE, Eq(X, Y)])) == 3


class TestEquivalence:
    def test_separating_sentences_shrink_and_stay_correct(self):
        short, long_ = path_pair_structures(3, 6)
        phi = separating_sentence(long_, short, 2)
        slim = simplify_formula(phi)
        assert formula_size(slim) < formula_size(phi)
        assert variable_width(slim) <= 2
        assert evaluate_formula(slim, long_)
        assert not evaluate_formula(slim, short)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2_000), st.integers(min_value=1, max_value=3))
    def test_path_formula_equivalence(self, seed, n):
        structure = random_digraph(4, 0.4, seed).to_structure()
        formula = path_formula(n)
        slim = simplify_formula(formula)
        for assignment in enumerate_assignments(structure, (X, Y)):
            assert evaluate_formula(formula, structure, assignment) == (
                evaluate_formula(slim, structure, assignment)
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_extracted_sentence_equivalence(self, seed):
        a = random_digraph(3, 0.4, seed).to_structure()
        b = random_digraph(3, 0.4, seed + 99).to_structure()
        phi = separating_sentence(a, b, 2)
        if phi is None:
            return
        slim = simplify_formula(phi)
        assert free_variables(slim) == free_variables(phi)
        for structure in (a, b):
            assert evaluate_formula(slim, structure) == (
                evaluate_formula(phi, structure)
            )
