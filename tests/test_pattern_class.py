"""Tests for class C and its H1/H2/H3 characterisation (Section 6)."""

import itertools

import pytest

from repro.fhw.pattern_class import (
    H1,
    H2,
    H3,
    classify_pattern,
    complement_witness,
    is_in_class_c,
    pattern_h1,
    pattern_h2,
    pattern_h3,
)
from repro.graphs import DiGraph


class TestMembership:
    def test_out_star(self):
        star = DiGraph(edges=[("r", "a"), ("r", "b"), ("r", "c")])
        membership = classify_pattern(star)
        assert membership.in_class_c
        assert membership.root == "r"
        assert membership.orientation == "out"
        assert not membership.has_self_loop

    def test_in_star(self):
        star = DiGraph(edges=[("a", "r"), ("b", "r")])
        membership = classify_pattern(star)
        assert membership.in_class_c
        assert membership.orientation == "in"

    def test_single_edge_is_in_c(self):
        assert is_in_class_c(DiGraph(edges=[("u", "v")]))

    def test_pure_self_loop(self):
        membership = classify_pattern(DiGraph(edges=[("r", "r")]))
        assert membership.in_class_c
        assert membership.orientation == "both"
        assert membership.has_self_loop

    def test_loop_plus_star(self):
        pattern = DiGraph(edges=[("r", "r"), ("r", "a")])
        membership = classify_pattern(pattern)
        assert membership.in_class_c
        assert membership.has_self_loop

    def test_in_out_node_not_in_c(self):
        # u -> r -> v: r is neither head nor tail of every edge.
        assert not is_in_class_c(DiGraph(edges=[("u", "r"), ("r", "v")]))

    def test_isolated_nodes_ignored(self):
        pattern = DiGraph(nodes=["lonely"], edges=[("r", "a")])
        assert is_in_class_c(pattern)


class TestObstructions:
    def test_the_three_minimal_patterns(self):
        assert complement_witness(pattern_h1())[0] == H1
        assert complement_witness(pattern_h2())[0] == H2
        assert complement_witness(pattern_h3())[0] == H3

    def test_class_c_patterns_have_no_witness(self):
        star = DiGraph(edges=[("r", "a"), ("r", "b")])
        assert complement_witness(star) is None

    def test_witness_nodes_form_the_obstruction(self):
        witness = complement_witness(pattern_h2())
        kind, nodes = witness
        assert kind == H2
        u, v, w = nodes
        assert len({u, v, w}) == 3

    def test_classification_reports_obstruction(self):
        membership = classify_pattern(pattern_h1())
        assert not membership.in_class_c
        assert membership.obstruction[0] == H1


def all_small_patterns(max_nodes, max_edges):
    """Every digraph (up to labelling) on at most max_nodes nodes with
    1..max_edges edges and no isolated nodes."""
    nodes = list(range(max_nodes))
    possible = [(u, v) for u in nodes for v in nodes]
    for count in range(1, max_edges + 1):
        for edges in itertools.combinations(possible, count):
            yield DiGraph(edges=edges).without_isolated_nodes()


def test_characterisation_exhaustively():
    """Section 6.2's claim, machine-checked: a pattern (no isolated
    nodes) is outside C iff it contains H1, H2, or H3 -- exhaustively
    over all patterns with up to 4 nodes and 3 edges."""
    for pattern in all_small_patterns(4, 3):
        witness = complement_witness(pattern)
        assert is_in_class_c(pattern) == (witness is None), pattern.edges


def test_classification_never_crashes_on_small_patterns():
    for pattern in all_small_patterns(3, 3):
        membership = classify_pattern(pattern)
        assert membership.in_class_c == is_in_class_c(pattern)
