"""Differential testing of the six engines.

The naive, semi-naive, indexed, codegen, and parallel engines (every
entry of :data:`repro.datalog.evaluation.METHODS`; parallel runs here
in its inline ``workers=1`` configuration -- the multi-worker pool is
differentially pinned by ``tests/test_parallel.py``) must be
observationally identical: same final relations, same goal relation,
same per-round stage sequence ``Theta^1 <= Theta^2 <= ...``, same
iteration count, same semantic profile view.  This harness checks the
property on

* a seeded stream of random (program, structure) pairs -- plain
  ``random``, no hypothesis, so the corpus is reproducible and its size
  (several hundred pairs) is guaranteed rather than budgeted; and
* every concrete program of :mod:`repro.datalog.library` on structure
  families fitting its vocabulary.

The algebra engine -- the sixth -- has no stage/iteration contract of
its own beyond fixpoint equality, so it joins the comparison on
relations and the semantic profile view only.
"""

import itertools
import random

import pytest

from repro.datalog import evaluate, evaluate_algebra
from repro.datalog.ast import (
    Atom,
    Constant,
    Equality,
    Inequality,
    Program,
    Rule,
    Variable,
)
from repro.datalog.evaluation import METHODS
from repro.datalog.library import (
    avoiding_path_program,
    path_systems_program,
    q_program,
    q_program_as_displayed,
    rooted_star_homeomorphism_program,
    transitive_closure_program,
    two_disjoint_paths_from_source_program,
)
from repro.graphs.generators import path_graph, random_digraph
from repro.structures import Structure, Vocabulary

#: Number of seeded random (program, structure) pairs; the acceptance
#: bar is "at least 200".
PAIR_COUNT = 240

_VARIABLES = tuple(Variable(name) for name in ("x", "y", "z", "u"))
#: predicate name -> (arity, is_edb)
_PREDICATES = {"E": (2, True), "P": (2, False), "R": (1, False)}


def _random_atom(rng: random.Random, predicates) -> Atom:
    name = rng.choice(predicates)
    arity, __ = _PREDICATES[name]
    return Atom(name, tuple(rng.choice(_VARIABLES) for __ in range(arity)))


def _random_rule(rng: random.Random) -> Rule:
    head_name = rng.choice(["P", "P", "R"])  # goal predicate favoured
    arity, __ = _PREDICATES[head_name]
    head = Atom(head_name, tuple(rng.choice(_VARIABLES) for __ in range(arity)))
    body: list = []
    for __ in range(rng.randint(1, 3)):
        body.append(_random_atom(rng, ["E", "E", "P", "R"]))
    for __ in range(rng.randint(0, 2)):
        left, right = rng.choice(_VARIABLES), rng.choice(_VARIABLES)
        constraint = Inequality if rng.random() < 0.8 else Equality
        body.append(constraint(left, right))
    rng.shuffle(body)
    return Rule(head, body)


def _random_program(rng: random.Random) -> Program:
    rules = [_random_rule(rng) for __ in range(rng.randint(1, 3))]
    # Guarantee E occurs (so the program has an EDB) and that P and R
    # are always defined (so a body occurrence never creates a spurious
    # EDB the structure cannot interpret).
    rules.append(
        Rule(
            Atom("P", (_VARIABLES[0], _VARIABLES[1])),
            [Atom("E", (_VARIABLES[0], _VARIABLES[1]))],
        )
    )
    rules.append(
        Rule(
            Atom("R", (_VARIABLES[1],)),
            [Atom("E", (_VARIABLES[0], _VARIABLES[1]))],
        )
    )
    return Program(rules, goal="P")


def _random_structure(rng: random.Random) -> Structure:
    nodes = rng.randint(3, 5)
    return random_digraph(nodes, rng.uniform(0.15, 0.5), rng.randrange(10**6)).to_structure()


def _assert_engines_agree(program, structure, extra_edb=None):
    results = {
        method: evaluate(
            program,
            structure,
            extra_edb=extra_edb,
            method=method,
            collect_stages=True,
            collect_profile=True,
        )
        for method in METHODS
    }
    reference = results["naive"]
    for method, result in results.items():
        assert result.relations == reference.relations, method
        assert result.goal_relation == reference.goal_relation, method
        assert result.stages == reference.stages, method
        assert result.iterations == reference.iterations, method
        # The semantic half of the profile -- per-round delta sizes and
        # per-rule firings (distinct new head tuples), not timings or
        # binding counts -- is an engine-independent observable.
        assert (
            result.profile.semantic_view()
            == reference.profile.semantic_view()
        ), method
    return reference


def test_random_pairs_all_engines_agree():
    """The acceptance corpus: >= 200 seeded random (program, structure)
    pairs on which every engine agrees on every observable."""
    rng = random.Random(20260805)
    algebra_checked = 0
    for pair in range(PAIR_COUNT):
        program = _random_program(rng)
        structure = _random_structure(rng)
        reference = _assert_engines_agree(program, structure)
        if pair % 8 == 0:  # algebra engine: fixpoint + semantic profile
            algebra = evaluate_algebra(program, structure, collect_profile=True)
            assert algebra.relations == reference.relations, pair
            assert (
                algebra.profile.semantic_view()
                == reference.profile.semantic_view()
            ), pair
            algebra_checked += 1
    assert algebra_checked >= 30


def test_random_pairs_with_head_only_variables():
    """Universe-ranged head variables exercise the enumeration path of
    every engine; the random stream above produces them only by luck,
    so force a dedicated corpus."""
    rng = random.Random(91)
    for __ in range(40):
        free = rng.choice([v for v in _VARIABLES[2:]])
        head = Atom("P", (_VARIABLES[0], free))
        body: list = [Atom("E", (_VARIABLES[0], _VARIABLES[1]))]
        if rng.random() < 0.5:
            body.append(Inequality(free, _VARIABLES[0]))
        program = Program([Rule(head, body)], goal="P")
        _assert_engines_agree(program, _random_structure(rng))


GRAPH_LIBRARY_PROGRAMS = {
    "transitive-closure": transitive_closure_program(),
    "avoiding-path": avoiding_path_program(),
    "two-disjoint-from-source": two_disjoint_paths_from_source_program(),
    "q-1-1": q_program(1, 1),
    "q-2-0": q_program(2, 0),
    "q-2-1": q_program(2, 1),
    "q-2-1-displayed": q_program_as_displayed(2, 1),
    "q-2-0-reversed": q_program(2, 0, reverse=True),
    "star-2": rooted_star_homeomorphism_program(2),
    "star-1-loop": rooted_star_homeomorphism_program(1, self_loop=True),
    "star-0-loop": rooted_star_homeomorphism_program(0, self_loop=True),
}


@pytest.mark.parametrize("name", sorted(GRAPH_LIBRARY_PROGRAMS))
def test_library_programs_all_engines_agree(name):
    program = GRAPH_LIBRARY_PROGRAMS[name]
    structures = [
        path_graph(5).to_structure(),
        random_digraph(5, 0.35, seed=1, loops=True).to_structure(),
        random_digraph(6, 0.25, seed=4).to_structure(),
    ]
    for structure in structures:
        _assert_engines_agree(program, structure)


def test_path_systems_program_all_engines_agree():
    rng = random.Random(5)
    nodes = list(range(10))
    voc = Vocabulary({"Axiom": 1, "Rule": 3})
    for __ in range(4):
        axioms = rng.sample(nodes, 2)
        rules = [
            tuple(rng.choice(nodes) for __ in range(3)) for __ in range(12)
        ]
        structure = Structure(
            voc, nodes, {"Axiom": [(a,) for a in axioms], "Rule": rules}
        )
        _assert_engines_agree(path_systems_program(), structure)


def test_extra_edb_all_engines_agree():
    """Theorem 6.1's layered evaluation (T fed in as an EDB)."""
    structure = random_digraph(5, 0.3, seed=2).to_structure()
    t_relation = evaluate(avoiding_path_program(), structure).goal_relation
    layered = Program(
        [
            Rule(
                Atom("Q", (Variable("s"), Variable("s1"), Variable("s2"))),
                [
                    Atom("E", (Variable("s"), Variable("s2"))),
                    Atom("T", (Variable("s"), Variable("s1"), Variable("s2"))),
                ],
            )
        ],
        goal="Q",
    )
    _assert_engines_agree(layered, structure, extra_edb={"T": t_relation})


def test_constants_all_engines_agree():
    g = path_graph(4).with_distinguished({"s": "v0", "t": "v3"})
    program = Program(
        [
            Rule(
                Atom("D", (Variable("x"),)),
                [
                    Atom("E", (Constant("s"), Variable("x"))),
                    Inequality(Variable("x"), Constant("t")),
                ],
            ),
            Rule(
                Atom("D", (Variable("y"),)),
                [
                    Atom("D", (Variable("x"),)),
                    Atom("E", (Variable("x"), Variable("y"))),
                    Inequality(Variable("y"), Constant("t")),
                ],
            ),
        ],
        goal="D",
    )
    reference = _assert_engines_agree(program, g.to_structure())
    assert reference.goal_relation == frozenset({("v1",), ("v2",)})


def test_stage_sequences_are_engine_independent_and_cumulative():
    """The recorded rounds are the paper's Theta^i for every engine."""
    program = transitive_closure_program()
    structure = path_graph(6).to_structure()
    per_engine = {
        method: evaluate(
            program, structure, method=method, collect_stages=True
        ).stages
        for method in METHODS
    }
    reference = per_engine["naive"]
    assert all(stages == reference for stages in per_engine.values())
    for earlier, later in itertools.pairwise(reference):
        assert earlier["S"] <= later["S"]
