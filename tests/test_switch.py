"""Tests for the reconstructed switch gadget (Figure 1 / Lemma 6.4)."""

import pytest

from repro.fhw.switch import (
    Switch,
    build_switch,
    check_switch_lemma,
    passing_paths,
)


@pytest.fixture(scope="module")
def switch():
    return build_switch("test")


@pytest.fixture(scope="module")
def lemma_report(switch):
    return check_switch_lemma(switch)


class TestShape:
    def test_node_and_edge_counts(self, switch):
        graph = switch.graph()
        # 24 interior nodes (1..12 plain and primed) + 8 terminals.
        assert len(graph) == 32
        assert graph.number_of_edges() == 36  # 6 paths x 4 + 12 terminal edges

    def test_entries_and_exits(self, switch):
        graph = switch.graph()
        assert graph.sources() == {
            switch.terminal(x) for x in ("b", "c", "e", "g")
        }
        assert graph.sinks() == {
            switch.terminal(x) for x in ("a", "d", "f", "h")
        }

    def test_named_paths_have_seven_nodes(self, switch):
        for name, path in switch.paths().named().items():
            assert len(path) == 7, name

    def test_tagging_isolates_instances(self):
        first, second = Switch(0), Switch(1)
        assert not (first.nodes() & second.nodes())

    def test_unknown_terminal_rejected(self, switch):
        with pytest.raises(ValueError):
            switch.terminal("z")


class TestLemma64:
    def test_report_holds(self, lemma_report):
        assert lemma_report.holds, lemma_report

    def test_individual_properties(self, lemma_report):
        assert lemma_report.named_paths_pass_through
        assert lemma_report.p_family_disjoint
        assert lemma_report.q_family_disjoint
        assert lemma_report.crossings_intersect
        assert lemma_report.pair_condition
        assert lemma_report.third_path_unique
        assert lemma_report.equal_lengths

    def test_brand_coupling_nodes(self, switch):
        """The six crossings occur at the interior nodes 2, 4, 9 and
        their primed twins -- the mechanism of the reduction."""
        inter = lambda p, q: set(switch.interior(p)) & set(switch.interior(q))
        assert inter("p_ca", "q_bd") == {switch.node("2")}
        assert inter("p_ca", "q_gh") == {switch.node("4")}
        assert inter("p_bd", "q_ca") == {switch.node("2'")}
        assert inter("p_bd", "q_gh") == {switch.node("9")}
        assert inter("p_ef", "q_ca") == {switch.node("4'")}
        assert inter("p_ef", "q_bd") == {switch.node("9'")}

    def test_p_ef_and_q_gh_disjoint(self, switch):
        """The only p/q pair allowed to be disjoint (their exclusion is
        mediated through the b..d segment)."""
        assert not (
            set(switch.full_path("p_ef")) & set(switch.full_path("q_gh"))
        )

    def test_passing_paths_include_strays(self, switch):
        """The reconstruction admits extra passing paths (e.g. mixed
        brand detours); Lemma 6.4 constrains only disjoint pairs meeting
        the a/b condition, which the report certifies."""
        through = list(passing_paths(switch))
        named = set(switch.paths().named().values())
        assert named <= set(through)
        assert len(through) > len(named)
