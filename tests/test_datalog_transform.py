"""Tests for the program transformation passes."""

import pytest

from repro.datalog import evaluate, parse_program
from repro.datalog.library import (
    avoiding_path_program,
    q_program,
    transitive_closure_program,
)
from repro.datalog.parser import parse_rule
from repro.datalog.transform import (
    merge_programs,
    prune_unreachable,
    reachable_predicates,
    rename_predicates,
    rename_variables_apart,
    required_edb_predicates,
)
from repro.graphs.generators import random_digraph


@pytest.fixture
def structure():
    return random_digraph(5, 0.35, seed=8).to_structure()


class TestRenamePredicates:
    def test_idb_rename_preserves_semantics(self, structure):
        program = transitive_closure_program()
        renamed = rename_predicates(program, {"S": "Reach"})
        assert renamed.goal == "Reach"
        assert evaluate(renamed, structure).goal_relation == (
            evaluate(program, structure).goal_relation
        )

    def test_edb_rename(self):
        program = rename_predicates(
            transitive_closure_program(), {"E": "Link"}
        )
        assert program.edb_predicates == {"Link"}

    def test_non_injective_rejected(self):
        with pytest.raises(ValueError, match="injective"):
            rename_predicates(
                avoiding_path_program(), {"T": "X", "E": "X"}
            )

    def test_collapse_rejected(self):
        with pytest.raises(ValueError, match="collapses"):
            rename_predicates(avoiding_path_program(), {"T": "E"})


class TestMerge:
    def test_layering_q_over_t(self, structure):
        """Rebuild the Theorem 6.1 illustration by merging."""
        t_rules = avoiding_path_program()
        q_rules = parse_program(
            """
            Q(s, s1, s2) :- E(s, s2), T(s, s1, s2).
            Q(s, s1, s2) :- Q(s, s1, w), E(w, s2), T(s, s1, s2).
            """,
            goal="Q",
        )
        merged = merge_programs(q_rules, t_rules, goal="Q")
        from repro.datalog.library import two_disjoint_paths_from_source_program

        reference = two_disjoint_paths_from_source_program()
        assert evaluate(merged, structure).goal_relation == (
            evaluate(reference, structure).goal_relation
        )

    def test_arity_conflicts_rejected(self):
        a = parse_program("P(x) :- E(x, x).", goal="P")
        b = parse_program("P(x, y) :- E(x, y).", goal="P")
        with pytest.raises(ValueError):
            merge_programs(a, b, goal="P")


class TestPrune:
    def test_reachability(self):
        program = q_program(2, 0)
        assert reachable_predicates(program) == {"Q_2_0", "Q_1_1"}

    def test_pruning_preserves_goal(self, structure):
        base = q_program(2, 0)
        # Add a junk predicate no one uses.
        junk = parse_program("Junk(x, y) :- E(x, y), Junk(y, x).", goal="Junk")
        bloated = merge_programs(base, junk, goal=base.goal)
        pruned = prune_unreachable(bloated)
        assert "Junk" not in pruned.idb_predicates
        assert evaluate(pruned, structure).goal_relation == (
            evaluate(base, structure).goal_relation
        )

    def test_idempotent(self):
        program = prune_unreachable(q_program(3, 0))
        assert prune_unreachable(program) == program

    def test_head_only_predicate_is_unreachable(self):
        """A predicate that only ever appears in heads (a fact-like
        stub) must not count as reachable just because it has rules."""
        program = parse_program(
            """
            S(x, y) :- E(x, y).
            Stub(x, x) :- E(x, x).
            """,
            goal="S",
        )
        assert reachable_predicates(program) == {"S"}
        pruned = prune_unreachable(program)
        assert pruned.idb_predicates == {"S"}

    def test_include_edb_reports_goal_relevant_edbs_only(self):
        program = parse_program(
            """
            S(x, y) :- E(x, y).
            Junk(x) :- F(x, x).
            """,
            goal="S",
        )
        assert reachable_predicates(program) == {"S"}
        assert reachable_predicates(program, include_edb=True) == {"S", "E"}
        assert required_edb_predicates(program) == {"E"}
        assert program.edb_predicates == {"E", "F"}

    def test_empty_edb_program(self):
        """A fact-only program has no required EDBs; pruning keeps the
        goal facts and evaluation still works."""
        program = parse_program(
            """
            S($a, $b).
            Stub($a).
            """,
            goal="S",
        )
        assert required_edb_predicates(program) == set()
        pruned = prune_unreachable(program)
        assert pruned.idb_predicates == {"S"}
        from repro.graphs.generators import path_graph

        structure = path_graph(2).to_structure().with_constants(
            {"a": "v0", "b": "v1"}
        )
        assert evaluate(pruned, structure).goal_relation == {("v0", "v1")}

    def test_pruning_unlocks_direct_evaluation(self, structure):
        """The regression the magic harness exposed: junk rules over an
        EDB the structure does not interpret make ``evaluate`` refuse;
        pruning first (or querying goal-directedly) must fix it."""
        program = parse_program(
            """
            S(x, y) :- E(x, y).
            S(x, y) :- E(x, z), S(z, y).
            Junk(x) :- F(x, x).
            """,
            goal="S",
        )
        with pytest.raises(ValueError, match="F"):
            evaluate(program, structure)
        pruned = prune_unreachable(program)
        assert "F" not in pruned.edb_predicates
        reference = evaluate(
            transitive_closure_program(), structure
        ).goal_relation
        assert evaluate(pruned, structure).goal_relation == reference


class TestRenameVariablesApart:
    def test_fresh_suffix(self):
        rule = parse_rule("S(x, y) :- E(x, z), S(z, y), x != y.")
        fresh = rename_variables_apart(rule, "_1")
        assert fresh == parse_rule(
            "S(x_1, y_1) :- E(x_1, z_1), S(z_1, y_1), x_1 != y_1."
        )

    def test_constants_untouched(self):
        rule = parse_rule("D(x) :- E(x, $t), x != $t.")
        fresh = rename_variables_apart(rule, "_9")
        assert fresh == parse_rule("D(x_9) :- E(x_9, $t), x_9 != $t.")
