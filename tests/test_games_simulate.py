"""Tests for the interactive game runner and the stock strategies."""

import pytest

from repro.games import solve_existential_game
from repro.games.simulate import (
    CopyingStrategy,
    FamilyStrategy,
    PlaceMove,
    RandomPlayerOne,
    RemoveMove,
    ScriptedPlayerOne,
    SolverPlayerOne,
    run_existential_game,
)
from repro.graphs.generators import path_pair_structures, random_digraph
from repro.structures import find_one_to_one_homomorphism


class TestRunner:
    def test_scripted_walk(self):
        short, long_ = path_pair_structures(3, 5)
        result = solve_existential_game(short, long_, 2)
        strategy = FamilyStrategy(result.family, long_)
        moves = [
            PlaceMove(0, "a0"),
            PlaceMove(1, "a1"),
            RemoveMove(0),
            PlaceMove(0, "a2"),
        ]
        transcript = run_existential_game(
            short, long_, 2, ScriptedPlayerOne(moves), strategy, rounds=10
        )
        assert transcript.player_two_survived
        assert transcript.rounds_played == 4

    def test_illegal_moves_rejected(self):
        short, long_ = path_pair_structures(2, 3)
        strategy = CopyingStrategy({"a0": "b0", "a1": "b1"})
        with pytest.raises(ValueError, match="re-placed"):
            run_existential_game(
                short, long_, 2,
                ScriptedPlayerOne([PlaceMove(0, "a0"), PlaceMove(0, "a1")]),
                strategy, rounds=5,
            )
        with pytest.raises(ValueError, match="unplaced"):
            run_existential_game(
                short, long_, 2,
                ScriptedPlayerOne([RemoveMove(0)]), strategy, rounds=5,
            )

    def test_losing_response_detected(self):
        short, long_ = path_pair_structures(2, 3)
        # Map both A-nodes onto the same B-node: dies on the second pebble.
        bad = CopyingStrategy({"a0": "b0", "a1": "b0"})
        transcript = run_existential_game(
            short, long_, 2,
            ScriptedPlayerOne([PlaceMove(0, "a0"), PlaceMove(1, "a1")]),
            bad, rounds=5,
        )
        assert not transcript.player_two_survived
        assert transcript.failure_round == 2


class TestFamilyStrategy:
    @pytest.mark.parametrize("seed", range(8))
    def test_never_loses_when_player_two_wins(self, seed):
        short, long_ = path_pair_structures(3, 6)
        result = solve_existential_game(short, long_, 2)
        assert result.player_two_wins
        transcript = run_existential_game(
            short, long_, 2,
            RandomPlayerOne(short, seed=seed),
            FamilyStrategy(result.family, long_), rounds=120,
        )
        assert transcript.player_two_survived

    def test_survives_on_random_structures(self):
        for seed in range(6):
            a = random_digraph(4, 0.35, seed).to_structure()
            b = random_digraph(5, 0.4, seed + 999).to_structure()
            result = solve_existential_game(a, b, 2)
            if not result.player_two_wins:
                continue
            transcript = run_existential_game(
                a, b, 2,
                RandomPlayerOne(a, seed=seed),
                FamilyStrategy(result.family, b), rounds=80,
            )
            assert transcript.player_two_survived


class TestSolverPlayerOne:
    @pytest.mark.parametrize("seed", range(6))
    def test_beats_family_fallback(self, seed):
        """When Player I wins, the solver-driven adversary defeats the
        best-effort family strategy within the rank bound."""
        short, long_ = path_pair_structures(3, 6)
        result = solve_existential_game(long_, short, 2)
        assert result.winner == "I"
        transcript = run_existential_game(
            long_, short, 2,
            SolverPlayerOne(result, long_, short),
            FamilyStrategy(result.family, short), rounds=60,
        )
        assert not transcript.player_two_survived

    def test_beats_copying_strategy(self):
        # Copying along a partial embedding cannot save Player II.
        short, long_ = path_pair_structures(3, 6)
        result = solve_existential_game(long_, short, 2)
        embedding = find_one_to_one_homomorphism(short, long_)
        inverse = {v: k for k, v in embedding.items()}
        # Extend arbitrarily so every element has an image.
        for x in long_.universe:
            inverse.setdefault(x, next(iter(short.universe)))
        transcript = run_existential_game(
            long_, short, 2,
            SolverPlayerOne(result, long_, short),
            CopyingStrategy(inverse), rounds=60,
        )
        assert not transcript.player_two_survived

    def test_refuses_lost_cause(self):
        short, long_ = path_pair_structures(3, 6)
        result = solve_existential_game(short, long_, 2)
        with pytest.raises(ValueError):
            SolverPlayerOne(result, short, long_)


class TestRandomPlayerOne:
    def test_deterministic_given_seed(self):
        short, long_ = path_pair_structures(3, 6)
        result = solve_existential_game(short, long_, 2)

        def play(seed):
            return run_existential_game(
                short, long_, 2,
                RandomPlayerOne(short, seed=seed),
                FamilyStrategy(result.family, long_), rounds=40,
            ).history

        assert play(5) == play(5)
