"""Deterministic fault injection: crash consistency of every engine.

:mod:`repro.testing.faults` arms a :class:`FaultPlan` that raises
:class:`InjectedFault` at exactly the Nth rule firing, index probe, or
round boundary.  Because the engines mutate their database only at
round boundaries, a fault *anywhere* must leave observable state at
the last completed boundary -- which is precisely what checkpoints
capture and what the incremental session's rollback restores.  The
suites here kill evaluations at every site the census finds (200+
seeded trials) and pin:

* the fault surfaces as ``InjectedFault`` -- never a corrupted result;
* a per-round ``checkpoint_sink`` plus ``resume_from`` recovers the
  exact uninterrupted run (kill-at-every-round determinism);
* an :class:`IncrementalSession` hit mid-update rolls back to the
  pre-update view (see also ``tests/test_guard_incremental.py``).
"""

import random

import pytest

from repro.datalog import evaluate, evaluate_algebra
from repro.datalog.evaluation import METHODS
from repro.datalog.incremental import IncrementalSession
from repro.datalog.library import library_programs
from repro.graphs.generators import path_graph, random_digraph
from repro.testing import (
    FaultPlan,
    InjectedFault,
    census,
    fault_sites,
    inject,
)
from repro.testing import faults as _faults

pytestmark = pytest.mark.fault_injection

TC = library_programs()["transitive-closure"]

GRAPH_PROGRAMS = {
    name: program
    for name, program in library_programs().items()
    if name != "path-systems"
}


class TestHarness:
    def test_sites(self):
        assert fault_sites() == (
            "round", "rule", "probe", "kill_worker", "kill_server",
            "wal_record", "torn_wal",
        )

    def test_plan_validates(self):
        with pytest.raises(ValueError):
            FaultPlan("nonsense", 1)
        with pytest.raises(ValueError):
            FaultPlan("rule", 0)

    def test_inject_fires_and_disarms(self):
        structure = path_graph(5).to_structure()
        with pytest.raises(InjectedFault) as info:
            with inject("rule", 3):
                evaluate(TC, structure)
        assert info.value.site == "rule"
        assert info.value.occurrence == 3
        assert _faults.faults is _faults.NOOP
        # Disarmed: the same evaluation now completes.
        assert evaluate(TC, structure).iterations > 0

    def test_plans_do_not_nest(self):
        with inject("rule", 1):
            with pytest.raises(RuntimeError, match="nest"):
                with inject("probe", 1):
                    pass  # pragma: no cover

    def test_census_counts_without_firing(self):
        structure = path_graph(5).to_structure()
        with census() as counts:
            evaluate(TC, structure)
        assert counts.hits("round") > 0
        assert counts.hits("rule") > 0
        assert counts.hits("probe") > 0

    def test_beyond_last_occurrence_never_fires(self):
        structure = path_graph(5).to_structure()
        with census() as counts:
            full = evaluate(TC, structure)
        with inject("rule", counts.hits("rule") + 1):
            again = evaluate(TC, structure)
        assert again.relations == full.relations


def _evaluate_any(method, program, structure):
    if method == "algebra":
        return evaluate_algebra(program, structure)
    return evaluate(program, structure, method=method)


class TestKillEverySite:
    """200+ seeded trials: kill every engine at every site occurrence
    (subsampled for the dense probe site) and require a clean
    ``InjectedFault`` and a repeatable subsequent run."""

    def test_trial_floor(self):
        rng = random.Random(1045)
        trials = 0
        engines = tuple(METHODS) + ("algebra",)
        for case in range(6):
            program = GRAPH_PROGRAMS[
                rng.choice(sorted(GRAPH_PROGRAMS))
            ]
            structure = random_digraph(
                5, rng.uniform(0.25, 0.45), seed=rng.randrange(10**6)
            ).to_structure()
            for method in engines:
                full = _evaluate_any(method, program, structure)
                with census() as counts:
                    _evaluate_any(method, program, structure)
                for site in fault_sites():
                    total = counts.hits(site)
                    occurrences = range(1, total + 1)
                    if total > 6:  # subsample dense sites, ends included
                        occurrences = sorted(
                            {1, total, *rng.sample(range(1, total + 1), 4)}
                        )
                    for occurrence in occurrences:
                        with pytest.raises(InjectedFault):
                            with inject(site, occurrence):
                                _evaluate_any(method, program, structure)
                        trials += 1
                # After any number of kills the engine still computes
                # the exact fixpoint.
                again = _evaluate_any(method, program, structure)
                assert again.relations == full.relations, (method, case)
        assert trials >= 200, trials


@pytest.mark.parametrize("name", sorted(GRAPH_PROGRAMS))
def test_kill_at_every_round_then_resume(name):
    """For every library program: kill at every round boundary; the last
    checkpoint_sink emission resumes to the bit-identical full run."""
    program = GRAPH_PROGRAMS[name]
    structure = random_digraph(5, 0.35, seed=23, loops=True).to_structure()
    full = evaluate(
        program, structure, method="indexed", collect_stages=True
    )
    with census() as counts:
        evaluate(program, structure, method="indexed")
    for boundary in range(2, counts.hits("round") + 1):
        sink: list = []
        with pytest.raises(InjectedFault):
            with inject("round", boundary):
                evaluate(
                    program, structure, method="indexed",
                    collect_stages=True, checkpoint_sink=sink.append,
                )
        if not sink:  # killed before the first completed round
            continue
        resumed = evaluate(
            program, structure, method="indexed",
            collect_stages=True, resume_from=sink[-1],
        )
        assert resumed.relations == full.relations, (name, boundary)
        assert resumed.iterations == full.iterations, (name, boundary)
        # Stage history before the cut is carried by the checkpoint, so
        # the resumed stage sequence is the *full* one, not a suffix.
        assert resumed.stages == full.stages, (name, boundary)


class TestSessionFaults:
    """Faults inside IncrementalSession updates roll back cleanly."""

    def _session(self):
        return IncrementalSession(TC, path_graph(6).to_structure())

    def test_insert_fault_rolls_back(self):
        session = self._session()
        before = session.relations
        with pytest.raises(InjectedFault):
            with inject("rule", 2):
                session.insert_facts("E", [("v5", "v0")])
        assert session.relations == before
        # The session remains fully usable.
        session.insert_facts("E", [("v5", "v0")])
        full = session.reevaluate()
        assert session.relations == {
            p: frozenset(full.relations[p]) for p in session.relations
        }

    def test_delete_fault_rolls_back(self):
        session = self._session()
        before = session.relations
        supports_before = session._supports.total_supports()
        with pytest.raises(InjectedFault):
            with inject("rule", 1):
                session.delete_facts("E", [("v0", "v1")])
        assert session.relations == before
        assert session._supports.total_supports() == supports_before
        session.delete_facts("E", [("v0", "v1")])
        full = session.reevaluate()
        assert session.relations == {
            p: frozenset(full.relations[p]) for p in session.relations
        }

    def test_update_count_untouched_by_fault(self):
        session = self._session()
        with pytest.raises(InjectedFault):
            with inject("rule", 1):
                session.insert_facts("E", [("v5", "v0")])
        assert session.update_count == 0
