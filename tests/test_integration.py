"""Cross-module integration tests: the paper's pipeline end to end."""

import pytest

from repro.cnf import CnfFormula, complete_formula, is_satisfiable
from repro.core import classify_query, theorem_66_certificate
from repro.datalog import evaluate
from repro.datalog.homeo import acyclic_game_program, class_c_program
from repro.fhw import sat_to_disjoint_paths
from repro.fhw.homeomorphism import is_homeomorphic_to_distinguished_subgraph
from repro.games import preceq_k, solve_existential_game
from repro.games.formula_game import solve_formula_game
from repro.graphs import DiGraph
from repro.graphs.generators import layered_random_dag
from repro.logic import translate_program
from repro.logic.evaluation import satisfying_tuples
from repro.patterns import HomeomorphismQuery, decide_via_embedding


class TestPositivePipeline:
    """Theorem 6.1 route: pattern in C -> program -> same answers as
    the oracle -> program also definable in L^{l+r} (Theorem 3.6)."""

    def test_star_pattern_end_to_end(self):
        star = DiGraph(edges=[("r", "u"), ("r", "v")])
        row = classify_query(star)
        assert row.in_class_c

        query = row.general_program()
        g = DiGraph(edges=[
            ("s", "a"), ("a", "x"), ("s", "b"), ("b", "y"),
        ])
        assignment = {"r": "s", "u": "x", "v": "y"}
        assert query.decide(g, assignment)
        assert is_homeomorphic_to_distinguished_subgraph(star, g, assignment)

        # The very same program's stage semantics translates to L^{l+r}.
        translation = translate_program(query.program)
        structure = g.to_structure()
        from repro.datalog import stages

        engine = stages(query.program, structure)
        goal = query.program.goal
        formula = translation.stage_formula(goal, 2)
        assert satisfying_tuples(
            formula, structure, translation.head_variables(goal)
        ) == engine[1][goal]


class TestAcyclicPipeline:
    """Theorem 6.2 route: game <-> Datalog program <-> embedding on DAGs,
    for a pattern OUTSIDE class C."""

    def test_h1_on_a_dag(self):
        from repro.fhw.pattern_class import pattern_h1

        pattern = pattern_h1()
        assert not classify_query(pattern).in_class_c

        query = acyclic_game_program(pattern)
        dag = layered_random_dag(4, 3, 0.5, seed=11)
        nodes = sorted(dag.nodes)
        assignment = dict(zip(sorted(pattern.nodes), nodes[:4]))
        expected = is_homeomorphic_to_distinguished_subgraph(
            pattern, dag, assignment
        )
        assert query.decide(dag, assignment) == expected


class TestNegativePipeline:
    """Theorem 6.6 route: unsat formula -> reduction graph -> formula
    game -> certificate."""

    def test_k1_chain(self):
        k = 1
        phi = complete_formula(k)
        assert not is_satisfiable(phi)
        assert solve_formula_game(phi, k).player_two_wins
        assert not solve_formula_game(phi, k + 1).player_two_wins

        cert = theorem_66_certificate(k)
        instance = sat_to_disjoint_paths(phi)
        assert len(cert.b) == len(instance.graph)

        # The pattern-based view agrees on the two sides.
        query = HomeomorphismQuery(
            DiGraph(edges=[("s1", "s2"), ("s3", "s4")])
        )
        d = cert.a_graph.distinguished
        a_instance = query.instance(
            cert.a_graph.without_distinguished(),
            {"s1": d["s1"], "s2": d["s2"], "s3": d["s3"], "s4": d["s4"]},
        )
        assert query.holds_exact(a_instance)


class TestGameLogicAgreement:
    """preceq_k (game) versus direct L^k formula transfer on tiny
    structures: if A <=^k B then every checked L^k sentence true in A
    holds in B."""

    def test_sentence_transfer(self):
        from repro.datalog.ast import Variable
        from repro.logic import AtomF, And, Eq, Exists, Neq, evaluate_formula
        from repro.graphs.generators import path_pair_structures

        x, y = Variable("x"), Variable("y")
        sentences = [
            Exists(x, Exists(y, AtomF("E", (x, y)))),
            Exists(x, Exists(y, And([AtomF("E", (x, y)), Neq(x, y)]))),
            Exists(x, Exists(y, And([
                AtomF("E", (x, y)),
                Exists(x, And([Eq(x, y), Exists(y, AtomF("E", (x, y)))])),
            ]))),
            Exists(x, AtomF("E", (x, x))),
        ]
        short, long_ = path_pair_structures(3, 6)
        assert preceq_k(short, long_, 2)
        for sentence in sentences:
            if evaluate_formula(sentence, short):
                assert evaluate_formula(sentence, long_)

    def test_failure_is_witnessed_by_some_sentence(self):
        """When A !<=^2 B, Example 3.4-style walk formulas separate."""
        from repro.datalog.ast import Variable
        from repro.logic import evaluate_formula, path_formula
        from repro.graphs.generators import path_pair_structures

        short, long_ = path_pair_structures(3, 6)
        assert not preceq_k(long_, short, 2)
        x, y = Variable("x"), Variable("y")
        from repro.logic import Exists

        walk5 = Exists(x, Exists(y, path_formula(5)))
        assert evaluate_formula(walk5, long_)
        assert not evaluate_formula(walk5, short)
