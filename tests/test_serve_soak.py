"""Seeded chaos soak: crashes, lost acks, flaky subscribers -- and
still serial-replay equality.

Each trial boots a real threaded server with a WAL and drives a
seeded random update script through a :class:`ResilientClient` whose
transport *loses acknowledgements on purpose* (the server applies the
update, the client never hears -- the retry must dedupe).  While the
script runs the trial also, at seeded random points:

* **snapshots the durable state** -- copies the live ``(checkpoint,
  WAL)`` pair exactly as a SIGKILL at that instant would leave it
  (including mid-append torn tails: the copy races the writer on
  purpose).  After the trial, :func:`repro.serve.wal.recover` is run
  on every copy and must reconstruct a view at an epoch **at least**
  the last acknowledged one, whose goal relation equals a from-scratch
  serial replay of that epoch prefix.  Zero lost acknowledged updates,
  at every moment of the run.
* **severs the subscriber's socket** behind its back -- the resilient
  resubscribe (``from_epoch``) must heal the stream via backfill or
  resync.
* optionally parks a **never-reading subscriber** on a server with a
  tiny ``max_outbox`` -- multi-row updates then force evictions, and
  the writer must shrug (drop + pending resync), never stall.

The trial count honours ``REPRO_SOAK_TRIALS`` (default keeps the
default suite fast); CI's chaos job runs the full 100+.  Everything is
derived from the trial seed: the script, the ack-loss schedule, the
snapshot points, the backoff jitter.  A failure reproduces from its
seed alone.
"""

import os
import random
import shutil
import socket

import pytest

from repro.datalog.evaluation import evaluate
from repro.datalog.library import transitive_closure_program
from repro.graphs.digraph import DiGraph
from repro.serve.client import ResilientClient, ServeClient, ServeConnectionError
from repro.serve.wal import WriteAheadLog, recover

from tests.serve_utils import connect, running_server, tc_view

pytestmark = pytest.mark.fault_injection

NODES = "abcdef"
INITIAL_EDGES = [("a", "b"), ("b", "c"), ("c", "d")]
ROWS_PER_TRIAL = 10


def _trial_count() -> int:
    return int(os.environ.get("REPRO_SOAK_TRIALS", "100"))


def _serial_goal_rows(rowops) -> list[list[str]]:
    """Ground truth: evaluate from scratch after applying ``rowops``."""
    edb = set(INITIAL_EDGES)
    for kind, row in rowops:
        (edb.add if kind == "insert" else edb.discard)(tuple(row))
    program = transitive_closure_program()
    structure = DiGraph(nodes=NODES, edges=[]).to_structure()
    result = evaluate(program, structure, extra_edb={"E": frozenset(edb)})
    return sorted([list(r) for r in result.relations[program.goal]])


def _make_script(rng: random.Random) -> list[tuple[str, tuple[str, str]]]:
    """A seeded flat list of single-row updates (the serial schedule)."""
    rowops = []
    for _ in range(ROWS_PER_TRIAL):
        kind = "insert" if rng.random() < 0.7 else "delete"
        a, b = rng.sample(NODES, 2)
        rowops.append((kind, (a, b)))
    return rowops


def _group_calls(rowops, rng: random.Random):
    """Chunk the serial schedule into 1-3 row client calls (same kind)."""
    calls = []
    index = 0
    while index < len(rowops):
        kind = rowops[index][0]
        width = rng.randint(1, 3)
        rows = []
        while index < len(rowops) and rowops[index][0] == kind and len(rows) < width:
            rows.append(rowops[index][1])
            index += 1
        calls.append((kind, rows))
    return calls


class _LossyAcks(ServeClient):
    """Applies the request for real, then sometimes 'loses' the ack."""

    drop_schedule: list = []  # shared, popped per update request

    def request(self, op, **fields):
        response = super().request(op, **fields)
        if op in ("insert", "delete") and type(self).drop_schedule:
            if type(self).drop_schedule.pop(0):
                raise ServeConnectionError(
                    self.host, self.port, self.last_epoch, "lost ack (chaos)"
                )
        return response


def _run_trial(seed: int, tmp_path) -> dict:
    """One chaos trial; returns counters for the soak-wide summary."""
    rng = random.Random(seed)
    rowops = _make_script(rng)
    calls = _group_calls(rowops, rng)
    ckpt = str(tmp_path / f"soak{seed}.ckpt")
    wal_path = str(tmp_path / f"soak{seed}.wal")

    program = transitive_closure_program()
    structure = DiGraph(nodes=NODES, edges=INITIAL_EDGES).to_structure()
    view = tc_view(INITIAL_EDGES, nodes=NODES)
    wal = WriteAheadLog.create(wal_path, 0, view.program_fp)

    slow_subscriber = rng.random() < 0.5
    max_outbox = 1 if slow_subscriber else 0
    # Every update request loses its ack with probability 0.25, on a
    # schedule fixed up front (retries do not consult it again).
    _LossyAcks.drop_schedule = [
        rng.random() < 0.25 for _ in range(len(calls) * 2)
    ]

    snapshots = []  # (ckpt copy or None, wal copy, acked epoch then)
    counters = {"dropped_acks": 0, "severed": 0, "evictions": 0}

    with running_server(
        view,
        wal=wal,
        checkpoint_path=ckpt,
        checkpoint_every=rng.randint(1, 3),
        max_outbox=max_outbox,
    ) as server:
        writer = ResilientClient(
            "127.0.0.1", server.port, seed=seed,
            sleep=lambda _s: None, client_factory=_LossyAcks,
        )
        subscriber = ResilientClient(
            "127.0.0.1", server.port, seed=seed + 1, sleep=lambda _s: None,
        )
        subscriber.subscribe()
        parked = connect(server) if slow_subscriber else None
        if parked is not None:
            parked.subscribe()

        acked_epoch = 0
        for index, (kind, rows) in enumerate(calls):
            response = getattr(writer, kind)("E", *rows)
            assert response["epoch"] >= acked_epoch
            acked_epoch = response["epoch"]
            if rng.random() < 0.35:
                # The disk state a SIGKILL right now would leave; the
                # copy deliberately races the live writer.
                tag = f"{seed}-{index}"
                ckpt_copy = None
                if os.path.exists(ckpt):
                    ckpt_copy = str(tmp_path / f"copy{tag}.ckpt")
                    shutil.copy(ckpt, ckpt_copy)
                wal_copy = str(tmp_path / f"copy{tag}.wal")
                shutil.copy(wal_path, wal_copy)
                snapshots.append((ckpt_copy, wal_copy, acked_epoch))
            if rng.random() < 0.25 and subscriber._client is not None:
                try:
                    subscriber._client._sock.shutdown(socket.SHUT_RDWR)
                    counters["severed"] += 1
                except OSError:
                    pass  # already severed; the client has not noticed yet

        assert acked_epoch == len(rowops)
        # The final view converges to the serial replay of the script.
        final = writer.query()
        assert final["epoch"] == len(rowops)
        assert final["rows"] == _serial_goal_rows(rowops)
        # The (possibly repeatedly severed) subscriber still hears the
        # stream: one more update, one more event -- backfilled deltas
        # or a resync, either proves the gap healed.
        writer.insert("E", ["a", "f"])
        (event,) = subscriber.drain_events(1)
        assert event["event"] in ("delta", "resync")
        assert event["epoch"] <= len(rowops) + 1
        counters["evictions"] = server.stats.subscribers_evicted
        counters["dropped_acks"] = server.stats.deduped
        if parked is not None:
            parked.close()
        subscriber.close()
        writer.close()

    # Crash-at-every-snapshot recovery: nothing acknowledged is lost.
    for ckpt_copy, wal_copy, epoch_then in snapshots:
        recovered, _dedupe, report = recover(
            program, structure, ckpt_copy, wal_copy
        )
        assert recovered.epoch >= epoch_then, (
            f"seed {seed}: recovery lost acknowledged updates "
            f"(epoch {recovered.epoch} < acked {epoch_then})"
        )
        expected = _serial_goal_rows(rowops[: recovered.epoch])
        got = sorted([list(r) for r in recovered.snapshot.goal_rows])
        assert got == expected, f"seed {seed}: diverged at {wal_copy}"
    counters["snapshots"] = len(snapshots)
    return counters


def test_chaos_soak_converges_to_serial_replay(tmp_path):
    trials = _trial_count()
    totals = {"snapshots": 0, "severed": 0, "dropped_acks": 0, "evictions": 0}
    for seed in range(trials):
        counters = _run_trial(seed, tmp_path)
        for key in totals:
            totals[key] += counters[key]
    # The chaos actually happened: across the soak every fault class
    # fired (any individual trial may draw none of a given kind).
    assert totals["snapshots"] > 0
    assert totals["severed"] > 0
    assert totals["dropped_acks"] > 0
    if trials >= 20:
        assert totals["evictions"] > 0
