"""Tests for the Theorem 6.6 / 6.7 inexpressibility certificates."""

import pytest

from repro.cnf.assignments import InconsistentAssignment
from repro.core import (
    h2_certificate,
    h3_certificate,
    lift_certificate,
    theorem_66_certificate,
)
from repro.fhw.pattern_class import pattern_h1, pattern_h2
from repro.fhw.reduction import ClauseSlot, ColumnSlot
from repro.games.simulate import (
    PlaceMove,
    RandomPlayerOne,
    RemoveMove,
    ScriptedPlayerOne,
    run_existential_game,
)
from repro.graphs import DiGraph
from repro.graphs.paths import node_disjoint_simple_paths


def adversarial_survival(cert, k, seeds=12, rounds=200):
    """Fraction of random Player I schedules the strategy survives."""
    survived = 0
    for seed in range(seeds):
        transcript = run_existential_game(
            cert.a, cert.b, k,
            RandomPlayerOne(cert.a, seed=seed),
            cert.fresh_strategy(), rounds=rounds,
        )
        survived += transcript.player_two_survived
    return survived / seeds


class TestTheorem66:
    def test_a_side_satisfies_h1(self):
        cert = theorem_66_certificate(2)
        d = cert.a_graph.distinguished
        assert node_disjoint_simple_paths(
            cert.a_graph, [(d["s1"], d["s2"]), (d["s3"], d["s4"])]
        ) is not None

    def test_b_side_falsifies_h1_exactly_for_k1(self):
        cert = theorem_66_certificate(1)
        d = cert.b_graph.distinguished
        assert node_disjoint_simple_paths(
            cert.b_graph, [(d["s1"], d["s2"]), (d["s3"], d["s4"])]
        ) is None

    @pytest.mark.parametrize("k", [1, 2])
    def test_strategy_survives_random_adversaries(self, k):
        cert = theorem_66_certificate(k)
        assert adversarial_survival(cert, k) == 1.0

    def test_structures_share_vocabulary(self):
        cert = theorem_66_certificate(1)
        assert cert.a.vocabulary == cert.b.vocabulary
        assert cert.a.vocabulary.constants == ("s1", "s2", "s3", "s4")

    def test_strategy_walks_the_standard_path(self):
        """Walking two pebbles down A's first path traces a standard
        path of B (the Example 4.4 attack, survived)."""
        cert = theorem_66_certificate(2)
        length = max(i for (kind, i) in cert.a_graph.nodes if kind == "p")
        moves = []
        for i in range(length + 1):
            pebble = i % 2
            if i >= 2:
                # Lift the trailing pebble before re-placing it.
                moves.append(RemoveMove(pebble))
            moves.append(PlaceMove(pebble, ("p", i)))
        transcript = run_existential_game(
            cert.a, cert.b, 2,
            ScriptedPlayerOne(moves), cert.fresh_strategy(),
            rounds=len(moves),
        )
        assert transcript.player_two_survived

    def test_strategy_survives_walking_the_second_path(self):
        """Walk two pebbles along the whole of A's second path: crosses
        every b..d segment, column, and clause segment boundary."""
        cert = theorem_66_certificate(2)
        length = max(i for (kind, i) in cert.a_graph.nodes if kind == "q")
        moves = []
        for i in range(length + 1):
            pebble = i % 2
            if i >= 2:
                moves.append(RemoveMove(pebble))
            moves.append(PlaceMove(pebble, ("q", i)))
        transcript = run_existential_game(
            cert.a, cert.b, 2,
            ScriptedPlayerOne(moves), cert.fresh_strategy(),
            rounds=len(moves),
        )
        assert transcript.player_two_survived

    def test_h3_strategy_survives_walking_around_the_cycle(self):
        """The H3 quotient turns A into a cycle; walk two pebbles twice
        around it, across both identification points."""
        cert = h3_certificate(1)
        # Rebuild the cycle order by following edges from s1.
        node = cert.a_graph.distinguished["s1"]
        cycle = [node]
        while True:
            nxt = next(iter(cert.a_graph.successors(cycle[-1])))
            if nxt == node:
                break
            cycle.append(nxt)
        walk = cycle + cycle + cycle[:2]
        moves = []
        for i, target in enumerate(walk):
            if i >= 1:
                moves.append(RemoveMove(0))
            moves.append(PlaceMove(0, target))
        transcript = run_existential_game(
            cert.a, cert.b, 1,
            ScriptedPlayerOne(moves), cert.fresh_strategy(),
            rounds=len(moves),
        )
        assert transcript.player_two_survived

    def test_k_plus_one_pebbles_defeat_the_strategy(self):
        """Completeness of the threshold: pin every variable via column
        nodes, then challenge the all-negative clause."""
        k = 2
        cert = theorem_66_certificate(k)
        instance = cert.fresh_strategy().instance
        slots = instance.p2_slots()
        moves = []
        for pebble, variable in enumerate(instance.formula.variables):
            index = next(
                i for i, slot in enumerate(slots)
                if isinstance(slot, ColumnSlot) and slot.variable == variable
            )
            moves.append(PlaceMove(pebble, ("q", index)))
        target = len(instance.formula.clauses) - 1  # all-negative clause
        index = next(
            i for i, slot in enumerate(slots)
            if isinstance(slot, ClauseSlot) and slot.clause_index == target
        )
        moves.append(PlaceMove(k, ("q", index)))
        strategy = cert.fresh_strategy()
        with pytest.raises(InconsistentAssignment):
            run_existential_game(
                cert.a, cert.b, k + 1,
                ScriptedPlayerOne(moves), strategy, rounds=len(moves),
            )

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            theorem_66_certificate(0)


class FocusedPlayerOne:
    """An adversary that concentrates on the strategy's hard spots:
    column and clause slots of the second A-path (where the formula-game
    bookkeeping does real work), mixed with removals."""

    def __init__(self, cert, seed):
        import random

        from repro.fhw.reduction import ClauseSlot, ColumnSlot

        instance = cert.fresh_strategy().instance
        slots = instance.p2_slots()
        self._targets = [
            ("q", i)
            for i, slot in enumerate(slots)
            if isinstance(slot, (ColumnSlot, ClauseSlot))
        ]
        self._rng = random.Random(seed)

    def next_move(self, state, round_number):
        placed = sorted(state.board_a)
        free = state.free_pebbles()
        if placed and (not free or self._rng.random() < 0.4):
            return RemoveMove(self._rng.choice(placed))
        return PlaceMove(
            free[0], self._rng.choice(self._targets)
        )


class TestFocusedAdversary:
    @pytest.mark.parametrize("k", [1, 2])
    def test_strategy_survives_column_clause_pressure(self, k):
        cert = theorem_66_certificate(k)
        for seed in range(10):
            transcript = run_existential_game(
                cert.a, cert.b, k,
                FocusedPlayerOne(cert, seed),
                cert.fresh_strategy(), rounds=200,
            )
            assert transcript.player_two_survived, seed


class TestTheorem67:
    def test_h2_sides(self):
        cert = h2_certificate(1)
        d_a = cert.a_graph.distinguished
        assert node_disjoint_simple_paths(
            cert.a_graph,
            [(d_a["s1"], d_a["s2"]), (d_a["s2"], d_a["s3"])],
        ) is not None
        d_b = cert.b_graph.distinguished
        assert node_disjoint_simple_paths(
            cert.b_graph,
            [(d_b["s1"], d_b["s2"]), (d_b["s2"], d_b["s3"])],
        ) is None

    def test_h3_sides(self):
        cert = h3_certificate(1)
        d_a = cert.a_graph.distinguished
        assert node_disjoint_simple_paths(
            cert.a_graph,
            [(d_a["s1"], d_a["s2"]), (d_a["s2"], d_a["s1"])],
        ) is not None
        d_b = cert.b_graph.distinguished
        assert node_disjoint_simple_paths(
            cert.b_graph,
            [(d_b["s1"], d_b["s2"]), (d_b["s2"], d_b["s1"])],
        ) is None

    @pytest.mark.parametrize("factory", [h2_certificate, h3_certificate])
    @pytest.mark.parametrize("k", [1, 2])
    def test_strategies_survive(self, factory, k):
        cert = factory(k)
        assert adversarial_survival(cert, k) == 1.0


class TestLemma63:
    def test_lifted_certificate_survives(self):
        """Lift the H1 certificate to the superpattern H1 + extra edge."""
        base = theorem_66_certificate(1)
        sub = pattern_h1()
        super_pattern = sub.add_edges([("s2", "s5")])
        d_a = base.a_graph.distinguished
        d_b = base.b_graph.distinguished
        sub_a = {name: d_a[name] for name in ("s1", "s2", "s3", "s4")}
        sub_b = {name: d_b[name] for name in ("s1", "s2", "s3", "s4")}
        lifted = lift_certificate(base, sub, super_pattern, sub_a, sub_b)
        assert lifted.pattern_name == "lift(H1)"
        # The new copy nodes exist on both sides.
        assert len(lifted.a) == len(base.a) + 1
        assert len(lifted.b) == len(base.b) + 1
        assert adversarial_survival(lifted, 1, seeds=8) == 1.0

    def test_lift_requires_new_edges(self):
        base = theorem_66_certificate(1)
        with pytest.raises(ValueError):
            lift_certificate(base, pattern_h1(), pattern_h1(), {}, {})
