"""Cross-validation of the algebra-backed engine (third implementation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import evaluate, parse_program
from repro.datalog.algebra_engine import (
    compile_program,
    compile_rule,
    evaluate_algebra,
)
from repro.datalog.library import (
    avoiding_path_program,
    q_program,
    transitive_closure_program,
    two_disjoint_paths_from_source_program,
)
from repro.datalog.parser import parse_rule
from repro.graphs import DiGraph
from repro.graphs.generators import path_graph, random_digraph
from repro.relalg.expressions import expression_columns


class TestCompilation:
    def test_tc_rule_columns(self):
        compiled = compile_rule(parse_rule("S(x, y) :- E(x, z), S(z, y)."))
        assert set(compiled.columns) == {"x", "y", "z"}
        assert compiled.head_terms == ("x", "y")

    def test_universe_padding(self):
        compiled = compile_rule(parse_rule("D(x, u) :- E(x, y)."))
        assert "u" in compiled.columns

    def test_constant_in_body(self):
        compiled = compile_rule(parse_rule("D(x) :- E($s, x)."))
        assert "x" in compiled.columns

    def test_fact_rule(self):
        compiled = compile_rule(parse_rule("D($t1, $t2)."))
        assert compiled.columns == ()

    def test_program_compiles_whole(self):
        assert len(compile_program(q_program(2, 0))) == len(q_program(2, 0))


PROGRAMS = {
    "tc": transitive_closure_program,
    "avoiding": avoiding_path_program,
    "q21": lambda: q_program(2, 1),
    "layered": two_disjoint_paths_from_source_program,
}


@pytest.mark.parametrize("method", ["naive", "seminaive"])
@pytest.mark.parametrize("name", sorted(PROGRAMS))
class TestAgainstBindingEngine:
    def test_same_fixpoint(self, name, method):
        program = PROGRAMS[name]()
        for seed in range(3):
            structure = random_digraph(5, 0.3, seed).to_structure()
            binding = evaluate(program, structure).relations
            algebra = evaluate_algebra(
                program, structure, method=method
            ).relations
            assert binding == algebra


class TestEngineFeatures:
    def test_constants_and_facts(self):
        g = path_graph(3).with_distinguished({"t1": "v0", "t2": "v2"})
        program = parse_program(
            """
            D($t1, $t2).
            Goal() :- D(x, y), E(x, z), E(z, y).
            """,
            goal="Goal",
        )
        result = evaluate_algebra(program, g.to_structure())
        assert result.holds(())

    def test_universe_ranging_head_variable(self):
        program = parse_program("D(x, u) :- E(x, y).", goal="D")
        s = path_graph(3).to_structure()
        assert evaluate_algebra(program, s).relations == evaluate(
            program, s
        ).relations

    def test_constant_constant_constraint(self):
        g = path_graph(2).with_distinguished({"a": "v0", "b": "v1"})
        program = parse_program(
            "D(x) :- E(x, y), $a = $b.", goal="D"
        )
        assert not evaluate_algebra(program, g.to_structure()).goal_relation
        program2 = parse_program(
            "D(x) :- E(x, y), $a != $b.", goal="D"
        )
        assert evaluate_algebra(program2, g.to_structure()).goal_relation

    def test_extra_edb(self):
        program = parse_program("D(x, y) :- R(x, y).", goal="D")
        s = path_graph(2).to_structure()
        result = evaluate_algebra(
            program, s, extra_edb={"R": [("v1", "v0")]}
        )
        assert result.goal_relation == frozenset({("v1", "v0")})

    def test_repeated_head_variable(self):
        program = parse_program("D(x, x) :- E(x, y).", goal="D")
        s = path_graph(3).to_structure()
        assert evaluate_algebra(program, s).goal_relation == frozenset(
            {("v0", "v0"), ("v1", "v1")}
        )

    def test_nullary_idb_in_body(self):
        program = parse_program(
            "Flag() :- E(x, y). D(x) :- Flag(), E(x, y).", goal="D"
        )
        s = path_graph(3).to_structure()
        assert evaluate_algebra(program, s).goal_relation == frozenset(
            {("v0",), ("v1",)}
        )

    def test_unknown_method_rejected(self):
        program = parse_program("D(x) :- E(x, y).", goal="D")
        with pytest.raises(ValueError):
            evaluate_algebra(
                program, path_graph(2).to_structure(), method="magic"
            )

    def test_delta_rewriting_targets_each_occurrence(self):
        from repro.datalog.algebra_engine import compile_rule_deltas

        rule = parse_rule("P(x, y) :- P(x, z), E(z, w), P(w, y).")
        variants = compile_rule_deltas(rule, frozenset({"P"}))
        assert len(variants) == 2
        texts = [repr(v.expression) for v in variants]
        assert all("delta" in text for text in texts)
        assert texts[0] != texts[1]


def test_generated_game_program_runs_on_algebra_engine():
    """The Theorem 6.2 game program (nullary predicates, constants,
    2^m W-predicates) through the algebra engine."""
    from repro.datalog.homeo import two_disjoint_paths_acyclic_program

    query = two_disjoint_paths_acyclic_program()
    dag = DiGraph(edges=[
        ("s1", "a"), ("a", "t1"), ("s2", "b"), ("b", "t2"),
    ])
    assignment = dict(
        zip(sorted(query.pattern.nodes), ["s1", "t1", "s2", "t2"])
    )
    distinguished = {
        name: assignment[node]
        for node, name in query.constant_names.items()
    }
    structure = dag.with_distinguished(distinguished).to_structure()
    binding = evaluate(query.program, structure).relations
    algebra = evaluate_algebra(query.program, structure).relations
    assert binding == algebra
    assert () in algebra["Answer"]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2_000))
def test_engines_agree_on_random_structures(seed):
    program = parse_program(
        """
        P(x, y) :- E(x, y).
        P(x, y) :- P(x, z), E(z, y), x != y.
        """,
        goal="P",
    )
    structure = random_digraph(5, 0.35, seed).to_structure()
    binding = evaluate(program, structure).relations
    assert binding == evaluate_algebra(program, structure).relations
    assert binding == evaluate_algebra(
        program, structure, method="seminaive"
    ).relations
