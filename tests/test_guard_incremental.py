"""Resource-governed incremental maintenance: abort means rollback.

A budgeted :class:`IncrementalSession` shares one guard across its
whole update stream.  When a limit trips mid-update the session raises
:class:`MaintenanceAborted` *after rolling back* -- the maintained
view, the EDB, and the provenance table are restored to the state
before the aborted update, so a subsequent ``reevaluate()`` comparison
(the CLI's ``--verify``) passes and the replay can resume later from
a :class:`MaintenanceCheckpoint`.
"""

import pytest

from repro.datalog.incremental import IncrementalSession, parse_update_script
from repro.datalog.library import transitive_closure_program
from repro.graphs.generators import path_graph
from repro.guard import (
    CancellationToken,
    MaintenanceAborted,
    MaintenanceCheckpoint,
    CheckpointMismatch,
    ResourceBudget,
    program_fingerprint,
)

TC = transitive_closure_program()
STRUCTURE = path_graph(8).to_structure()

SCRIPT = parse_update_script(
    """
    insert E v7 v0
    delete E v0 v1
    insert E v1 v5
    delete E v5 v6
    """
)


def _verified(session) -> bool:
    full = session.reevaluate()
    return session.relations == {
        predicate: frozenset(full.relations[predicate])
        for predicate in session.relations
    }


class TestAbortRollsBack:
    def test_budget_abort_leaves_view_intact(self):
        session = IncrementalSession(
            TC, STRUCTURE, budget=ResourceBudget(max_iterations=2)
        )
        before = session.relations
        with pytest.raises(MaintenanceAborted) as info:
            session.insert_facts("E", [("v7", "v0")])
        exc = info.value
        assert exc.reason == "max_iterations"
        assert "insert E" in exc.update
        assert session.relations == before
        assert session.update_count == 0
        assert _verified(session)

    def test_delete_abort_restores_provenance(self):
        session = IncrementalSession(
            TC, STRUCTURE, budget=ResourceBudget(max_iterations=1)
        )
        supports = session._supports.total_supports()
        with pytest.raises(MaintenanceAborted):
            session.delete_facts("E", [("v0", "v1")])
        assert session._supports.total_supports() == supports
        assert _verified(session)

    def test_cancellation_aborts(self):
        token = CancellationToken()
        session = IncrementalSession(TC, STRUCTURE, cancellation=token)
        token.cancel()
        with pytest.raises(MaintenanceAborted) as info:
            session.insert_facts("E", [("v7", "v0")])
        assert info.value.reason == "cancelled"
        assert _verified(session)

    def test_budget_spans_the_update_stream(self):
        """The guard accumulates across updates: a stream stops at the
        cumulative limit, not per update."""
        generous = IncrementalSession(TC, STRUCTURE)
        rounds = [generous.apply(update).rounds for update in SCRIPT]
        cumulative = sum(rounds[:2])  # enough for two updates only
        session = IncrementalSession(
            TC, STRUCTURE, budget=ResourceBudget(max_iterations=cumulative)
        )
        applied = 0
        with pytest.raises(MaintenanceAborted):
            for update in SCRIPT:
                session.apply(update)
                applied += 1
        assert 0 < applied < len(SCRIPT)
        assert _verified(session)


class TestMidScriptAbortAndResume:
    """The CLI story end-to-end at the library level: abort a script
    replay, checkpoint the applied prefix, resume on a fresh session."""

    def test_checkpointed_resume_matches_full_replay(self):
        reference = IncrementalSession(TC, STRUCTURE)
        for update in SCRIPT:
            reference.apply(update)

        session = IncrementalSession(
            TC, STRUCTURE, budget=ResourceBudget(max_iterations=14)
        )
        applied = 0
        try:
            for update in SCRIPT:
                session.apply(update)
                applied += 1
        except MaintenanceAborted:
            pass
        assert 0 < applied < len(SCRIPT)
        assert _verified(session)  # rollback left a consistent prefix

        checkpoint = MaintenanceCheckpoint(
            program_fingerprint=program_fingerprint(TC),
            goal=TC.goal,
            edb=session.current_extra_edb(),
            updates_applied=applied,
        )
        resumed = IncrementalSession(
            TC, STRUCTURE, extra_edb=checkpoint.edb
        )
        for update in SCRIPT[checkpoint.updates_applied:]:
            resumed.apply(update)
        assert resumed.relations == reference.relations
        assert resumed.goal_relation == reference.goal_relation

    def test_maintenance_checkpoint_round_trip(self, tmp_path):
        checkpoint = MaintenanceCheckpoint(
            program_fingerprint=program_fingerprint(TC),
            goal=TC.goal,
            edb={"E": frozenset({("v0", "v1")})},
            updates_applied=2,
        )
        path = str(tmp_path / "maint.pkl")
        checkpoint.save(path)
        loaded = MaintenanceCheckpoint.load(path)
        assert loaded == checkpoint
        loaded.validate(program_fingerprint(TC))

    def test_maintenance_checkpoint_wrong_program(self):
        from repro.datalog.library import avoiding_path_program

        checkpoint = MaintenanceCheckpoint(
            program_fingerprint=program_fingerprint(TC),
            goal=TC.goal,
            edb={},
            updates_applied=0,
        )
        with pytest.raises(CheckpointMismatch, match="different program"):
            checkpoint.validate(
                program_fingerprint(avoiding_path_program())
            )


class TestUngovernedFastPath:
    """Without a guard (and with no fault plan armed) the session takes
    no snapshots -- the ungoverned hot path stays untouched."""

    def test_no_snapshot_without_guard(self, monkeypatch):
        session = IncrementalSession(TC, STRUCTURE)
        taken = []
        original = IncrementalSession._snapshot_state

        def spy(self):
            state = original(self)
            taken.append(state)
            return state

        monkeypatch.setattr(IncrementalSession, "_snapshot_state", spy)
        session.insert_facts("E", [("v7", "v0")])
        assert taken == [None]

    def test_transactional_opt_in_without_budget(self):
        session = IncrementalSession(TC, STRUCTURE, transactional=True)
        state = session._snapshot_state()
        assert state is not None
