"""Tests for the general Theorem 6.7 certificate factory."""

import pytest

from repro.core import certificate_for_pattern, classify_query, verify_certificate
from repro.fhw.homeomorphism import homeomorphism_embedding
from repro.fhw.pattern_class import pattern_h1, pattern_h3
from repro.graphs import DiGraph


def h_assignment(certificate, pattern, side="a"):
    """Map pattern nodes to the certificate's h-named distinguished."""
    graph = certificate.a_graph if side == "a" else certificate.b_graph
    ordered = sorted(pattern.without_isolated_nodes().nodes, key=repr)
    return {
        node: graph.distinguished[f"h{i}"]
        for i, node in enumerate(ordered)
    }


class TestFactory:
    @pytest.mark.parametrize(
        "pattern",
        [
            DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a")]),  # triangle
            DiGraph(edges=[("u", "r"), ("r", "v")]),              # in-out
            DiGraph(edges=[("s1", "s2"), ("s3", "s4"), ("s2", "s5")]),
            pattern_h1(),
            pattern_h3(),
        ],
        ids=["triangle", "in-out", "H1-plus-edge", "H1", "H3"],
    )
    def test_certificates_for_complement_patterns(self, pattern):
        cert = certificate_for_pattern(pattern, k=1)
        # Uniform naming: h0..h{m-1} address the pattern's nodes.
        ordered = sorted(pattern.without_isolated_nodes().nodes, key=repr)
        assert set(cert.a_graph.distinguished) == {
            f"h{i}" for i in range(len(ordered))
        }
        # The A side genuinely satisfies the H-query.
        embedding = homeomorphism_embedding(
            pattern, cert.a_graph, h_assignment(cert, pattern, "a")
        )
        assert embedding is not None
        # The proof's strategy survives adversarial play.
        report = verify_certificate(cert, seeds=6, rounds=120)
        assert report.all_survived, report

    def test_rejected_for_class_c_patterns(self):
        with pytest.raises(ValueError, match="class C"):
            certificate_for_pattern(DiGraph(edges=[("r", "u")]), 1)

    def test_loop_obstruction_not_implemented(self):
        loopy = DiGraph(edges=[("r", "r"), ("u", "v")])
        with pytest.raises(NotImplementedError):
            certificate_for_pattern(loopy, 1)

    def test_dichotomy_integration(self):
        row = classify_query(pattern_h1())
        cert = row.inexpressibility_certificate(1)
        assert cert.pattern_name == "H1"
        report = verify_certificate(cert, seeds=4, rounds=80)
        assert report.all_survived

    def test_b_side_of_small_lift_falsifies_query(self):
        """For a lifted pattern small enough to brute-force: B' must not
        satisfy the H-query (Lemma 6.3's second condition)."""
        pattern = DiGraph(edges=[("s1", "s2"), ("s3", "s4"), ("s2", "s5")])
        cert = certificate_for_pattern(pattern, k=1)
        assignment = h_assignment(cert, pattern, "b")
        assert homeomorphism_embedding(
            pattern, cert.b_graph, assignment
        ) is None
