"""Crash-restart durability drill for ``repro serve`` (fault harness).

The ``kill_server`` fault site sits in the server's writer task,
probed once per durably written checkpoint -- *after* the atomic
rename.  The drill:

1. a fault census over a scripted run counts the checkpoint
   boundaries the workload produces (one per applied update at
   ``--checkpoint-every 1``);
2. for **every** boundary ``k``, a fresh server subprocess is armed
   with ``FaultPlan("kill_server", k)`` and driven with the same
   script.  The injected fault is translated into a real ``SIGKILL``
   of the server process (no atexit, no flushing), which the driver
   observes as ``returncode == -SIGKILL``;
3. a second subprocess restarts with ``--resume`` and must serve a
   **bit-identical** view at epoch ``k``: the goal relation equals a
   serial replay of the first ``k`` updates, computed from scratch.

Because the kill lands immediately after the checkpoint's
``os.replace``, every drill iteration also witnesses the atomicity of
the checkpoint write: a torn file would fail ``--resume`` loudly with
``CheckpointMismatch`` rather than resume quietly wrong.

With ``--wal`` the drill tightens from checkpoint boundaries to
**every applied-update boundary**:

* ``wal_record`` fires after each record is durably appended but
  before the update is acknowledged -- a SIGKILL there leaves ``k``
  records on disk and at most ``k - 1`` acks delivered, and
  ``--resume`` (checkpoint + WAL suffix) must serve the serial-prefix
  view at epoch ``k``.  No acknowledged epoch is ever lost.
* ``torn_wal`` crashes *mid-append*, leaving half a frame on disk:
  recovery truncates the torn tail (reported in the resume banner)
  and serves epoch ``k - 1`` -- the unacknowledged torn update is
  legitimately gone, every acknowledged one is not.
* The dedupe table rides in WAL headers/records, so a client retrying
  its unacknowledged in-flight update *across the crash* (same
  ``rid``) is answered ``deduped: true`` with no second application.

Run with ``-m fault_injection`` (deselected from the default suite,
like the other fault drills).
"""

import os
import re
import signal
import subprocess
import sys

import pytest

from repro.datalog.evaluation import evaluate
from repro.datalog.library import transitive_closure_program
from repro.graphs.digraph import DiGraph
from repro.serve.client import ServeClient
from repro.serve.wal import WriteAheadLog
from repro.testing.faults import census

from tests.serve_utils import connect, running_server, tc_view

pytestmark = pytest.mark.fault_injection

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
NODES = "abcde"
EDGES = [("a", "b"), ("b", "c"), ("c", "d")]
SCRIPT = [
    ("insert", ("d", "e")),
    ("insert", ("e", "a")),
    ("delete", ("a", "b")),
    ("insert", ("b", "d")),
]


def _serial_goal_rows(prefix: int) -> list[list[str]]:
    """Ground truth: the goal relation after the first ``prefix`` updates."""
    edb = set(EDGES)
    for kind, row in SCRIPT[:prefix]:
        (edb.add if kind == "insert" else edb.discard)(row)
    structure = DiGraph(nodes=NODES, edges=[]).to_structure()
    program = transitive_closure_program()
    result = evaluate(program, structure, extra_edb={"E": frozenset(edb)})
    return sorted([list(r) for r in result.relations[program.goal]])


def _write_graph(tmp_path) -> str:
    lines = [f"edge {a} {b}" for a, b in EDGES]
    lines += [f"node {n}" for n in NODES]
    path = tmp_path / "drill.graph"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


def _spawn_server(
    graph: str, ckpt: str, *extra, arm: tuple[str, int] | None = None
):
    """Start a serve subprocess; returns (process, bound port, banner).

    ``arm=(site, n)`` pre-arms ``FaultPlan(site, n)`` inside the child
    before the CLI runs -- the injected fault becomes a real SIGKILL
    of that process.  ``banner`` is the stdout printed before the
    serving line (the resume/replay diagnostics).
    """
    serve_args = [
        "serve", "transitive-closure", graph, "--port", "0",
        "--checkpoint", ckpt, *extra,
    ]
    if arm is None:
        argv = [sys.executable, "-u", "-m", "repro.cli", *serve_args]
    else:
        site, occurrence = arm
        boot = (
            "import sys\n"
            "import repro.testing.faults as faults\n"
            f"faults.faults = faults.FaultPlan({site!r}, {occurrence})\n"
            "from repro.cli import main\n"
            f"sys.exit(main({serve_args!r}))\n"
        )
        argv = [sys.executable, "-u", "-c", boot]
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True,
    )
    port = None
    banner: list[str] = []
    for line in process.stdout:
        match = re.search(r"serving \S+ on \S+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
        banner.append(line)
    if port is None:
        process.kill()
        raise RuntimeError(
            "server subprocess never printed its port; output was:\n"
            + "".join(banner)
        )
    return process, port, "".join(banner)


def test_census_enumerates_every_checkpoint_boundary(tmp_path):
    """The schedulable range: one kill_server hit per written checkpoint."""
    ckpt = str(tmp_path / "census.ckpt")
    with census() as counts:
        view = tc_view(EDGES, nodes=NODES)
        with running_server(
            view, checkpoint_path=ckpt, checkpoint_every=1
        ) as server:
            with connect(server) as client:
                for kind, row in SCRIPT:
                    getattr(client, kind)("E", list(row))
    assert counts.hits("kill_server") == len(SCRIPT)


def test_unarmed_probe_is_free(tmp_path):
    """Without a plan the probe is the no-op singleton: nothing fires."""
    ckpt = str(tmp_path / "noop.ckpt")
    view = tc_view(EDGES, nodes=NODES)
    with running_server(
        view, checkpoint_path=ckpt, checkpoint_every=1
    ) as server:
        with connect(server) as client:
            for kind, row in SCRIPT:
                getattr(client, kind)("E", list(row))
            assert client.stats()["checkpoints_written"] == len(SCRIPT)
    assert os.path.exists(ckpt)


@pytest.mark.parametrize("boundary", range(1, len(SCRIPT) + 1))
def test_sigkill_at_every_boundary_resumes_bit_identical(tmp_path, boundary):
    graph = _write_graph(tmp_path)
    ckpt = str(tmp_path / f"kill{boundary}.ckpt")

    # Phase 1: armed server; drive the script until the kill lands.
    process, port, _banner = _spawn_server(
        graph, ckpt, "--checkpoint-every", "1", arm=("kill_server", boundary)
    )
    delivered = 0
    try:
        client = ServeClient("127.0.0.1", port, timeout=30)
        try:
            for kind, row in SCRIPT:
                getattr(client, kind)("E", list(row))
                delivered += 1
        except (ConnectionError, OSError):
            pass
        finally:
            client.close()
    finally:
        returncode = process.wait(timeout=30)
    # A real SIGKILL, not a clean exit and not a Python traceback.
    assert returncode == -signal.SIGKILL
    # The kill fires in the writer task between durably checkpointing
    # update `boundary` and flushing its response, so the client saw
    # exactly the responses of the prior updates.
    assert delivered == boundary - 1

    # Phase 2: --resume must serve the serial-prefix view at epoch k.
    process2, port2, _banner2 = _spawn_server(graph, ckpt, "--resume")
    try:
        with ServeClient("127.0.0.1", port2, timeout=30) as client:
            assert client.ping()["epoch"] == boundary
            response = client.query()
            assert response["epoch"] == boundary
            assert response["rows"] == _serial_goal_rows(boundary)
            client.shutdown()
    finally:
        assert process2.wait(timeout=30) == 0


# ---------------------------------------------------------------------------
# WAL drills: every applied-update boundary, not just checkpoints
# ---------------------------------------------------------------------------


def _drive_until_kill(port: int, rids: bool = False) -> int:
    """Drive SCRIPT until the armed kill severs the connection.

    Returns the number of *acknowledged* updates -- the durability
    contract the drills hold the server to.
    """
    delivered = 0
    client = ServeClient("127.0.0.1", port, timeout=30)
    try:
        for index, (kind, row) in enumerate(SCRIPT, start=1):
            rid = f"drill-{index}" if rids else None
            getattr(client, kind)("E", list(row), rid=rid)
            delivered += 1
    except (ConnectionError, OSError):
        pass
    finally:
        client.close()
    return delivered


def test_census_counts_every_wal_record(tmp_path):
    """With a WAL attached the schedulable range is every applied row:
    both WAL sites are probed once per record."""
    ckpt = str(tmp_path / "census-wal.ckpt")
    with census() as counts:
        view = tc_view(EDGES, nodes=NODES)
        wal = WriteAheadLog.create(
            str(tmp_path / "census.wal"), 0, view.program_fp
        )
        with running_server(
            view, wal=wal, checkpoint_path=ckpt, checkpoint_every=1
        ) as server:
            with connect(server) as client:
                for kind, row in SCRIPT:
                    getattr(client, kind)("E", list(row))
    assert counts.hits("wal_record") == len(SCRIPT)
    assert counts.hits("torn_wal") == len(SCRIPT)


@pytest.mark.parametrize("boundary", range(1, len(SCRIPT) + 1))
def test_sigkill_at_every_wal_record_loses_no_acknowledged_epoch(
    tmp_path, boundary
):
    """SIGKILL after record ``k`` is durable but before its ack: at
    most ``k - 1`` responses were delivered, and --resume (checkpoint
    + WAL suffix replay) serves the serial prefix at epoch ``k``."""
    graph = _write_graph(tmp_path)
    ckpt = str(tmp_path / f"wal-kill{boundary}.ckpt")
    wal = str(tmp_path / f"wal-kill{boundary}.wal")
    durability = ["--wal", wal, "--checkpoint-every", "2"]

    process, port, _banner = _spawn_server(
        graph, ckpt, *durability, arm=("wal_record", boundary)
    )
    try:
        delivered = _drive_until_kill(port)
    finally:
        returncode = process.wait(timeout=30)
    assert returncode == -signal.SIGKILL
    assert delivered == boundary - 1

    process2, port2, banner = _spawn_server(
        graph, ckpt, *durability, "--resume"
    )
    try:
        assert "% wal replay:" in banner
        with ServeClient("127.0.0.1", port2, timeout=30) as client:
            # Bit-identical at the last durable epoch: record k was
            # logged before the kill, so nothing acknowledged (<= k-1)
            # -- nor even the unacked k-th -- is lost.
            assert client.ping()["epoch"] == boundary
            response = client.query()
            assert response["epoch"] == boundary
            assert response["rows"] == _serial_goal_rows(boundary)
            client.shutdown()
    finally:
        assert process2.wait(timeout=30) == 0


@pytest.mark.parametrize("boundary", range(1, len(SCRIPT) + 1))
def test_torn_tail_at_every_record_is_truncated_not_fatal(
    tmp_path, boundary
):
    """``torn_wal`` crashes mid-append, leaving half a frame on disk.
    Recovery truncates the torn tail (reported, not fatal) and serves
    epoch ``k - 1``: the torn update was never acknowledged."""
    graph = _write_graph(tmp_path)
    ckpt = str(tmp_path / f"torn{boundary}.ckpt")
    wal = str(tmp_path / f"torn{boundary}.wal")
    durability = ["--wal", wal, "--checkpoint-every", "2"]

    process, port, _banner = _spawn_server(
        graph, ckpt, *durability, arm=("torn_wal", boundary)
    )
    try:
        delivered = _drive_until_kill(port)
    finally:
        returncode = process.wait(timeout=30)
    assert returncode == -signal.SIGKILL
    assert delivered == boundary - 1

    process2, port2, banner = _spawn_server(
        graph, ckpt, *durability, "--resume"
    )
    try:
        torn = re.search(r"(\d+) torn bytes truncated", banner)
        assert torn is not None, f"no truncation report in: {banner!r}"
        assert int(torn.group(1)) > 0
        with ServeClient("127.0.0.1", port2, timeout=30) as client:
            assert client.ping()["epoch"] == boundary - 1
            response = client.query()
            assert response["rows"] == _serial_goal_rows(boundary - 1)
            client.shutdown()
    finally:
        assert process2.wait(timeout=30) == 0


def test_rid_retry_across_crash_applies_exactly_once(tmp_path):
    """The lost-ack crash: update 3 is applied and logged, the server
    dies before responding.  After --resume the client's retry (same
    rid) is answered from the recovered dedupe table -- no second
    application -- and the script completes to the full serial view."""
    graph = _write_graph(tmp_path)
    ckpt = str(tmp_path / "retry.ckpt")
    wal = str(tmp_path / "retry.wal")
    durability = ["--wal", wal, "--checkpoint-every", "2"]
    boundary = 3

    process, port, _banner = _spawn_server(
        graph, ckpt, *durability, arm=("wal_record", boundary)
    )
    try:
        delivered = _drive_until_kill(port, rids=True)
    finally:
        assert process.wait(timeout=30) == -signal.SIGKILL
    assert delivered == boundary - 1

    process2, port2, _banner2 = _spawn_server(
        graph, ckpt, *durability, "--resume"
    )
    try:
        with ServeClient("127.0.0.1", port2, timeout=30) as client:
            assert client.ping()["epoch"] == boundary
            # Replay the unacknowledged in-flight update verbatim.
            kind, row = SCRIPT[boundary - 1]
            retried = getattr(client, kind)(
                "E", list(row), rid=f"drill-{boundary}"
            )
            assert retried["deduped"] is True
            assert retried["epoch"] == boundary  # not applied twice
            assert client.ping()["epoch"] == boundary
            # Finish the script; the final view equals a serial replay.
            for index in range(boundary, len(SCRIPT)):
                kind, row = SCRIPT[index]
                getattr(client, kind)("E", list(row), rid=f"drill-{index + 1}")
            response = client.query()
            assert response["epoch"] == len(SCRIPT)
            assert response["rows"] == _serial_goal_rows(len(SCRIPT))
            client.shutdown()
    finally:
        assert process2.wait(timeout=30) == 0
