"""Crash-restart durability drill for ``repro serve`` (fault harness).

The ``kill_server`` fault site sits in the server's writer task,
probed once per durably written checkpoint -- *after* the atomic
rename.  The drill:

1. a fault census over a scripted run counts the checkpoint
   boundaries the workload produces (one per applied update at
   ``--checkpoint-every 1``);
2. for **every** boundary ``k``, a fresh server subprocess is armed
   with ``FaultPlan("kill_server", k)`` and driven with the same
   script.  The injected fault is translated into a real ``SIGKILL``
   of the server process (no atexit, no flushing), which the driver
   observes as ``returncode == -SIGKILL``;
3. a second subprocess restarts with ``--resume`` and must serve a
   **bit-identical** view at epoch ``k``: the goal relation equals a
   serial replay of the first ``k`` updates, computed from scratch.

Because the kill lands immediately after the checkpoint's
``os.replace``, every drill iteration also witnesses the atomicity of
the checkpoint write: a torn file would fail ``--resume`` loudly with
``CheckpointMismatch`` rather than resume quietly wrong.

Run with ``-m fault_injection`` (deselected from the default suite,
like the other fault drills).
"""

import os
import re
import signal
import subprocess
import sys

import pytest

from repro.datalog.evaluation import evaluate
from repro.datalog.library import transitive_closure_program
from repro.graphs.digraph import DiGraph
from repro.serve.client import ServeClient
from repro.testing.faults import census

from tests.serve_utils import connect, running_server, tc_view

pytestmark = pytest.mark.fault_injection

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
NODES = "abcde"
EDGES = [("a", "b"), ("b", "c"), ("c", "d")]
SCRIPT = [
    ("insert", ("d", "e")),
    ("insert", ("e", "a")),
    ("delete", ("a", "b")),
    ("insert", ("b", "d")),
]


def _serial_goal_rows(prefix: int) -> list[list[str]]:
    """Ground truth: the goal relation after the first ``prefix`` updates."""
    edb = set(EDGES)
    for kind, row in SCRIPT[:prefix]:
        (edb.add if kind == "insert" else edb.discard)(row)
    structure = DiGraph(nodes=NODES, edges=[]).to_structure()
    program = transitive_closure_program()
    result = evaluate(program, structure, extra_edb={"E": frozenset(edb)})
    return sorted([list(r) for r in result.relations[program.goal]])


def _write_graph(tmp_path) -> str:
    lines = [f"edge {a} {b}" for a, b in EDGES]
    lines += [f"node {n}" for n in NODES]
    path = tmp_path / "drill.graph"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


def _spawn_server(graph: str, ckpt: str, *extra, arm: int | None = None):
    """Start a serve subprocess; returns (process, bound port).

    ``arm`` pre-arms ``FaultPlan("kill_server", arm)`` inside the
    child before the CLI runs -- the injected fault becomes a real
    SIGKILL of that process.
    """
    serve_args = [
        "serve", "transitive-closure", graph, "--port", "0",
        "--checkpoint", ckpt, *extra,
    ]
    if arm is None:
        argv = [sys.executable, "-u", "-m", "repro.cli", *serve_args]
    else:
        boot = (
            "import sys\n"
            "import repro.testing.faults as faults\n"
            f"faults.faults = faults.FaultPlan('kill_server', {arm})\n"
            "from repro.cli import main\n"
            f"sys.exit(main({serve_args!r}))\n"
        )
        argv = [sys.executable, "-u", "-c", boot]
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True,
    )
    port = None
    for line in process.stdout:
        match = re.search(r"serving \S+ on \S+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        process.kill()
        raise RuntimeError("server subprocess never printed its port")
    return process, port


def test_census_enumerates_every_checkpoint_boundary(tmp_path):
    """The schedulable range: one kill_server hit per written checkpoint."""
    ckpt = str(tmp_path / "census.ckpt")
    with census() as counts:
        view = tc_view(EDGES, nodes=NODES)
        with running_server(
            view, checkpoint_path=ckpt, checkpoint_every=1
        ) as server:
            with connect(server) as client:
                for kind, row in SCRIPT:
                    getattr(client, kind)("E", list(row))
    assert counts.hits("kill_server") == len(SCRIPT)


def test_unarmed_probe_is_free(tmp_path):
    """Without a plan the probe is the no-op singleton: nothing fires."""
    ckpt = str(tmp_path / "noop.ckpt")
    view = tc_view(EDGES, nodes=NODES)
    with running_server(
        view, checkpoint_path=ckpt, checkpoint_every=1
    ) as server:
        with connect(server) as client:
            for kind, row in SCRIPT:
                getattr(client, kind)("E", list(row))
            assert client.stats()["checkpoints_written"] == len(SCRIPT)
    assert os.path.exists(ckpt)


@pytest.mark.parametrize("boundary", range(1, len(SCRIPT) + 1))
def test_sigkill_at_every_boundary_resumes_bit_identical(tmp_path, boundary):
    graph = _write_graph(tmp_path)
    ckpt = str(tmp_path / f"kill{boundary}.ckpt")

    # Phase 1: armed server; drive the script until the kill lands.
    process, port = _spawn_server(
        graph, ckpt, "--checkpoint-every", "1", arm=boundary
    )
    delivered = 0
    try:
        client = ServeClient("127.0.0.1", port, timeout=30)
        try:
            for kind, row in SCRIPT:
                getattr(client, kind)("E", list(row))
                delivered += 1
        except (ConnectionError, OSError):
            pass
        finally:
            client.close()
    finally:
        returncode = process.wait(timeout=30)
    # A real SIGKILL, not a clean exit and not a Python traceback.
    assert returncode == -signal.SIGKILL
    # The kill fires in the writer task between durably checkpointing
    # update `boundary` and flushing its response, so the client saw
    # exactly the responses of the prior updates.
    assert delivered == boundary - 1

    # Phase 2: --resume must serve the serial-prefix view at epoch k.
    process2, port2 = _spawn_server(graph, ckpt, "--resume")
    try:
        with ServeClient("127.0.0.1", port2, timeout=30) as client:
            assert client.ping()["epoch"] == boundary
            response = client.query()
            assert response["epoch"] == boundary
            assert response["rows"] == _serial_goal_rows(boundary)
            client.shutdown()
    finally:
        assert process2.wait(timeout=30) == 0
