"""Unit and property tests for CNF formulas, assignments, and SAT."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import (
    Clause,
    CnfFormula,
    ExtendedAssignment,
    InconsistentAssignment,
    Literal,
    all_satisfying_assignments,
    complete_formula,
    is_satisfiable,
    pigeonhole_style_formula,
    satisfying_assignment,
)


class TestLiteral:
    def test_parse(self):
        assert Literal.parse("x1") == Literal("x1", True)
        assert Literal.parse("~x1") == Literal("x1", False)
        assert Literal.parse("!x1") == Literal("x1", False)

    def test_complement(self):
        lit = Literal("x", True)
        assert lit.complement == Literal("x", False)
        assert lit.complement.complement == lit

    def test_str(self):
        assert str(Literal("x", False)) == "~x"


class TestFormula:
    def test_parse(self):
        phi = CnfFormula.parse("x1 | ~x2; x2")
        assert len(phi.clauses) == 2
        assert phi.variables == ("x1", "x2")

    def test_occurrences_keep_multiplicity(self):
        phi = CnfFormula.parse("x1 | x1")  # the paper's Figure 5 formula
        assert len(phi.occurrences()) == 2
        assert phi.occurrence_count(Literal("x1")) == 2

    def test_evaluate(self):
        phi = CnfFormula.parse("x1 | ~x2; x2")
        assert phi.evaluate({"x1": True, "x2": True})
        assert not phi.evaluate({"x1": False, "x2": True})

    def test_literals_listing(self):
        phi = CnfFormula.parse("x1")
        assert set(phi.literals) == {Literal("x1", True), Literal("x1", False)}

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            Clause([])


class TestCompleteFormula:
    def test_shape(self):
        phi = complete_formula(3)
        assert len(phi.clauses) == 8
        assert all(len(clause) == 3 for clause in phi.clauses)
        assert all(
            len({lit.variable for lit in clause}) == 3
            for clause in phi.clauses
        )

    def test_unsatisfiable(self):
        for k in (1, 2, 3):
            assert not is_satisfiable(complete_formula(k))

    def test_every_literal_occurs_equally(self):
        phi = complete_formula(3)
        counts = {phi.occurrence_count(lit) for lit in phi.literals}
        assert counts == {4}  # 2^{k-1}

    def test_pigeonhole_style(self):
        phi = pigeonhole_style_formula(4)
        assert not is_satisfiable(phi)
        assert len(phi.clauses) == 5


class TestSat:
    def test_satisfiable(self):
        phi = CnfFormula.parse("x1 | x2; ~x1 | x2; ~x2 | x3")
        model = satisfying_assignment(phi)
        assert model is not None
        assert phi.evaluate(model)

    def test_unsatisfiable(self):
        assert not is_satisfiable(CnfFormula.parse("x1; ~x1"))

    def test_all_models(self):
        phi = CnfFormula.parse("x1 | x2")
        models = list(all_satisfying_assignments(phi))
        assert len(models) == 3

    def test_dpll_agrees_with_enumeration(self):
        phi = CnfFormula.parse("x1 | ~x2; ~x1 | x2; x1 | x2")
        assert is_satisfiable(phi) == bool(list(all_satisfying_assignments(phi)))


class TestExtendedAssignment:
    def test_assign_literal_fixes_complement(self):
        a = ExtendedAssignment()
        a.assign(Literal("x", False), True)  # ~x := true
        assert a.value(Literal("x", True)) is False
        assert a.value(Literal("x", False)) is True

    def test_conflict_raises(self):
        a = ExtendedAssignment()
        a.assign(Literal("x"), True)
        with pytest.raises(InconsistentAssignment):
            a.assign(Literal("x"), False)

    def test_support_counting(self):
        a = ExtendedAssignment()
        a.assign(Literal("x"), True)
        a.assign(Literal("x"), True)
        a.release(Literal("x"))
        assert a.value(Literal("x")) is True  # one support left
        a.release(Literal("x"))
        assert a.value(Literal("x")) is None  # evaporated

    def test_release_without_support_raises(self):
        with pytest.raises(ValueError):
            ExtendedAssignment().release(Literal("x"))

    def test_as_dict(self):
        a = ExtendedAssignment()
        a.assign(Literal("x", False), True)
        assert a.as_dict() == {"x": False}


def _random_formula(draw_clauses, variables):
    clauses = []
    for signs in draw_clauses:
        clause = [
            Literal(f"x{i + 1}", sign)
            for i, sign in enumerate(signs[:variables])
            if sign is not None
        ]
        if clause:
            clauses.append(Clause(clause))
    return CnfFormula(clauses) if clauses else None


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(st.sampled_from([True, False, None]), min_size=3, max_size=3),
        min_size=1,
        max_size=5,
    )
)
def test_dpll_matches_brute_force(clause_specs):
    """Property: the DPLL verdict equals exhaustive enumeration."""
    formula = _random_formula(clause_specs, variables=3)
    if formula is None:
        return
    brute = bool(list(all_satisfying_assignments(formula)))
    assert is_satisfiable(formula) == brute
    model = satisfying_assignment(formula)
    if model is not None:
        assert formula.evaluate(model)
