"""Tests for the Theorem 6.2 two-player game and the solitaire variant."""

import random

import pytest

from repro.fhw.homeomorphism import is_homeomorphic_to_distinguished_subgraph
from repro.fhw.pattern_class import pattern_h1, pattern_h2, pattern_h3
from repro.games.acyclic import acyclic_game_winner, solve_acyclic_game
from repro.games.solitaire import solitaire_game_solvable
from repro.graphs import DiGraph
from repro.graphs.generators import layered_random_dag


@pytest.fixture
def shared_middle():
    """The graph where naive single-pebble interleaving over-approximates:
    both chains must pass through v, yet pebbles can dodge each other in
    time.  The two-player game (and the exact oracle) say NO."""
    return DiGraph(edges=[
        ("s1", "v"), ("v", "t1"), ("s2", "v"), ("v", "t2"),
    ])


H1_ASSIGNMENT = {"s1": "s1", "s2": "t1", "s3": "s2", "s4": "t2"}


class TestTwoPlayerGame:
    def test_shared_middle_is_a_player_one_win(self, shared_middle):
        assert acyclic_game_winner(
            shared_middle, pattern_h1(), H1_ASSIGNMENT
        ) == "I"
        assert not is_homeomorphic_to_distinguished_subgraph(
            pattern_h1(), shared_middle, H1_ASSIGNMENT
        )

    def test_parallel_chains_are_a_player_two_win(self):
        g = DiGraph(edges=[
            ("s1", "a"), ("a", "t1"), ("s2", "b"), ("b", "t2"),
        ])
        assert acyclic_game_winner(g, pattern_h1(), H1_ASSIGNMENT) == "II"

    def test_removal_onto_occupied_start(self):
        """Regression: a pebble may land on its own target even while
        another pebble still rests there (H2's middle node is both a
        target and a start)."""
        g = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "x"), ("x", "y")])
        assignment = {"s1": "a", "s2": "b", "s3": "c"}
        assert acyclic_game_winner(g, pattern_h2(), assignment) == "II"
        assert solitaire_game_solvable(g, pattern_h2(), assignment)

    def test_direct_edges_win_immediately(self):
        g = DiGraph(edges=[("s1", "t1"), ("s2", "t2")])
        result = solve_acyclic_game(g, pattern_h1(), H1_ASSIGNMENT)
        assert result.player_two_wins
        assert result.initial in result.alive

    @pytest.mark.parametrize(
        "pattern,mapping_size", [(pattern_h1(), 4), (pattern_h2(), 3), (pattern_h3(), 2)]
    )
    def test_game_equals_homeomorphism_on_dags(self, pattern, mapping_size):
        """Theorem 6.2's core equivalence, checked on random DAGs.

        (H3 contains a cycle, so it never embeds into a DAG -- the game
        must always go to Player I there.)"""
        rng = random.Random(17)
        pattern_nodes = sorted(pattern.nodes, key=repr)
        for seed in range(3):
            g = layered_random_dag(4, 3, 0.5, seed)
            nodes = sorted(g.nodes)
            for __ in range(4):
                assignment = dict(
                    zip(pattern_nodes, rng.sample(nodes, mapping_size))
                )
                game = acyclic_game_winner(g, pattern, assignment) == "II"
                exact = is_homeomorphic_to_distinguished_subgraph(
                    pattern, g, assignment
                )
                assert game == exact

    def test_assignment_validation(self, shared_middle):
        with pytest.raises(ValueError, match="injective"):
            solve_acyclic_game(
                shared_middle, pattern_h1(),
                {"s1": "s1", "s2": "s1", "s3": "s2", "s4": "t2"},
            )
        with pytest.raises(ValueError, match="not in the graph"):
            solve_acyclic_game(
                shared_middle, pattern_h1(),
                {"s1": "s1", "s2": "zz", "s3": "s2", "s4": "t2"},
            )

    def test_edgeless_pattern_rejected(self, shared_middle):
        with pytest.raises(ValueError):
            solve_acyclic_game(shared_middle, DiGraph(nodes=["x"]), {})


class TestEmbeddingExtraction:
    """Theorem 6.2's proof direction: winning plays trace embeddings."""

    def test_extracted_paths_realise_the_homeomorphism(self):
        from repro.games.acyclic import extract_embedding_from_game

        pattern = pattern_h1()
        pattern_nodes = sorted(pattern.nodes, key=repr)
        rng = random.Random(9)
        for seed in range(3):
            g = layered_random_dag(4, 3, 0.5, seed)
            nodes = sorted(g.nodes)
            for __ in range(4):
                assignment = dict(zip(pattern_nodes, rng.sample(nodes, 4)))
                paths = extract_embedding_from_game(g, pattern, assignment)
                exists = is_homeomorphic_to_distinguished_subgraph(
                    pattern, g, assignment
                )
                assert (paths is not None) == exists
                if paths is None:
                    continue
                edges = sorted(pattern.edges, key=repr)
                interiors: set = set()
                for path, (i, j) in zip(paths, edges):
                    assert path[0] == assignment[i]
                    assert path[-1] == assignment[j]
                    assert len(set(path)) == len(path)  # simple
                    assert all(
                        g.has_edge(u, v) for u, v in zip(path, path[1:])
                    )
                    inner = set(path[1:-1])
                    assert not inner & interiors
                    interiors |= inner | {path[0], path[-1]}

    def test_none_when_player_one_wins(self, shared_middle):
        from repro.games.acyclic import extract_embedding_from_game

        assert extract_embedding_from_game(
            shared_middle, pattern_h1(), H1_ASSIGNMENT
        ) is None

    def test_rejects_cyclic_graphs(self):
        from repro.games.acyclic import extract_embedding_from_game

        cyclic = DiGraph(edges=[
            ("s1", "t1"), ("s2", "t2"), ("x", "y"), ("y", "x"),
        ])
        with pytest.raises(ValueError, match="acyclic"):
            extract_embedding_from_game(cyclic, pattern_h1(), H1_ASSIGNMENT)


class TestSolitaire:
    def test_matches_two_player_game_on_dags(self):
        pattern = pattern_h1()
        pattern_nodes = sorted(pattern.nodes, key=repr)
        rng = random.Random(5)
        for seed in range(3):
            g = layered_random_dag(4, 3, 0.5, seed)
            nodes = sorted(g.nodes)
            for __ in range(5):
                assignment = dict(zip(pattern_nodes, rng.sample(nodes, 4)))
                assert solitaire_game_solvable(g, pattern, assignment) == (
                    acyclic_game_winner(g, pattern, assignment) == "II"
                )

    def test_shared_middle_unsolvable(self, shared_middle):
        """The max-level scheduler exposes the conflict the unscheduled
        single player could dodge."""
        assert not solitaire_game_solvable(
            shared_middle, pattern_h1(), H1_ASSIGNMENT
        )

    def test_rejects_cyclic_graphs(self):
        cyclic = DiGraph(edges=[("a", "b"), ("b", "a"), ("s1", "a"),
                                ("b", "t1"), ("s2", "t2")])
        with pytest.raises(ValueError, match="acyclic"):
            solitaire_game_solvable(cyclic, pattern_h1(), H1_ASSIGNMENT)
