"""The observability layer: metrics registry, span tracer, EXPLAIN.

Covers the contracts ISSUE's tentpole promises: span nesting with a
JSONL round-trip, counter snapshot/reset determinism, the disabled-mode
no-op path (behaviour *and* cost budget), and the EXPLAIN renderer on
every library program.
"""

import io
import json
import time

import pytest

from repro.datalog.evaluation import evaluate
from repro.datalog.library import library_programs, q_program
from repro.graphs.generators import path_graph, random_digraph
from repro.obs import explain as explain_module
from repro.obs import metrics as metrics_module
from repro.obs import trace as trace_module
from repro.obs.explain import explain_program, explain_rule
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanTracer, load_span_tree


@pytest.fixture(autouse=True)
def _obs_globals_restored():
    """No test may leak an enabled sink into the rest of the suite."""
    yield
    metrics_module.disable_metrics()
    trace_module.disable_tracing()


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("a.count")
        registry.inc("a.count", 4)
        registry.gauge("a.level", 2.5)
        registry.gauge("a.level", 7.0)
        for value in (1, 2, 3):
            registry.observe("a.sizes", value)
        assert registry.counter("a.count") == 5
        assert registry.counter("a.unknown") == 0
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a.count": 5}
        assert snapshot["gauges"] == {"a.level": 7.0}
        assert snapshot["histograms"]["a.sizes"] == {
            "count": 3, "total": 6, "min": 1, "max": 3, "mean": 2.0,
            "p50": 2, "p95": 3, "p99": 3,
        }
        summary = registry.histogram("a.sizes")
        assert (summary.count, summary.mean) == (3, 2.0)
        assert (summary.p50, summary.p95, summary.p99) == (2, 3, 3)
        assert registry.histogram("a.unknown") is None

    def test_quantiles_are_nearest_rank(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("latency", value)
        summary = registry.histogram("latency")
        assert summary.p50 == 50
        assert summary.p95 == 95
        assert summary.p99 == 99
        # A single observation is every quantile at once.
        registry.observe("one", 7)
        single = registry.histogram("one")
        assert (single.p50, single.p95, single.p99) == (7, 7, 7)

    def test_snapshot_ordering_is_deterministic(self):
        registry = MetricsRegistry()
        for name in ("z.last", "a.first", "m.middle"):
            registry.inc(name)
            registry.gauge(name + ".g", 1.0)
            registry.observe(name + ".h", 1)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])
        assert list(snapshot["gauges"]) == sorted(snapshot["gauges"])
        assert list(snapshot["histograms"]) == sorted(
            snapshot["histograms"]
        )

    def test_snapshot_is_json_serialisable_copy(self):
        registry = MetricsRegistry()
        registry.inc("x")
        snapshot = registry.snapshot()
        json.dumps(snapshot)
        registry.inc("x")  # later writes must not mutate the snapshot
        assert snapshot["counters"] == {"x": 1}

    def test_reset_then_identical_workload_is_deterministic(self):
        registry = MetricsRegistry()

        def workload():
            registry.inc("w.count", 3)
            registry.gauge("w.level", 1.5)
            registry.observe("w.sizes", 2)
            registry.observe("w.sizes", 4)

        workload()
        first = registry.snapshot()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        workload()
        assert registry.snapshot() == first

    def test_enable_disable_swap_the_module_global(self):
        assert metrics_module.metrics is metrics_module.NOOP
        registry = metrics_module.enable_metrics()
        assert metrics_module.get_metrics() is registry
        assert registry.enabled
        metrics_module.metrics.inc("seen")
        metrics_module.disable_metrics()
        assert metrics_module.metrics is metrics_module.NOOP
        # Data collected while enabled survives the swap back.
        assert registry.counter("seen") == 1

    def test_noop_sink_ignores_everything(self):
        noop = metrics_module.NOOP
        assert not noop.enabled
        noop.inc("x", 10)
        noop.gauge("y", 1.0)
        noop.observe("z", 2.0)
        assert noop.counter("x") == 0
        assert noop.histogram("z") is None
        assert noop.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


# ---------------------------------------------------------------------------
# Span tracer
# ---------------------------------------------------------------------------


class TestSpanTracer:
    def test_nesting_depth_and_parents(self):
        tracer = SpanTracer()
        with tracer.span("outer", label="a") as outer:
            with tracer.span("inner") as inner:
                inner.annotate(found=3)
            with tracer.span("inner"):
                pass
            outer.annotate(children=2)
        outer_span, first, second = tracer.spans
        assert outer_span.parent_id is None and outer_span.depth == 0
        assert first.parent_id == outer_span.span_id and first.depth == 1
        assert second.parent_id == outer_span.span_id
        assert first.attributes == {"found": 3}
        assert outer_span.attributes == {"label": "a", "children": 2}
        assert all(s.end is not None and s.duration >= 0 for s in tracer.spans)

    def test_exception_unwinds_open_spans(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        # A new span after the unwind is a root again, not a child.
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].parent_id is None

    def test_jsonl_round_trip_reconstructs_the_tree(self):
        tracer = SpanTracer()
        with tracer.span("run", goal="S"):
            for round_number in (1, 2):
                with tracer.span("iteration", round=round_number):
                    pass
        stream = io.StringIO()
        assert tracer.export_jsonl(stream) == 3
        roots = load_span_tree(stream.getvalue().splitlines())
        assert len(roots) == 1
        root = roots[0]
        assert root.kind == "run" and root.record["goal"] == "S"
        assert [child.kind for child in root.children] == [
            "iteration", "iteration",
        ]
        assert [node.kind for node in root.walk()] == [
            "run", "iteration", "iteration",
        ]

    def test_load_span_tree_rejects_malformed_interior_lines(self):
        # Corruption *before* the end is genuine and still raises.
        good = '{"span": 1, "parent": null, "kind": "after"}'
        with pytest.raises(json.JSONDecodeError):
            load_span_tree(['{"span": 0, "parent": null', good])

    def test_load_span_tree_skips_torn_final_line(self):
        # A process killed mid-export tears exactly the last line; the
        # completed spans before it must still load (with a warning).
        tracer = SpanTracer()
        with tracer.span("run", goal="S"):
            with tracer.span("iteration", round=1):
                pass
        stream = io.StringIO()
        tracer.export_jsonl(stream)
        lines = stream.getvalue().splitlines()
        torn = lines[:-1] + [lines[-1][: len(lines[-1]) // 2]]
        with pytest.warns(RuntimeWarning, match="torn final JSONL line"):
            roots = load_span_tree(torn)
        assert len(roots) == 1
        assert [node.kind for node in roots[0].walk()] == ["run"]
        # Trailing blank lines do not shield an interior torn line.
        with pytest.warns(RuntimeWarning):
            assert load_span_tree(torn + ["", ""]) == roots

    def test_write_jsonl_and_reset(self, tmp_path):
        tracer = trace_module.enable_tracing()
        result = evaluate(
            q_program(1, 1), path_graph(4).to_structure(), method="indexed"
        )
        assert result.goal_relation is not None
        path = tmp_path / "trace.jsonl"
        written = tracer.write_jsonl(str(path))
        assert written == len(tracer.spans) > 0
        with open(path, encoding="utf-8") as handle:
            roots = load_span_tree(handle)
        assert roots[0].kind == "evaluate"
        assert {node.kind for node in roots[0].walk()} >= {
            "evaluate", "iteration", "rule",
        }
        tracer.reset()
        assert tracer.spans == ()

    def test_noop_tracer_is_shared_and_silent(self):
        noop = trace_module.NOOP
        context = noop.span("anything", x=1)
        with context as entered:
            entered.annotate(y=2)
        assert context is noop.span("other")  # one shared null context
        assert noop.spans == ()
        assert noop.export_jsonl(io.StringIO()) == 0


# ---------------------------------------------------------------------------
# Engine instrumentation through the public API
# ---------------------------------------------------------------------------


class TestEngineCounters:
    def test_indexed_run_populates_engine_and_index_counters(self):
        registry = metrics_module.enable_metrics()
        evaluate(
            q_program(1, 1),
            random_digraph(6, 0.3, seed=2).to_structure(),
            method="indexed",
        )
        counters = registry.snapshot()["counters"]
        assert counters["datalog.evaluations"] == 1
        assert counters["datalog.rounds"] >= 2
        assert counters["index.builds"] >= 1
        assert counters["index.probes"] >= 1

    def test_profile_collection_is_deterministic(self):
        structure = random_digraph(6, 0.3, seed=5).to_structure()
        program = q_program(2, 0)
        views = []
        for __ in range(2):
            result = evaluate(
                program, structure, method="seminaive", collect_profile=True
            )
            views.append(result.profile.semantic_view())
            json.dumps(result.profile.to_dict())
        assert views[0] == views[1]

    def test_profile_is_off_by_default(self):
        result = evaluate(q_program(1, 1), path_graph(3).to_structure())
        assert result.profile is None


# ---------------------------------------------------------------------------
# Disabled-mode cost budget
# ---------------------------------------------------------------------------


class _CallCountingMetrics:
    """Duck-typed sink that counts instrumentation call sites hit."""

    enabled = True

    def __init__(self):
        self.calls = 0

    def inc(self, name, value=1):
        self.calls += 1

    def gauge(self, name, value):
        self.calls += 1

    def observe(self, name, value):
        self.calls += 1


class _CallCountingTracer:
    enabled = True

    def __init__(self):
        self.calls = 0
        self._context = trace_module._NoopSpanContext()

    def span(self, kind, **attributes):
        self.calls += 1
        return self._context


class TestDisabledOverhead:
    """The tentpole's <= 5% bar, phrased robustly for noisy CI boxes.

    Rather than differencing two noisy wall-clock measurements, bound
    the *instrumentation budget*: (number of no-op calls the workload
    performs) x (measured cost of one no-op call) must stay under 5% of
    the workload's own runtime.  Calls are per-round / per-operator
    aggregates by design, so the budget is orders of magnitude below
    the bar.
    """

    WORKLOAD_PROGRAM = staticmethod(lambda: q_program(2, 0))
    WORKLOAD_NODES = 10

    def _workload(self):
        program = self.WORKLOAD_PROGRAM()
        structure = random_digraph(
            self.WORKLOAD_NODES, 0.25, seed=3
        ).to_structure()
        return lambda: evaluate(program, structure, method="indexed")

    def test_noop_call_budget_is_under_five_percent(self):
        run = self._workload()
        run()  # warm up caches
        runtime = min(
            self._timed(run) for __ in range(3)
        )

        counting_metrics = _CallCountingMetrics()
        counting_tracer = _CallCountingTracer()
        metrics_module.enable_metrics(counting_metrics)
        trace_module.enable_tracing(counting_tracer)
        try:
            run()
        finally:
            metrics_module.disable_metrics()
            trace_module.disable_tracing()

        noop = metrics_module.NOOP
        per_inc = self._timed(
            lambda: [noop.inc("x") for __ in range(10_000)]
        ) / 10_000
        null_tracer = trace_module.NOOP

        def span_once():
            for __ in range(10_000):
                with null_tracer.span("x"):
                    pass

        per_span = self._timed(span_once) / 10_000
        budget = (
            counting_metrics.calls * per_inc
            + counting_tracer.calls * per_span
        )
        assert budget < 0.05 * runtime, (
            f"{counting_metrics.calls} metric + {counting_tracer.calls} "
            f"span no-op calls cost ~{budget * 1e6:.0f}us against a "
            f"{runtime * 1e3:.1f}ms workload"
        )

    def test_enabled_run_matches_disabled_run(self):
        run = self._workload()
        disabled = run()
        metrics_module.enable_metrics()
        trace_module.enable_tracing()
        try:
            enabled = run()
        finally:
            metrics_module.disable_metrics()
            trace_module.disable_tracing()
        assert enabled.relations == disabled.relations
        assert enabled.iterations == disabled.iterations

    @staticmethod
    def _timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start


# ---------------------------------------------------------------------------
# EXPLAIN
# ---------------------------------------------------------------------------


class TestExplain:
    def test_every_library_program_renders(self):
        for name, program in library_programs().items():
            text = explain_program(program, name=name)
            assert text.startswith(f"EXPLAIN {name}: goal {program.goal}")
            assert "full plan (round 1):" in text
            # Every rule of the program appears as its own block.
            assert text.count("rule: ") == len(program.rules)

    def test_transitive_closure_plan_vocabulary(self):
        program = library_programs()["transitive-closure"]
        text = explain_program(program)
        assert "scan  E(x, y)" in text
        assert "probe dS(z, y)" in text or "probe S(z, y)" in text
        assert "delta plans: none (EDB-only body; round 1 only)" in text
        assert "delta plan (dS at body atom" in text

    def test_explain_rule_shows_constraints_and_enumeration(self):
        program = library_programs()["q-1-1"]
        text = "\n".join(
            explain_rule(rule, program.idb_predicates)
            for rule in program.rules
        )
        assert "filter" in text
        assert "enumerate" in text and "in universe" in text

    def test_explain_module_is_reexported(self):
        import repro.obs

        assert repro.obs.explain_program is explain_module.explain_program
