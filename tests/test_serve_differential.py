"""Serial-equivalence differential suite for ``repro serve``.

The server's concurrency claim is that interleaving many clients over
one live view is *observationally equivalent to a serial schedule*:
every update response names the epoch at which the single writer
applied it, every query response names the epoch its pinned snapshot
answered at, and replaying the updates serially in epoch order must
reproduce every response byte-for-byte.

Each seeded trial spins up a real server, unleashes three concurrent
client threads running randomised scripts (inserts, deletes, view
queries, magic queries -- every client issues both query flavours),
then reconstructs the serial schedule from the epochs in the update
responses and replays it with from-scratch ``evaluate()`` calls:

* the update epochs must form exactly ``1..N`` with no gaps or
  duplicates (the single-writer total order);
* each query's answer rows must equal the goal relation of the
  serially replayed EDB *at that query's epoch*, filtered by the
  binding -- for the view path and the magic path alike.

One trial is one interleaving; ``TRIALS`` seeds make the suite a
differential corpus in the spirit of
``test_incremental_differential.py``.
"""

import random
import threading

import pytest

from repro.datalog.evaluation import evaluate
from repro.datalog.library import transitive_closure_program
from repro.graphs.digraph import DiGraph
from repro.serve.view import filter_rows

from tests.serve_utils import connect, running_server, tc_view

PROGRAM = transitive_closure_program()
NODES = "abcde"
ALL_PAIRS = [(x, y) for x in NODES for y in NODES]
CLIENTS = 3
TRIALS = 100


def _closure(edges) -> frozenset:
    """The goal relation of the EDB state ``edges`` (ground truth)."""
    structure = DiGraph(nodes=NODES, edges=[]).to_structure()
    result = evaluate(
        PROGRAM, structure, extra_edb={"E": frozenset(edges)}
    )
    return frozenset(result.relations[PROGRAM.goal])


def _client_script(rng: random.Random) -> list[tuple]:
    """A randomised op list; always ends with both query flavours."""
    script: list[tuple] = []
    for _ in range(rng.randint(2, 4)):
        op = rng.choice(["insert", "delete", "query", "magic"])
        if op in ("insert", "delete"):
            script.append((op, rng.choice(ALL_PAIRS)))
        else:
            bind = rng.choice(
                [
                    None,
                    [rng.choice(NODES), None],
                    [None, rng.choice(NODES)],
                    [rng.choice(NODES), rng.choice(NODES)],
                ]
            )
            script.append((op, bind))
    # Guarantee every trial exercises both paths at a late epoch.
    script.append(("query", None))
    script.append(("magic", [rng.choice(NODES), None]))
    return script


def _run_trial(seed: int) -> None:
    rng = random.Random(seed)
    initial_edges = rng.sample(ALL_PAIRS, k=rng.randint(2, 6))
    view = tc_view(initial_edges, nodes=NODES)
    transcripts: dict[int, list] = {}
    errors: list[BaseException] = []

    with running_server(view) as server:

        def run_client(cid: int) -> None:
            crng = random.Random(seed * 1009 + cid)
            out = []
            try:
                with connect(server) as client:
                    for op, payload in _client_script(crng):
                        if op in ("insert", "delete"):
                            verb = (
                                client.insert
                                if op == "insert"
                                else client.delete
                            )
                            out.append(
                                (op, payload, verb("E", list(payload)))
                            )
                        else:
                            out.append(
                                (
                                    "query",
                                    payload,
                                    client.query(
                                        bind=payload, magic=op == "magic"
                                    ),
                                )
                            )
            except BaseException as exc:  # surfaced after join
                errors.append(exc)
            transcripts[cid] = out

        threads = [
            threading.Thread(target=run_client, args=(cid,))
            for cid in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    assert not errors, errors

    # Reconstruct the serial schedule from the update-response epochs.
    updates_by_epoch: dict[int, tuple] = {}
    queries: list[tuple] = []
    for out in transcripts.values():
        for op, payload, response in out:
            if op == "query":
                queries.append((payload, response))
            else:
                epoch = response["epoch"]
                assert epoch not in updates_by_epoch, (
                    f"two updates claim epoch {epoch}: the writer did "
                    "not serialise them"
                )
                updates_by_epoch[epoch] = (op, payload, response)
    total = len(updates_by_epoch)
    assert sorted(updates_by_epoch) == list(range(1, total + 1)), (
        "update epochs have gaps: not a total order"
    )

    # Serial replay: the EDB after each epoch, then the closure.
    edb = set(initial_edges)
    closures = {0: _closure(edb)}
    for epoch in range(1, total + 1):
        op, row, response = updates_by_epoch[epoch]
        applied = row not in edb if op == "insert" else row in edb
        assert response["applied"] == int(applied), (
            f"epoch {epoch}: server applied {response['applied']} rows, "
            f"serial replay applied {int(applied)}"
        )
        (edb.add if op == "insert" else edb.discard)(row)
        closures[epoch] = _closure(edb)

    # Every query must match the serial state at its pinned epoch.
    for bind, response in queries:
        expected = sorted(
            [list(row) for row in filter_rows(closures[response["epoch"]], bind)]
        )
        assert response["rows"] == expected, (
            f"query bind={bind} magic={response['magic']} at epoch "
            f"{response['epoch']} diverged from the serial schedule"
        )


@pytest.mark.parametrize("seed", range(TRIALS))
def test_interleaved_clients_match_serial_schedule(seed):
    _run_trial(seed)
