"""Tests for the SAT -> two-disjoint-paths reduction (Figures 2-6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import (
    Clause,
    CnfFormula,
    Literal,
    all_satisfying_assignments,
    complete_formula,
    satisfying_assignment,
)
from repro.fhw.reduction import (
    ClauseSlot,
    ColumnSlot,
    FixedSlot,
    ReductionInstance,
    SwitchSegmentSlot,
    sat_to_disjoint_paths,
    standard_path_lengths,
    verify_disjoint_paths,
)
from repro.graphs.paths import node_disjoint_simple_paths


def has_two_disjoint_paths(instance):
    """Exact (exponential) oracle on the reduction graph."""
    return node_disjoint_simple_paths(
        instance.graph,
        [
            (instance.s_node(1), instance.s_node(2)),
            (instance.s_node(3), instance.s_node(4)),
        ],
    ) is not None


class TestFigureInstances:
    def test_figure_5_satisfiable(self):
        """phi = x1 | x1 (Figure 5): satisfiable, paths exist."""
        instance = sat_to_disjoint_paths(CnfFormula.parse("x1 | x1"))
        p1, p2 = instance.build_disjoint_paths({"x1": True})
        assert verify_disjoint_paths(instance, p1, p2)
        assert has_two_disjoint_paths(instance)

    def test_figure_6_unsatisfiable(self):
        """phi = x1 & ~x1 (Figure 6): unsatisfiable, no paths."""
        instance = sat_to_disjoint_paths(CnfFormula.parse("x1; ~x1"))
        assert not has_two_disjoint_paths(instance)

    def test_phi_1_unsatisfiable(self):
        instance = sat_to_disjoint_paths(complete_formula(1))
        assert not has_two_disjoint_paths(instance)

    def test_single_positive_clause(self):
        instance = sat_to_disjoint_paths(CnfFormula.parse("x1"))
        p1, p2 = instance.build_disjoint_paths({"x1": True})
        assert verify_disjoint_paths(instance, p1, p2)


class TestConstructiveDirection:
    @pytest.mark.parametrize(
        "text",
        [
            "x1 | ~x2; x2 | x3; ~x1 | x3",
            "x1 | x2; ~x1 | ~x2",
            "~x1; x1 | x2; x2 | x2",
        ],
    )
    def test_every_model_yields_disjoint_paths(self, text):
        formula = CnfFormula.parse(text)
        instance = sat_to_disjoint_paths(formula)
        for model in all_satisfying_assignments(formula):
            p1, p2 = instance.build_disjoint_paths(model)
            assert verify_disjoint_paths(instance, p1, p2)

    def test_non_model_rejected(self):
        formula = CnfFormula.parse("x1")
        instance = sat_to_disjoint_paths(formula)
        with pytest.raises(ValueError):
            instance.build_disjoint_paths({"x1": False})


class TestStandardPaths:
    def test_lengths_on_phi_k(self):
        for k in (1, 2):
            instance = sat_to_disjoint_paths(complete_formula(k))
            m = len(instance.switches)
            length_p1, length_p2 = standard_path_lengths(instance)
            assert length_p1 == 2 + 7 * m
            # b..d sections + one column per variable + clause segments.
            occurrences_per_literal = 2 ** (k - 1)
            expected_p2 = (
                2  # s3, s4
                + 7 * m
                + k * (2 + 7 * occurrences_per_literal)
                + 1  # n_0
                + len(instance.formula.clauses) * 8
            )
            assert length_p2 == expected_p2

    def test_constructed_paths_have_standard_lengths(self):
        # Needs balanced columns; x1 | ~x1 has one occurrence per literal.
        instance = sat_to_disjoint_paths(CnfFormula.parse("x1 | ~x1"))
        p1, p2 = instance.build_disjoint_paths({"x1": True})
        assert (len(p1), len(p2)) == standard_path_lengths(instance)

    def test_unbalanced_columns_rejected(self):
        instance = sat_to_disjoint_paths(CnfFormula.parse("x1; x1 | ~x1"))
        assert not instance.has_balanced_columns()
        with pytest.raises(ValueError, match="balanced"):
            instance.p2_slots()

    def test_slot_resolution_is_edge_consistent(self):
        """Adjacent standard-path slots resolve to adjacent graph nodes
        under every consistent choice (brand p everywhere / q everywhere)."""
        instance = sat_to_disjoint_paths(complete_formula(1))
        graph = instance.graph

        def resolve(slot, brand):
            if isinstance(slot, FixedSlot):
                return slot.node
            if isinstance(slot, SwitchSegmentSlot):
                if slot.kind == "ca":
                    return instance.resolve_ca(slot.switch_index, slot.offset, brand)
                return instance.resolve_bd(slot.switch_index, slot.offset, brand)
            if isinstance(slot, ColumnSlot):
                literal = Literal(slot.variable, positive=(brand == "p"))
                return instance.resolve_column(literal, slot.rank, slot.offset)
            if isinstance(slot, ClauseSlot):
                chosen = instance.clause_occurrences(slot.clause_index)[0]
                return instance.resolve_clause(chosen, slot.offset)
            raise TypeError(slot)

        for brand in ("p", "q"):
            for slots in (instance.p1_slots(), instance.p2_slots()):
                nodes = [resolve(slot, brand) for slot in slots]
                assert all(
                    graph.has_edge(u, v) for u, v in zip(nodes, nodes[1:])
                )

    def test_distinguished_nodes(self):
        instance = sat_to_disjoint_paths(complete_formula(1))
        d = instance.graph.distinguished
        assert set(d) == {"s1", "s2", "s3", "s4"}
        assert instance.graph.in_degree(d["s1"]) == 0
        assert instance.graph.out_degree(d["s4"]) == 0


class TestGraphInvariants:
    @pytest.mark.parametrize(
        "text", ["x1 | x1", "x1; ~x1", "x1 | ~x2; x2", "~x1 | ~x1 | x2"]
    )
    def test_sources_and_sinks(self, text):
        """Every G_phi has exactly the entries {s1, s3} and exits
        {s2, s4}: all gadget terminals are wired in."""
        instance = sat_to_disjoint_paths(CnfFormula.parse(text))
        graph = instance.graph
        assert graph.sources() == {instance.s_node(1), instance.s_node(3)}
        assert graph.sinks() == {instance.s_node(2), instance.s_node(4)}

    def test_size_formula(self):
        """Nodes: 32 per switch + blocks + clause nodes + s-nodes."""
        formula = CnfFormula.parse("x1 | ~x2; x2")
        instance = sat_to_disjoint_paths(formula)
        switches = len(instance.switches)
        variables = len(formula.variables)
        clauses = len(formula.clauses)
        expected = (
            32 * switches
            + 2 * variables       # top/bottom joints
            + (clauses + 1)       # n_0 .. n_l
            + 4                   # s1..s4
        )
        assert len(instance.graph) == expected


class TestStructure:
    def test_one_switch_per_occurrence(self):
        formula = CnfFormula.parse("x1 | ~x2; x2 | x2 | x1")
        instance = sat_to_disjoint_paths(formula)
        assert len(instance.switches) == 5
        assert instance.columns[Literal("x2")] != ()
        assert len(instance.columns[Literal("x1")]) == 2

    def test_clause_occurrence_index(self):
        formula = CnfFormula.parse("x1 | ~x2; x2")
        instance = sat_to_disjoint_paths(formula)
        assert instance.clause_occurrences(0) == (0, 1)
        assert instance.clause_occurrences(1) == (2,)

    def test_empty_formula_rejected(self):
        with pytest.raises(ValueError):
            CnfFormula([])


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=2), st.booleans()),
            min_size=1,
            max_size=2,
        ),
        min_size=1,
        max_size=2,
    ),
    st.booleans(),
    st.booleans(),
)
def test_standard_paths_on_balanced_formulas(spec, v1, v2):
    """Property: on balanced formulas (clause + complement clause), every
    assignment resolves the p1 slot sequence to an edge-valid simple
    path, and models resolve both standard paths to the standard
    lengths."""
    clauses = []
    for clause in spec:
        literals = [Literal(f"x{i}", sign) for i, sign in clause]
        clauses.append(Clause(literals))
        clauses.append(Clause(lit.complement for lit in literals))
    formula = CnfFormula(clauses)
    instance = sat_to_disjoint_paths(formula)
    assert instance.has_balanced_columns()

    # p1 under the arbitrary brand map induced by (v1, v2).
    assignment = {"x1": v1, "x2": v2}
    graph = instance.graph

    def brand(info):
        value = assignment[info.literal.variable]
        truth = value if info.literal.positive else not value
        return "p" if truth else "q"

    nodes = [instance.s_node(1)]
    for info in reversed(instance.switches):
        nodes.append(info.switch.terminal("c"))
        nodes.extend(info.switch.interior(f"{brand(info)}_ca"))
        nodes.append(info.switch.terminal("a"))
    nodes.append(instance.s_node(2))
    assert len(set(nodes)) == len(nodes)
    assert all(graph.has_edge(u, v) for u, v in zip(nodes, nodes[1:]))
    assert len(nodes) == standard_path_lengths(instance)[0]

    full = {v: assignment.get(v, True) for v in formula.variables}
    if formula.evaluate(full):
        p1, p2 = instance.build_disjoint_paths(full)
        assert verify_disjoint_paths(instance, p1, p2)
        assert (len(p1), len(p2)) == standard_path_lengths(instance)


@settings(max_examples=8, deadline=None)
@given(
    st.lists(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=2), st.booleans()),
            min_size=1,
            max_size=2,
        ),
        min_size=1,
        max_size=2,
    )
)
def test_reduction_soundness_on_random_small_formulas(spec):
    """phi satisfiable <=> G_phi has the two disjoint paths, via the
    exact oracle, on random formulas small enough to brute-force."""
    formula = CnfFormula(
        Clause(Literal(f"x{i}", sign) for i, sign in clause)
        for clause in spec
    )
    instance = sat_to_disjoint_paths(formula)
    model = satisfying_assignment(formula)
    if model is not None:
        p1, p2 = instance.build_disjoint_paths(model)
        assert verify_disjoint_paths(instance, p1, p2)
    else:
        assert not has_two_disjoint_paths(instance)
