"""Tests for the facade API and the trivial pattern query."""

import random

import pytest

from repro.core import cross_check, decide_homeomorphism
from repro.fhw.pattern_class import pattern_h1
from repro.graphs import DiGraph
from repro.graphs.generators import layered_random_dag, random_digraph
from repro.patterns import TrivialPatternQuery, decide_via_embedding
from repro.structures import Structure


@pytest.fixture
def star():
    return DiGraph(edges=[("r", "u"), ("r", "v")])


@pytest.fixture
def star_instance():
    graph = DiGraph(edges=[("s", "a"), ("s", "b")])
    return graph, {"r": "s", "u": "a", "v": "b"}


class TestDecideHomeomorphism:
    def test_auto_uses_flow_for_class_c(self, star, star_instance):
        graph, assignment = star_instance
        assert decide_homeomorphism(star, graph, assignment)
        assert decide_homeomorphism(star, graph, assignment, "flow")
        assert decide_homeomorphism(star, graph, assignment, "exact")

    def test_auto_on_dag_outside_c(self):
        pattern = pattern_h1()
        dag = DiGraph(edges=[
            ("s1", "a"), ("a", "t1"), ("s2", "b"), ("b", "t2"),
        ])
        assignment = {"s1": "s1", "s2": "t1", "s3": "s2", "s4": "t2"}
        assert decide_homeomorphism(pattern, dag, assignment)
        assert decide_homeomorphism(pattern, dag, assignment, "game")
        assert decide_homeomorphism(pattern, dag, assignment, "datalog")

    def test_auto_falls_back_to_exact(self):
        """Pattern outside C, cyclic input: NP-complete territory."""
        pattern = pattern_h1()
        cyclic = DiGraph(edges=[
            ("s1", "a"), ("a", "t1"), ("a", "a2"), ("a2", "a"),
            ("s2", "b"), ("b", "t2"),
        ])
        assignment = {"s1": "s1", "s2": "t1", "s3": "s2", "s4": "t2"}
        assert decide_homeomorphism(pattern, cyclic, assignment)

    def test_game_requires_acyclic(self):
        pattern = pattern_h1()
        cyclic = DiGraph(edges=[
            ("s1", "t1"), ("s2", "t2"), ("x", "y"), ("y", "x"),
        ])
        assignment = {"s1": "s1", "s2": "t1", "s3": "s2", "s4": "t2"}
        with pytest.raises(ValueError, match="acyclic"):
            decide_homeomorphism(pattern, cyclic, assignment, "game")
        with pytest.raises(ValueError, match="Theorem 6.7"):
            decide_homeomorphism(pattern, cyclic, assignment, "datalog")

    def test_flow_requires_class_c(self):
        pattern = pattern_h1()
        graph = DiGraph(edges=[("s1", "t1"), ("s2", "t2")])
        assignment = {"s1": "s1", "s2": "t1", "s3": "s2", "s4": "t2"}
        with pytest.raises(ValueError, match="class C"):
            decide_homeomorphism(pattern, graph, assignment, "flow")

    def test_unknown_method(self, star, star_instance):
        graph, assignment = star_instance
        with pytest.raises(ValueError, match="unknown method"):
            decide_homeomorphism(star, graph, assignment, "magic")


class TestCrossCheck:
    def test_all_methods_agree_on_random_dags(self):
        pattern = pattern_h1()
        rng = random.Random(2)
        nodes_of = sorted(pattern.nodes)
        for seed in range(2):
            dag = layered_random_dag(4, 3, 0.5, seed)
            nodes = sorted(dag.nodes)
            for __ in range(3):
                assignment = dict(zip(nodes_of, rng.sample(nodes, 4)))
                verdicts = cross_check(pattern, dag, assignment)
                assert set(verdicts) == {"exact", "game", "datalog"}

    def test_class_c_on_cyclic_graphs(self, star):
        rng = random.Random(5)
        for seed in range(2):
            graph = random_digraph(6, 0.3, seed)
            nodes = sorted(graph.nodes)
            assignment = dict(zip(sorted(star.nodes), rng.sample(nodes, 3)))
            verdicts = cross_check(star, graph, assignment)
            assert "flow" in verdicts and "datalog" in verdicts


class TestTrivialPatternQuery:
    def test_every_query_is_pattern_based(self):
        """The paper's remark after Definition 5.1, executably."""
        query = TrivialPatternQuery(
            lambda s: len(s.relation("E")) >= 2
        )
        rich = random_digraph(4, 0.8, seed=1).to_structure()
        poor = DiGraph(edges=[("a", "b")]).to_structure()
        assert query.holds_exact(rich)
        assert not query.holds_exact(poor)
        # Condition (3): decided via embedding of alpha(B) patterns.
        assert decide_via_embedding(query, rich)
        assert not decide_via_embedding(query, poor)
        assert query.pattern_count_bound(rich) == 1
