"""Unit tests for vocabularies and relation symbols."""

import pytest

from repro.structures import RelationSymbol, Vocabulary


class TestRelationSymbol:
    def test_str(self):
        assert str(RelationSymbol("E", 2)) == "E/2"

    def test_rejects_zero_arity(self):
        with pytest.raises(ValueError):
            RelationSymbol("P", 0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            RelationSymbol("", 1)

    def test_ordering(self):
        assert RelationSymbol("A", 1) < RelationSymbol("B", 1)


class TestVocabulary:
    def test_graph_vocabulary(self):
        voc = Vocabulary.graph()
        assert voc.arity("E") == 2
        assert voc.has_relation("E")
        assert not voc.has_constant("E")
        assert voc.constants == ()

    def test_constants_order_preserved(self):
        voc = Vocabulary.graph(constants=("s", "t"))
        assert voc.constants == ("s", "t")
        assert voc.has_constant("s")

    def test_mapping_constructor(self):
        voc = Vocabulary({"E": 2, "P": 1})
        assert voc.arity("P") == 1
        assert set(voc.relation_names) == {"E", "P"}

    def test_conflicting_arities_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary([RelationSymbol("E", 2), RelationSymbol("E", 3)])

    def test_duplicate_constants_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary.graph(constants=("s", "s"))

    def test_relation_constant_overlap_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary({"E": 2}, constants=("E",))

    def test_equality_and_hash(self):
        assert Vocabulary.graph() == Vocabulary.graph()
        assert hash(Vocabulary.graph()) == hash(Vocabulary.graph())
        assert Vocabulary.graph() != Vocabulary.graph(constants=("s",))

    def test_constant_order_matters(self):
        assert Vocabulary.graph(constants=("s", "t")) != Vocabulary.graph(
            constants=("t", "s")
        )

    def test_with_constants(self):
        voc = Vocabulary.graph().with_constants(["s"])
        assert voc.constants == ("s",)

    def test_extend(self):
        voc = Vocabulary.graph().extend([RelationSymbol("S", 2)])
        assert voc.has_relation("S")
        assert voc.has_relation("E")

    def test_contains(self):
        voc = Vocabulary.graph(constants=("s",))
        assert "E" in voc
        assert "s" in voc
        assert "Q" not in voc

    def test_iteration(self):
        names = [symbol.name for symbol in Vocabulary({"B": 1, "A": 2})]
        assert names == ["A", "B"]  # sorted
