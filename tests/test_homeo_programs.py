"""Tests for the generated homeomorphism programs (Theorems 6.1 / 6.2)."""

import random

import pytest

from repro.datalog.homeo import (
    acyclic_game_program,
    class_c_program,
    two_disjoint_paths_acyclic_program,
)
from repro.fhw.homeomorphism import is_homeomorphic_to_distinguished_subgraph
from repro.fhw.pattern_class import pattern_h1, pattern_h2, pattern_h3
from repro.games.acyclic import acyclic_game_winner
from repro.graphs import DiGraph
from repro.graphs.generators import layered_random_dag, random_digraph


def random_assignments(graph, pattern, count, seed):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes)
    pattern_nodes = sorted(pattern.nodes, key=repr)
    for __ in range(count):
        yield dict(zip(pattern_nodes, rng.sample(nodes, len(pattern_nodes))))


class TestClassCProgram:
    def test_rejects_patterns_outside_c(self):
        with pytest.raises(ValueError, match="outside class C"):
            class_c_program(pattern_h1())

    def test_in_star_uses_reversal(self):
        in_star = DiGraph(edges=[("u", "r"), ("v", "r")])
        query = class_c_program(in_star)
        g = DiGraph(edges=[("a", "r"), ("b", "r")])
        assignment = {"r": "r", "u": "a", "v": "b"}
        assert query.decide(g, assignment)
        assert not query.decide(g.reverse(), assignment)

    def test_matches_exact_oracle_on_random_graphs(self):
        star = DiGraph(edges=[("r", "u"), ("r", "v")])
        query = class_c_program(star)
        for seed in range(3):
            g = random_digraph(6, 0.3, seed)
            for assignment in random_assignments(g, star, 5, seed):
                assert query.decide(g, assignment) == (
                    is_homeomorphic_to_distinguished_subgraph(
                        star, g, assignment
                    )
                )

    def test_self_loop_pattern(self):
        loop_star = DiGraph(edges=[("r", "r"), ("r", "u")])
        query = class_c_program(loop_star)
        g = DiGraph(edges=[("s", "a"), ("a", "s"), ("s", "b")])
        assert query.decide(g, {"r": "s", "u": "b"})
        no_loop = DiGraph(edges=[("s", "a"), ("s", "b")])
        assert not query.decide(no_loop, {"r": "s", "u": "b"})


class TestAcyclicGameProgram:
    @pytest.mark.parametrize(
        "pattern", [pattern_h1(), pattern_h2(), pattern_h3()]
    )
    def test_matches_game_solver_on_dags(self, pattern):
        query = acyclic_game_program(pattern)
        for seed in range(2):
            g = layered_random_dag(4, 3, 0.45, seed)
            for assignment in random_assignments(g, pattern, 4, seed + 50):
                game = acyclic_game_winner(g, pattern, assignment) == "II"
                assert query.decide(g, assignment) == game

    def test_matches_exact_oracle_on_dags(self):
        pattern = pattern_h1()
        query = acyclic_game_program(pattern)
        for seed in range(3):
            g = layered_random_dag(4, 3, 0.5, seed)
            for assignment in random_assignments(g, pattern, 4, seed):
                assert query.decide(g, assignment) == (
                    is_homeomorphic_to_distinguished_subgraph(
                        pattern, g, assignment
                    )
                )

    def test_bottleneck_instance(self):
        query = two_disjoint_paths_acyclic_program()
        bottleneck = DiGraph(edges=[
            ("s1", "v"), ("v", "t1"), ("s2", "v"), ("v", "t2"),
        ])
        assignment = dict(
            zip(sorted(query.pattern.nodes), ["s1", "t1", "s2", "t2"])
        )
        assert not query.decide(bottleneck, assignment)

    def test_parallel_instance(self):
        query = two_disjoint_paths_acyclic_program()
        parallel = DiGraph(edges=[
            ("s1", "a"), ("a", "t1"), ("s2", "b"), ("b", "t2"),
        ])
        assignment = dict(
            zip(sorted(query.pattern.nodes), ["s1", "t1", "s2", "t2"])
        )
        assert query.decide(parallel, assignment)

    def test_program_shape(self):
        query = acyclic_game_program(pattern_h1())
        program = query.program
        assert program.goal == "Answer"
        # One W per pebble subset, two challenge rules per (subset, pebble).
        assert "W0" in program.idb_predicates
        assert "W3" in program.idb_predicates
        assert program.is_pure_datalog() is False

    def test_edgeless_pattern_rejected(self):
        with pytest.raises(ValueError):
            acyclic_game_program(DiGraph(nodes=["x"]))
