"""The deterministic span profiler (:mod:`repro.obs.profile`)."""

import io

import pytest

from repro.datalog.evaluation import evaluate
from repro.datalog.incremental import IncrementalSession, Update
from repro.datalog.library import transitive_closure_program
from repro.graphs.generators import path_graph
from repro.obs import trace as trace_module
from repro.obs.profile import (
    profile_jsonl,
    profile_records,
    profile_spans,
    render_profile,
)


@pytest.fixture(autouse=True)
def _tracing_restored():
    yield
    trace_module.disable_tracing()


def _record(span, parent, kind, start, end, **attrs):
    record = {
        "span": span,
        "parent": parent,
        "depth": 0 if parent is None else 1,
        "kind": kind,
        "start": start,
        "end": end,
    }
    record.update(attrs)
    return record


class TestProfileRecords:
    def test_inclusive_exclusive_arithmetic(self):
        records = [
            _record(0, None, "evaluate", 0.0, 1.0, engine="indexed"),
            _record(1, 0, "iteration", 0.1, 0.4, engine="indexed"),
            _record(2, 0, "iteration", 0.5, 0.9, engine="indexed"),
        ]
        profile = profile_records(records)
        assert profile.span_count == 3
        assert profile.total_seconds == pytest.approx(1.0)
        by_kind = {row.kind: row for row in profile.rows}
        evaluate_row = by_kind["evaluate"]
        iteration_row = by_kind["iteration"]
        assert evaluate_row.count == 1
        assert evaluate_row.inclusive_seconds == pytest.approx(1.0)
        # Exclusive = inclusive minus the direct children (0.3 + 0.4).
        assert evaluate_row.exclusive_seconds == pytest.approx(0.3)
        assert iteration_row.count == 2
        assert iteration_row.inclusive_seconds == pytest.approx(0.7)
        assert iteration_row.exclusive_seconds == pytest.approx(0.7)
        # Exclusive time over all rows recovers the total exactly once.
        assert sum(
            row.exclusive_seconds for row in profile.rows
        ) == pytest.approx(profile.total_seconds)

    def test_rows_sort_by_inclusive_then_key(self):
        records = [
            _record(0, None, "b", 0.0, 0.5),
            _record(1, None, "a", 1.0, 1.5),
            _record(2, None, "c", 2.0, 3.0),
        ]
        profile = profile_records(records)
        assert [(row.kind, row.inclusive_seconds) for row in profile.rows] == [
            ("c", pytest.approx(1.0)),
            ("a", pytest.approx(0.5)),
            ("b", pytest.approx(0.5)),
        ]

    def test_open_span_counts_with_zero_duration(self):
        records = [
            _record(0, None, "evaluate", 0.0, 1.0),
            _record(1, 0, "iteration", 0.5, None),
        ]
        profile = profile_records(records)
        by_kind = {row.kind: row for row in profile.rows}
        assert by_kind["iteration"].count == 1
        assert by_kind["iteration"].inclusive_seconds == 0.0

    def test_clock_jitter_never_goes_negative(self):
        # A child nominally longer than its parent (clock granularity).
        records = [
            _record(0, None, "evaluate", 0.0, 0.1),
            _record(1, 0, "iteration", 0.0, 0.2),
        ]
        profile = profile_records(records)
        by_kind = {row.kind: row for row in profile.rows}
        assert by_kind["evaluate"].exclusive_seconds == 0.0

    def test_rule_spans_group_per_rule(self):
        records = [
            _record(0, None, "rule", 0.0, 1.0, rule=0, head="S"),
            _record(1, None, "rule", 1.0, 2.0, rule=0, head="S"),
            _record(2, None, "rule", 2.0, 3.0, rule=1, head="S"),
        ]
        profile = profile_records(records)
        details = {row.detail: row.count for row in profile.rows}
        assert details == {"rule 0 (S)": 2, "rule 1 (S)": 1}


class TestDeterminism:
    def _traced_lines(self):
        tracer = trace_module.enable_tracing()
        try:
            evaluate(
                transitive_closure_program(),
                path_graph(5).to_structure(),
                method="indexed",
            )
        finally:
            trace_module.disable_tracing()
        stream = io.StringIO()
        tracer.export_jsonl(stream)
        return stream.getvalue().splitlines()

    def test_same_trace_profiles_identically(self):
        lines = self._traced_lines()
        first = profile_jsonl(lines)
        second = profile_jsonl(lines)
        assert first == second
        assert first.rows

    def test_two_runs_differ_only_in_time_columns(self):
        shape_a = [
            (row.kind, row.detail, row.count)
            for row in profile_jsonl(self._traced_lines()).rows
        ]
        shape_b = [
            (row.kind, row.detail, row.count)
            for row in profile_jsonl(self._traced_lines()).rows
        ]
        assert sorted(shape_a) == sorted(shape_b)

    def test_torn_final_line_is_tolerated(self):
        lines = self._traced_lines()
        torn = lines[:-1] + [lines[-1][:10]]
        with pytest.warns(RuntimeWarning):
            profile = profile_jsonl(torn)
        assert profile.span_count == len(lines) - 1


class TestLiveSources:
    def test_profiles_a_fixpoint_run(self):
        tracer = trace_module.enable_tracing()
        try:
            evaluate(
                transitive_closure_program(),
                path_graph(5).to_structure(),
                method="indexed",
            )
        finally:
            trace_module.disable_tracing()
        profile = profile_spans(tracer.spans)
        kinds = {row.kind for row in profile.rows}
        assert {"evaluate", "iteration", "rule"} <= kinds
        details = {row.detail for row in profile.rows if row.kind == "rule"}
        assert any(detail.startswith("rule ") for detail in details)

    def test_profiles_incremental_maintenance(self):
        tracer = trace_module.enable_tracing()
        try:
            session = IncrementalSession(
                transitive_closure_program(),
                path_graph(4).to_structure(),
            )
            session.apply(Update("insert", "E", ("v3", "v0")))
            session.apply(Update("delete", "E", ("v0", "v1")))
        finally:
            trace_module.disable_tracing()
        profile = profile_spans(tracer.spans)
        kinds = {row.kind for row in profile.rows}
        assert any("incremental" in kind for kind in kinds), kinds

    def test_profiles_a_governed_run(self):
        from repro.guard import BudgetExceeded, ResourceBudget

        tracer = trace_module.enable_tracing()
        try:
            with pytest.raises(BudgetExceeded):
                evaluate(
                    transitive_closure_program(),
                    path_graph(6).to_structure(),
                    method="indexed",
                    budget=ResourceBudget(max_iterations=2),
                )
        finally:
            trace_module.disable_tracing()
        profile = profile_spans(tracer.spans)
        assert profile.span_count > 0
        # The interrupted run leaves open spans; they still appear.
        assert any(row.count for row in profile.rows)


class TestRendering:
    def test_render_contains_the_table(self):
        records = [_record(0, None, "evaluate", 0.0, 1.0, engine="indexed")]
        text = render_profile(profile_records(records), name="tc")
        assert text.startswith("PROFILE tc: 1 spans")
        assert "excl %" in text
        assert "evaluate" in text

    def test_to_dict_round_trips(self):
        import json

        records = [
            _record(0, None, "evaluate", 0.0, 1.0, engine="indexed"),
            _record(1, 0, "iteration", 0.0, 0.5, engine="indexed"),
        ]
        profile = profile_records(records)
        stream = io.StringIO()
        profile.write_json(stream)
        loaded = json.loads(stream.getvalue())
        assert loaded["spans"] == 2
        assert len(loaded["rows"]) == 2
