"""The write-ahead log: framing, torn tails, corruption, recovery.

The durability contract under test (see :mod:`repro.serve.wal`):

* a WAL is a header frame plus CRC-guarded, epoch-contiguous records;
* **any** prefix of the file is recoverable -- a torn tail (crash
  mid-append) is detected by its incomplete or CRC-bad final frame and
  truncated, never fatal (mirroring the checkpoint torn-file tests);
* mid-file damage -- a CRC-bad record with valid data *after* it --
  is not a crash shape and is rejected loudly with the record number
  and byte offset;
* :func:`repro.serve.wal.recover` rebuilds checkpoint + WAL suffix to
  the exact logged epoch and reconstructs the exactly-once dedupe
  table, including half-applied requests.
"""

import os

import pytest

from repro.datalog.evaluation import evaluate
from repro.datalog.incremental import Update
from repro.datalog.library import transitive_closure_program
from repro.graphs.digraph import DiGraph
from repro.serve.view import LiveView
from repro.serve.wal import (
    WalCorrupt,
    WalMismatch,
    WalRecord,
    WriteAheadLog,
    _FRAME,
    _frame,
    recover,
    scan_wal,
)

NODES = "abcde"
EDGES = [("a", "b"), ("b", "c"), ("c", "d")]
SCRIPT = [
    ("insert", ("d", "e")),
    ("insert", ("e", "a")),
    ("delete", ("a", "b")),
    ("insert", ("b", "d")),
]
PROGRAM = transitive_closure_program()


def _structure():
    return DiGraph(nodes=NODES, edges=EDGES).to_structure()


def _fresh_view() -> LiveView:
    return LiveView(PROGRAM, _structure())


def _serial_goal_rows(prefix: int) -> frozenset:
    edb = set(EDGES)
    for kind, row in SCRIPT[:prefix]:
        (edb.add if kind == "insert" else edb.discard)(row)
    structure = DiGraph(nodes=NODES, edges=[]).to_structure()
    result = evaluate(PROGRAM, structure, extra_edb={"E": frozenset(edb)})
    return frozenset(result.relations[PROGRAM.goal])


def _write_scripted_wal(path: str, rids: bool = False) -> LiveView:
    """Apply SCRIPT through a live view, logging every row; return the view."""
    view = _fresh_view()
    wal = WriteAheadLog.create(
        path, 0, view.program_fp, fsync="off"
    )
    for index, (kind, row) in enumerate(SCRIPT):
        result, snapshot = view.apply(Update(kind, "E", row))
        wal.append(
            WalRecord(
                epoch=snapshot.epoch,
                op=kind,
                predicate="E",
                row=row,
                rid=f"r{index}" if rids else None,
                row_index=0,
                rows_total=1,
                applied=len(result.applied),
            )
        )
    wal.close()
    return view


class TestFraming:
    def test_fsync_mode_validation(self, tmp_path):
        with pytest.raises(ValueError, match="fsync mode"):
            WriteAheadLog(str(tmp_path / "w.wal"), fsync="sometimes")
        with pytest.raises(ValueError, match="fsync_interval"):
            WriteAheadLog(
                str(tmp_path / "w.wal"), fsync="interval", fsync_interval=0
            )

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "roundtrip.wal")
        view = _write_scripted_wal(path)
        scan = scan_wal(path)
        assert scan.torn_bytes == 0
        assert scan.base_epoch == 0
        assert scan.last_epoch == view.epoch == len(SCRIPT)
        assert [r.epoch for r in scan.records] == [1, 2, 3, 4]
        assert [(r.op, r.row) for r in scan.records] == [
            (kind, row) for kind, row in SCRIPT
        ]
        assert scan.header["program"] == view.program_fp

    def test_header_only_file(self, tmp_path):
        path = str(tmp_path / "empty.wal")
        wal = WriteAheadLog.create(path, 7, "fp", {"a": {"x": 1}})
        wal.close()
        scan = scan_wal(path)
        assert scan.records == []
        assert scan.base_epoch == scan.last_epoch == 7
        assert scan.header["dedupe"] == {"a": {"x": 1}}

    def test_fsync_modes_count_fsyncs(self, tmp_path):
        always = WriteAheadLog.create(
            str(tmp_path / "a.wal"), 0, "fp", fsync="always"
        )
        off = WriteAheadLog.create(
            str(tmp_path / "o.wal"), 0, "fp", fsync="off"
        )
        record = WalRecord(1, "insert", "E", ("a", "b"))
        always.append(record)
        off.append(record)
        assert always.fsyncs == 1
        assert off.fsyncs == 0
        always.close()
        off.close()

    def test_rotation_compacts_and_keeps_dedupe(self, tmp_path):
        path = str(tmp_path / "rotate.wal")
        view = _write_scripted_wal(path, rids=True)
        wal = WriteAheadLog(path, fsync="off")
        dedupe = {"r3": {"rows_done": 1, "completed": True}}
        wal.rotate(view.epoch, view.program_fp, dedupe)
        wal.close()
        scan = scan_wal(path)
        assert scan.records == []  # compacted away
        assert scan.base_epoch == view.epoch
        assert scan.header["dedupe"] == dedupe
        assert wal.rotations == 1


class TestTornAndCorrupt:
    def test_truncation_at_every_byte_is_recoverable(self, tmp_path):
        """The satellite drill: every prefix of the file scans cleanly.

        A cut can only ever produce a *torn tail* -- the scan keeps
        exactly the records whose frames survived whole and reports
        the ragged remainder; it never raises and never miscounts.
        """
        full_path = str(tmp_path / "full.wal")
        _write_scripted_wal(full_path)
        data = open(full_path, "rb").read()
        # Frame boundaries: byte offsets at which a frame ends.
        boundaries = []
        offset = 0
        while offset < len(data):
            length, _crc = _FRAME.unpack_from(data, offset)
            offset += _FRAME.size + length
            boundaries.append(offset)
        assert len(boundaries) == 1 + len(SCRIPT)  # header + records
        cut_path = str(tmp_path / "cut.wal")
        for cut in range(len(data) + 1):
            with open(cut_path, "wb") as handle:
                handle.write(data[:cut])
            scan = scan_wal(cut_path)
            whole = sum(1 for b in boundaries if b <= cut)
            assert scan.valid_bytes == (
                boundaries[whole - 1] if whole else 0
            )
            assert scan.torn_bytes == cut - scan.valid_bytes
            if whole == 0:
                assert scan.header is None
            else:
                assert len(scan.records) == whole - 1
                assert scan.last_epoch == whole - 1

    def test_recover_at_every_frame_boundary(self, tmp_path):
        """Recovery from a cut WAL serves the serial prefix exactly."""
        full_path = str(tmp_path / "full.wal")
        _write_scripted_wal(full_path)
        data = open(full_path, "rb").read()
        boundaries = []
        offset = 0
        while offset < len(data):
            length, _crc = _FRAME.unpack_from(data, offset)
            offset += _FRAME.size + length
            boundaries.append(offset)
        cut_path = str(tmp_path / "cut.wal")
        for count, boundary in enumerate(boundaries):
            # Cut right at the boundary and mid-way into the next frame:
            # the latter leaves a torn tail recover() must truncate.
            for cut in (boundary, min(boundary + 5, len(data))):
                with open(cut_path, "wb") as handle:
                    handle.write(data[:cut])
                view, dedupe, report = recover(
                    PROGRAM, _structure(), wal_path=cut_path
                )
                prefix = count  # header is frame 0
                assert view.epoch == prefix
                assert report.replayed == prefix
                assert view.snapshot.goal_rows == _serial_goal_rows(prefix)
                assert report.torn_bytes == (cut - boundary)
                # recover() truncated the torn tail in place: a second
                # scan is clean.
                assert scan_wal(cut_path).torn_bytes == 0

    def test_midfile_corruption_is_loud(self, tmp_path):
        path = str(tmp_path / "corrupt.wal")
        _write_scripted_wal(path)
        data = bytearray(open(path, "rb").read())
        # Damage the *second* record's payload: frames exist after it,
        # so this cannot be a torn tail.
        offset = 0
        for _frame_no in range(2):  # skip header + record 1
            length, _crc = _FRAME.unpack_from(data, offset)
            offset += _FRAME.size + length
        data[offset + _FRAME.size + 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(WalCorrupt) as info:
            scan_wal(path)
        message = str(info.value)
        assert "record #1" in message
        assert f"byte {offset}" in message
        assert "mid-file corruption" in message
        assert path in message

    def test_corrupt_final_record_is_a_torn_tail(self, tmp_path):
        path = str(tmp_path / "tail.wal")
        _write_scripted_wal(path)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF  # last byte of the last record's payload
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        scan = scan_wal(path)  # no raise: in-place torn write
        assert len(scan.records) == len(SCRIPT) - 1
        assert scan.torn_bytes > 0

    def test_epoch_gap_is_corruption(self, tmp_path):
        path = str(tmp_path / "gap.wal")
        frames = _frame(
            b'{"base_epoch":0,"dedupe":{},"program":"fp","wal":1}'
        )
        for epoch in (1, 3):  # 2 is missing
            frames += _frame(
                WalRecord(epoch, "insert", "E", ("a", "b")).to_payload()
            )
        with open(path, "wb") as handle:
            handle.write(frames)
        with pytest.raises(WalCorrupt, match="contiguous"):
            scan_wal(path)

    def test_wrong_version_and_wrong_filetype(self, tmp_path):
        path = str(tmp_path / "bad.wal")
        with open(path, "wb") as handle:
            handle.write(_frame(b'{"base_epoch":0,"program":"f","wal":99}'))
        with pytest.raises(WalCorrupt, match="version"):
            scan_wal(path)
        with open(path, "wb") as handle:
            handle.write(_frame(b'[1,2,3]'))
        with pytest.raises(WalCorrupt, match="header"):
            scan_wal(path)


class TestRecovery:
    def test_wal_only_recovery(self, tmp_path):
        path = str(tmp_path / "only.wal")
        served = _write_scripted_wal(path)
        view, dedupe, report = recover(
            PROGRAM, _structure(), wal_path=path
        )
        assert view.epoch == served.epoch
        assert view.snapshot.goal_rows == served.snapshot.goal_rows
        assert view.snapshot.edb == served.snapshot.edb
        assert report.replayed == len(SCRIPT)
        assert report.skipped == 0

    def test_checkpoint_plus_wal_suffix(self, tmp_path):
        """The crash-between-checkpoint-and-rotation window: the WAL
        still starts at base 0 while the checkpoint is at epoch 2 --
        recovery skips the logged prefix and replays only the suffix."""
        wal_path = str(tmp_path / "suffix.wal")
        ckpt_path = str(tmp_path / "suffix.ckpt")
        view = _fresh_view()
        wal = WriteAheadLog.create(wal_path, 0, view.program_fp, fsync="off")
        for index, (kind, row) in enumerate(SCRIPT):
            result, snapshot = view.apply(Update(kind, "E", row))
            wal.append(
                WalRecord(
                    snapshot.epoch, kind, "E", row,
                    applied=len(result.applied),
                )
            )
            if snapshot.epoch == 2:
                view.checkpoint(ckpt_path)
        wal.close()
        recovered, _dedupe, report = recover(
            PROGRAM, _structure(), ckpt_path, wal_path
        )
        assert report.checkpoint_epoch == 2
        assert report.skipped == 2
        assert report.replayed == 2
        assert recovered.epoch == len(SCRIPT)
        assert recovered.snapshot.goal_rows == _serial_goal_rows(len(SCRIPT))

    def test_dedupe_reconstruction_with_partial_request(self, tmp_path):
        path = str(tmp_path / "dedupe.wal")
        view = _fresh_view()
        wal = WriteAheadLog.create(path, 0, view.program_fp, fsync="off")
        # One completed single-row request, then a two-row request cut
        # off after its first row (the crash shape).
        _result, snapshot = view.apply(Update("insert", "E", ("d", "e")))
        wal.append(
            WalRecord(snapshot.epoch, "insert", "E", ("d", "e"),
                      rid="done", applied=1)
        )
        _result, snapshot = view.apply(Update("insert", "E", ("e", "a")))
        wal.append(
            WalRecord(snapshot.epoch, "insert", "E", ("e", "a"),
                      rid="half", row_index=0, rows_total=2, applied=1)
        )
        wal.close()
        _view, dedupe, report = recover(PROGRAM, _structure(), wal_path=path)
        assert dedupe["done"]["completed"] is True
        assert dedupe["done"]["applied"] == 1
        assert dedupe["half"]["completed"] is False
        assert dedupe["half"]["rows_done"] == 1
        assert dedupe["half"]["requested"] == 2
        assert report.dedupe_entries == 2

    def test_header_dedupe_merges_with_records(self, tmp_path):
        path = str(tmp_path / "merge.wal")
        view = _fresh_view()
        header_dedupe = {
            "old": {
                "rows_done": 1, "applied": 1, "epoch": 5,
                "requested": 1, "completed": True,
                "op": "insert", "predicate": "E",
            }
        }
        wal = WriteAheadLog.create(
            path, 0, view.program_fp, header_dedupe, fsync="off"
        )
        wal.close()
        _view, dedupe, _report = recover(PROGRAM, _structure(), wal_path=path)
        assert dedupe == header_dedupe

    def test_wrong_program_is_a_mismatch(self, tmp_path):
        path = str(tmp_path / "other.wal")
        wal = WriteAheadLog.create(path, 0, "not-this-program", fsync="off")
        wal.close()
        with pytest.raises(WalMismatch, match="different program"):
            recover(PROGRAM, _structure(), wal_path=path)

    def test_missing_files_mean_fresh_view(self, tmp_path):
        view, dedupe, report = recover(
            PROGRAM,
            _structure(),
            str(tmp_path / "no.ckpt"),
            str(tmp_path / "no.wal"),
        )
        assert view.epoch == 0
        assert dedupe == {}
        assert report.replayed == report.skipped == 0
        assert not os.path.exists(str(tmp_path / "no.wal"))
