"""Unit tests for the greedy join-order planner's invariants."""

import pytest

from repro.datalog.ast import (
    Atom,
    Constant,
    Equality,
    Inequality,
    Rule,
    Variable,
)
from repro.datalog.parser import parse_rule
from repro.datalog.planner import (
    AtomStep,
    ConstraintStep,
    EnumerateStep,
    plan_program_rules,
    plan_rule,
)

X, Y, Z, U = (Variable(n) for n in "xyzu")


def _bound_before_each_step(plan):
    """Replay the plan, yielding (step, variables bound before it runs)."""
    bound = set()
    for step in plan.steps:
        yield step, set(bound)
        if isinstance(step, AtomStep):
            bound |= step.atom.variables()
        elif isinstance(step, EnumerateStep):
            bound.add(step.variable)
        elif step.binds is not None:
            bound.add(step.binds)


class TestPlanInvariants:
    """Every atom scheduled exactly once; constraints never early;
    head-only variables still universe-ranged."""

    RULES = [
        parse_rule("P(x, y) :- E(x, z), E(z, y)."),
        parse_rule("P(x, y) :- E(x, z), E(z, y), x != y, z != x."),
        parse_rule("R(x) :- E(x, x), E(x, y), y = x."),
        parse_rule("P(x, u) :- E(x, y)."),  # u is head-only
        parse_rule("R(u) :- E(x, y), u != x, u != y."),  # u constraint-only
        parse_rule("P(x, y) :- E(x, y), E(y, x), E(x, x), x != y."),
    ]

    @pytest.mark.parametrize("rule", RULES, ids=str)
    def test_every_atom_scheduled_exactly_once(self, rule):
        plan = plan_rule(rule)
        scheduled = sorted(s.atom_index for s in plan.atom_steps())
        assert scheduled == list(range(len(rule.body_atoms())))

    @pytest.mark.parametrize("rule", RULES, ids=str)
    def test_every_constraint_scheduled_exactly_once(self, rule):
        plan = plan_rule(rule)
        constraint_indexes = [
            i
            for i, literal in enumerate(rule.body)
            if not isinstance(literal, Atom)
        ]
        scheduled = sorted(s.body_index for s in plan.constraint_steps())
        assert scheduled == constraint_indexes

    @pytest.mark.parametrize("rule", RULES, ids=str)
    def test_constraints_never_run_before_their_variables_are_bound(
        self, rule
    ):
        plan = plan_rule(rule)
        for step, bound in _bound_before_each_step(plan):
            if not isinstance(step, ConstraintStep):
                continue
            for term in (step.literal.left, step.literal.right):
                if isinstance(term, Variable) and term != step.binds:
                    assert term in bound, (step, term)

    @pytest.mark.parametrize("rule", RULES, ids=str)
    def test_atom_bound_positions_match_replay(self, rule):
        plan = plan_rule(rule)
        for step, bound in _bound_before_each_step(plan):
            if not isinstance(step, AtomStep):
                continue
            expected = tuple(
                i
                for i, term in enumerate(step.atom.args)
                if isinstance(term, Constant) or term in bound
            )
            assert step.bound_positions == expected

    @pytest.mark.parametrize("rule", RULES, ids=str)
    def test_unbound_variables_are_enumerated(self, rule):
        """Head-only / constraint-only variables stay universe-ranged."""
        plan = plan_rule(rule)
        atom_bound = set()
        for atom in rule.body_atoms():
            atom_bound |= atom.variables()
        for literal in rule.body:
            if isinstance(literal, Equality):
                atom_bound |= {
                    t
                    for t in (literal.left, literal.right)
                    if isinstance(t, Variable)
                }
        expected_free = rule.variables() - atom_bound
        assert expected_free <= set(plan.enumerated_variables())
        assert set(plan.enumerated_variables()) <= rule.variables()


class TestGreedyOrder:
    def test_most_selective_atom_joins_second(self):
        """After E(x, z) runs, E(z, y) has a bound position while F(u, w)
        has none, so the planner must jump over F and pick E(z, y)."""
        rule = parse_rule("P(x, y) :- E(x, z), F(u, w), E(z, y).")
        plan = plan_rule(rule)
        assert [s.body_index for s in plan.atom_steps()] == [0, 2, 1]
        assert plan.atom_steps()[1].bound_positions == (0,)

    def test_all_zero_scores_fall_back_to_body_order(self):
        rule = parse_rule("P(x, y) :- F(u, w), E(x, y).")
        plan = plan_rule(rule)
        assert [s.body_index for s in plan.atom_steps()] == [0, 1]

    def test_constraint_fires_between_joins_not_at_the_end(self):
        rule = parse_rule("P(x, y) :- E(x, z), x != z, E(z, y).")
        plan = plan_rule(rule)
        kinds = [type(s).__name__ for s in plan.steps]
        assert kinds.index("ConstraintStep") < len(kinds) - 1

    def test_equality_binds_unbound_side(self):
        rule = parse_rule("P(x, y) :- E(x, z), y = z.")
        plan = plan_rule(rule)
        (constraint,) = plan.constraint_steps()
        assert constraint.binds == Y
        assert plan.enumerated_variables() == ()

    def test_filter_equality_has_no_binds(self):
        rule = parse_rule("P(x, y) :- E(x, y), x = y.")
        (constraint,) = plan_rule(rule).constraint_steps()
        assert constraint.binds is None

    def test_constant_positions_count_as_bound(self):
        rule = Rule(
            Atom("P", (X,)),
            [Atom("E", (X, Y)), Atom("E", (Constant("s"), X))],
        )
        plan = plan_rule(rule)
        first = plan.atom_steps()[0]
        assert first.atom.args[0] == Constant("s")
        assert first.bound_positions == (0,)


class TestDeltaPlans:
    def test_delta_atom_scheduled_first_and_marked(self):
        rule = parse_rule("P(x, y) :- E(x, z), P(z, y).")
        plan = plan_rule(rule, delta_atom_index=1)
        first = plan.atom_steps()[0]
        assert first.atom_index == 1
        assert first.atom.predicate == "P"
        assert first.is_delta
        assert not any(s.is_delta for s in plan.atom_steps()[1:])
        assert plan.delta_atom_index == 1

    def test_delta_index_out_of_range(self):
        rule = parse_rule("P(x, y) :- E(x, y).")
        with pytest.raises(ValueError):
            plan_rule(rule, delta_atom_index=1)
        with pytest.raises(ValueError):
            plan_rule(rule, delta_atom_index=-1)

    def test_one_plan_per_idb_occurrence(self):
        rule = parse_rule("P(x, y) :- P(x, z), E(z, u), P(u, y).")
        plans = plan_program_rules(rule, frozenset({"P"}))
        assert [p.delta_atom_index for p in plans] == [0, 2]
        for plan in plans:
            assert plan.atom_steps()[0].is_delta

    def test_edb_only_rule_has_no_delta_plans(self):
        rule = parse_rule("P(x, y) :- E(x, y).")
        assert plan_program_rules(rule, frozenset({"P"})) == ()


class TestDegenerateBodies:
    def test_constant_only_constraint_flushed_first(self):
        rule = Rule(
            Atom("R", (X,)),
            [Atom("E", (X, Y)), Inequality(Constant("s"), Constant("t"))],
        )
        plan = plan_rule(rule)
        assert isinstance(plan.steps[0], ConstraintStep)

    def test_constraint_only_body(self):
        rule = Rule(Atom("R", (X,)), [Inequality(X, Y)])
        plan = plan_rule(rule)
        assert sorted(plan.enumerated_variables()) == [X, Y]
        scheduled = [s.body_index for s in plan.constraint_steps()]
        assert scheduled == [0]
