"""Unit tests for the Datalog(!=) AST and parser."""

import pytest

from repro.datalog import (
    Atom,
    Constant,
    Equality,
    Inequality,
    ParseError,
    Program,
    Rule,
    Variable,
    parse_program,
    parse_rule,
)


class TestAst:
    def test_atom_arity_and_vars(self):
        atom = Atom("E", (Variable("x"), Constant("s")))
        assert atom.arity == 2
        assert atom.variables() == {Variable("x")}

    def test_nullary_atom(self):
        atom = Atom("Goal")
        assert atom.arity == 0
        assert str(atom) == "Goal()"

    def test_rule_partitions_body(self):
        rule = parse_rule("S(x, y) :- E(x, z), S(z, y), x != y.")
        assert len(rule.body_atoms()) == 2
        assert len(rule.constraints()) == 1
        assert rule.variables() == {Variable("x"), Variable("y"), Variable("z")}

    def test_program_idb_edb_split(self):
        program = parse_program(
            "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", goal="S"
        )
        assert program.idb_predicates == {"S"}
        assert program.edb_predicates == {"E"}
        assert program.arity("S") == 2

    def test_goal_must_be_idb(self):
        with pytest.raises(ValueError):
            parse_program("S(x) :- E(x, y).", goal="E")

    def test_arity_conflict_rejected(self):
        with pytest.raises(ValueError):
            parse_program("S(x) :- E(x, y). S(x, y) :- E(x, y).", goal="S")

    def test_constants_collected(self):
        program = parse_program("D(x) :- E(x, $t1), x != $s1.", goal="D")
        assert program.constants() == {"t1", "s1"}

    def test_is_pure_datalog(self):
        pure = parse_program("S(x, y) :- E(x, y).", goal="S")
        impure = parse_program("S(x, y) :- E(x, y), x != y.", goal="S")
        assert pure.is_pure_datalog()
        assert not impure.is_pure_datalog()

    def test_str_roundtrip(self):
        rule = parse_rule("T(x, y, w) :- E(x, z), T(z, y, w), w != x.")
        assert parse_rule(str(rule)) == rule


class TestParser:
    def test_fact(self):
        rule = parse_rule("D($t1, $t2).")
        assert rule.body == ()
        assert rule.head.args == (Constant("t1"), Constant("t2"))

    def test_both_arrows(self):
        assert parse_rule("S(x) :- E(x, x).") == parse_rule("S(x) <- E(x, x).")

    def test_unicode_neq(self):
        rule = parse_rule("S(x) :- E(x, y), x ≠ y.")
        assert isinstance(rule.body[1], Inequality)

    def test_equality(self):
        rule = parse_rule("S(x) :- E(x, y), x = y.")
        assert isinstance(rule.body[1], Equality)

    def test_comments_ignored(self):
        program = parse_program(
            """
            % transitive closure
            S(x, y) :- E(x, y).   # base case
            S(x, y) :- E(x, z), S(z, y).
            """,
            goal="S",
        )
        assert len(program.rules) == 2

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_rule("S(x) :- E(x, y)")

    def test_garbage_character(self):
        with pytest.raises(ParseError):
            parse_rule("S(x) :- E(x, y) @.")

    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_rule("S(x) :- E(x, x). S(y) :- E(y, y).")

    def test_nullary_atoms(self):
        program = parse_program("Win() :- Step(). Step().", goal="Win")
        assert program.arity("Win") == 0

    def test_primed_variable_names(self):
        rule = parse_rule("S(x) :- E(x, x').")
        assert Variable("x'") in rule.variables()

    def test_error_mentions_location(self):
        with pytest.raises(ParseError, match="line"):
            parse_program("S(x) :-\n E(x, ).", goal="S")
