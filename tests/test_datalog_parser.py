"""Unit tests for the Datalog(!=) AST and parser."""

import pytest

from repro.datalog import (
    Atom,
    Constant,
    Equality,
    Inequality,
    ParseError,
    Program,
    Rule,
    Variable,
    parse_program,
    parse_rule,
)


class TestAst:
    def test_atom_arity_and_vars(self):
        atom = Atom("E", (Variable("x"), Constant("s")))
        assert atom.arity == 2
        assert atom.variables() == {Variable("x")}

    def test_nullary_atom(self):
        atom = Atom("Goal")
        assert atom.arity == 0
        assert str(atom) == "Goal()"

    def test_rule_partitions_body(self):
        rule = parse_rule("S(x, y) :- E(x, z), S(z, y), x != y.")
        assert len(rule.body_atoms()) == 2
        assert len(rule.constraints()) == 1
        assert rule.variables() == {Variable("x"), Variable("y"), Variable("z")}

    def test_program_idb_edb_split(self):
        program = parse_program(
            "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", goal="S"
        )
        assert program.idb_predicates == {"S"}
        assert program.edb_predicates == {"E"}
        assert program.arity("S") == 2

    def test_goal_must_be_idb(self):
        with pytest.raises(ValueError):
            parse_program("S(x) :- E(x, y).", goal="E")

    def test_arity_conflict_rejected(self):
        with pytest.raises(ValueError):
            parse_program("S(x) :- E(x, y). S(x, y) :- E(x, y).", goal="S")

    def test_constants_collected(self):
        program = parse_program("D(x) :- E(x, $t1), x != $s1.", goal="D")
        assert program.constants() == {"t1", "s1"}

    def test_is_pure_datalog(self):
        pure = parse_program("S(x, y) :- E(x, y).", goal="S")
        impure = parse_program("S(x, y) :- E(x, y), x != y.", goal="S")
        assert pure.is_pure_datalog()
        assert not impure.is_pure_datalog()

    def test_str_roundtrip(self):
        rule = parse_rule("T(x, y, w) :- E(x, z), T(z, y, w), w != x.")
        assert parse_rule(str(rule)) == rule


class TestParser:
    def test_fact(self):
        rule = parse_rule("D($t1, $t2).")
        assert rule.body == ()
        assert rule.head.args == (Constant("t1"), Constant("t2"))

    def test_both_arrows(self):
        assert parse_rule("S(x) :- E(x, x).") == parse_rule("S(x) <- E(x, x).")

    def test_unicode_neq(self):
        rule = parse_rule("S(x) :- E(x, y), x ≠ y.")
        assert isinstance(rule.body[1], Inequality)

    def test_equality(self):
        rule = parse_rule("S(x) :- E(x, y), x = y.")
        assert isinstance(rule.body[1], Equality)

    def test_comments_ignored(self):
        program = parse_program(
            """
            % transitive closure
            S(x, y) :- E(x, y).   # base case
            S(x, y) :- E(x, z), S(z, y).
            """,
            goal="S",
        )
        assert len(program.rules) == 2

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_rule("S(x) :- E(x, y)")

    def test_garbage_character(self):
        with pytest.raises(ParseError):
            parse_rule("S(x) :- E(x, y) @.")

    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_rule("S(x) :- E(x, x). S(y) :- E(y, y).")

    def test_nullary_atoms(self):
        program = parse_program("Win() :- Step(). Step().", goal="Win")
        assert program.arity("Win") == 0

    def test_primed_variable_names(self):
        rule = parse_rule("S(x) :- E(x, x').")
        assert Variable("x'") in rule.variables()

    def test_error_mentions_location(self):
        with pytest.raises(ParseError, match="line"):
            parse_program("S(x) :-\n E(x, ).", goal="S")


class TestSyntaxErrorDiagnostics:
    """DatalogSyntaxError carries structured location: line, column,
    offending token, and a caret excerpt of the source line."""

    def test_alias_is_the_same_class(self):
        from repro.datalog.parser import DatalogSyntaxError

        assert ParseError is DatalogSyntaxError

    def test_missing_dot_in_multi_rule_source_points_at_next_rule(self):
        # The classic opaque case: a forgotten dot only surfaces when
        # the *next* rule's head is read -- the error must say where.
        source = (
            "S(x, y) :- E(x, y).\n"
            "S(x, z) :- E(x, y), S(y, z)\n"
            "R(x) :- E(x, x).\n"
        )
        with pytest.raises(ParseError) as excinfo:
            parse_program(source, goal="S")
        error = excinfo.value
        assert error.line == 3
        assert error.column == 1
        assert error.token == "R"
        assert error.source_line == "R(x) :- E(x, x)."
        assert "line 3, column 1" in str(error)
        assert "^" in str(error)

    def test_stray_comma_reports_term_expectation(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("S(x) :- E(x, y), , R(y).", goal="S")
        error = excinfo.value
        assert (error.line, error.column) == (1, 18)
        assert error.token == ","
        assert "expected a term" in error.reason

    def test_garbage_character_is_located(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("S(x, y) :- E(x, @y).", goal="S")
        error = excinfo.value
        assert error.reason == "unexpected character"
        assert (error.line, error.column) == (1, 17)
        assert error.token == "@"

    def test_end_of_input_points_past_last_token(self):
        with pytest.raises(ParseError) as excinfo:
            parse_rule("S(x, y)")
        error = excinfo.value
        assert "end of input" in str(error)
        assert error.token is None
        assert (error.line, error.column) == (1, 8)

    def test_caret_column_aligns_with_token(self):
        source = "S(x) :- E(x, y), x ! y."
        with pytest.raises(ParseError) as excinfo:
            parse_program(source, goal="S")
        error = excinfo.value
        message = str(error)
        excerpt = message.splitlines()[-2:]
        assert excerpt[0].strip() == source
        caret_column = len(excerpt[1]) - 2  # "  " prefix, 1-based
        assert caret_column == error.column
        assert source[error.column - 1] == error.token
