"""Unit tests for the shared hash-index layer."""

import random

from repro.datalog.indexing import IndexedDatabase, RelationIndex, hash_index

ROWS = {("a", "b"), ("a", "c"), ("b", "b"), ("c", "a")}


class TestHashIndex:
    def test_groups_by_projection(self):
        index = hash_index(ROWS, (0,))
        assert sorted(index) == [("a",), ("b",), ("c",)]
        assert sorted(index[("a",)]) == [("a", "b"), ("a", "c")]

    def test_empty_signature_is_a_full_scan(self):
        index = hash_index(ROWS, ())
        assert set(index[()]) == ROWS

    def test_multi_position_signature(self):
        index = hash_index(ROWS, (1, 0))
        assert index[("b", "a")] == [("a", "b")]

    def test_nullary_rows(self):
        assert hash_index({()}, ()) == {(): [()]}


class TestRelationIndex:
    def test_rows_and_membership(self):
        relation = RelationIndex(ROWS)
        assert len(relation) == 4
        assert ("a", "b") in relation
        assert ("z", "z") not in relation
        assert set(relation) == ROWS

    def test_indexes_are_lazy(self):
        relation = RelationIndex(ROWS)
        assert relation.signatures == frozenset()
        relation.matching((0,), ("a",))
        assert relation.signatures == frozenset({(0,)})

    def test_matching(self):
        relation = RelationIndex(ROWS)
        assert set(relation.matching((0,), ("a",))) == {("a", "b"), ("a", "c")}
        assert list(relation.matching((0,), ("z",))) == []
        assert set(relation.matching((), ())) == ROWS

    def test_add_reports_novelty(self):
        relation = RelationIndex(ROWS)
        assert relation.add(("z", "z")) is True
        assert relation.add(("z", "z")) is False
        assert relation.add(("a", "b")) is False
        assert len(relation) == 5

    def test_add_maintains_built_indexes(self):
        relation = RelationIndex(ROWS)
        relation.index_for((0,))
        relation.index_for((1,))
        relation.add(("a", "z"))
        assert set(relation.matching((0,), ("a",))) == {
            ("a", "b"), ("a", "c"), ("a", "z"),
        }
        assert set(relation.matching((1,), ("z",))) == {("a", "z")}

    def test_add_all_returns_fresh_subset(self):
        relation = RelationIndex(ROWS)
        fresh = relation.add_all([("a", "b"), ("x", "y"), ("x", "y")])
        assert fresh == {("x", "y")}

    def test_incremental_equals_rebuild_under_random_merges(self):
        """Property: incrementally-maintained indexes match a rebuild
        from scratch after any sequence of merges."""
        rng = random.Random(13)
        relation = RelationIndex()
        signatures = [(), (0,), (1,), (0, 1), (1, 0)]
        for __ in range(30):
            if rng.random() < 0.4:
                relation.index_for(rng.choice(signatures))
            relation.add_all(
                (rng.randrange(4), rng.randrange(4))
                for __ in range(rng.randint(1, 5))
            )
        for positions in relation.signatures:
            rebuilt = hash_index(relation.rows, positions)
            live = relation.index_for(positions)
            assert {k: sorted(v) for k, v in live.items()} == {
                k: sorted(v) for k, v in rebuilt.items()
            }

    def test_remove_reports_presence(self):
        relation = RelationIndex(ROWS)
        assert relation.remove(("a", "b")) is True
        assert relation.remove(("a", "b")) is False
        assert relation.remove(("z", "z")) is False
        assert len(relation) == 3

    def test_remove_maintains_built_indexes(self):
        relation = RelationIndex(ROWS)
        relation.index_for((0,))
        relation.index_for((1,))
        relation.remove(("a", "b"))
        assert set(relation.matching((0,), ("a",))) == {("a", "c")}
        assert set(relation.matching((1,), ("b",))) == {("b", "b")}

    def test_remove_drops_emptied_buckets(self):
        relation = RelationIndex(ROWS)
        index = relation.index_for((0,))
        relation.remove(("c", "a"))
        assert ("c",) not in index
        assert list(relation.matching((0,), ("c",))) == []

    def test_remove_rows_returns_removed_subset(self):
        relation = RelationIndex(ROWS)
        gone = relation.remove_rows([("a", "b"), ("z", "z"), ("b", "b")])
        assert gone == {("a", "b"), ("b", "b")}
        assert relation.rows == {("a", "c"), ("c", "a")}

    def test_add_rows_is_the_maintenance_alias(self):
        relation = RelationIndex()
        assert relation.add_rows([("x", "y")]) == {("x", "y")}
        assert RelationIndex.add_rows is RelationIndex.add_all

    def test_incremental_equals_rebuild_under_mixed_churn(self):
        """Property: indexes stay consistent with a from-scratch
        rebuild under interleaved adds, removes, and lazy index
        materialisation -- including re-adding removed rows."""
        rng = random.Random(47)
        relation = RelationIndex()
        signatures = [(), (0,), (1,), (0, 1), (1, 0)]
        ever_seen: set = set()
        for __ in range(60):
            if rng.random() < 0.35:
                relation.index_for(rng.choice(signatures))
            action = rng.random()
            if action < 0.55 or not relation.rows:
                fresh = relation.add_rows(
                    (rng.randrange(4), rng.randrange(4))
                    for __ in range(rng.randint(1, 4))
                )
                ever_seen |= fresh
            elif action < 0.85:
                victims = rng.sample(
                    sorted(relation.rows),
                    min(len(relation.rows), rng.randint(1, 3)),
                )
                assert relation.remove_rows(victims) == set(victims)
            else:  # re-add rows that have been through a remove before
                relation.add_rows(
                    rng.sample(sorted(ever_seen),
                               min(len(ever_seen), 2))
                )
            for positions in relation.signatures:
                rebuilt = hash_index(relation.rows, positions)
                live = relation.index_for(positions)
                assert {k: sorted(v) for k, v in live.items()} == {
                    k: sorted(v) for k, v in rebuilt.items()
                }

    def test_churned_index_answers_like_a_fresh_one(self):
        """After churn, lookups through a signature built *before* the
        churn equal lookups through one built after."""
        rng = random.Random(53)
        early = RelationIndex()
        early.index_for((0,))
        rows = [(rng.randrange(3), rng.randrange(3)) for __ in range(20)]
        early.add_rows(rows)
        early.remove_rows(rng.sample(rows, 8))
        late = RelationIndex(early.rows)
        for key in range(3):
            assert sorted(early.matching((0,), (key,))) == sorted(
                late.matching((0,), (key,))
            )


class TestIndexedDatabase:
    def test_adopts_initial_relations(self):
        store = IndexedDatabase({"E": ROWS})
        assert "E" in store
        assert store.rows("E") == ROWS

    def test_relation_created_on_demand(self):
        store = IndexedDatabase()
        assert "P" not in store
        relation = store.relation("P")
        assert len(relation) == 0
        assert "P" in store

    def test_rows_of_absent_relation_is_empty(self):
        assert IndexedDatabase().rows("nope") == set()

    def test_merge_returns_fresh_rows(self):
        store = IndexedDatabase({"P": {(1,)}})
        assert store.merge("P", [(1,), (2,)]) == {(2,)}
        assert store.merge("P", [(2,)]) == set()
        assert store.rows("P") == {(1,), (2,)}

    def test_merge_keeps_indexes_current(self):
        store = IndexedDatabase({"P": {(1, 2)}})
        assert set(store.relation("P").matching((0,), (1,))) == {(1, 2)}
        store.merge("P", [(1, 3)])
        assert set(store.relation("P").matching((0,), (1,))) == {
            (1, 2), (1, 3),
        }

    def test_snapshot_is_frozen_and_detached(self):
        store = IndexedDatabase({"P": {(1,)}, "Q": set()})
        snap = store.snapshot(["P", "Q"])
        assert snap == {"P": frozenset({(1,)}), "Q": frozenset()}
        store.merge("P", [(2,)])
        assert snap["P"] == frozenset({(1,)})

    def test_iteration_lists_relations(self):
        store = IndexedDatabase({"E": ROWS, "P": set()})
        assert sorted(store) == ["E", "P"]

    def test_remove_returns_removed_rows(self):
        store = IndexedDatabase({"P": {(1,), (2,)}})
        assert store.remove("P", [(1,), (3,)]) == {(1,)}
        assert store.rows("P") == {(2,)}

    def test_remove_from_absent_relation_is_empty(self):
        assert IndexedDatabase().remove("nope", [(1,)]) == set()

    def test_remove_keeps_indexes_current(self):
        store = IndexedDatabase({"P": {(1, 2), (1, 3)}})
        assert set(store.relation("P").matching((0,), (1,))) == {
            (1, 2), (1, 3),
        }
        store.remove("P", [(1, 2)])
        assert set(store.relation("P").matching((0,), (1,))) == {(1, 3)}
