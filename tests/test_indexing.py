"""Unit tests for the shared hash-index layer."""

import random

from repro.datalog.indexing import IndexedDatabase, RelationIndex, hash_index

ROWS = {("a", "b"), ("a", "c"), ("b", "b"), ("c", "a")}


class TestHashIndex:
    def test_groups_by_projection(self):
        index = hash_index(ROWS, (0,))
        assert sorted(index) == [("a",), ("b",), ("c",)]
        assert sorted(index[("a",)]) == [("a", "b"), ("a", "c")]

    def test_empty_signature_is_a_full_scan(self):
        index = hash_index(ROWS, ())
        assert set(index[()]) == ROWS

    def test_multi_position_signature(self):
        index = hash_index(ROWS, (1, 0))
        assert index[("b", "a")] == [("a", "b")]

    def test_nullary_rows(self):
        assert hash_index({()}, ()) == {(): [()]}


class TestRelationIndex:
    def test_rows_and_membership(self):
        relation = RelationIndex(ROWS)
        assert len(relation) == 4
        assert ("a", "b") in relation
        assert ("z", "z") not in relation
        assert set(relation) == ROWS

    def test_indexes_are_lazy(self):
        relation = RelationIndex(ROWS)
        assert relation.signatures == frozenset()
        relation.matching((0,), ("a",))
        assert relation.signatures == frozenset({(0,)})

    def test_matching(self):
        relation = RelationIndex(ROWS)
        assert set(relation.matching((0,), ("a",))) == {("a", "b"), ("a", "c")}
        assert list(relation.matching((0,), ("z",))) == []
        assert set(relation.matching((), ())) == ROWS

    def test_add_reports_novelty(self):
        relation = RelationIndex(ROWS)
        assert relation.add(("z", "z")) is True
        assert relation.add(("z", "z")) is False
        assert relation.add(("a", "b")) is False
        assert len(relation) == 5

    def test_add_maintains_built_indexes(self):
        relation = RelationIndex(ROWS)
        relation.index_for((0,))
        relation.index_for((1,))
        relation.add(("a", "z"))
        assert set(relation.matching((0,), ("a",))) == {
            ("a", "b"), ("a", "c"), ("a", "z"),
        }
        assert set(relation.matching((1,), ("z",))) == {("a", "z")}

    def test_add_all_returns_fresh_subset(self):
        relation = RelationIndex(ROWS)
        fresh = relation.add_all([("a", "b"), ("x", "y"), ("x", "y")])
        assert fresh == {("x", "y")}

    def test_incremental_equals_rebuild_under_random_merges(self):
        """Property: incrementally-maintained indexes match a rebuild
        from scratch after any sequence of merges."""
        rng = random.Random(13)
        relation = RelationIndex()
        signatures = [(), (0,), (1,), (0, 1), (1, 0)]
        for __ in range(30):
            if rng.random() < 0.4:
                relation.index_for(rng.choice(signatures))
            relation.add_all(
                (rng.randrange(4), rng.randrange(4))
                for __ in range(rng.randint(1, 5))
            )
        for positions in relation.signatures:
            rebuilt = hash_index(relation.rows, positions)
            live = relation.index_for(positions)
            assert {k: sorted(v) for k, v in live.items()} == {
                k: sorted(v) for k, v in rebuilt.items()
            }


class TestIndexedDatabase:
    def test_adopts_initial_relations(self):
        store = IndexedDatabase({"E": ROWS})
        assert "E" in store
        assert store.rows("E") == ROWS

    def test_relation_created_on_demand(self):
        store = IndexedDatabase()
        assert "P" not in store
        relation = store.relation("P")
        assert len(relation) == 0
        assert "P" in store

    def test_rows_of_absent_relation_is_empty(self):
        assert IndexedDatabase().rows("nope") == set()

    def test_merge_returns_fresh_rows(self):
        store = IndexedDatabase({"P": {(1,)}})
        assert store.merge("P", [(1,), (2,)]) == {(2,)}
        assert store.merge("P", [(2,)]) == set()
        assert store.rows("P") == {(1,), (2,)}

    def test_merge_keeps_indexes_current(self):
        store = IndexedDatabase({"P": {(1, 2)}})
        assert set(store.relation("P").matching((0,), (1,))) == {(1, 2)}
        store.merge("P", [(1, 3)])
        assert set(store.relation("P").matching((0,), (1,))) == {
            (1, 2), (1, 3),
        }

    def test_snapshot_is_frozen_and_detached(self):
        store = IndexedDatabase({"P": {(1,)}, "Q": set()})
        snap = store.snapshot(["P", "Q"])
        assert snap == {"P": frozenset({(1,)}), "Q": frozenset()}
        store.merge("P", [(2,)])
        assert snap["P"] == frozenset({(1,)})

    def test_iteration_lists_relations(self):
        store = IndexedDatabase({"E": ROWS, "P": set()})
        assert sorted(store) == ["E", "P"]
