"""Shared harness for the ``repro serve`` test suites.

:func:`running_server` runs a :class:`~repro.serve.server.ReproServer`
on its own event loop in a daemon thread and yields it with the bound
port filled in; connect with :class:`~repro.serve.client.ServeClient`.
The thread owns the loop exclusively, so test code never touches
asyncio directly.
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager

from repro.datalog.library import transitive_closure_program
from repro.graphs.digraph import DiGraph
from repro.serve.client import ServeClient
from repro.serve.server import ReproServer
from repro.serve.view import LiveView


def tc_view(edges, nodes="abcd") -> LiveView:
    """A transitive-closure live view over a small named-node graph."""
    graph = DiGraph(nodes=nodes, edges=edges)
    return LiveView(transitive_closure_program(), graph.to_structure())


@contextmanager
def running_server(view: LiveView, **kwargs):
    """Start a server in a background thread; stop it on exit."""
    server = ReproServer(view, port=0, **kwargs)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    async def _run() -> None:
        await server.start()
        ready.set()
        await server.serve_until_stopped()

    def _thread_main() -> None:
        try:
            loop.run_until_complete(_run())
        finally:
            loop.close()

    thread = threading.Thread(target=_thread_main, daemon=True)
    thread.start()
    if not ready.wait(timeout=10):
        raise RuntimeError("server did not start within 10s")
    try:
        yield server
    finally:
        if not server._stopping.is_set():
            try:
                with ServeClient("127.0.0.1", server.port, timeout=5) as c:
                    c.shutdown()
            except OSError:
                pass
        thread.join(timeout=10)


def connect(server: ReproServer, tenant: str | None = None) -> ServeClient:
    return ServeClient(
        "127.0.0.1", server.port, tenant=tenant, timeout=30.0
    )
