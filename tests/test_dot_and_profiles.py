"""Tests for DOT export and walk-length profiles."""

import pytest

from repro.cnf import CnfFormula
from repro.fhw.reduction import sat_to_disjoint_paths
from repro.graphs import DiGraph, walk_length_profile
from repro.graphs.generators import cycle_graph, path_graph, random_digraph
from repro.io.dot import reduction_to_dot, to_dot


class TestDot:
    def test_basic_structure(self):
        g = DiGraph(edges=[("a", "b")], distinguished={"s": "a"})
        dot = to_dot(g)
        assert dot.startswith('digraph "G" {')
        assert '"\'a\'" -> "\'b\'"' in dot
        assert "doublecircle" in dot
        assert 'xlabel="s"' in dot

    def test_highlighting(self):
        g = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        dot = to_dot(g, highlight_paths=[("a", "b", "c")])
        assert dot.count("penwidth=2") == 2
        assert "color=red" in dot

    def test_custom_labels(self):
        g = DiGraph(edges=[(1, 2)])
        dot = to_dot(g, node_labels={1: "one"})
        assert 'label="one"' in dot

    def test_reduction_export_with_routed_paths(self):
        instance = sat_to_disjoint_paths(CnfFormula.parse("x1 | x1"))
        dot = reduction_to_dot(instance, {"x1": True})
        assert "G_phi" in dot
        assert "color=red" in dot and "color=blue" in dot

    def test_reduction_export_without_model(self):
        instance = sat_to_disjoint_paths(CnfFormula.parse("x1; ~x1"))
        dot = reduction_to_dot(instance)
        assert "penwidth" not in dot

    def test_quoting(self):
        g = DiGraph(edges=[('a"b', "c")])
        dot = to_dot(g)
        assert '\\"' in dot


class TestWalkLengthProfile:
    def test_path_graph(self):
        profile = walk_length_profile(path_graph(4), max_length=5)
        assert profile[("v0", "v3")] == {3}
        assert profile[("v0", "v1")] == {1}
        assert ("v3", "v0") not in profile

    def test_cycle_wraps(self):
        profile = walk_length_profile(cycle_graph(3), max_length=7)
        assert profile[("v0", "v0")] == {3, 6}
        assert profile[("v0", "v1")] == {1, 4, 7}

    def test_matches_brute_force(self):
        g = random_digraph(5, 0.35, seed=6)
        bound = 6
        profile = walk_length_profile(g, bound)
        # brute force: enumerate walks by DP on predecessor chains
        reach = {0: {(v, v) for v in g.nodes}}
        for n in range(1, bound + 1):
            reach[n] = {
                (u, w)
                for (u, v) in reach[n - 1]
                for w in g.successors(v)
            }
        for u in g.nodes:
            for v in g.nodes:
                expected = frozenset(
                    n for n in range(1, bound + 1) if (u, v) in reach[n]
                )
                assert profile.get((u, v), frozenset()) == expected

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            walk_length_profile(path_graph(2), 0)
