"""Unit and property tests for homomorphisms (Definition 4.6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures import (
    Structure,
    Vocabulary,
    are_isomorphic,
    extend_partial_map,
    find_homomorphisms,
    find_one_to_one_homomorphism,
    find_one_to_one_homomorphisms,
    is_homomorphism,
    is_one_to_one_homomorphism,
    is_partial_homomorphism,
    is_partial_one_to_one_homomorphism,
)
from repro.graphs.generators import path_graph, cycle_graph


def path_structure(n):
    return path_graph(n).to_structure()


def cycle_structure(n):
    return cycle_graph(n).to_structure()


class TestPartialMaps:
    def test_empty_map_is_partial_hom(self):
        a, b = path_structure(2), path_structure(3)
        assert is_partial_homomorphism({}, a, b)
        assert is_partial_one_to_one_homomorphism({}, a, b)

    def test_edge_preservation(self):
        a, b = path_structure(3), path_structure(3)
        good = {"v0": "v0", "v1": "v1"}
        bad = {"v0": "v1", "v1": "v0"}  # reverses the edge
        assert is_partial_one_to_one_homomorphism(good, a, b)
        assert not is_partial_homomorphism(bad, a, b)

    def test_injectivity_checked(self):
        a, b = path_structure(3), path_structure(5)
        collapse = {"v0": "v0", "v2": "v0"}  # no edge constraint violated
        assert is_partial_homomorphism(collapse, a, b)
        assert not is_partial_one_to_one_homomorphism(collapse, a, b)

    def test_constants_implicitly_included(self):
        voc = Vocabulary.graph(constants=("s",))
        a = Structure(voc, {1, 2}, {"E": [(1, 2)]}, {"s": 1})
        b = Structure(voc, {10, 20}, {"E": [(10, 20)]}, {"s": 10})
        # Mapping 2 -> 10 collides with the constant pair (1 -> 10).
        assert not is_partial_one_to_one_homomorphism({2: 10}, a, b)
        assert is_partial_one_to_one_homomorphism({2: 20}, a, b)

    def test_constant_mismatch_rejected(self):
        voc = Vocabulary.graph(constants=("s",))
        a = Structure(voc, {1, 2}, {}, {"s": 1})
        b = Structure(voc, {10, 20}, {}, {"s": 10})
        assert not is_partial_homomorphism({1: 20}, a, b)

    def test_extend_partial_map(self):
        a, b = path_structure(3), path_structure(4)
        base = {"v0": "v0"}
        extended = extend_partial_map(base, "v1", "v1", a, b)
        assert extended == {"v0": "v0", "v1": "v1"}
        assert extend_partial_map(base, "v1", "v3", a, b) is None

    def test_vocabulary_mismatch_raises(self):
        a = path_structure(2)
        voc = Vocabulary({"R": 1})
        b = Structure(voc, {1}, {"R": [(1,)]})
        with pytest.raises(ValueError):
            is_partial_homomorphism({}, a, b)


class TestTotalMaps:
    def test_path_embeds_in_longer_path(self):
        a, b = path_structure(3), path_structure(5)
        h = find_one_to_one_homomorphism(a, b)
        assert h is not None
        assert is_one_to_one_homomorphism(h, a, b)

    def test_longer_path_does_not_embed(self):
        a, b = path_structure(5), path_structure(3)
        assert find_one_to_one_homomorphism(a, b) is None

    def test_path_maps_into_cycle(self):
        # Non-injectively a long path wraps around a short cycle.
        a, b = path_structure(5), cycle_structure(3)
        assert any(True for _ in find_homomorphisms(a, b))

    def test_cycle_does_not_map_into_path(self):
        a, b = cycle_structure(3), path_structure(6)
        assert not any(True for _ in find_homomorphisms(a, b))

    def test_injective_count_on_paths(self):
        # The 2-node path embeds into the 4-node path once per edge.
        a, b = path_structure(2), path_structure(4)
        assert len(list(find_one_to_one_homomorphisms(a, b))) == 3


class TestIsomorphism:
    def test_paths_isomorphic(self):
        a = path_structure(4)
        b = path_graph(4, prefix="w").to_structure()
        assert are_isomorphic(a, b)

    def test_path_not_isomorphic_to_cycle(self):
        assert not are_isomorphic(path_structure(3), cycle_structure(3))

    def test_size_mismatch(self):
        assert not are_isomorphic(path_structure(3), path_structure(4))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=2, max_value=5))
def test_shorter_paths_always_embed(m, n):
    """Property: an m-path embeds injectively into an n-path iff m <= n."""
    a, b = path_structure(m), path_structure(n)
    found = find_one_to_one_homomorphism(a, b) is not None
    assert found == (m <= n)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=5))
def test_identity_is_automorphism(n):
    s = path_structure(n)
    identity = {x: x for x in s.universe}
    assert is_one_to_one_homomorphism(identity, s, s)
