"""Tests for the file formats (graphs, DIMACS CNF, program files)."""

import pytest

from repro.cnf import CnfFormula, Literal, complete_formula
from repro.datalog.library import avoiding_path_program
from repro.graphs import DiGraph
from repro.io import (
    dump_cnf,
    dump_digraph,
    dump_program,
    loads_cnf,
    loads_digraph,
    loads_program,
)
from repro.io.cnf_format import DimacsError
from repro.io.graph_format import GraphFormatError
from repro.io.program_format import ProgramFormatError


class TestGraphFormat:
    def test_roundtrip(self):
        g = DiGraph(
            nodes=["lonely"],
            edges=[("a", "b"), ("b", "c")],
            distinguished={"s": "a", "t": "c"},
        )
        assert loads_digraph(dump_digraph(g)) == g

    def test_comments_and_blanks(self):
        g = loads_digraph("""
            # a tiny graph
            edge a b   # inline comment
            node x

            s1 = a
        """)
        assert g.has_edge("a", "b")
        assert "x" in g
        assert g.distinguished == {"s1": "a"}

    def test_malformed_line(self):
        with pytest.raises(GraphFormatError, match="line 1"):
            loads_digraph("edge a")

    def test_undeclared_distinguished(self):
        with pytest.raises(GraphFormatError, match="never declared"):
            loads_digraph("edge a b\ns = zz")

    def test_malformed_assignment(self):
        with pytest.raises(GraphFormatError):
            loads_digraph("s =")

    def test_unserialisable_name(self):
        g = DiGraph(edges=[("a b", "c")])
        with pytest.raises(GraphFormatError):
            dump_digraph(g)


class TestDimacs:
    def test_roundtrip(self):
        phi = complete_formula(2)
        assert loads_cnf(dump_cnf(phi)) == phi

    def test_parse_with_comments(self):
        phi = loads_cnf("""
            c a comment
            p cnf 2 2
            1 -2 0
            2 0
        """)
        assert len(phi.clauses) == 2
        assert Literal("x2", False) in phi.clauses[0].literals

    def test_duplicate_occurrences_preserved(self):
        phi = loads_cnf("p cnf 1 1\n1 1 0")
        assert phi.occurrence_count(Literal("x1")) == 2

    def test_missing_final_zero_tolerated(self):
        phi = loads_cnf("1 -1")
        assert len(phi.clauses) == 1

    def test_clause_count_mismatch(self):
        with pytest.raises(DimacsError, match="declares"):
            loads_cnf("p cnf 1 3\n1 0")

    def test_bad_token(self):
        with pytest.raises(DimacsError, match="non-integer"):
            loads_cnf("1 x 0")

    def test_empty(self):
        with pytest.raises(DimacsError, match="no clauses"):
            loads_cnf("c nothing here")


class TestProgramFormat:
    def test_roundtrip(self):
        program = avoiding_path_program()
        assert loads_program(dump_program(program)) == program

    def test_goal_directive(self):
        program = loads_program("""
            % goal: S
            S(x, y) :- E(x, y).
        """)
        assert program.goal == "S"

    def test_explicit_goal_overrides(self):
        program = loads_program(
            "% goal: S\nS(x, y) :- E(x, y).\nR(x) :- E(x, x).",
            goal="R",
        )
        assert program.goal == "R"

    def test_missing_goal(self):
        with pytest.raises(ProgramFormatError, match="goal"):
            loads_program("S(x, y) :- E(x, y).")

    def test_duplicate_goal(self):
        with pytest.raises(ProgramFormatError, match="multiple"):
            loads_program("% goal: S\n% goal: T\nS(x) :- E(x, x).")
