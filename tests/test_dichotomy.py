"""Tests for the full dichotomy classification (experiment E15)."""

import pytest

from repro.core import classify_query
from repro.core.dichotomy import dichotomy_table, pattern_catalogue
from repro.fhw.pattern_class import pattern_h1, pattern_h2, pattern_h3
from repro.graphs import DiGraph


class TestClassification:
    def test_out_star_row(self):
        row = classify_query(DiGraph(edges=[("r", "a"), ("r", "b")]))
        assert row.in_class_c
        assert "PTIME" in row.complexity
        assert "Theorem 6.1" in row.general_inputs
        assert "Theorem 6.2" in row.acyclic_inputs

    @pytest.mark.parametrize(
        "pattern,obstruction",
        [(pattern_h1(), "H1"), (pattern_h2(), "H2"), (pattern_h3(), "H3")],
    )
    def test_negative_rows(self, pattern, obstruction):
        row = classify_query(pattern)
        assert not row.in_class_c
        assert "NP-complete" in row.complexity
        assert obstruction in row.general_inputs
        assert "not expressible" in row.general_inputs

    def test_general_program_available_in_c(self):
        row = classify_query(DiGraph(edges=[("r", "a")]))
        query = row.general_program()
        g = DiGraph(edges=[("x", "y")])
        assert query.decide(g, {"r": "x", "a": "y"})

    def test_general_program_refused_outside_c(self):
        row = classify_query(pattern_h1())
        with pytest.raises(ValueError):
            row.general_program()

    def test_acyclic_program_available_everywhere(self):
        for pattern in (pattern_h1(), DiGraph(edges=[("r", "a")])):
            row = classify_query(pattern)
            query = row.acyclic_program()
            assert query.program.goal == "Answer"

    def test_edgeless_rejected(self):
        with pytest.raises(ValueError):
            classify_query(DiGraph(nodes=["x"]))


class TestCatalogue:
    def test_catalogue_spans_the_dichotomy(self):
        rows = dichotomy_table()
        assert any(row.in_class_c for row in rows)
        assert any(not row.in_class_c for row in rows)
        assert len(rows) == len(pattern_catalogue())

    def test_expected_verdicts(self):
        verdicts = {
            name: classify_query(pattern).in_class_c
            for name, pattern in pattern_catalogue().items()
        }
        assert verdicts["out-star-3"] is True
        assert verdicts["self-loop"] is True
        assert verdicts["loop-plus-out"] is True
        assert verdicts["H1-two-disjoint-edges"] is False
        assert verdicts["H2-path-length-2"] is False
        assert verdicts["H3-two-cycle"] is False
        assert verdicts["triangle"] is False
        assert verdicts["in-out-node"] is False
