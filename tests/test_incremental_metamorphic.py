"""Metamorphic properties of incremental maintenance.

Two relations between update sequences must hold regardless of the
program or data, so they make good oracles without a reference
implementation:

* **order-insensitivity** -- inserts commute (the fixpoint is a
  function of the final EDB), so every permutation of an insert batch,
  and any batching of it, lands in the same semantic view;
* **round-trip** -- inserting rows and then deleting the same rows
  (and vice versa for rows already present) returns the session to the
  seed database's semantic view, including its provenance counts.
"""

import itertools
import random

from repro.datalog.incremental import IncrementalSession
from repro.datalog.library import transitive_closure_program

from tests.test_engine_differential import (
    _random_program,
    _random_structure,
)


def _view(session):
    return session.relations


def _fresh_rows(rng, structure, count):
    nodes = sorted(structure.universe)
    present = set(structure.relation("E"))
    fresh = []
    for __ in range(200):
        row = (rng.choice(nodes), rng.choice(nodes))
        if row not in present and row not in fresh:
            fresh.append(row)
        if len(fresh) == count:
            break
    return fresh


class TestInsertOrderInsensitivity:
    def test_all_permutations_of_a_batch_agree(self):
        rng = random.Random(17)
        program = transitive_closure_program()
        structure = _random_structure(rng)
        rows = _fresh_rows(rng, structure, 3)
        reference = None
        for permutation in itertools.permutations(rows):
            session = IncrementalSession(program, structure)
            for row in permutation:
                session.insert_facts("E", [row])
            if reference is None:
                reference = _view(session)
            else:
                assert _view(session) == reference, permutation

    def test_one_batch_equals_singleton_sequence(self):
        rng = random.Random(23)
        for __ in range(15):
            program = _random_program(rng)
            structure = _random_structure(rng)
            rows = _fresh_rows(rng, structure, rng.randint(2, 4))
            batched = IncrementalSession(program, structure)
            batched.insert_facts("E", rows)
            one_by_one = IncrementalSession(program, structure)
            for row in rows:
                one_by_one.insert_facts("E", [row])
            assert _view(batched) == _view(one_by_one)

    def test_random_permutations_of_random_programs(self):
        rng = random.Random(29)
        for __ in range(20):
            program = _random_program(rng)
            structure = _random_structure(rng)
            rows = _fresh_rows(rng, structure, 4)
            views = set()
            for __ in range(3):
                shuffled = rows[:]
                rng.shuffle(shuffled)
                session = IncrementalSession(program, structure)
                for row in shuffled:
                    session.insert_facts("E", [row])
                views.add(
                    tuple(sorted(
                        (p, tuple(sorted(r, key=repr)))
                        for p, r in _view(session).items()
                    ))
                )
            assert len(views) == 1


class TestInsertDeleteRoundTrip:
    def test_insert_then_delete_returns_to_seed(self):
        rng = random.Random(31)
        for __ in range(20):
            program = _random_program(rng)
            structure = _random_structure(rng)
            session = IncrementalSession(program, structure)
            seed_view = _view(session)
            seed_edb = session.current_extra_edb()
            rows = _fresh_rows(rng, structure, rng.randint(1, 3))
            session.insert_facts("E", rows)
            session.delete_facts("E", rows)
            assert _view(session) == seed_view
            assert session.current_extra_edb() == seed_edb

    def test_delete_then_reinsert_returns_to_seed(self):
        rng = random.Random(37)
        for __ in range(20):
            program = _random_program(rng)
            structure = _random_structure(rng)
            present = sorted(structure.relation("E"))
            if not present:
                continue
            session = IncrementalSession(program, structure)
            seed_view = _view(session)
            rows = rng.sample(present, min(len(present), 2))
            session.delete_facts("E", rows)
            session.insert_facts("E", rows)
            assert _view(session) == seed_view

    def test_round_trip_preserves_provenance_counts(self):
        """After the round trip the support table matches a fresh
        session's -- the view is equal *and* so are its derivation
        counts, so later deletions behave identically too."""
        rng = random.Random(41)
        program = transitive_closure_program()
        structure = _random_structure(rng)
        session = IncrementalSession(program, structure)
        rows = _fresh_rows(rng, structure, 2)
        session.insert_facts("E", rows)
        session.delete_facts("E", rows)
        fresh = IncrementalSession(program, structure)
        for predicate, relation in session.relations.items():
            for row in relation:
                assert session.derivation_count(predicate, row) == \
                    fresh.derivation_count(predicate, row)

    def test_interleaved_round_trips_compose(self):
        """Several overlapping insert/delete round trips, ending where
        we started."""
        rng = random.Random(43)
        program = transitive_closure_program()
        structure = _random_structure(rng)
        session = IncrementalSession(program, structure)
        seed_view = _view(session)
        batch_a = _fresh_rows(rng, structure, 2)
        batch_b = [row for row in _fresh_rows(rng, structure, 4)
                   if row not in batch_a][:2]
        session.insert_facts("E", batch_a)
        session.insert_facts("E", batch_b)
        session.delete_facts("E", batch_a)
        session.delete_facts("E", batch_b)
        assert _view(session) == seed_view
