"""Parser fuzz smoke: malformed text fails *diagnostically*, never raw.

A seeded stream of mutations over valid program texts -- token noise,
character edits, truncations, paren imbalance, garbage injection --
must leave :func:`parse_program` in one of exactly three states:

* a successful parse (many mutations are harmless),
* :class:`DatalogSyntaxError` carrying a 1-based line/column and a
  non-empty reason (the located-diagnosis contract of the parser), or
* a plain ``ValueError`` with a non-empty message (the *semantic*
  validation layer: arity clashes, missing goal, ...).

What must never escape: ``IndexError``, ``KeyError``, ``TypeError``,
``AttributeError``, ``UnboundLocalError``, ``RecursionError`` -- the
raw internal failures a lexer/parser leaks when it indexes past the
token stream instead of diagnosing.
"""

import random

import pytest

from repro.datalog.library import library_programs
from repro.datalog.parser import DatalogSyntaxError, parse_program
from repro.io import dump_program

#: Seeded mutation trials; the acceptance bar is "about 200".
TRIALS = 240

_NOISE_TOKENS = [
    ":-", "<-", "!=", "=", "(", ")", ",", ".", "%", "#",
    "P", "E", "xyz", "x", "1", "_", "≠", "@", "\\", '"', "\n", "\t", " ",
]


def _seed_texts() -> list[tuple[str, str]]:
    """(text, goal) pairs: every library program's printed form."""
    return [
        (dump_program(program), program.goal)
        for program in library_programs().values()
    ]


def _mutate(rng: random.Random, text: str) -> str:
    kind = rng.randrange(6)
    if kind == 0 and text:  # truncate mid-stream
        return text[: rng.randrange(len(text))]
    if kind == 1 and text:  # delete a character span
        start = rng.randrange(len(text))
        return text[:start] + text[start + rng.randint(1, 4):]
    if kind == 2:  # inject a noise token
        position = rng.randrange(len(text) + 1)
        return text[:position] + rng.choice(_NOISE_TOKENS) + text[position:]
    if kind == 3 and text:  # replace a character
        position = rng.randrange(len(text))
        return (
            text[:position]
            + rng.choice("().,:-!=%#abz19 \n")
            + text[position + 1:]
        )
    if kind == 4:  # shuffle whitespace-split tokens of one line
        lines = text.splitlines()
        if lines:
            index = rng.randrange(len(lines))
            parts = lines[index].split()
            rng.shuffle(parts)
            lines[index] = " ".join(parts)
            return "\n".join(lines)
        return text
    # duplicate a random slice (unbalances parens, repeats rule heads)
    if text:
        start = rng.randrange(len(text))
        end = min(len(text), start + rng.randint(1, 10))
        return text[:start] + text[start:end] * 2 + text[end:]
    return text


_RAW_FAILURES = (
    IndexError,
    KeyError,
    TypeError,
    AttributeError,
    UnboundLocalError,
    RecursionError,
)


def _try_parse(text: str, goal: str) -> None:
    """The contract one fuzz case must satisfy."""
    try:
        parse_program(text, goal)
    except DatalogSyntaxError as exc:
        assert str(exc), "diagnosis must be non-empty"
        assert exc.reason
        if text.strip():
            assert exc.line is not None and exc.line >= 1, text
            assert exc.column is not None and exc.column >= 1, text
    except _RAW_FAILURES as exc:  # pragma: no cover - the failure mode
        pytest.fail(
            f"raw {type(exc).__name__} escaped the parser for "
            f"{text[:80]!r}: {exc}"
        )
    except ValueError as exc:
        # Semantic validation (arity clash, missing goal, ...): allowed,
        # but it must carry a message, and DatalogSyntaxError is not a
        # ValueError -- location-free syntax failures cannot hide here.
        assert str(exc)


def test_seeded_mutation_stream():
    rng = random.Random(60606)
    seeds = _seed_texts()
    syntax_errors = 0
    for trial in range(TRIALS):
        text, goal = seeds[trial % len(seeds)]
        mutated = text
        for __ in range(rng.randint(1, 3)):
            mutated = _mutate(rng, mutated)
        try:
            parse_program(mutated, goal)
        except DatalogSyntaxError:
            syntax_errors += 1
        except Exception:
            pass
        _try_parse(mutated, goal)
    # The stream must actually exercise the diagnosis path.
    assert syntax_errors >= 40, syntax_errors


def test_pure_noise_stream():
    """Programs made of nothing but noise tokens."""
    rng = random.Random(60607)
    for __ in range(60):
        text = "".join(
            rng.choice(_NOISE_TOKENS) for __ in range(rng.randint(1, 30))
        )
        _try_parse(text, "P")


def test_truncation_at_every_position():
    """Every prefix of a real program either parses or diagnoses."""
    text = dump_program(library_programs()["transitive-closure"])
    goal = library_programs()["transitive-closure"].goal
    for cut in range(len(text)):
        _try_parse(text[:cut], goal)


def test_empty_and_whitespace_inputs():
    for text in ("", " ", "\n\n", "\t", "% only a comment\n"):
        try:
            parse_program(text, "P")
        except (DatalogSyntaxError, ValueError) as exc:
            assert str(exc)


def test_diagnosis_points_at_offending_token():
    with pytest.raises(DatalogSyntaxError) as info:
        parse_program("P(x) :- E(x, y))).", "P")
    exc = info.value
    assert exc.line == 1
    assert exc.column is not None
    assert exc.token is not None
