"""The codegen engine: generated functions vs. the plan interpreter.

Two layers pin the tentpole:

* **plan level** -- for seeded random programs, every rule plan's
  generated function is compared against the interpreted plan
  (``_compile_plan`` / ``_run_plan``) on the *same* database: same slot
  numbering, same satisfying bindings (the ``mode="bindings"`` render
  returns the full slot tuple per binding), same head tuples, and the
  same again when both executors are fed the same delta-tuple sets;
* **source level** -- rendering is deterministic: the source for a
  fixed (program, seed) is byte-identical across independent renders
  (the compile cache keys on source text, so this is also what makes
  ``compile()`` run once per plan shape).

Engine-level equality across all five engines lives in
``tests/test_engine_differential.py``; this file owns the generated
code itself.
"""

import random

import pytest

from repro.datalog import evaluate
from repro.datalog.ast import Atom, Constant, Inequality, Program, Rule, Variable
from repro.datalog.codegen import (
    _compiled_code,
    bind_plan,
    render_plan,
    rule_sources,
)
from repro.datalog.evaluation import (
    _compile_plan,
    _database_from_structure,
    _plan_heads,
    _run_plan,
)
from repro.datalog.indexing import IndexedDatabase
from repro.datalog.library import transitive_closure_program
from repro.datalog.planner import plan_program_rules, plan_rule
from repro.graphs.generators import path_graph
from repro.testing.faults import census
from tests.test_engine_differential import _random_program, _random_structure


def _fixpoint_store(program, structure):
    """An IndexedDatabase holding the EDB plus the final IDB relations.

    Plans are compared at the fixpoint (not the empty IDB) so delta and
    full plans alike see non-trivial relations on both sides.
    """
    database, constants = _database_from_structure(program, structure, None)
    final = evaluate(program, structure, method="naive").relations
    for predicate, rows in final.items():
        database[predicate] = set(rows)
    for predicate in program.idb_predicates:
        database.setdefault(predicate, set())
    return IndexedDatabase(database), list(structure.universe), constants


def _interpreted_bindings(plan, store, universe, constants, delta_rows=None):
    compiled = _compile_plan(plan, constants)
    rows = [
        tuple(binding)
        for binding in _run_plan(
            compiled, store, universe, delta_rows=delta_rows
        )
    ]
    return compiled, rows


def _generated_bindings(plan, store, universe, constants, delta_rows=None):
    source = render_plan(plan, mode="bindings")
    function = bind_plan(source, store, constants)
    out, produced = function(
        () if delta_rows is None else delta_rows, set(), universe, None
    )
    return source, out, produced


class TestBindingsAgainstInterpreter:
    """Generated output == interpreted output, binding for binding."""

    def test_full_plans_same_bindings(self):
        rng = random.Random(4021)
        compared = 0
        for __ in range(40):
            program = _random_program(rng)
            structure = _random_structure(rng)
            store, universe, constants = _fixpoint_store(program, structure)
            for rule in program.rules:
                plan = plan_rule(rule)
                compiled, interpreted = _interpreted_bindings(
                    plan, store, universe, constants
                )
                source, generated, produced = _generated_bindings(
                    plan, store, universe, constants
                )
                # Same Variable -> slot assignment (first-bind order)...
                assert source.slots == compiled.slots, rule
                # ...and exactly the same satisfying bindings.
                assert sorted(generated) == sorted(interpreted), rule
                assert produced == len(interpreted), rule
                compared += 1
        assert compared >= 140

    def test_delta_plans_same_bindings_same_delta_tuples(self):
        rng = random.Random(4022)
        compared = 0
        for __ in range(40):
            program = _random_program(rng)
            structure = _random_structure(rng)
            store, universe, constants = _fixpoint_store(program, structure)
            for rule in program.rules:
                for plan in plan_program_rules(
                    rule, program.idb_predicates
                ):
                    predicate = rule.body_atoms()[
                        plan.delta_atom_index
                    ].predicate
                    rows = sorted(store.rows(predicate))
                    if not rows:
                        continue
                    # A seeded proper subset: the same delta tuples feed
                    # both executors.
                    delta = set(
                        rng.sample(rows, rng.randint(1, len(rows)))
                    )
                    __unused, interpreted = _interpreted_bindings(
                        plan, store, universe, constants, delta_rows=delta
                    )
                    ___, generated, produced = _generated_bindings(
                        plan, store, universe, constants, delta_rows=delta
                    )
                    assert sorted(generated) == sorted(interpreted), rule
                    assert produced == len(interpreted), rule
                    compared += 1
        assert compared >= 60

    def test_heads_mode_matches_plan_heads_and_respects_existing(self):
        rng = random.Random(4023)
        for __ in range(20):
            program = _random_program(rng)
            structure = _random_structure(rng)
            store, universe, constants = _fixpoint_store(program, structure)
            for rule in program.rules:
                plan = plan_rule(rule)
                compiled = _compile_plan(plan, constants)
                heads = set(_plan_heads(compiled, store, universe))
                function = bind_plan(
                    render_plan(plan), store, constants
                )
                fired, produced = function((), set(), universe, None)
                assert fired == heads, rule
                if not heads:
                    continue
                # Splitting off an ``existing`` half must subtract it
                # from ``fired`` but never from ``produced``.
                existing = set(sorted(heads)[: len(heads) // 2])
                fired2, produced2 = function((), existing, universe, None)
                assert fired2 == heads - existing, rule
                assert produced2 == produced, rule


class TestSourceDeterminism:
    def test_source_byte_identical_across_independent_builds(self):
        """Rebuilding the program from the same seed and re-rendering
        yields byte-identical source for every plan of every rule."""
        for seed in (11, 99, 20260807):
            first = [
                (full.source, tuple(s.source for __, s in deltas))
                for full, deltas in rule_sources(
                    _random_program(random.Random(seed))
                )
            ]
            second = [
                (full.source, tuple(s.source for __, s in deltas))
                for full, deltas in rule_sources(
                    _random_program(random.Random(seed))
                )
            ]
            assert first == second

    def test_source_is_database_independent(self):
        """No run-specific values leak into the text: the same program
        renders identically whatever structure it will run on (that is
        what makes the compile cache hit across databases)."""
        program = transitive_closure_program()
        once = [f.source for f, __ in rule_sources(program)]
        # Rendering never consults a structure at all, so a second
        # render must be the same object-for-object text.
        again = [f.source for f, __ in rule_sources(program)]
        assert once == again

    def test_compile_cache_returns_same_code_object(self):
        plan = plan_rule(transitive_closure_program().rules[1])
        source = render_plan(plan, name="_cache_probe")
        assert _compiled_code(source.source, source.name) is _compiled_code(
            source.source, source.name
        )

    def test_mode_validated(self):
        plan = plan_rule(transitive_closure_program().rules[0])
        with pytest.raises(ValueError, match="render mode"):
            render_plan(plan, mode="sideways")


class TestEdgeCases:
    def test_missing_constant_rejected_at_bind_time(self):
        x = Variable("x")
        rule = Rule(Atom("P", (x,)), [Atom("E", (Constant("ghost"), x))])
        source = render_plan(plan_rule(rule))
        store = IndexedDatabase({"E": {("a", "b")}})
        with pytest.raises(ValueError, match="ghost"):
            bind_plan(source, store, {})

    def test_constant_only_constraint_before_any_loop(self):
        """A constant-vs-constant constraint is planned before the first
        atom; the generated guard must end the plan, not ``continue``."""
        x, y = Variable("x"), Variable("y")
        rule = Rule(
            Atom("P", (x, y)),
            [Atom("E", (x, y)), Inequality(Constant("s"), Constant("t"))],
        )
        program = Program([rule], goal="P")
        g = path_graph(4).to_structure()
        same = g.with_constants({"s": "v0", "t": "v0"})
        differ = g.with_constants({"s": "v0", "t": "v1"})
        for structure in (same, differ):
            naive = evaluate(program, structure, method="naive")
            codegen = evaluate(program, structure, method="codegen")
            assert codegen.relations == naive.relations
        assert evaluate(program, same, method="codegen").goal_relation \
            == frozenset()

    def test_nullary_head(self):
        x, y = Variable("x"), Variable("y")
        program = Program(
            [Rule(Atom("Reached", ()), [Atom("E", (x, y))])],
            goal="Reached",
        )
        structure = path_graph(3).to_structure()
        naive = evaluate(program, structure, method="naive")
        codegen = evaluate(program, structure, method="codegen")
        assert codegen.relations == naive.relations
        assert codegen.goal_relation == frozenset({()})

    def test_fault_sites_census(self):
        """The codegen engine exposes the same three fault sites as the
        interpreter: rounds, rules, and (hoisted) probe hits."""
        structure = path_graph(6).to_structure()
        with census() as counts:
            result = evaluate(
                transitive_closure_program(), structure, method="codegen"
            )
        assert counts.hits("round") == result.iterations
        assert counts.hits("rule") == 2 * result.iterations
        assert counts.hits("probe") > 0
