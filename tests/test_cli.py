"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import dump_cnf, dump_digraph, dump_program
from repro.cnf import CnfFormula
from repro.datalog.library import transitive_closure_program
from repro.graphs import DiGraph


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "tc.dl"
    path.write_text(dump_program(transitive_closure_program()))
    return str(path)


@pytest.fixture
def path_graph_file(tmp_path):
    g = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
    path = tmp_path / "path.graph"
    path.write_text(dump_digraph(g))
    return str(path)


@pytest.fixture
def long_path_file(tmp_path):
    g = DiGraph(edges=[("u1", "u2"), ("u2", "u3"), ("u3", "u4"),
                       ("u4", "u5"), ("u5", "u6")])
    path = tmp_path / "long.graph"
    path.write_text(dump_digraph(g))
    return str(path)


class TestRun:
    def test_prints_relation(self, capsys, program_file, path_graph_file):
        assert main(["run", program_file, path_graph_file]) == 0
        out = capsys.readouterr().out
        assert "6 tuples" in out
        assert "a\td" in out

    def test_check_tuple(self, capsys, program_file, path_graph_file):
        assert main([
            "run", program_file, path_graph_file, "--check", "a", "c",
        ]) == 0
        assert main([
            "run", program_file, path_graph_file, "--check", "c", "a",
        ]) == 1


class TestGoalDirectedRun:
    """``run --bind`` / ``--magic``: the goal-directed query path."""

    def test_bind_filters_answers(self, capsys, program_file, path_graph_file):
        assert main([
            "run", program_file, path_graph_file, "--bind", "a", "d",
        ]) == 0
        out = capsys.readouterr().out
        assert "1 answers (direct" in out
        assert "a\td" in out

    def test_magic_derives_fewer_tuples(
        self, capsys, program_file, long_path_file
    ):
        assert main([
            "run", program_file, long_path_file,
            "--bind", "u1", "u6", "--magic",
        ]) == 0
        magic_out = capsys.readouterr().out
        assert main([
            "run", program_file, long_path_file, "--bind", "u1", "u6",
        ]) == 0
        direct_out = capsys.readouterr().out

        def derived(text):
            return int(text.splitlines()[0].rsplit("(", 1)[1].split()[1])

        assert "u1\tu6" in magic_out
        assert derived(magic_out) < derived(direct_out)

    def test_bind_free_positions(self, capsys, program_file, path_graph_file):
        assert main([
            "run", program_file, path_graph_file,
            "--bind", "a", "_", "--magic",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 answers" in out
        assert "a\tb" in out and "a\td" in out

    @pytest.mark.parametrize(
        "engine", ["naive", "seminaive", "indexed", "codegen", "algebra"]
    )
    def test_check_with_magic_per_engine(
        self, program_file, path_graph_file, engine
    ):
        assert main([
            "run", program_file, path_graph_file,
            "--engine", engine, "--magic", "--check", "a", "c",
        ]) == 0
        assert main([
            "run", program_file, path_graph_file,
            "--engine", engine, "--magic", "--check", "c", "a",
        ]) == 1

    def test_magic_alone_prints_full_relation(
        self, capsys, program_file, path_graph_file
    ):
        assert main([
            "run", program_file, path_graph_file, "--magic",
        ]) == 0
        assert "6 answers (magic" in capsys.readouterr().out

    def test_bind_arity_mismatch(self, capsys, program_file, path_graph_file):
        assert main([
            "run", program_file, path_graph_file, "--bind", "a",
        ]) == 2
        assert "--bind needs 2 entries" in capsys.readouterr().err

    def test_bind_unknown_node(self, capsys, program_file, path_graph_file):
        assert main([
            "run", program_file, path_graph_file, "--bind", "a", "zz",
        ]) == 2
        assert "not in the graph" in capsys.readouterr().err

    def test_bind_and_check_conflict(
        self, capsys, program_file, path_graph_file
    ):
        assert main([
            "run", program_file, path_graph_file,
            "--bind", "a", "d", "--check", "a", "d",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestGame:
    def test_player_two_wins(self, capsys, path_graph_file, long_path_file):
        assert main(["game", path_graph_file, long_path_file, "2"]) == 0
        assert "Player II wins" in capsys.readouterr().out

    def test_player_one_wins_with_separator(
        self, capsys, path_graph_file, long_path_file
    ):
        code = main([
            "game", long_path_file, path_graph_file, "2", "--separate",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "Player I wins" in out
        assert "separating L^2 sentence" in out

    def test_homomorphism_variant(self, capsys, tmp_path, long_path_file):
        cycle = tmp_path / "cycle.graph"
        cycle.write_text(dump_digraph(
            DiGraph(edges=[("x", "y"), ("y", "z"), ("z", "x")])
        ))
        assert main([
            "game", long_path_file, str(cycle), "2", "--homomorphism",
        ]) == 0
        assert "homomorphism" in capsys.readouterr().out


class TestClassify:
    def test_class_c_pattern(self, capsys, tmp_path):
        star = tmp_path / "star.graph"
        star.write_text("edge r u\nedge r v\n")
        assert main(["classify", str(star), "--program"]) == 0
        out = capsys.readouterr().out
        assert "class C: True" in out
        assert "PTIME" in out
        assert "Q_2_0" in out

    def test_h1_pattern(self, capsys, tmp_path):
        h1 = tmp_path / "h1.graph"
        h1.write_text("edge s1 s2\nedge s3 s4\n")
        assert main(["classify", str(h1)]) == 0
        out = capsys.readouterr().out
        assert "class C: False" in out
        assert "NP-complete" in out


class TestHomeo:
    def test_acyclic_instance(self, capsys, tmp_path):
        pattern = tmp_path / "p.graph"
        pattern.write_text("edge u v\n")
        graph = tmp_path / "g.graph"
        graph.write_text("edge a m\nedge m b\n")
        assert main([
            "homeo", str(pattern), str(graph), "--assign", "u=a", "v=b",
        ]) == 0
        out = capsys.readouterr().out
        assert "exact: True" in out
        assert "Player II" in out

    def test_negative_instance(self, capsys, tmp_path):
        pattern = tmp_path / "p.graph"
        pattern.write_text("edge u v\n")
        graph = tmp_path / "g.graph"
        graph.write_text("edge b a\n")
        assert main([
            "homeo", str(pattern), str(graph), "--assign", "u=a", "v=b",
        ]) == 1


class TestReduce:
    def test_satisfiable(self, capsys, tmp_path):
        cnf = tmp_path / "sat.cnf"
        cnf.write_text(dump_cnf(CnfFormula.parse("x1 | x1")))
        out_file = tmp_path / "gphi.graph"
        assert main(["reduce", str(cnf), "--output", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "SATISFIABLE" in out
        assert out_file.exists()
        from repro.io import load_digraph

        graph = load_digraph(out_file)
        assert len(graph) == 72

    def test_unsatisfiable(self, capsys, tmp_path):
        cnf = tmp_path / "unsat.cnf"
        cnf.write_text("p cnf 1 2\n1 0\n-1 0\n")
        assert main(["reduce", str(cnf)]) == 0
        assert "UNSATISFIABLE" in capsys.readouterr().out


class TestSelfcheck:
    def test_all_pass(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out
        assert "FAIL" not in out.replace("PASS", "")


class TestEngineOption:
    """Example 2.2 (transitive closure, ``program_file``) and Example 2.1
    (avoiding paths) end-to-end under each fixpoint engine."""

    @pytest.fixture
    def avoiding_file(self, tmp_path):
        from repro.datalog.library import avoiding_path_program

        path = tmp_path / "avoiding.dl"
        path.write_text(dump_program(avoiding_path_program()))
        return str(path)

    def test_algebra_engine(self, capsys, program_file, path_graph_file):
        assert main([
            "run", program_file, path_graph_file, "--engine", "algebra",
        ]) == 0
        assert "6 tuples" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "engine", ["naive", "seminaive", "indexed", "codegen"]
    )
    def test_transitive_closure_per_engine(
        self, capsys, program_file, path_graph_file, engine
    ):
        assert main([
            "run", program_file, path_graph_file, "--engine", engine,
        ]) == 0
        out = capsys.readouterr().out
        assert "6 tuples" in out
        assert "a\td" in out

    @pytest.mark.parametrize(
        "engine", ["naive", "seminaive", "indexed", "codegen"]
    )
    def test_avoiding_path_per_engine(
        self, capsys, avoiding_file, path_graph_file, engine
    ):
        assert main([
            "run", avoiding_file, path_graph_file, "--engine", engine,
        ]) == 0
        # A path a -> ... -> c avoiding d exists on the 4-node path.
        assert "a\tc\td" in capsys.readouterr().out

    def test_engines_print_identical_relations(
        self, capsys, avoiding_file, path_graph_file
    ):
        outputs = set()
        for engine in ["naive", "seminaive", "indexed", "codegen", "algebra"]:
            assert main([
                "run", avoiding_file, path_graph_file, "--engine", engine,
            ]) == 0
            outputs.add(capsys.readouterr().out)
        assert len(outputs) == 1

    def test_default_engine_is_indexed(self, program_file, path_graph_file):
        import repro.cli as cli_module

        parser = cli_module.build_parser()
        args = parser.parse_args(["run", program_file, path_graph_file])
        assert args.engine == "indexed"

    def test_check_tuple_per_engine(self, program_file, path_graph_file):
        for engine in ["naive", "seminaive", "indexed", "codegen"]:
            assert main([
                "run", program_file, path_graph_file,
                "--engine", engine, "--check", "a", "c",
            ]) == 0
            assert main([
                "run", program_file, path_graph_file,
                "--engine", engine, "--check", "c", "a",
            ]) == 1


class TestTable:
    def test_prints_dichotomy(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        assert "H1-two-disjoint-edges" in out
        assert "NP-complete" in out
        assert "Theorem 6.2" in out


class TestReduceDot:
    def test_dot_output(self, capsys, tmp_path):
        cnf = tmp_path / "sat.cnf"
        cnf.write_text("p cnf 1 1\n1 1 0\n")
        dot_file = tmp_path / "gphi.dot"
        assert main(["reduce", str(cnf), "--dot", str(dot_file)]) == 0
        content = dot_file.read_text()
        assert content.startswith('digraph "G_phi"')
        assert "color=red" in content  # routed satisfiable paths


class TestObservabilityFlags:
    def test_stats_prints_profile_and_counters(
        self, capsys, program_file, path_graph_file
    ):
        assert main(["run", program_file, path_graph_file, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "6 tuples" in captured.out
        err = captured.err
        assert "== profile (indexed engine) ==" in err
        assert "per-rule firings" in err
        assert "per-iteration deltas" in err
        assert "== stats ==" in err
        assert "datalog.rounds" in err
        assert "index.probes" in err

    @pytest.mark.parametrize(
        "engine", ["naive", "seminaive", "indexed", "codegen", "algebra"]
    )
    def test_stats_per_engine(
        self, capsys, program_file, path_graph_file, engine
    ):
        assert main([
            "run", program_file, path_graph_file,
            "--engine", engine, "--stats",
        ]) == 0
        err = capsys.readouterr().err
        assert "per-rule firings" in err
        assert "S(x, y) :- E(x, y)." in err

    def test_trace_writes_parseable_jsonl(
        self, capsys, tmp_path, program_file, path_graph_file
    ):
        from repro.obs.trace import load_span_tree

        trace_file = tmp_path / "trace.jsonl"
        assert main([
            "run", program_file, path_graph_file, "--trace", str(trace_file),
        ]) == 0
        assert "wrote" in capsys.readouterr().err
        with open(trace_file, encoding="utf-8") as handle:
            roots = load_span_tree(handle)
        assert [root.kind for root in roots] == ["evaluate"]
        kinds = {node.kind for node in roots[0].walk()}
        assert {"evaluate", "iteration", "rule"} <= kinds

    def test_stats_disabled_leaves_stderr_quiet(
        self, capsys, program_file, path_graph_file
    ):
        assert main(["run", program_file, path_graph_file]) == 0
        assert capsys.readouterr().err == ""

    def test_run_accepts_library_program_names(
        self, capsys, path_graph_file
    ):
        assert main([
            "run", "transitive-closure", path_graph_file,
        ]) == 0
        assert "6 tuples" in capsys.readouterr().out


class TestExplainCommand:
    def test_library_program(self, capsys):
        assert main(["explain", "transitive-closure"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN transitive-closure: goal S")
        assert "full plan (round 1):" in out
        assert "delta plan (dS at body atom" in out

    def test_program_file(self, capsys, program_file):
        assert main(["explain", program_file]) == 0
        assert "scan  E(x, y)" in capsys.readouterr().out

    def test_list_names(self, capsys):
        assert main(["explain", "--list"]) == 0
        names = capsys.readouterr().out.split()
        assert "transitive-closure" in names
        assert "q-2-1" in names

    def test_every_library_name_renders(self, capsys):
        assert main(["explain", "--list"]) == 0
        for name in capsys.readouterr().out.split():
            assert main(["explain", name]) == 0, name
            assert f"EXPLAIN {name}" in capsys.readouterr().out

    def test_magic_adornment(self, capsys):
        assert main(["explain", "transitive-closure", "--magic", "bf"]) == 0
        out = capsys.readouterr().out
        assert out.startswith(
            "EXPLAIN MAGIC transitive-closure: goal atom S($g1, f2)"
        )
        assert "magic (demand) rules, seed first" in out
        assert "m__S__bf($g1)." in out
        assert "adorned rules, guarded" in out
        assert "EXPLAIN rewritten program: goal S__bf" in out

    def test_magic_bad_adornment(self, capsys):
        assert main(["explain", "transitive-closure", "--magic", "bbb"]) == 2
        assert "adornment" in capsys.readouterr().err

    def test_codegen_engine_prints_generated_source(self, capsys):
        assert main([
            "explain", "transitive-closure", "--engine", "codegen",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN CODEGEN transitive-closure: goal S")
        # Round-1 and delta-specialised functions for the recursive rule.
        assert "def _codegen_r1_full(" in out
        assert "def _codegen_r1_d1(" in out
        assert "for _r0 in _delta:" in out
        # The printed source is exactly what a run executes: it compiles.
        compile(
            "\n".join(
                line for line in out.splitlines()
                if not line.startswith(("EXPLAIN", "rule "))
            ),
            "<explain>", "exec",
        )

    def test_codegen_engine_composes_with_magic(self, capsys):
        assert main([
            "explain", "transitive-closure", "--magic", "bf",
            "--engine", "codegen",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith(
            "EXPLAIN CODEGEN transitive-closure (magic rewrite)"
        )
        assert "def _codegen_r0_full(" in out


class TestErrorContract:
    """Every user-input failure: exit code 2, one ``repro: error:`` line."""

    def _assert_error(self, capsys, argv, needle):
        assert main(argv) == 2
        err = capsys.readouterr().err
        error_lines = [
            line for line in err.splitlines()
            if line.startswith("repro: error: ")
        ]
        assert len(error_lines) == 1
        assert needle in error_lines[0]

    def test_unknown_program_name(self, capsys, path_graph_file):
        self._assert_error(
            capsys,
            ["run", "no-such-program", path_graph_file],
            "unknown program 'no-such-program'",
        )

    def test_unknown_engine(self, capsys, program_file, path_graph_file):
        self._assert_error(
            capsys,
            ["run", program_file, path_graph_file, "--engine", "warp"],
            "unknown engine 'warp'",
        )

    def test_missing_graph_file(self, capsys, program_file, tmp_path):
        self._assert_error(
            capsys,
            ["run", program_file, str(tmp_path / "missing.graph")],
            "cannot read",
        )

    def test_malformed_graph(self, capsys, program_file, tmp_path):
        bad = tmp_path / "bad.graph"
        bad.write_text("this is not a graph line\n")
        self._assert_error(
            capsys, ["run", program_file, str(bad)], "expected",
        )

    def test_malformed_assignment(self, capsys, tmp_path):
        pattern = tmp_path / "p.graph"
        pattern.write_text("edge u v\n")
        graph = tmp_path / "g.graph"
        graph.write_text("edge a b\n")
        self._assert_error(
            capsys,
            ["homeo", str(pattern), str(graph), "--assign", "nonsense"],
            "malformed assignment",
        )

    def test_explain_unknown_program(self, capsys):
        self._assert_error(
            capsys, ["explain", "no-such-program"], "unknown program",
        )

    def test_explain_without_program(self, capsys):
        self._assert_error(capsys, ["explain"], "use --list")


class TestCertificate:
    def test_h1_certificate(self, capsys):
        assert main([
            "certificate", "1", "--simulate", "3", "--rounds", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "survived 3/3" in out

    def test_h3_certificate(self, capsys):
        assert main([
            "certificate", "1", "--pattern", "H3",
            "--simulate", "2", "--rounds", "50",
        ]) == 0
        assert "H3" in capsys.readouterr().out


class TestMaintain:
    @pytest.fixture
    def script_file(self, tmp_path):
        path = tmp_path / "updates.txt"
        path.write_text(
            "% grow, then cut the only route through b\n"
            "insert E d a\n"
            "delete E a b\n"
        )
        return str(path)

    def test_inline_insert_and_delete(self, capsys, path_graph_file):
        assert main([
            "maintain", "transitive-closure", path_graph_file,
            "--insert", "E", "d", "a", "--delete", "E", "a", "b",
        ]) == 0
        out = capsys.readouterr().out
        assert "initial fixpoint: 6 S tuples" in out
        assert "insert E(d, a)" in out
        assert "delete E(a, b)" in out
        assert "overdeleted=" in out and "rederived=" in out

    def test_script_replay_with_verify(
        self, capsys, path_graph_file, script_file
    ):
        assert main([
            "maintain", "transitive-closure", path_graph_file,
            "--script", script_file, "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("verify: OK") == 2
        assert "MISMATCH" not in out

    def test_final_relation_matches_scratch(
        self, capsys, program_file, path_graph_file
    ):
        # After inserting d->a the path graph becomes a 4-cycle: the
        # closure is all 16 pairs.
        assert main([
            "maintain", program_file, path_graph_file,
            "--insert", "E", "d", "a",
        ]) == 0
        out = capsys.readouterr().out
        assert "final S: 16 tuples" in out

    def test_no_updates_is_an_error(self, capsys, path_graph_file):
        assert main([
            "maintain", "transitive-closure", path_graph_file,
        ]) == 2
        assert "at least one update" in capsys.readouterr().err

    def test_non_edb_update_is_an_error(self, capsys, path_graph_file):
        assert main([
            "maintain", "transitive-closure", path_graph_file,
            "--insert", "S", "a", "b",
        ]) == 2
        assert "not an EDB predicate" in capsys.readouterr().err

    def test_unknown_node_is_an_error(self, capsys, path_graph_file):
        assert main([
            "maintain", "transitive-closure", path_graph_file,
            "--delete", "E", "a", "zz",
        ]) == 2
        assert "universe" in capsys.readouterr().err

    def test_malformed_script_is_located(self, capsys, tmp_path,
                                         path_graph_file):
        script = tmp_path / "bad.txt"
        script.write_text("insert E a b\nfrobnicate E a b\n")
        assert main([
            "maintain", "transitive-closure", path_graph_file,
            "--script", str(script),
        ]) == 2
        assert "line 2" in capsys.readouterr().err

    def test_stats_exposes_incremental_counters(
        self, capsys, path_graph_file
    ):
        assert main([
            "maintain", "transitive-closure", path_graph_file,
            "--insert", "E", "d", "a", "--stats",
        ]) == 0
        err = capsys.readouterr().err
        assert "incremental.inserts" in err
        assert "incremental.delta_tuples_touched" in err

    def test_trace_records_update_spans(self, capsys, tmp_path,
                                        path_graph_file):
        import json

        trace_file = tmp_path / "trace.jsonl"
        assert main([
            "maintain", "transitive-closure", path_graph_file,
            "--insert", "E", "d", "a", "--delete", "E", "a", "b",
            "--trace", str(trace_file),
        ]) == 0
        kinds = [
            json.loads(line)["kind"]
            for line in trace_file.read_text().splitlines()
        ]
        assert "incremental.insert" in kinds
        assert "incremental.delete" in kinds


class TestResourceGovernance:
    """``--timeout`` / ``--max-iterations`` / ``--max-tuples`` and the
    exit-3 partial-result contract (see repro.guard)."""

    def test_budget_trip_exits_3_with_summary(
        self, capsys, program_file, path_graph_file
    ):
        assert main([
            "run", program_file, path_graph_file, "--max-iterations", "1",
        ]) == 3
        captured = capsys.readouterr()
        assert "budget exhausted: max_iterations limit 1" in captured.err
        assert "completed 1 rounds" in captured.err
        assert "derived" in captured.err
        assert "PARTIAL" in captured.out
        assert "sound under-approximation" in captured.out

    def test_partial_rows_are_a_subset(
        self, capsys, program_file, path_graph_file
    ):
        assert main(["run", program_file, path_graph_file]) == 0
        full = set(capsys.readouterr().out.splitlines()[1:])
        assert main([
            "run", program_file, path_graph_file, "--max-tuples", "2",
        ]) == 3
        partial_out = capsys.readouterr().out
        partial = set(partial_out.splitlines()[1:])
        assert partial and partial < full

    def test_generous_budget_exits_0(self, capsys, program_file,
                                     path_graph_file):
        assert main([
            "run", program_file, path_graph_file,
            "--timeout", "600", "--max-iterations", "100000",
        ]) == 0

    def test_budget_trip_per_engine(self, capsys, program_file,
                                    path_graph_file):
        for engine in ("indexed", "codegen", "seminaive", "naive", "algebra"):
            assert main([
                "run", program_file, path_graph_file,
                "--engine", engine, "--max-iterations", "1",
            ]) == 3, engine
            capsys.readouterr()

    def test_goal_directed_budget_trip(self, capsys, program_file,
                                       path_graph_file):
        assert main([
            "run", program_file, path_graph_file,
            "--bind", "a", "_", "--magic", "--max-iterations", "1",
        ]) == 3
        assert "budget exhausted" in capsys.readouterr().err

    def test_negative_budget_rejected(self, capsys, program_file,
                                      path_graph_file):
        assert main([
            "run", program_file, path_graph_file, "--max-tuples", "-5",
        ]) == 2
        assert "non-negative" in capsys.readouterr().err


class TestCheckpointResume:
    """``run --checkpoint`` / ``--resume`` and the maintain analogues."""

    def test_checkpoint_then_resume_completes(
        self, capsys, tmp_path, program_file, path_graph_file
    ):
        ck = str(tmp_path / "ck.pkl")
        assert main([
            "run", program_file, path_graph_file,
            "--max-iterations", "1", "--checkpoint", ck,
        ]) == 3
        assert "wrote checkpoint" in capsys.readouterr().err
        assert main([
            "run", program_file, path_graph_file, "--resume", ck,
        ]) == 0
        resumed_out = capsys.readouterr().out
        assert "resumed from round 1" in resumed_out
        assert main(["run", program_file, path_graph_file]) == 0
        full_out = capsys.readouterr().out
        assert (
            sorted(resumed_out.splitlines()[1:])
            == sorted(full_out.splitlines()[1:])
        )

    def test_resume_against_wrong_graph_exits_2(
        self, capsys, tmp_path, program_file, path_graph_file,
        long_path_file,
    ):
        ck = str(tmp_path / "ck.pkl")
        assert main([
            "run", program_file, path_graph_file,
            "--max-iterations", "1", "--checkpoint", ck,
        ]) == 3
        capsys.readouterr()
        assert main([
            "run", program_file, long_path_file, "--resume", ck,
        ]) == 2
        assert "different extensional database" in capsys.readouterr().err

    def test_corrupt_checkpoint_exits_2(self, capsys, tmp_path,
                                        program_file, path_graph_file):
        bad = tmp_path / "bad.pkl"
        bad.write_bytes(b"garbage")
        assert main([
            "run", program_file, path_graph_file, "--resume", str(bad),
        ]) == 2
        assert "not a readable checkpoint" in capsys.readouterr().err

    def test_resume_refuses_algebra_and_goal_directed(
        self, capsys, tmp_path, program_file, path_graph_file
    ):
        ck = str(tmp_path / "ck.pkl")
        assert main([
            "run", program_file, path_graph_file,
            "--max-iterations", "1", "--checkpoint", ck,
        ]) == 3
        capsys.readouterr()
        assert main([
            "run", program_file, path_graph_file,
            "--engine", "algebra", "--resume", ck,
        ]) == 2
        assert "resumable engine" in capsys.readouterr().err
        assert main([
            "run", program_file, path_graph_file,
            "--bind", "a", "_", "--resume", ck,
        ]) == 2
        assert "--bind/--magic" in capsys.readouterr().err

    def test_maintain_abort_checkpoint_resume(
        self, capsys, tmp_path, program_file, path_graph_file
    ):
        script = tmp_path / "updates.txt"
        script.write_text(
            "insert E d a\ndelete E a b\ninsert E a c\n"
        )
        ck = str(tmp_path / "maint.pkl")
        # Reference: ungoverned replay of the whole script.
        assert main([
            "maintain", program_file, str(path_graph_file),
            "--script", str(script), "--verify",
        ]) == 0
        reference_out = capsys.readouterr().out
        reference_final = reference_out.split("% final", 1)[1]
        # Governed replay aborts mid-script with a rolled-back session.
        assert main([
            "maintain", program_file, str(path_graph_file),
            "--script", str(script), "--max-iterations", "12",
            "--checkpoint", ck,
        ]) == 3
        err = capsys.readouterr().err
        assert "ABORTED" in err
        assert "rolled back" in err
        assert "wrote maintenance checkpoint" in err
        # Resume finishes the remaining updates; --verify passes and the
        # final relation matches the uninterrupted replay.
        assert main([
            "maintain", program_file, str(path_graph_file),
            "--script", str(script), "--resume", ck, "--verify",
        ]) == 0
        resumed_out = capsys.readouterr().out
        assert "resumed from" in resumed_out
        assert resumed_out.split("% final", 1)[1] == reference_final

    def test_maintain_resume_wrong_program_exits_2(
        self, capsys, tmp_path, program_file, path_graph_file
    ):
        from repro.datalog.library import avoiding_path_program

        script = tmp_path / "updates.txt"
        script.write_text("insert E d a\ndelete E a b\n")
        ck = str(tmp_path / "maint.pkl")
        assert main([
            "maintain", program_file, path_graph_file,
            "--script", str(script), "--max-iterations", "12",
            "--checkpoint", ck,
        ]) == 3
        capsys.readouterr()
        other = tmp_path / "other.dl"
        other.write_text(dump_program(avoiding_path_program()))
        assert main([
            "maintain", str(other), path_graph_file,
            "--script", str(script), "--resume", ck,
        ]) == 2
        assert "different program" in capsys.readouterr().err


class TestExplainAnalyze:
    """``repro explain PROGRAM GRAPH --analyze`` and ``run --analyze``."""

    def test_explain_analyze_annotates_the_plans(
        self, capsys, program_file, path_graph_file
    ):
        assert main([
            "explain", program_file, path_graph_file, "--analyze",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN ANALYZE")
        assert "rows in=" in out
        assert "<-- hottest" in out

    def test_explain_analyze_codegen_engine(
        self, capsys, program_file, path_graph_file
    ):
        assert main([
            "explain", program_file, path_graph_file,
            "--analyze", "--engine", "codegen",
        ]) == 0
        assert "engine codegen" in capsys.readouterr().out

    def test_graph_without_analyze_is_an_error(
        self, capsys, program_file, path_graph_file
    ):
        assert main(["explain", program_file, path_graph_file]) == 2
        assert "add --analyze" in capsys.readouterr().err

    def test_analyze_without_graph_is_an_error(self, capsys, program_file):
        assert main(["explain", program_file, "--analyze"]) == 2
        assert "needs a graph" in capsys.readouterr().err

    def test_analyze_does_not_combine_with_magic(
        self, capsys, program_file, path_graph_file
    ):
        assert main([
            "explain", program_file, path_graph_file,
            "--analyze", "--magic", "bf",
        ]) == 2
        assert "--magic" in capsys.readouterr().err

    def test_run_analyze_prints_on_stderr(
        self, capsys, program_file, path_graph_file
    ):
        assert main([
            "run", program_file, path_graph_file, "--analyze",
        ]) == 0
        captured = capsys.readouterr()
        assert "EXPLAIN ANALYZE" in captured.err
        assert "EXPLAIN ANALYZE" not in captured.out  # stdout stays clean
        assert "tuples" in captured.out

    def test_run_analyze_json_artifact(
        self, capsys, tmp_path, program_file, path_graph_file
    ):
        import json as json_module

        out = tmp_path / "analyze.json"
        assert main([
            "run", program_file, path_graph_file,
            "--engine", "codegen", "--analyze-json", str(out),
        ]) == 0
        capsys.readouterr()
        document = json_module.loads(out.read_text())
        assert document["engine"] == "codegen"
        assert document["total_rows_processed"] > 0

    def test_run_analyze_rejects_set_engines(
        self, capsys, program_file, path_graph_file
    ):
        assert main([
            "run", program_file, path_graph_file,
            "--analyze", "--engine", "naive",
        ]) == 2
        assert "plan engine" in capsys.readouterr().err

    def test_goal_directed_run_analyze(
        self, capsys, program_file, path_graph_file
    ):
        assert main([
            "run", program_file, path_graph_file,
            "--bind", "a", "_", "--magic", "--analyze",
        ]) == 0
        captured = capsys.readouterr()
        assert "EXPLAIN ANALYZE" in captured.err
        assert "answers (magic" in captured.out


class TestProfileCommand:
    def test_profile_run_prints_the_table(
        self, capsys, program_file, path_graph_file
    ):
        assert main(["profile", "run", program_file, path_graph_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("PROFILE")
        assert "excl %" in out
        assert "evaluate" in out and "iteration" in out

    def test_profile_from_exported_trace(
        self, capsys, tmp_path, program_file, path_graph_file
    ):
        trace = tmp_path / "run.jsonl"
        assert main([
            "run", program_file, path_graph_file, "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["profile", "--from", str(trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("PROFILE")
        assert "rule" in out

    def test_profile_from_maintenance_trace(
        self, capsys, tmp_path, program_file, path_graph_file
    ):
        trace = tmp_path / "maintain.jsonl"
        assert main([
            "maintain", program_file, path_graph_file,
            "--insert", "E", "d", "a", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["profile", "--from", str(trace)]) == 0
        assert "incremental" in capsys.readouterr().out

    def test_profile_without_source_is_an_error(self, capsys):
        assert main(["profile"]) == 2
        assert "profile needs" in capsys.readouterr().err

    def test_profile_missing_trace_file_exits_2(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["profile", "--from", missing]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_profile_run_honours_the_budget(
        self, capsys, program_file, long_path_file
    ):
        assert main([
            "profile", "run", program_file, long_path_file,
            "--max-iterations", "2",
        ]) == 3
        captured = capsys.readouterr()
        assert "budget exhausted" in captured.err
        # The spans collected before the trip still profile.
        assert "PROFILE" in captured.out


class TestBenchCommand:
    def _document(self, tmp_path, name, wall):
        import json as json_module

        from repro.obs.bench import make_document

        row = {
            "name": "tc", "params": {"n": 4}, "engine": "indexed",
            "wall_ms": wall, "counters": {"rounds": 4}, "analyze": None,
        }
        path = tmp_path / name
        path.write_text(json_module.dumps(make_document("cli", [row])))
        return str(path)

    def test_report_renders_rows(self, capsys, tmp_path):
        path = self._document(tmp_path, "BENCH_a.json", 5.0)
        assert main(["bench", "report", path]) == 0
        out = capsys.readouterr().out
        assert "schema 2" in out
        assert "tc|indexed|" in out

    def test_compare_identical_exits_0(self, capsys, tmp_path):
        path = self._document(tmp_path, "BENCH_a.json", 5.0)
        assert main(["bench", "compare", path, path]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_compare_synthetic_2x_regression_exits_1(
        self, capsys, tmp_path
    ):
        old = self._document(tmp_path, "old.json", 5.0)
        new = self._document(tmp_path, "new.json", 10.0)
        assert main(["bench", "compare", old, new]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "FAIL: 1 regression(s)" in out

    def test_compare_counters_mode_ignores_wall(self, capsys, tmp_path):
        old = self._document(tmp_path, "old.json", 5.0)
        new = self._document(tmp_path, "new.json", 10.0)
        assert main([
            "bench", "compare", old, new, "--mode", "counters",
        ]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_compare_threshold_is_tunable(self, capsys, tmp_path):
        old = self._document(tmp_path, "old.json", 5.0)
        new = self._document(tmp_path, "new.json", 10.0)
        assert main([
            "bench", "compare", old, new, "--threshold", "3.0",
        ]) == 0
        capsys.readouterr()

    def test_garbage_artifact_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        assert main(["bench", "report", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestExportErrorContract:
    """Unwritable --trace/--stats-json/--analyze-json: one line, exit 2."""

    def test_unwritable_trace_fails_before_running(
        self, capsys, program_file, path_graph_file, tmp_path
    ):
        bad = str(tmp_path / "no" / "such" / "dir" / "t.jsonl")
        assert main([
            "run", program_file, path_graph_file, "--trace", bad,
        ]) == 2
        captured = capsys.readouterr()
        assert "repro: error: cannot write --trace" in captured.err
        assert "Traceback" not in captured.err
        # Validated up front: the evaluation never ran.
        assert "tuples" not in captured.out

    def test_unwritable_stats_json_exits_2(
        self, capsys, program_file, path_graph_file, tmp_path
    ):
        assert main([
            "run", program_file, path_graph_file,
            "--stats-json", str(tmp_path),  # a directory is unwritable
        ]) == 2
        err = capsys.readouterr().err
        assert "cannot write --stats-json" in err
        assert "Traceback" not in err

    def test_unwritable_analyze_json_exits_2(
        self, capsys, program_file, path_graph_file, tmp_path
    ):
        bad = str(tmp_path / "missing" / "analyze.json")
        assert main([
            "run", program_file, path_graph_file, "--analyze-json", bad,
        ]) == 2
        assert "cannot write --analyze-json" in capsys.readouterr().err

    def test_stats_json_writes_the_snapshot(
        self, capsys, tmp_path, program_file, path_graph_file
    ):
        import json as json_module

        out = tmp_path / "stats.json"
        assert main([
            "run", program_file, path_graph_file,
            "--stats-json", str(out),
        ]) == 0
        capsys.readouterr()
        snapshot = json_module.loads(out.read_text())
        assert snapshot["counters"]["datalog.rounds"] > 0

    def test_stats_histogram_line_has_quantiles(self, capsys):
        from repro.cli import _print_stats
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        for value in (1, 2, 3, 10):
            registry.observe("flow.augmenting_path_length", value)
        _print_stats(registry.snapshot())
        err = capsys.readouterr().err
        assert "histogram" in err
        assert "p50=2" in err and "p95=10" in err and "p99=10" in err


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        from repro._version import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"
