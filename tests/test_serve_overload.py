"""Graceful degradation: bounded queues, shedding, slow subscribers.

These tests drive a :class:`ReproServer` on the test's own event loop
(raw ``asyncio`` streams, no background thread) because overload
scenarios need exact control over task interleaving: the writer is
paused via the test seam, queues are filled to a known depth, and only
then is the next request admitted.  Everything asserted here is
deterministic -- no sleeps, no races.

Covered:

* a full writer queue rejects updates with the structured
  ``overloaded`` error carrying ``retry_after_ms`` (scaled by the
  backlog) while the connection lives on and the queued work drains;
* a retried in-flight update (same ``rid`` while the original is
  still queued) shares the original's writer future -- applied once,
  answered twice, the retry marked ``deduped``;
* a subscriber whose outbox hits ``max_outbox`` stops receiving
  deltas (dropped, not queued) and is healed with exactly one
  ``resync`` event (reason ``"evicted"``) once it has room again.
"""

import asyncio
import json

from tests.serve_utils import tc_view

from repro.serve.server import ReproServer

EDGES = [("a", "b"), ("b", "c"), ("c", "d")]


class _Wire:
    """A minimal asyncio client: one request line, one response line."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self._next_id = 0

    @classmethod
    async def open(cls, server: ReproServer) -> "_Wire":
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        return cls(reader, writer)

    def send(self, op: str, **fields) -> int:
        self._next_id += 1
        message = {"op": op, "id": self._next_id, **fields}
        self.writer.write((json.dumps(message) + "\n").encode())
        return self._next_id

    async def recv(self) -> dict:
        line = await asyncio.wait_for(self.reader.readline(), timeout=10)
        assert line, "server closed the connection"
        return json.loads(line)

    async def round_trip(self, op: str, **fields) -> dict:
        self.send(op, **fields)
        return await self.recv()

    def close(self) -> None:
        self.writer.close()


async def _start(view, **kwargs) -> ReproServer:
    server = ReproServer(view, port=0, **kwargs)
    await server.start()
    return server


async def _drain_to_queue_depth(server: ReproServer, depth: int) -> None:
    """Yield until the writer pipeline holds ``depth`` jobs."""
    for _ in range(1000):
        if server.queue_depth >= depth:
            return
        await asyncio.sleep(0)
    raise AssertionError(
        f"queue never reached depth {depth} (at {server.queue_depth})"
    )


def test_full_queue_sheds_with_retry_after_ms():
    async def main():
        server = await _start(tc_view(EDGES), max_queue=1)
        try:
            first = await _Wire.open(server)
            second = await _Wire.open(server)
            server.pause_writer()
            first.send("insert", predicate="E", rows=[["d", "a"]])
            await _drain_to_queue_depth(server, 1)

            response = await second.round_trip(
                "insert", predicate="E", rows=[["a", "c"]]
            )
            assert response["ok"] is False
            error = response["error"]
            assert error["code"] == "overloaded"
            assert error["retry_after_ms"] >= 25
            assert "capacity 1" in error["message"]
            assert server.stats.overloaded == 1

            # The shed connection lives on; once the writer drains the
            # backlog, the retry is admitted and applied.
            server.resume_writer()
            queued = await first.recv()
            assert queued["ok"] and queued["epoch"] == 1
            retried = await second.round_trip(
                "insert", predicate="E", rows=[["a", "c"]]
            )
            assert retried["ok"] and retried["epoch"] == 2
            first.close()
            second.close()
        finally:
            await server.stop()

    asyncio.run(main())


def test_retry_after_scales_with_backlog():
    async def main():
        server = await _start(tc_view(EDGES), max_queue=1)
        try:
            wires = [await _Wire.open(server) for _ in range(3)]
            server.pause_writer()
            wires[0].send("insert", predicate="E", rows=[["d", "a"]])
            await _drain_to_queue_depth(server, 1)
            # Reject twice without draining: the hint grows with depth?
            # Depth stays 1 (rejected jobs never enqueue), so the hint
            # is stable -- the scaling shows against capacity.
            r1 = await wires[1].round_trip(
                "insert", predicate="E", rows=[["a", "c"]]
            )
            r2 = await wires[2].round_trip(
                "insert", predicate="E", rows=[["a", "c"]]
            )
            assert (
                r1["error"]["retry_after_ms"]
                == r2["error"]["retry_after_ms"]
                == 25
            )
            server.resume_writer()
            await wires[0].recv()
            for wire in wires:
                wire.close()
        finally:
            await server.stop()

    asyncio.run(main())


def test_inflight_rid_retry_shares_the_original_future():
    async def main():
        server = await _start(tc_view(EDGES))
        try:
            original = await _Wire.open(server)
            retry = await _Wire.open(server)
            server.pause_writer()
            original.send(
                "insert", predicate="E", rows=[["d", "a"]], rid="dup"
            )
            await _drain_to_queue_depth(server, 1)
            retry.send(
                "insert", predicate="E", rows=[["d", "a"]], rid="dup"
            )
            # Both handlers now await one writer future.
            server.resume_writer()
            first = await original.recv()
            second = await retry.recv()
            assert first["ok"] and second["ok"]
            assert first["epoch"] == second["epoch"] == 1
            assert "deduped" not in first
            assert second["deduped"] is True
            # Applied exactly once: the epoch moved by one.
            ping = await original.round_trip("ping")
            assert ping["epoch"] == 1
            assert server.stats.deduped == 1
            original.close()
            retry.close()
        finally:
            await server.stop()

    asyncio.run(main())


def test_slow_subscriber_is_evicted_to_resync():
    async def main():
        server = await _start(tc_view(EDGES), max_outbox=1)
        try:
            subscriber = await _Wire.open(server)
            writer = await _Wire.open(server)
            response = await subscriber.round_trip("subscribe")
            assert response["ok"]

            # One multi-row update applies its rows back-to-back with
            # no awaits, so the subscriber's sender task cannot drain
            # between epochs: delta 1 occupies the outbox (capacity 1)
            # and deltas 2..4 are dropped, marking the eviction.
            done = await writer.round_trip(
                "insert",
                predicate="E",
                rows=[["d", "a"], ["a", "c"], ["b", "d"], ["d", "c"]],
            )
            assert done["epoch"] == 4
            assert server.stats.subscribers_evicted == 1

            # The next epoch heals the subscriber: one resync with the
            # full rows instead of the dropped deltas.
            await writer.round_trip(
                "delete", predicate="E", rows=[["d", "c"]]
            )
            delta1 = await subscriber.recv()
            assert delta1["event"] == "delta" and delta1["epoch"] == 1
            resync = await subscriber.recv()
            assert resync["event"] == "resync"
            assert resync["reason"] == "evicted"
            assert resync["epoch"] == 5
            query = await writer.round_trip("query")
            assert resync["rows"] == query["rows"]

            # Delta flow resumes normally afterwards.
            await writer.round_trip(
                "insert", predicate="E", rows=[["d", "c"]]
            )
            delta6 = await subscriber.recv()
            assert delta6["event"] == "delta" and delta6["epoch"] == 6
            subscriber.close()
            writer.close()
        finally:
            await server.stop()

    asyncio.run(main())


def test_unbounded_defaults_shed_nothing():
    async def main():
        server = await _start(tc_view(EDGES))
        try:
            # One connection handles requests serially, so a backlog
            # needs one wire per concurrently queued update.
            wires = [await _Wire.open(server) for _ in range(3)]
            server.pause_writer()
            rows = (["d", "a"], ["a", "c"], ["b", "d"])
            for wire, row in zip(wires, rows):
                wire.send("insert", predicate="E", rows=[row])
                await _drain_to_queue_depth(server, wires.index(wire) + 1)
            server.resume_writer()
            epochs = sorted(
                [(await wire.recv())["epoch"] for wire in wires]
            )
            assert epochs == [1, 2, 3]
            assert server.stats.overloaded == 0
            for wire in wires:
                wire.close()
        finally:
            await server.stop()

    asyncio.run(main())
