"""Resource-governed evaluation: budgets and cancellation per engine.

The contract under test (see :mod:`repro.guard`): a guarded run either
completes normally -- converging within its budget yields exactly the
unguarded result -- or raises :class:`BudgetExceeded` whose ``partial``
is a *sound under-approximation* of the least fixpoint (monotonicity:
every stage of the fixpoint iteration is contained in the fixpoint).
The soundness half is pinned differentially: for a seeded corpus of
random (program, structure) pairs and every round cutoff, the partial
relations are contained in the full run's relations.
"""

import random

import pytest

from repro.datalog import evaluate, evaluate_algebra
from repro.datalog.evaluation import METHODS, PartialFixpointResult
from repro.datalog.library import (
    q_program,
    transitive_closure_program,
)
from repro.graphs.generators import path_graph, random_digraph
from repro.guard import (
    BudgetExceeded,
    CancellationToken,
    EvaluationCancelled,
    ResourceBudget,
)
from tests.test_engine_differential import _random_program, _random_structure

TC = transitive_closure_program()
ALL_ENGINES = tuple(METHODS) + ("algebra",)


def _evaluate(method, program, structure, **kwargs):
    if method == "algebra":
        return evaluate_algebra(program, structure, **kwargs)
    return evaluate(program, structure, method=method, **kwargs)


class TestBudgetValidation:
    def test_negative_limits_rejected(self):
        for field in (
            "wall_seconds",
            "max_iterations",
            "max_tuples",
            "max_rule_firings",
        ):
            with pytest.raises(ValueError, match=field):
                ResourceBudget(**{field: -1})

    def test_unlimited(self):
        assert ResourceBudget().unlimited
        assert not ResourceBudget(max_iterations=3).unlimited


@pytest.mark.parametrize("method", ALL_ENGINES)
class TestLimitsPerEngine:
    """Every engine honours every limit kind and the exactness rule."""

    STRUCTURE = path_graph(8).to_structure()

    def test_iteration_limit_trips(self, method):
        with pytest.raises(BudgetExceeded) as info:
            _evaluate(
                method, TC, self.STRUCTURE,
                budget=ResourceBudget(max_iterations=2),
            )
        exc = info.value
        assert exc.reason == "max_iterations"
        assert exc.limit == 2
        assert isinstance(exc.partial, PartialFixpointResult)
        assert exc.partial.iterations == 2
        assert exc.spent["iterations"] == 2

    def test_exact_convergence_completes(self, method):
        full = _evaluate(method, TC, self.STRUCTURE)
        result = _evaluate(
            method, TC, self.STRUCTURE,
            budget=ResourceBudget(max_iterations=full.iterations),
        )
        assert result.relations == full.relations
        assert not isinstance(result, PartialFixpointResult)

    def test_tuple_limit_trips(self, method):
        with pytest.raises(BudgetExceeded) as info:
            _evaluate(
                method, TC, self.STRUCTURE,
                budget=ResourceBudget(max_tuples=3),
            )
        exc = info.value
        assert exc.reason == "max_tuples"
        assert exc.spent["tuples"] >= 3

    def test_rule_firing_limit_trips(self, method):
        with pytest.raises(BudgetExceeded) as info:
            _evaluate(
                method, TC, self.STRUCTURE,
                budget=ResourceBudget(max_rule_firings=1),
            )
        assert info.value.reason == "max_rule_firings"

    def test_expired_deadline_trips(self, method):
        with pytest.raises(BudgetExceeded) as info:
            _evaluate(
                method, TC, self.STRUCTURE,
                budget=ResourceBudget(wall_seconds=0.0),
            )
        exc = info.value
        assert exc.reason == "wall_seconds"
        assert exc.partial.iterations == 0
        assert exc.partial.goal_relation == frozenset()

    def test_pre_cancelled_token(self, method):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(EvaluationCancelled) as info:
            _evaluate(method, TC, self.STRUCTURE, cancellation=token)
        exc = info.value
        assert exc.reason == "cancelled"
        assert exc.limit is None
        assert exc.partial.iterations == 0

    def test_generous_budget_is_invisible(self, method):
        full = _evaluate(method, TC, self.STRUCTURE)
        guarded = _evaluate(
            method, TC, self.STRUCTURE,
            budget=ResourceBudget(
                wall_seconds=600, max_iterations=10**6, max_tuples=10**9
            ),
            cancellation=CancellationToken(),
        )
        assert guarded.relations == full.relations
        assert guarded.iterations == full.iterations


class TestPartialShape:
    """The partial result mirrors a full result's observables."""

    STRUCTURE = path_graph(7).to_structure()

    def test_partial_stages_prefix(self):
        full = evaluate(TC, self.STRUCTURE, collect_stages=True)
        with pytest.raises(BudgetExceeded) as info:
            evaluate(
                TC, self.STRUCTURE, collect_stages=True,
                budget=ResourceBudget(max_iterations=3),
            )
        partial = info.value.partial
        assert partial.stages == full.stages[:3]

    def test_partial_profile_prefix(self):
        full = evaluate(TC, self.STRUCTURE, collect_profile=True)
        with pytest.raises(BudgetExceeded) as info:
            evaluate(
                TC, self.STRUCTURE, collect_profile=True,
                budget=ResourceBudget(max_iterations=3),
            )
        partial = info.value.partial
        full_view = full.profile.semantic_view()
        partial_view = partial.profile.semantic_view()
        assert partial_view == full_view[:3]

    def test_partial_carries_trip_metadata(self):
        with pytest.raises(BudgetExceeded) as info:
            evaluate(
                TC, self.STRUCTURE,
                budget=ResourceBudget(max_iterations=1),
            )
        partial = info.value.partial
        assert partial.reason == "max_iterations"
        assert partial.limit == 1
        assert partial.spent == info.value.spent


class TestMidRoundCancellation:
    """The tick path notices cancellation inside a long round."""

    def test_cancel_via_sneaky_token(self):
        # A token that flips itself after N `cancelled` reads: the guard
        # polls it at boundaries and (strided) inside the join loops, so
        # the flip lands mid-run without threads.
        class FlippingToken(CancellationToken):
            def __init__(self, after):
                super().__init__()
                self.reads = 0
                self.after = after

            @property
            def cancelled(self):
                self.reads += 1
                if self.reads >= self.after:
                    self.cancel()
                return self._cancelled

        structure = random_digraph(12, 0.4, seed=7).to_structure()
        full = evaluate(q_program(2, 1), structure)
        token = FlippingToken(after=3)
        with pytest.raises(EvaluationCancelled) as info:
            evaluate(q_program(2, 1), structure, cancellation=token)
        partial = info.value.partial
        for predicate, rows in partial.relations.items():
            assert rows <= full.relations[predicate]


class TestPartialSoundness:
    """Differential acceptance: partials are sound under-approximations.

    For a seeded corpus of random (program, structure) pairs, every
    engine, and every iteration cutoff, the partial relations must be
    contained in the unguarded fixpoint -- and the cutoff at the exact
    iteration count must reproduce it.
    """

    def test_seeded_corpus(self):
        rng = random.Random(520)
        checked = 0
        for __ in range(40):
            program = _random_program(rng)
            structure = _random_structure(rng)
            full = evaluate(program, structure)
            for method in ALL_ENGINES:
                reference = _evaluate(method, program, structure)
                assert reference.relations == full.relations
                for cutoff in range(full.iterations):
                    try:
                        _evaluate(
                            method, program, structure,
                            budget=ResourceBudget(max_iterations=cutoff),
                        )
                    except BudgetExceeded as exc:
                        partial = exc.partial
                        assert partial.iterations == cutoff, (method, cutoff)
                        for predicate, rows in partial.relations.items():
                            assert rows <= full.relations[predicate], (
                                method, cutoff, predicate,
                            )
                        checked += 1
                    else:
                        pytest.fail(f"{method} ignored cutoff {cutoff}")
        assert checked >= 200  # the acceptance floor

    def test_tuple_budget_soundness(self):
        rng = random.Random(521)
        for __ in range(12):
            program = _random_program(rng)
            structure = _random_structure(rng)
            full = evaluate(program, structure)
            total = sum(len(rows) for rows in full.relations.values())
            for limit in (1, max(1, total // 2)):
                try:
                    evaluate(
                        program, structure,
                        budget=ResourceBudget(max_tuples=limit),
                    )
                except BudgetExceeded as exc:
                    for predicate, rows in exc.partial.relations.items():
                        assert rows <= full.relations[predicate]


class TestQueryBudget:
    """query() (goal-directed path) forwards the budget."""

    def test_magic_query_trips(self):
        from repro.datalog.ast import Atom, Variable
        from repro.datalog.evaluation import query

        structure = path_graph(9).to_structure()
        goal = Atom("S", (Variable("x"), Variable("y")))
        with pytest.raises(BudgetExceeded):
            query(
                TC, structure, goal, magic=True,
                budget=ResourceBudget(max_iterations=1),
            )

    def test_algebra_partial_has_no_checkpoint(self):
        with pytest.raises(BudgetExceeded) as info:
            evaluate_algebra(
                TC, path_graph(6).to_structure(),
                budget=ResourceBudget(max_iterations=1),
            )
        assert info.value.checkpoint is None
