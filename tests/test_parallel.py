"""Differential + property harness for the parallel sharded engine.

Pins :mod:`repro.datalog.parallel` against the indexed engine on every
observable the engines share -- final relations, goal relation, stage
sequence, iteration count, and the semantic profile view -- across

* a 200+-pair seeded random (program, structure) corpus (the same
  generator family as ``tests/test_engine_differential.py``), at
  ``workers`` in {1, 2, 4};
* every graph-vocabulary library program plus path-systems, at the
  same three worker counts;
* a metamorphic shard-count invariance sweep: the fixpoint is a pure
  function of (program, EDB), never of how deltas were partitioned.

Plus stdlib-only property tests for the hash partitioner (every row in
exactly one shard, unions round-trip, process-independent determinism)
in the style of the churn suites in ``tests/test_indexing.py``, and
counter-based (never wall-clock) observability checks for the
``parallel.*`` metrics, so nothing here can flake on a loaded runner.
"""

import random

import pytest

from repro.datalog import evaluate
from repro.datalog.ast import (
    Atom,
    Equality,
    Inequality,
    Program,
    Rule,
    Variable,
)
from repro.datalog.library import (
    avoiding_path_program,
    path_systems_program,
    q_program,
    q_program_as_displayed,
    rooted_star_homeomorphism_program,
    transitive_closure_program,
    two_disjoint_paths_from_source_program,
)
from repro.datalog.parallel import (
    partition_rows,
    shard_key_positions,
    shutdown_workers,
)
from repro.datalog.planner import plan_program_rules
from repro.graphs.generators import path_graph, random_digraph
from repro.obs import metrics as metrics_module
from repro.structures import Structure, Vocabulary

#: Seeded random (program, structure) pairs; acceptance bar is >= 200.
PAIR_COUNT = 210

#: Every differential assertion runs at each of these pool sizes
#: (1 = inline, no processes; 2 and 4 = the multiprocessing pool).
WORKER_COUNTS = (1, 2, 4)

_VARIABLES = tuple(Variable(name) for name in ("x", "y", "z", "u"))
_PREDICATES = {"E": (2, True), "P": (2, False), "R": (1, False)}


@pytest.fixture(scope="module", autouse=True)
def _pools_torn_down():
    yield
    shutdown_workers()


def _random_atom(rng, predicates):
    name = rng.choice(predicates)
    arity, __ = _PREDICATES[name]
    return Atom(name, tuple(rng.choice(_VARIABLES) for __ in range(arity)))


def _random_rule(rng):
    head_name = rng.choice(["P", "P", "R"])
    arity, __ = _PREDICATES[head_name]
    head = Atom(
        head_name, tuple(rng.choice(_VARIABLES) for __ in range(arity))
    )
    body = []
    for __ in range(rng.randint(1, 3)):
        body.append(_random_atom(rng, ["E", "E", "P", "R"]))
    for __ in range(rng.randint(0, 2)):
        left, right = rng.choice(_VARIABLES), rng.choice(_VARIABLES)
        constraint = Inequality if rng.random() < 0.8 else Equality
        body.append(constraint(left, right))
    rng.shuffle(body)
    return Rule(head, body)


def _random_program(rng):
    rules = [_random_rule(rng) for __ in range(rng.randint(1, 3))]
    rules.append(
        Rule(
            Atom("P", (_VARIABLES[0], _VARIABLES[1])),
            [Atom("E", (_VARIABLES[0], _VARIABLES[1]))],
        )
    )
    rules.append(
        Rule(
            Atom("R", (_VARIABLES[1],)),
            [Atom("E", (_VARIABLES[0], _VARIABLES[1]))],
        )
    )
    return Program(rules, goal="P")


def _random_structure(rng):
    nodes = rng.randint(3, 5)
    return random_digraph(
        nodes, rng.uniform(0.15, 0.5), rng.randrange(10**6)
    ).to_structure()


def _indexed_reference(program, structure):
    return evaluate(
        program,
        structure,
        method="indexed",
        collect_stages=True,
        collect_profile=True,
    )


def _assert_parallel_matches(
    program, structure, reference, workers, shards=None
):
    result = evaluate(
        program,
        structure,
        method="parallel",
        collect_stages=True,
        collect_profile=True,
        workers=workers,
        shards=shards,
    )
    label = f"workers={workers} shards={shards}"
    assert result.relations == reference.relations, label
    assert result.goal_relation == reference.goal_relation, label
    assert result.stages == reference.stages, label
    assert result.iterations == reference.iterations, label
    assert (
        result.profile.semantic_view()
        == reference.profile.semantic_view()
    ), label
    return result


class TestDifferentialCorpus:
    def test_random_corpus_matches_indexed_at_1_2_4_workers(self):
        """The acceptance corpus: 200+ seeded pairs, every observable
        equal to the indexed engine's, at each pool size."""
        rng = random.Random(20260808)
        for pair in range(PAIR_COUNT):
            program = _random_program(rng)
            structure = _random_structure(rng)
            reference = _indexed_reference(program, structure)
            for workers in WORKER_COUNTS:
                _assert_parallel_matches(
                    program, structure, reference, workers
                )

    def test_head_only_variables_corpus(self):
        """Universe-ranged head variables exercise the enumeration path
        of the generated functions under sharding."""
        rng = random.Random(17)
        for __ in range(25):
            free = rng.choice([v for v in _VARIABLES[2:]])
            head = Atom("P", (_VARIABLES[0], free))
            body = [Atom("E", (_VARIABLES[0], _VARIABLES[1]))]
            if rng.random() < 0.5:
                body.append(Inequality(free, _VARIABLES[0]))
            program = Program([Rule(head, body)], goal="P")
            structure = _random_structure(rng)
            reference = _indexed_reference(program, structure)
            for workers in WORKER_COUNTS:
                _assert_parallel_matches(
                    program, structure, reference, workers
                )


GRAPH_LIBRARY_PROGRAMS = {
    "transitive-closure": transitive_closure_program(),
    "avoiding-path": avoiding_path_program(),
    "two-disjoint-from-source": two_disjoint_paths_from_source_program(),
    "q-1-1": q_program(1, 1),
    "q-2-0": q_program(2, 0),
    "q-2-1": q_program(2, 1),
    "q-2-1-displayed": q_program_as_displayed(2, 1),
    "q-2-0-reversed": q_program(2, 0, reverse=True),
    "star-2": rooted_star_homeomorphism_program(2),
    "star-1-loop": rooted_star_homeomorphism_program(1, self_loop=True),
    "star-0-loop": rooted_star_homeomorphism_program(0, self_loop=True),
}


class TestLibraryPrograms:
    @pytest.mark.parametrize("name", sorted(GRAPH_LIBRARY_PROGRAMS))
    def test_library_program_matches_indexed(self, name):
        program = GRAPH_LIBRARY_PROGRAMS[name]
        structures = [
            path_graph(5).to_structure(),
            random_digraph(5, 0.35, seed=1, loops=True).to_structure(),
            random_digraph(6, 0.25, seed=4).to_structure(),
        ]
        for structure in structures:
            reference = _indexed_reference(program, structure)
            for workers in WORKER_COUNTS:
                _assert_parallel_matches(
                    program, structure, reference, workers
                )

    def test_path_systems_matches_indexed(self):
        rng = random.Random(5)
        nodes = list(range(10))
        voc = Vocabulary({"Axiom": 1, "Rule": 3})
        for __ in range(3):
            axioms = rng.sample(nodes, 2)
            rules = [
                tuple(rng.choice(nodes) for __ in range(3))
                for __ in range(12)
            ]
            structure = Structure(
                voc, nodes, {"Axiom": [(a,) for a in axioms], "Rule": rules}
            )
            program = path_systems_program()
            reference = _indexed_reference(program, structure)
            for workers in WORKER_COUNTS:
                _assert_parallel_matches(
                    program, structure, reference, workers
                )


class TestShardInvariance:
    """Metamorphic: the fixpoint never depends on the partition count.

    Shard merges are set unions, so any hash partition of the delta
    yields the same rounds -- varying ``shards`` independently of
    ``workers`` must change nothing, including the stage sequence and
    the semantic profile."""

    def test_shard_count_sweep(self):
        program = q_program(2, 1)
        structure = random_digraph(7, 0.3, seed=23).to_structure()
        reference = _indexed_reference(program, structure)
        for workers, shards in [
            (1, 2), (1, 5), (2, 1), (2, 3), (2, 7), (4, 2), (4, 9),
        ]:
            _assert_parallel_matches(
                program, structure, reference, workers, shards
            )

    def test_shard_sweep_on_random_programs(self):
        rng = random.Random(404)
        for __ in range(12):
            program = _random_program(rng)
            structure = _random_structure(rng)
            reference = _indexed_reference(program, structure)
            for shards in (1, 2, 4, 5):
                _assert_parallel_matches(
                    program, structure, reference, 2, shards
                )


class TestPartitioner:
    """Stdlib property loop for :func:`partition_rows` (churn-style,
    like ``tests/test_indexing.py``)."""

    def _random_relation(self, rng):
        arity = rng.randint(1, 3)
        size = rng.randint(0, 60)
        universe = [f"n{i}" for i in range(rng.randint(1, 12))]
        return {
            tuple(rng.choice(universe) for __ in range(arity))
            for __ in range(size)
        }

    def test_every_row_in_exactly_one_shard_and_union_round_trips(self):
        rng = random.Random(8080)
        for trial in range(200):
            rows = self._random_relation(rng)
            arity = len(next(iter(rows))) if rows else 1
            shards = rng.randint(1, 8)
            positions = tuple(
                sorted(
                    rng.sample(range(arity), rng.randint(0, arity))
                )
            )
            buckets = partition_rows(rows, shards, positions)
            assert len(buckets) == shards, trial
            # Exactly one shard per row: the union has the original
            # size and bucket sizes sum to it (no loss, no duplicate).
            union = set().union(*buckets) if buckets else set()
            assert union == set(rows), trial
            assert sum(len(b) for b in buckets) == len(rows), trial

    def test_rows_sharing_the_key_share_the_shard(self):
        rng = random.Random(99)
        for __ in range(50):
            rows = self._random_relation(rng)
            if not rows:
                continue
            arity = len(next(iter(rows)))
            positions = (0,) if arity >= 1 else ()
            buckets = partition_rows(rows, 4, positions)
            shard_of = {}
            for index, bucket in enumerate(buckets):
                for row in bucket:
                    key = tuple(row[i] for i in positions)
                    assert shard_of.setdefault(key, index) == index

    def test_partition_is_deterministic_across_calls(self):
        rng = random.Random(3)
        rows = self._random_relation(rng)
        first = partition_rows(rows, 5, (0,))
        second = partition_rows(sorted(rows), 5, (0,))
        assert first == second

    def test_single_shard_short_circuits(self):
        rows = {("a", "b"), ("c", "d")}
        assert partition_rows(rows, 1, ()) == [rows]

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            partition_rows(set(), 0, ())


class TestShardKeyPositions:
    def test_tc_recursive_rule_keys_on_the_join_column(self):
        """S(x,y) :- E(x,z), S(z,y): the delta occurrence of S joins E
        on z = S's first argument, so the shard key is position 0."""
        program = transitive_closure_program()
        recursive = program.rules[1]
        plans = plan_program_rules(recursive, program.idb_predicates)
        assert len(plans) == 1
        assert shard_key_positions(plans[0]) == (0,)

    def test_keys_are_valid_positions_for_every_library_plan(self):
        for program in GRAPH_LIBRARY_PROGRAMS.values():
            for rule in program.rules:
                for plan in plan_program_rules(
                    rule, program.idb_predicates
                ):
                    delta_atom = rule.body_atoms()[plan.delta_atom_index]
                    positions = shard_key_positions(plan)
                    assert positions, (rule, plan.delta_atom_index)
                    assert all(
                        0 <= p < len(delta_atom.args) for p in positions
                    )


class TestObservability:
    """Counter-based checks only -- wall-clock comparisons for this
    engine live behind the bench harness's counters-mode gate
    (``repro bench compare --mode counters``), never in tier-1, so a
    loaded CI runner cannot flake them."""

    def _counters(self, workers):
        registry = metrics_module.MetricsRegistry()
        metrics_module.enable_metrics(registry)
        try:
            evaluate(
                transitive_closure_program(),
                path_graph(6).to_structure(),
                method="parallel",
                workers=workers,
            )
        finally:
            metrics_module.disable_metrics()
        return registry.snapshot()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_parallel_counters_emitted(self, workers):
        snapshot = self._counters(workers)
        counters = snapshot["counters"]
        assert counters["parallel.rounds"] == counters["datalog.rounds"]
        assert counters["parallel.shards"] > 0
        # Merge tuples are deduped deltas: exactly the derived tuples.
        assert (
            counters["parallel.merge_tuples"]
            == counters["datalog.delta_tuples"]
        )
        assert snapshot["gauges"]["parallel.workers"] == workers

    def test_pool_mode_reports_per_worker_timings(self):
        snapshot = self._counters(2)
        histograms = snapshot["histograms"]
        assert "parallel.worker_seconds" in histograms
        per_worker = [
            name
            for name in histograms
            if name.startswith("parallel.worker_seconds.")
        ]
        assert per_worker, sorted(histograms)


class TestValidation:
    def test_workers_rejected_for_other_engines(self):
        program = transitive_closure_program()
        structure = path_graph(3).to_structure()
        with pytest.raises(ValueError):
            evaluate(program, structure, method="indexed", workers=2)
        with pytest.raises(ValueError):
            evaluate(program, structure, method="codegen", shards=2)

    def test_nonpositive_counts_rejected(self):
        program = transitive_closure_program()
        structure = path_graph(3).to_structure()
        with pytest.raises(ValueError):
            evaluate(program, structure, method="parallel", workers=0)
        with pytest.raises(ValueError):
            evaluate(
                program, structure, method="parallel", workers=2, shards=0
            )

    def test_analyze_rejected(self):
        program = transitive_closure_program()
        structure = path_graph(3).to_structure()
        with pytest.raises(ValueError):
            evaluate(
                program, structure, method="parallel", collect_analyze=True
            )
