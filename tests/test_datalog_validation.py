"""Dedicated tests for the static program analysis."""

import pytest

from repro.datalog import analyze_program, parse_program
from repro.datalog.ast import Variable
from repro.datalog.library import (
    avoiding_path_program,
    q_program,
    transitive_closure_program,
    two_disjoint_paths_from_source_program,
)


class TestRecursionDetection:
    def test_direct_recursion(self):
        analysis = analyze_program(transitive_closure_program())
        assert analysis.recursive_predicates == {"S"}
        assert analysis.is_recursive

    def test_mutual_recursion(self):
        program = parse_program(
            """
            A(x, y) :- E(x, y).
            A(x, y) :- B(x, z), E(z, y).
            B(x, y) :- A(x, z), E(z, y).
            """,
            goal="A",
        )
        analysis = analyze_program(program)
        assert analysis.recursive_predicates == {"A", "B"}

    def test_non_recursive(self):
        program = parse_program(
            """
            A(x, y) :- E(x, y).
            B(x, y) :- A(x, z), A(z, y).
            """,
            goal="B",
        )
        analysis = analyze_program(program)
        assert not analysis.is_recursive
        assert ("B", "A") in analysis.dependency_edges
        assert ("A", "B") not in analysis.dependency_edges

    def test_layered_program_dependencies(self):
        analysis = analyze_program(two_disjoint_paths_from_source_program())
        assert ("Q", "T") in analysis.dependency_edges
        assert analysis.recursive_predicates == {"Q", "T"}


class TestWidthData:
    def test_translation_width_formula(self):
        analysis = analyze_program(transitive_closure_program())
        # l = 3 rule variables, r = 2 IDB arity.
        assert analysis.max_rule_variables == 3
        assert analysis.max_idb_arity == 2
        assert analysis.translation_width == 5

    def test_avoiding_path_width(self):
        analysis = analyze_program(avoiding_path_program())
        assert analysis.max_rule_variables == 4
        assert analysis.translation_width == 7


class TestUniverseEnumeration:
    def test_flagged_variables(self):
        program = parse_program("D(x, u) :- E(x, y).", goal="D")
        analysis = analyze_program(program)
        assert len(analysis.universe_enumerated) == 1
        __, unbound = analysis.universe_enumerated[0]
        assert unbound == {Variable("u")}

    def test_equality_binds(self):
        program = parse_program("D(x, u) :- E(x, y), u = y.", goal="D")
        analysis = analyze_program(program)
        assert not analysis.universe_enumerated

    def test_equality_chain_binds(self):
        program = parse_program(
            "D(x, u) :- E(x, y), v = y, u = v.", goal="D"
        )
        analysis = analyze_program(program)
        assert not analysis.universe_enumerated

    def test_inequality_does_not_bind(self):
        program = parse_program("D(x) :- E(x, y), x != u.", goal="D")
        analysis = analyze_program(program)
        assert analysis.universe_enumerated

    def test_q_base_rules_flagged(self):
        analysis = analyze_program(q_program(1, 2))
        flagged = {
            var.name
            for __, unbound in analysis.universe_enumerated
            for var in unbound
        }
        assert flagged == {"t1", "t2"}
