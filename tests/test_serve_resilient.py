"""The resilient client: reconnect, backoff, budget, exactly-once.

Two layers of tests:

* **Scripted-transport units** -- a fake ``client_factory`` drives
  :class:`ResilientClient` through connection failures and
  ``overloaded`` responses with an injected sleep recorder, proving
  the backoff schedule is a pure function of the seed (deterministic
  jitter), that the server's ``retry_after_ms`` hint floors the delay,
  and that the retry budget drains to :class:`RetryBudgetExhausted`.
* **Real-server integration** -- a lossy wrapper around the genuine
  :class:`ServeClient` simulates the classic lost-ack: the update is
  applied, the response is dropped, the client retries with the same
  rid -- and the update is applied exactly once.  Reconnection heals
  subscriptions via ``from_epoch`` backfill.

Also covers the satellite: transport failures surface as the
structured :class:`ServeConnectionError` (host/port/last-epoch), never
a raw ``ConnectionError``/``OSError`` -- while still *being* a
``ConnectionError`` so legacy call sites keep catching them.
"""

import random
import socket

import pytest

from repro.serve.client import (
    ResilientClient,
    RetryBudgetExhausted,
    ServeClient,
    ServeConnectionError,
    ServeError,
)

from tests.serve_utils import connect, running_server, tc_view

EDGES = [("a", "b"), ("b", "c"), ("c", "d")]


# ---------------------------------------------------------------------------
# Scripted transports
# ---------------------------------------------------------------------------


class _ScriptedClient:
    """A fake ServeClient: each verb call pops the next scripted step.

    A step is an exception instance (raised) or a dict (returned).
    The script is shared across reconnections via the factory closure.
    """

    def __init__(self, script, host, port, tenant=None, timeout=None):
        self._script = script
        self.host = host
        self.port = port
        self.last_epoch = 0
        self.calls = []

    def _step(self, op, *args, **fields):
        self.calls.append((op, fields))
        action = self._script.pop(0)
        if isinstance(action, Exception):
            raise action
        epoch = action.get("epoch")
        if isinstance(epoch, int):
            self.last_epoch = max(self.last_epoch, epoch)
        return action

    def __getattr__(self, op):
        if op.startswith("_"):
            raise AttributeError(op)
        return lambda *args, **kwargs: self._step(op, *args, **kwargs)

    def close(self):
        pass


def _factory(script, log=None):
    def make(host, port, tenant=None, timeout=None):
        client = _ScriptedClient(script, host, port, tenant, timeout)
        if log is not None:
            log.append(client)
        return client

    return make


def _expected_backoffs(seed, count, base=0.05, cap=2.0, hints=None):
    rng = random.Random(seed)
    delays = []
    for attempt in range(count):
        delay = min(cap, base * (2 ** attempt))
        delay *= 0.5 + rng.random() / 2
        if hints and hints[attempt] is not None:
            delay = max(delay, hints[attempt] / 1000.0)
        delays.append(delay)
    return delays


class TestScriptedRetries:
    def test_backoff_schedule_is_seed_deterministic(self):
        def run(seed):
            drop = lambda: ServeConnectionError("h", 1, 0, "drop")
            script = [drop(), drop(), drop(), {"ok": True, "epoch": 3}]
            slept = []
            client = ResilientClient(
                "h", 1, seed=seed, sleep=slept.append,
                client_factory=_factory(script),
            )
            assert client.ping() == {"ok": True, "epoch": 3}
            return slept, list(client.backoffs)

        slept_a, recorded_a = run(seed=11)
        slept_b, _ = run(seed=11)
        slept_c, _ = run(seed=12)
        assert slept_a == slept_b == _expected_backoffs(11, 3)
        assert slept_a != slept_c  # different seed, different jitter
        assert recorded_a == slept_a

    def test_overloaded_honours_retry_after_floor(self):
        overloaded = ServeError(
            "overloaded", "queue full", retry_after_ms=500
        )
        script = [overloaded, {"ok": True, "epoch": 1}]
        slept = []
        client = ResilientClient(
            "h", 1, seed=3, sleep=slept.append,
            client_factory=_factory(script),
        )
        assert client.ping()["ok"]
        # First backoff would be ~0.025-0.05s; the 500ms hint floors it.
        assert slept == _expected_backoffs(3, 1, hints=[500])
        assert slept[0] >= 0.5

    def test_budget_drains_deterministically_to_exhaustion(self):
        drop = lambda: ServeConnectionError("h", 1, 0, "down")
        script = [drop() for _ in range(20)]
        slept = []
        client = ResilientClient(
            "h", 1, seed=7, retry_budget=5, sleep=slept.append,
            client_factory=_factory(script),
        )
        with pytest.raises(RetryBudgetExhausted) as excinfo:
            client.ping()
        assert excinfo.value.budget == 5
        assert isinstance(excinfo.value.last_error, ServeConnectionError)
        assert client.retries_left == 0
        # Exactly budget sleeps happened, on the seeded schedule.
        assert slept == _expected_backoffs(7, 5)

    def test_non_overloaded_server_errors_do_not_retry(self):
        script = [ServeError("bad_request", "nope")]
        client = ResilientClient(
            "h", 1, seed=0, sleep=lambda _s: None,
            client_factory=_factory(script),
        )
        with pytest.raises(ServeError, match="bad_request"):
            client.ping()
        assert client.retries_left == client.retry_budget

    def test_reconnect_resubscribes_with_from_epoch(self):
        script = [
            {"ok": True, "predicate": "S", "epoch": 0},   # subscribe
            {"ok": True, "epoch": 4},                     # ping
            ServeConnectionError("h", 1, 4, "drop"),      # ping fails
            {"ok": True, "predicate": "S", "epoch": 4},   # re-subscribe
            {"ok": True, "epoch": 4},                     # ping retry
        ]
        made = []
        client = ResilientClient(
            "h", 1, seed=1, sleep=lambda _s: None,
            client_factory=_factory(script, made),
        )
        client.subscribe()
        client.ping()
        client.ping()
        assert len(made) == 2  # one reconnect
        resub_op, resub_fields = made[1].calls[0]
        assert resub_op == "subscribe"
        assert resub_fields == {"predicate": None, "from_epoch": 4}
        assert client.reconnects == 2

    def test_update_rids_are_stable_and_sequential(self):
        drop = ServeConnectionError("h", 1, 0, "drop")
        script = [
            drop,                                  # insert attempt 1
            {"ok": True, "epoch": 1},              # insert attempt 2
            {"ok": True, "epoch": 2},              # delete
        ]
        made = []
        client = ResilientClient(
            "h", 1, seed=9, sleep=lambda _s: None,
            client_factory=_factory(script, made),
        )
        client.insert("E", ["a", "b"])
        client.delete("E", ["a", "b"])
        calls = [call for made_client in made for call in made_client.calls]
        insert_rids = {
            fields["rid"] for op, fields in calls if op == "insert"
        }
        delete_rids = {
            fields["rid"] for op, fields in calls if op == "delete"
        }
        # Both attempts of the insert replayed ONE rid; the delete got
        # the next one in the seed-scoped namespace.
        assert insert_rids == {"rc9-1"}
        assert delete_rids == {"rc9-2"}


# ---------------------------------------------------------------------------
# Real server integration
# ---------------------------------------------------------------------------


class _LossyClient(ServeClient):
    """Drops the ack of selected requests *after* the server applied
    them -- the canonical duplicate-generating failure."""

    drop_ops: set = set()

    def request(self, op, **fields):
        response = super().request(op, **fields)
        if op in type(self).drop_ops:
            type(self).drop_ops.discard(op)
            raise ServeConnectionError(
                self.host, self.port, self.last_epoch,
                "simulated lost acknowledgement",
            )
        return response


class TestAgainstRealServer:
    def test_lost_ack_applies_exactly_once(self):
        _LossyClient.drop_ops = {"insert"}
        with running_server(tc_view(EDGES)) as server:
            client = ResilientClient(
                "127.0.0.1", server.port, seed=5,
                sleep=lambda _s: None, client_factory=_LossyClient,
            )
            response = client.insert("E", ["d", "a"])
            # The retry was answered from the dedupe table: applied
            # once, epoch bumped once.
            assert response["deduped"] is True
            assert response["applied"] == 1
            assert response["epoch"] == 1
            assert client.ping()["epoch"] == 1
            assert client.reconnects == 2
            client.close()

    def test_reconnect_backfills_subscription_gap(self):
        with running_server(tc_view(EDGES)) as server:
            subscriber = ResilientClient(
                "127.0.0.1", server.port, seed=6, sleep=lambda _s: None,
            )
            with connect(server) as writer:
                subscriber.subscribe()
                writer.insert("E", ["d", "a"])
                (event,) = subscriber.drain_events(1)
                assert event["epoch"] == 1
                # Sever the connection behind the client's back, then
                # miss two epochs.
                subscriber._client._sock.shutdown(socket.SHUT_RDWR)
                writer.insert("E", ["a", "c"])
                writer.delete("E", ["a", "c"])
                events = subscriber.drain_events(2)
                assert [e["epoch"] for e in events] == [2, 3]
                assert [e["event"] for e in events] == ["delta", "delta"]
                assert subscriber.reconnects == 2
            subscriber.close()

    def test_connection_error_is_structured(self):
        # A port with nothing listening: connect fails loudly and
        # structurally (and is still a ConnectionError for old code).
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServeConnectionError) as excinfo:
            ServeClient("127.0.0.1", port, timeout=2)
        error = excinfo.value
        assert isinstance(error, ConnectionError)
        assert error.host == "127.0.0.1"
        assert error.port == port
        assert error.last_epoch == 0
        assert "connect failed" in str(error)

    def test_server_close_surfaces_last_epoch(self):
        with running_server(tc_view(EDGES)) as server:
            client = connect(server)
            client.insert("E", ["d", "a"])
            client.insert("E", ["a", "c"])
            client.shutdown()
            with pytest.raises(ServeConnectionError) as excinfo:
                for _ in range(10):  # the close may take a beat
                    client.ping()
            assert excinfo.value.last_epoch == 2
            assert excinfo.value.port == server.port
            client.close()
