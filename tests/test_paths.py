"""Unit and property tests for path utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    DiGraph,
    all_simple_paths,
    avoiding_path_exists,
    has_path,
    node_disjoint_simple_paths,
    reachable_from,
    shortest_path,
    simple_path_lengths,
)
from repro.graphs.generators import cycle_graph, path_graph, random_digraph
from repro.graphs.paths import all_simple_cycles_through


@pytest.fixture
def braid():
    # Two parallel routes a->d plus a chord.
    return DiGraph(edges=[
        ("a", "b"), ("b", "d"), ("a", "c"), ("c", "d"), ("b", "c"),
    ])


class TestReachability:
    def test_reachable_from(self, braid):
        assert reachable_from(braid, "a") == {"a", "b", "c", "d"}
        assert reachable_from(braid, "d") == {"d"}

    def test_has_path_reflexive(self, braid):
        assert has_path(braid, "a", "a")

    def test_shortest_path(self, braid):
        assert shortest_path(braid, "a", "d") in (("a", "b", "d"), ("a", "c", "d"))
        assert shortest_path(braid, "d", "a") is None

    def test_unknown_node_raises(self, braid):
        with pytest.raises(ValueError):
            reachable_from(braid, "zz")


class TestSimplePaths:
    def test_enumeration(self, braid):
        paths = set(all_simple_paths(braid, "a", "d"))
        assert paths == {
            ("a", "b", "d"),
            ("a", "c", "d"),
            ("a", "b", "c", "d"),
        }

    def test_max_length(self, braid):
        paths = set(all_simple_paths(braid, "a", "d", max_length=2))
        assert paths == {("a", "b", "d"), ("a", "c", "d")}

    def test_avoid(self, braid):
        paths = set(all_simple_paths(braid, "a", "d", avoid={"b"}))
        assert paths == {("a", "c", "d")}

    def test_lengths(self, braid):
        assert simple_path_lengths(braid, "a", "d") == {2, 3}

    def test_trivial_path(self, braid):
        assert list(all_simple_paths(braid, "a", "a")) == [("a",)]

    def test_cycles_through(self):
        g = cycle_graph(4)
        cycles = list(all_simple_cycles_through(g, "v0"))
        assert cycles == [("v0", "v1", "v2", "v3", "v0")]

    def test_self_loop_cycle(self):
        g = DiGraph(edges=[("r", "r")])
        assert list(all_simple_cycles_through(g, "r")) == [("r", "r")]


class TestAvoidingPaths:
    def test_ground_truth_of_example_2_1(self):
        g = path_graph(4)
        assert avoiding_path_exists(g, "v0", "v2", {"v3"})
        assert not avoiding_path_exists(g, "v0", "v2", {"v1"})

    def test_endpoints_may_not_be_avoided(self, braid):
        assert not avoiding_path_exists(braid, "a", "d", {"a"})
        assert not avoiding_path_exists(braid, "a", "d", {"d"})

    def test_requires_at_least_one_edge(self):
        g = path_graph(2)
        assert not avoiding_path_exists(g, "v0", "v0", ())


class TestNodeDisjointPaths:
    def test_braid_has_two_disjoint_routes(self, braid):
        result = node_disjoint_simple_paths(braid, [("a", "d"), ("a", "d")])
        assert result is not None
        first, second = result
        assert set(first) & set(second) == {"a", "d"}  # endpoints shared

    def test_bottleneck_blocks(self):
        g = DiGraph(edges=[
            ("s1", "v"), ("v", "t1"), ("s2", "v"), ("v", "t2"),
        ])
        assert node_disjoint_simple_paths(g, [("s1", "t1"), ("s2", "t2")]) is None

    def test_interiors_avoid_other_endpoints(self):
        # The only s1 -> t1 route passes through s2: not allowed.
        g = DiGraph(edges=[("s1", "s2"), ("s2", "t1"), ("s2", "t2")])
        assert node_disjoint_simple_paths(g, [("s1", "t1"), ("s2", "t2")]) is None

    def test_self_loop_pair_uses_cycle(self):
        g = cycle_graph(3).add_edges([("v0", "x"), ("x", "v0")])
        result = node_disjoint_simple_paths(g, [("v0", "v0")])
        assert result is not None

    def test_avoid_set(self, braid):
        assert node_disjoint_simple_paths(
            braid, [("a", "d")], avoid={"b", "c"}
        ) is None


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_disjoint_pairs_on_random_graphs_share_only_endpoints(seed):
    """Property: any returned realisation is made of simple, edge-valid
    paths whose pairwise intersections are endpoint nodes only."""
    g = random_digraph(7, 0.3, seed)
    nodes = sorted(g.nodes)
    pairs = [(nodes[0], nodes[1]), (nodes[2], nodes[3])]
    result = node_disjoint_simple_paths(g, pairs)
    if result is None:
        return
    for path, (source, target) in zip(result, pairs):
        assert path[0] == source and path[-1] == target
        assert len(set(path)) == len(path)
        assert all(g.has_edge(u, v) for u, v in zip(path, path[1:]))
    first, second = result
    shared = set(first) & set(second)
    endpoints = {first[0], first[-1], second[0], second[-1]}
    assert shared <= endpoints
