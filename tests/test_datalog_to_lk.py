"""Tests for the Theorem 3.6 translation of programs into L^{l+r}."""

import pytest

from repro.datalog import evaluate, parse_program, stages
from repro.datalog.library import (
    avoiding_path_program,
    transitive_closure_program,
    two_disjoint_paths_from_source_program,
)
from repro.logic import (
    evaluate_formula,
    fixpoint_family,
    translate_program,
    variable_width,
)
from repro.logic.evaluation import satisfying_tuples
from repro.graphs.generators import path_graph, random_digraph


PROGRAMS = {
    "tc": transitive_closure_program,
    "avoiding": avoiding_path_program,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
class TestStageFormulas:
    def test_stage_formulas_match_engine_stages(self, name):
        program = PROGRAMS[name]()
        translation = translate_program(program)
        structure = random_digraph(4, 0.4, seed=3).to_structure()
        engine_stages = stages(program, structure)
        goal = program.goal
        free = translation.head_variables(goal)
        for n in (1, 2, 3):
            if n > len(engine_stages):
                break
            formula = translation.stage_formula(goal, n)
            assert satisfying_tuples(formula, structure, free) == (
                engine_stages[n - 1][goal]
            )

    def test_width_bound_holds(self, name):
        """Theorem 3.6: phi^n stays within l + r distinct variables."""
        program = PROGRAMS[name]()
        translation = translate_program(program)
        for n in (1, 2, 4):
            actual, claimed = translation.audit_width(program.goal, n)
            assert actual <= claimed

    def test_width_constant_across_stages(self, name):
        program = PROGRAMS[name]()
        translation = translate_program(program)
        widths = {
            variable_width(translation.stage_formula(program.goal, n))
            for n in (2, 3, 4)
        }
        assert len(widths) == 1  # re-quantification reuses the same stock


class TestRefinements:
    def test_pure_datalog_gives_inequality_free_formulas(self):
        translation = translate_program(transitive_closure_program())
        assert translation.is_inequality_free("S", n=3)

    def test_datalog_neq_formulas_use_inequalities(self):
        translation = translate_program(avoiding_path_program())
        assert not translation.is_inequality_free("T", n=2)

    def test_stage_one_is_first_application(self):
        program = transitive_closure_program()
        translation = translate_program(program)
        structure = path_graph(4).to_structure()
        formula = translation.stage_formula("S", 1)
        # Stage 1 of TC is exactly the edge relation.
        assert satisfying_tuples(
            formula, structure, translation.head_variables("S")
        ) == structure.relation("E")

    def test_bad_arguments(self):
        translation = translate_program(transitive_closure_program())
        with pytest.raises(ValueError):
            translation.stage_formula("S", 0)
        with pytest.raises(ValueError):
            translation.stage_formula("NoSuch", 1)


class TestMultipleIdbPredicates:
    def test_simultaneous_induction(self):
        program = parse_program(
            """
            A(x, y) :- E(x, y).
            B(x, y) :- A(x, z), E(z, y).
            A(x, y) :- B(x, z), E(z, y).
            """,
            goal="B",
        )
        translation = translate_program(program)
        structure = path_graph(5).to_structure()
        engine_stages = stages(program, structure)
        for predicate in ("A", "B"):
            free = translation.head_variables(predicate)
            for n in (1, 2, 3):
                formula = translation.stage_formula(predicate, n)
                assert satisfying_tuples(formula, structure, free) == (
                    engine_stages[n - 1][predicate]
                )

    def test_q_prime_program_translates(self):
        program = two_disjoint_paths_from_source_program()
        translation = translate_program(program)
        structure = random_digraph(3, 0.5, seed=1).to_structure()
        engine_stages = stages(program, structure)
        formula = translation.stage_formula("Q", 2)
        assert satisfying_tuples(
            formula, structure, translation.head_variables("Q")
        ) == engine_stages[1]["Q"]


class TestFixpointFamily:
    def test_family_defines_the_fixpoint(self):
        program = transitive_closure_program()
        translation = translate_program(program)
        family = fixpoint_family(translation)
        structure = path_graph(4).to_structure()
        expanded = family.expand(structure)
        fixpoint = evaluate(program, structure).goal_relation
        free = translation.head_variables("S")
        assert satisfying_tuples(expanded, structure, free) == fixpoint

    def test_family_on_empty_graph(self):
        from repro.graphs import DiGraph

        program = transitive_closure_program()
        translation = translate_program(program)
        structure = DiGraph(nodes=[1, 2]).to_structure()
        family = fixpoint_family(translation)
        assert satisfying_tuples(
            family.expand(structure),
            structure,
            translation.head_variables("S"),
        ) == frozenset()
