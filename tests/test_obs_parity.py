"""Observation must not perturb the observed: on/off parity, all engines.

For every engine, the result of a run with every sink enabled
(metrics + tracing + analyze where supported) must be *identical* --
relations, iteration count, maintenance deltas -- to the same run with
observability fully off.  Plus the overhead smoke: the never-enabled
analyze path's instrumentation budget stays under 5% of the runtime,
phrased as counted branch sites x measured per-test cost (robust on a
noisy CI box, same technique as ``tests/test_obs.py``).
"""

import time

import pytest

from repro.datalog.algebra_engine import evaluate_algebra
from repro.datalog.evaluation import ANALYZE_ENGINES, evaluate
from repro.datalog.incremental import IncrementalSession, Update
from repro.datalog.library import q_program, transitive_closure_program
from repro.datalog.parallel import shutdown_workers
from repro.graphs.generators import path_graph, random_digraph
from repro.obs import metrics as metrics_module
from repro.obs import trace as trace_module

PLAN_AND_SET_ENGINES = ("indexed", "codegen", "seminaive", "naive", "parallel")
ALL_ENGINES = PLAN_AND_SET_ENGINES + ("algebra",)

#: The parallel engine joins the on/off parity matrix in both its
#: configurations.  Its *performance* claims (pool speedup, inline
#: overhead vs codegen) are deliberately NOT asserted against
#: wall-clock here or anywhere in tier-1: timing comparisons for it
#: live in ``benchmarks/bench_parallel.py`` behind the counters-mode
#: regression gate (``repro bench compare --mode counters``), which is
#: machine-independent and cannot flake on a loaded CI runner.
PARALLEL_POOL_WORKERS = 2


@pytest.fixture(autouse=True)
def _obs_globals_restored():
    yield
    metrics_module.disable_metrics()
    trace_module.disable_tracing()


@pytest.fixture(scope="module", autouse=True)
def _pools_torn_down():
    yield
    shutdown_workers()


def _observed(fn):
    """Run ``fn`` with every obs sink live; sinks restored after."""
    metrics_module.enable_metrics(metrics_module.MetricsRegistry())
    trace_module.enable_tracing()
    try:
        return fn()
    finally:
        metrics_module.disable_metrics()
        trace_module.disable_tracing()


def _evaluate_with(engine, program, structure, **kwargs):
    if engine == "algebra":
        return evaluate_algebra(program, structure, **kwargs)
    return evaluate(program, structure, method=engine, **kwargs)


class TestFixpointParity:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_all_sinks_on_equals_off(self, engine):
        program = q_program(2, 1)
        structure = random_digraph(7, 0.3, seed=11).to_structure()
        plain = _evaluate_with(engine, program, structure)
        observed = _observed(
            lambda: _evaluate_with(engine, program, structure)
        )
        assert plain.relations == observed.relations
        assert plain.goal_relation == observed.goal_relation
        assert plain.iterations == observed.iterations

    def test_parallel_pool_all_sinks_on_equals_off(self):
        """The matrix row above runs parallel inline (workers=1); the
        pool configuration must show the same on/off parity -- workers
        run observation-dark, so every sink effect happens coordinator-
        side and switching sinks on cannot change what merges."""
        program = q_program(2, 1)
        structure = random_digraph(7, 0.3, seed=11).to_structure()
        run = lambda: evaluate(
            program,
            structure,
            method="parallel",
            workers=PARALLEL_POOL_WORKERS,
        )
        plain = run()
        observed = _observed(run)
        assert plain.relations == observed.relations
        assert plain.goal_relation == observed.goal_relation
        assert plain.iterations == observed.iterations

    @pytest.mark.parametrize("engine", ANALYZE_ENGINES)
    def test_analyze_on_equals_off(self, engine):
        program = q_program(2, 1)
        structure = random_digraph(7, 0.3, seed=11).to_structure()
        plain = _evaluate_with(engine, program, structure)
        analyzed = _observed(
            lambda: _evaluate_with(
                engine, program, structure, collect_analyze=True
            )
        )
        assert plain.relations == analyzed.relations
        assert plain.iterations == analyzed.iterations
        assert analyzed.profile.plans is not None


class TestMaintenanceParity:
    def _replay(self):
        session = IncrementalSession(
            transitive_closure_program(), path_graph(5).to_structure()
        )
        results = [
            session.apply(Update("insert", "E", ("v4", "v0"))),
            session.apply(Update("delete", "E", ("v1", "v2"))),
        ]
        return session, results

    def test_maintenance_results_agree_on_and_off(self):
        plain_session, plain_results = self._replay()
        observed_session, observed_results = _observed(self._replay)
        assert plain_session.relations == observed_session.relations
        for plain, observed in zip(plain_results, observed_results):
            assert plain.kind == observed.kind
            assert plain.applied == observed.applied
            assert plain.rounds == observed.rounds
            assert plain.net_change == observed.net_change
            assert (
                plain.delta_tuples_touched == observed.delta_tuples_touched
            )


class TestGovernedParity:
    def test_budget_trip_point_is_observation_independent(self):
        from repro.guard import BudgetExceeded, ResourceBudget

        program = transitive_closure_program()
        structure = path_graph(7).to_structure()

        def tripped():
            with pytest.raises(BudgetExceeded) as info:
                evaluate(
                    program,
                    structure,
                    method="indexed",
                    budget=ResourceBudget(max_iterations=3),
                )
            return (
                info.value.reason,
                info.value.spent.get("iterations"),
                frozenset(info.value.partial.goal_relation),
            )

        assert tripped() == _observed(tripped)


class TestDisabledAnalyzeOverhead:
    """The <= 5% smoke for the never-enabled analyze path.

    Counts the ``is not None`` branch tests the disabled path performs
    (two per plan node per invocation in the executors, a few per
    round x rule in the engine loops) from an *enabled* run's profile,
    multiplies by the measured cost of one such test, and requires the
    product under 5% of the measured runtime -- a deterministic bound
    that cannot flake on machine noise the way a paired timing can.
    """

    OVERHEAD_BAR = 0.05

    @staticmethod
    def _branch_cost():
        sentinel = None
        loops = 50_000
        start = time.perf_counter()
        acc = 0
        for __ in range(loops):
            if sentinel is not None:
                acc += 1
        return (time.perf_counter() - start) / loops

    @pytest.mark.parametrize("engine", ANALYZE_ENGINES)
    def test_disabled_analyze_budget_is_under_five_percent(self, engine):
        program = q_program(2, 1)
        structure = random_digraph(8, 0.25, seed=5).to_structure()
        run = lambda: _evaluate_with(engine, program, structure)
        run()  # warm plan / code caches
        times = []
        for __ in range(3):
            start = time.perf_counter()
            run()
            times.append(time.perf_counter() - start)
        runtime = min(times)
        profile = _evaluate_with(
            engine, program, structure, collect_analyze=True
        ).profile.plans
        branch_tests = 0
        for rule in profile.rules:
            for plan in rule.plans:
                branch_tests += plan.invocations * 2 * max(
                    len(plan.nodes), 1
                )
        branch_tests += profile.rounds * len(profile.rules) * 6
        budget = branch_tests * self._branch_cost()
        assert budget < self.OVERHEAD_BAR * runtime, (
            f"{engine}: disabled-analyze budget {budget * 1e6:.0f}us "
            f"exceeds {self.OVERHEAD_BAR:.0%} of {runtime * 1e3:.1f}ms"
        )
