"""Metamorphic tests for goal-directed (magic-sets) evaluation.

Two transformations must leave goal answers invariant:

* **structure isomorphism** -- renaming every universe element through a
  random bijection maps the answer set through the same bijection
  (Datalog(!=) queries are generic: the paper's Section 2 semantics
  never inspects element identity beyond equality);
* **syntactic permutation** -- shuffling rule order and each rule's
  body-literal order *before* the rewrite changes the sideways
  information passing the planner picks, but not the answers.

Both are checked over the seeded corpus of
:mod:`tests.test_engine_random_programs` and over every goal-bound
library program, so a planner or rewrite regression that depends on
incidental ordering cannot hide.
"""

import random

import pytest

from repro.datalog.ast import Atom, Constant, Program, Rule
from repro.datalog.evaluation import query
from repro.datalog.library import goal_bound_library
from repro.graphs.generators import random_digraph
from tests.test_engine_random_programs import magic_corpus_triple

#: Corpus rounds per metamorphic property (each round checks one triple
#: under several derived variants).
ROUNDS = 60


def _random_renaming(rng: random.Random, structure):
    """An injective renaming of the universe onto fresh tagged names."""
    elements = sorted(structure.universe, key=repr)
    shuffled = list(elements)
    rng.shuffle(shuffled)
    images = {
        element: f"n{index}_{shuffled[index]}"
        for index, element in enumerate(elements)
    }
    return images


def _permuted(rng: random.Random, program: Program) -> Program:
    """Shuffle rule order and every rule's body-literal order."""
    rules = [
        Rule(rule.head, tuple(sorted(rule.body, key=lambda __: rng.random())))
        for rule in program.rules
    ]
    rng.shuffle(rules)
    return Program(rules, goal=program.goal)


def _library_cases(seed_count=2):
    rng = random.Random(17)
    for name, (program, goal_atom) in sorted(goal_bound_library().items()):
        for seed in range(seed_count):
            structure = random_digraph(6, 0.3, seed=seed + 1).to_structure()
            nodes = sorted(structure.universe)
            assignment = {
                term.name: rng.choice(nodes)
                for term in goal_atom.args
                if isinstance(term, Constant)
            }
            yield name, program, structure.with_constants(assignment), goal_atom


@pytest.mark.magic_equivalence
def test_isomorphism_invariance_on_corpus():
    """Renaming the structure maps magic answers through the renaming."""
    rng = random.Random(424242)
    for index in range(ROUNDS):
        program, structure, goal_atom = magic_corpus_triple(rng)
        images = _random_renaming(rng, structure)
        renamed = structure.rename(lambda x: images[x])
        original = query(program, structure, goal_atom, magic=True)
        mapped = query(program, renamed, goal_atom, magic=True)
        expected = frozenset(
            tuple(images[x] for x in row) for row in original.answers
        )
        assert mapped.answers == expected, index


@pytest.mark.magic_equivalence
def test_isomorphism_invariance_on_library():
    rng = random.Random(31)
    for name, program, structure, goal_atom in _library_cases():
        images = _random_renaming(rng, structure)
        renamed = structure.rename(lambda x: images[x])
        original = query(program, structure, goal_atom, magic=True)
        mapped = query(program, renamed, goal_atom, magic=True)
        expected = frozenset(
            tuple(images[x] for x in row) for row in original.answers
        )
        assert mapped.answers == expected, name


@pytest.mark.magic_equivalence
def test_permutation_invariance_on_corpus():
    """Rule / body-literal order never changes goal answers -- direct or
    magic -- even though it changes the SIP order the rewrite adorns
    along."""
    rng = random.Random(777)
    for index in range(ROUNDS):
        program, structure, goal_atom = magic_corpus_triple(rng)
        reference = query(program, structure, goal_atom, magic=False)
        for __ in range(2):
            shuffled = _permuted(rng, program)
            magic = query(shuffled, structure, goal_atom, magic=True)
            assert magic.answers == reference.answers, index


@pytest.mark.magic_equivalence
def test_permutation_invariance_on_library():
    rng = random.Random(99)
    for name, program, structure, goal_atom in _library_cases(seed_count=1):
        reference = query(program, structure, goal_atom, magic=False)
        for __ in range(2):
            shuffled = _permuted(rng, program)
            magic = query(shuffled, structure, goal_atom, magic=True)
            assert magic.answers == reference.answers, name
