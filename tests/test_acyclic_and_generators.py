"""Unit tests for acyclicity utilities and the paper's generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    DiGraph,
    cycle_graph,
    disjoint_paths_graph,
    is_acyclic,
    layered_random_dag,
    levels,
    path_graph,
    random_digraph,
    topological_order,
)
from repro.graphs.generators import (
    complete_digraph,
    crossed_paths_structure_pair,
    path_pair_structures,
)


class TestAcyclicity:
    def test_path_is_acyclic(self):
        assert is_acyclic(path_graph(5))

    def test_cycle_is_not(self):
        assert not is_acyclic(cycle_graph(3))

    def test_self_loop_counts_as_cycle(self):
        assert not is_acyclic(DiGraph(edges=[("r", "r")]))

    def test_topological_order_respects_edges(self):
        g = DiGraph(edges=[("a", "b"), ("a", "c"), ("c", "b")])
        order = topological_order(g)
        assert order.index("a") < order.index("c") < order.index("b")

    def test_levels_of_path(self):
        g = path_graph(4)
        assert levels(g) == {"v0": 3, "v1": 2, "v2": 1, "v3": 0}

    def test_levels_reject_cycles(self):
        with pytest.raises(ValueError):
            levels(cycle_graph(3))

    def test_levels_decrease_along_edges(self):
        g = layered_random_dag(4, 3, 0.5, seed=1)
        level = levels(g)
        assert all(level[u] > level[v] for u, v in g.edges)


class TestGenerators:
    def test_path_graph_shape(self):
        g = path_graph(4)
        assert len(g) == 4 and g.number_of_edges() == 3

    def test_cycle_graph_shape(self):
        g = cycle_graph(4)
        assert len(g) == 4 and g.number_of_edges() == 4
        assert all(g.out_degree(v) == 1 for v in g.nodes)

    def test_complete_digraph(self):
        g = complete_digraph(3)
        assert g.number_of_edges() == 6
        assert complete_digraph(3, loops=True).number_of_edges() == 9

    def test_example_4_4_structures(self):
        a, b = path_pair_structures(3, 5)
        assert len(a) == 3 and len(b) == 5
        assert len(a.relation("E")) == 2

    def test_example_4_5_structures(self):
        a, b = crossed_paths_structure_pair(2)
        # A: two disjoint 5-paths; B: they share the middle vertex.
        assert len(a) == 10
        assert len(b) == 9
        assert len(a.relation("E")) == 8 == len(b.relation("E"))

    def test_disjoint_paths_graph(self):
        g = disjoint_paths_graph(3, 4, names=("s1", "s2", "s3", "s4"))
        d = g.distinguished
        assert len(g) == 4 + 5
        assert g.out_degree(d["s2"]) == 0
        assert g.in_degree(d["s1"]) == 0

    def test_random_digraph_is_seeded(self):
        assert random_digraph(8, 0.3, 5) == random_digraph(8, 0.3, 5)
        assert random_digraph(8, 0.3, 5) != random_digraph(8, 0.3, 6)

    def test_layered_dag_is_acyclic(self):
        assert is_acyclic(layered_random_dag(5, 3, 0.6, seed=2))

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            random_digraph(3, 1.5, 0)
        with pytest.raises(ValueError):
            crossed_paths_structure_pair(0)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=999))
def test_topological_order_exists_iff_acyclic(n, seed):
    g = random_digraph(n, 0.4, seed)
    assert (topological_order(g) is not None) == is_acyclic(g)
