"""Edmonds-Karp maximum flow on edge-capacitated directed networks.

The networks here are small (they come from input graphs of the case
study), so the classic O(V * E^2) augmenting-path algorithm is more than
adequate and keeps the code auditable against the Max-Flow Min-Cut
Theorem the paper cites ([Bol79]).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

Node = Hashable


@dataclass(frozen=True)
class FlowResult:
    """Outcome of a max-flow computation.

    Attributes
    ----------
    value:
        The max-flow value == min-cut capacity.
    flow:
        Mapping ``(u, v) -> units`` for edges carrying positive flow.
    source_side:
        Nodes reachable from the source in the final residual network;
        edges from ``source_side`` to its complement form a minimum cut.
    """

    value: int
    flow: Mapping[tuple, int] = field(hash=False)
    source_side: frozenset = field(hash=False)

    def min_cut_edges(self, capacities: Mapping[tuple, int]) -> frozenset:
        """The saturated edges crossing the cut, a minimum edge cut."""
        return frozenset(
            (u, v)
            for (u, v) in capacities
            if u in self.source_side and v not in self.source_side
        )


def max_flow(
    capacities: Mapping[tuple, int], source: Node, sink: Node
) -> FlowResult:
    """Maximum flow from ``source`` to ``sink``.

    Parameters
    ----------
    capacities:
        Mapping from directed edge ``(u, v)`` to a non-negative integer
        capacity.  Parallel reverse edges are allowed.
    source, sink:
        Distinct terminals.

    Returns
    -------
    FlowResult
        Flow value, a positive-flow assignment, and the source side of a
        minimum cut (for :func:`~repro.flow.disjoint_paths.separating_nodes`).
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    for edge, capacity in capacities.items():
        if capacity < 0:
            raise ValueError(f"negative capacity on {edge}: {capacity}")

    residual: dict[Node, dict[Node, int]] = {}

    def ensure(node: Node) -> dict[Node, int]:
        return residual.setdefault(node, {})

    for (u, v), capacity in capacities.items():
        ensure(u)[v] = ensure(u).get(v, 0) + capacity
        ensure(v).setdefault(u, 0)
    ensure(source)
    ensure(sink)

    value = 0
    m = _metrics.metrics
    with _trace.tracer.span(
        "maxflow", nodes=len(residual), edges=len(capacities)
    ) as span:
        augmenting_paths = 0
        while True:
            # BFS for a shortest augmenting path.
            parents: dict[Node, Node] = {source: source}
            frontier = deque([source])
            while frontier and sink not in parents:
                node = frontier.popleft()
                for nxt, cap in residual[node].items():
                    if cap > 0 and nxt not in parents:
                        parents[nxt] = node
                        frontier.append(nxt)
            m.inc("flow.bfs_runs")
            m.inc("flow.bfs_visits", len(parents))
            if sink not in parents:
                break
            # Find the bottleneck and augment.
            path = [sink]
            while parents[path[-1]] != path[-1]:
                path.append(parents[path[-1]])
            path.reverse()
            bottleneck = min(
                residual[u][v] for u, v in zip(path, path[1:])
            )
            for u, v in zip(path, path[1:]):
                residual[u][v] -= bottleneck
                residual[v][u] += bottleneck
            value += bottleneck
            augmenting_paths += 1
            m.inc("flow.augmenting_paths")
            m.inc("flow.augmented_units", bottleneck)
            m.observe("flow.augmenting_path_length", len(path) - 1)
        span.annotate(value=value, augmenting_paths=augmenting_paths)

    # Positive flow: capacity minus residual on original edges.
    flow: dict[tuple, int] = {}
    for (u, v), capacity in capacities.items():
        used = capacity - residual[u][v]
        # With antiparallel original edges the subtraction can go negative
        # on one of them; clamp and let the partner edge absorb it.
        if used > 0:
            flow[(u, v)] = used

    # Source side of a min cut: residual reachability from the source.
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nxt, cap in residual[node].items():
            if cap > 0 and nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return FlowResult(value=value, flow=flow, source_side=frozenset(seen))
