"""Network flow with node capacities.

Theorem 6.1 of the paper reduces H-subgraph homeomorphism for pattern
graphs H in the class C to a network-flow question: "can the input graph,
viewed as a directed network with node capacities, carry a flow >= k?"
(k = out-degree of the root).  This subpackage supplies that substrate:

* :func:`max_flow` -- Edmonds-Karp max flow on edge-capacitated networks,
  with min-cut extraction;
* :func:`max_node_disjoint_paths` -- Menger's theorem made executable:
  the maximum number of node-disjoint paths from a source to a set of
  targets, with path extraction and an avoid set;
* :func:`separating_nodes` -- the dual min-vertex-cut, i.e. the nodes
  ``u_1, ..., u_{k-1}`` used in the correctness proof of Theorem 6.1.
"""

from repro.flow.disjoint_paths import (
    has_node_disjoint_paths_to_targets,
    max_node_disjoint_paths,
    separating_nodes,
)
from repro.flow.maxflow import FlowResult, max_flow

__all__ = [
    "FlowResult",
    "max_flow",
    "max_node_disjoint_paths",
    "has_node_disjoint_paths_to_targets",
    "separating_nodes",
]
