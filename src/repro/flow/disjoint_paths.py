"""Node-disjoint paths via max flow: Menger's theorem made executable.

Theorem 6.1 needs the question "are there k node-disjoint simple paths
from s to s_1, ..., s_k (sharing only s)?" answered in polynomial time,
and its correctness proof needs the dual object: when the answer is no,
there exist nodes ``u_1, ..., u_{k-1}`` meeting every s -> s_i path.

We realise both through the standard node-splitting construction: every
node v becomes an arc ``v_in -> v_out`` of capacity 1 (targets instead
feed a super-sink), adjacency edges get capacity k + 1 so that minimum
cuts consist of node arcs only, and the source is uncapacitated.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.flow.maxflow import FlowResult, max_flow
from repro.graphs.digraph import DiGraph

Node = Hashable

_SINK = ("__sink__",)


def _split_network(
    graph: DiGraph,
    source: Node,
    targets: Sequence[Node],
    avoid: Iterable[Node],
) -> dict[tuple, int]:
    """Build the node-split flow network.

    Interior use of any node costs one unit of its ``in -> out`` arc;
    targets have no ``in -> out`` arc at all (they absorb a path into the
    super-sink), so no path may travel *through* a target -- matching the
    exact oracle, where interior nodes avoid all distinguished nodes.
    """
    forbidden = frozenset(avoid)
    target_set = frozenset(targets)
    if source in forbidden or target_set & forbidden:
        return {}
    if source in target_set:
        raise ValueError("source may not be one of the targets")
    big = len(target_set) + 1

    capacities: dict[tuple, int] = {}
    for node in graph.nodes:
        if node in forbidden or node in target_set or node == source:
            continue
        capacities[((node, "in"), (node, "out"))] = 1
    for target in target_set:
        capacities[((target, "in"), _SINK)] = 1
    for u, v in graph.edges:
        if u in forbidden or v in forbidden:
            continue
        if v == source or u in target_set:
            continue  # paths never re-enter s and never leave a target
        if u == source:
            tail = (u, "source")
        else:
            tail = (u, "out")
        capacities[(tail, (v, "in"))] = big
    return capacities


def max_node_disjoint_paths(
    graph: DiGraph,
    source: Node,
    targets: Sequence[Node],
    avoid: Iterable[Node] = (),
) -> tuple[int, tuple[tuple, ...]]:
    """Maximum number of node-disjoint ``avoid``-avoiding paths from
    ``source`` into the target set, with a realising family of paths.

    The paths pairwise share only the source; each target is hit by at
    most one path and never crossed by another.  Returns ``(count,
    paths)`` where each path is a node tuple starting at ``source`` and
    ending at some target.  Runs in polynomial time (Edmonds-Karp).
    """
    targets = tuple(targets)
    if len(set(targets)) != len(targets):
        raise ValueError("targets must be pairwise distinct")
    capacities = _split_network(graph, source, targets, avoid)
    if not capacities:
        return 0, ()
    result = max_flow(capacities, (source, "source"), _SINK)
    paths = _decompose(result, source)
    return result.value, paths


def has_node_disjoint_paths_to_targets(
    graph: DiGraph,
    source: Node,
    targets: Sequence[Node],
    avoid: Iterable[Node] = (),
) -> bool:
    """Whether every target can be reached by its own disjoint path.

    This is exactly the query ``Q_{k,l}`` of Theorem 6.1: k node-disjoint
    simple {t_1, ..., t_l}-avoiding paths from s to s_1, ..., s_k.
    """
    targets = tuple(targets)
    if source in frozenset(avoid):
        return False
    count, __ = max_node_disjoint_paths(graph, source, targets, avoid)
    return count == len(targets)


def separating_nodes(
    graph: DiGraph,
    source: Node,
    targets: Sequence[Node],
    avoid: Iterable[Node] = (),
) -> frozenset:
    """A minimum set of nodes meeting every avoid-avoiding s -> target path.

    When fewer than ``len(targets)`` disjoint paths exist, Menger's
    theorem (equivalently, Max-Flow Min-Cut) yields at most
    ``len(targets) - 1`` nodes whose removal separates the source from
    the targets; the correctness argument of Theorem 6.1 hinges on these
    nodes.  Targets themselves may participate in the separator.
    """
    targets = tuple(targets)
    capacities = _split_network(graph, source, targets, avoid)
    if not capacities:
        return frozenset()
    result = max_flow(capacities, (source, "source"), _SINK)
    cut = result.min_cut_edges(capacities)
    nodes = set()
    for tail, head in cut:
        if head is _SINK:
            nodes.add(tail[0])  # the target node itself separates
        else:
            nodes.add(tail[0])  # an interior node's in->out arc
    return frozenset(nodes)


def _decompose(result: FlowResult, source: Node) -> tuple[tuple, ...]:
    """Decompose a unit-path flow into source -> target node paths.

    Cycles (which a max flow may in principle contain) are skipped by
    cancelling repeated nodes while walking.
    """
    remaining = dict(result.flow)

    def take(tail: Node) -> Node | None:
        for (u, v), units in remaining.items():
            if u == tail and units > 0:
                remaining[(u, v)] = units - 1
                return v
        return None

    paths: list[tuple] = []
    while True:
        head = take((source, "source"))
        if head is None:
            break
        walk: list[Node] = [source]
        node = head
        while node is not _SINK:
            kind = node[1]
            if kind == "in":
                real = node[0]
                if real in walk:
                    # Cancel the cycle back to the previous visit.
                    walk = walk[: walk.index(real)]
                walk.append(real)
            node = take(node)
            if node is None:
                break
        if node is _SINK:
            paths.append(tuple(walk))
    return tuple(paths)
