"""Decision procedures for pattern-based queries (Propositions 5.3-5.4).

Two ways to answer a pattern-based query on B:

* :func:`decide_via_embedding` -- search for a one-to-one homomorphism
  from some pattern into B (condition (3) of Definition 5.1); exact but
  exponential, and exactly what NP-hardness says cannot be avoided in
  general;
* :func:`decide_via_game` -- play the existential k-pebble game on
  (pattern, B) instead.  Proposition 5.4: if the query is expressible in
  L^k, this is equivalent -- and, since the game is solvable in
  polynomial time (Proposition 5.3) and alpha is polynomial, the query
  is then in PTIME (Theorem 5.5).

For queries *not* expressible in L^k, the game direction is one-sided:
an embedding still makes Player II win (he copies along it), but Player
II may also win with no embedding present -- the test suite exhibits
this slack for the even simple path query, which is the paper's
expressibility lower bound made concrete.
"""

from __future__ import annotations

from repro.games.existential import solve_existential_game
from repro.patterns.base import PatternBasedQuery
from repro.structures.homomorphism import find_one_to_one_homomorphism
from repro.structures.structure import Structure


def decide_via_embedding(
    query: PatternBasedQuery, structure: Structure
) -> bool:
    """Definition 5.1(3): some pattern embeds one-to-one into B."""
    return any(
        find_one_to_one_homomorphism(pattern, structure) is not None
        for pattern in query.patterns(structure)
    )


def decide_via_game(
    query: PatternBasedQuery, structure: Structure, k: int
) -> bool:
    """Proposition 5.4: some pattern A has Player II winning the
    existential k-pebble game on (A, B).

    Sound and complete for queries expressible in L^k; in general an
    over-approximation of the embedding test (never a miss, possibly a
    false positive -- see the module docstring).
    """
    return any(
        solve_existential_game(pattern, structure, k).player_two_wins
        for pattern in query.patterns(structure)
    )
