"""Fixed subgraph homeomorphism as a pattern-based query (Example 5.2(2)).

The patterns for an H-homeomorphism query are the *subdivisions* of H:
every edge replaced by a path of length >= 1, with total size bounded by
|B|.  A one-to-one homomorphism from a subdivision into G (fixing the
distinguished nodes) is exactly a homeomorphic embedding.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.fhw.homeomorphism import is_homeomorphic_to_distinguished_subgraph
from repro.graphs.digraph import DiGraph
from repro.patterns.base import PatternBasedQuery
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary


def subdivide(pattern: DiGraph, extra: dict[tuple, int]) -> DiGraph:
    """Subdivide each edge ``e`` of the pattern with ``extra[e]`` fresh
    interior nodes (0 = keep the edge)."""
    edges: set[tuple] = set()
    nodes = set(pattern.nodes)
    for edge in sorted(pattern.edges, key=repr):
        u, v = edge
        count = extra.get(edge, 0)
        interior = [("sub", edge, i) for i in range(count)]
        chain = [u, *interior, v]
        nodes.update(interior)
        edges.update(zip(chain, chain[1:]))
    return DiGraph(nodes, edges)


class HomeomorphismQuery(PatternBasedQuery):
    """The H-subgraph homeomorphism query, pattern-based.

    Input structures are graphs over ``{E/2}`` with one constant per
    pattern node (named ``h<i>`` for the i-th pattern node in sorted
    order); the constants interpret the distinguished nodes.

    The pattern *generator* enumerates subdivisions of H with at most
    ``|B| - |H|`` extra nodes.  For patterns with a bounded number of
    edges this is polynomial in |B| (degree = number of H-edges).
    """

    def __init__(self, pattern: DiGraph) -> None:
        self.pattern = pattern.without_isolated_nodes()
        if not self.pattern.edges:
            raise ValueError("the pattern needs at least one edge")
        self.pattern_nodes = tuple(sorted(self.pattern.nodes, key=repr))
        self.constant_names = tuple(
            f"h{i}" for i in range(len(self.pattern_nodes))
        )

    def instance(self, graph: DiGraph, assignment: dict) -> Structure:
        """Package (G, assignment) as an input structure."""
        distinguished = {
            name: assignment[node]
            for name, node in zip(self.constant_names, self.pattern_nodes)
        }
        return graph.with_distinguished(distinguished).to_structure()

    def _assignment_from(self, structure: Structure) -> dict:
        constants = structure.constants
        return {
            node: constants[name]
            for name, node in zip(self.constant_names, self.pattern_nodes)
        }

    def patterns(self, structure: Structure) -> Iterator[Structure]:
        """Subdivisions of H with total size at most |B|."""
        vocabulary = Vocabulary.graph(constants=self.constant_names)
        edges = sorted(self.pattern.edges, key=repr)
        budget = max(0, len(structure) - len(self.pattern_nodes))
        for counts in itertools.product(range(budget + 1), repeat=len(edges)):
            if sum(counts) > budget:
                continue
            subdivided = subdivide(self.pattern, dict(zip(edges, counts)))
            yield Structure(
                vocabulary,
                subdivided.nodes,
                {"E": subdivided.edges},
                {
                    name: node
                    for name, node in zip(
                        self.constant_names, self.pattern_nodes
                    )
                },
            )

    def holds_exact(self, structure: Structure) -> bool:
        """Ground truth via the exact embedding oracle."""
        graph = DiGraph(structure.universe, structure.relation("E"))
        return is_homeomorphic_to_distinguished_subgraph(
            self.pattern, graph, self._assignment_from(structure)
        )

    def pattern_count_bound(self, structure: Structure) -> int:
        """O(|B|^{#edges}) subdivisions."""
        return (len(structure) + 1) ** self.pattern.number_of_edges()
