"""The even simple path query (Example 5.2(1), [LM89]).

"Given a directed graph G with distinguished nodes s and t, is there a
simple path of even length from s to t?"  NP-complete, monotone, and --
by Corollary 6.8 -- not expressible in L^omega.

The pattern generator alpha(G) is the paper's: all directed paths with
an odd number k of vertices, 1 < k <= |G|, with the first vertex
interpreted as s and the last as t.  A one-to-one homomorphism from such
a pattern into G is exactly a simple s -> t path of even length.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.graphs.digraph import DiGraph
from repro.graphs.paths import simple_path_lengths
from repro.patterns.base import PatternBasedQuery
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary


def _path_pattern(k: int) -> Structure:
    """A directed path on vertices 1..k with constants s = 1, t = k."""
    vocabulary = Vocabulary.graph(constants=("s", "t"))
    universe = range(1, k + 1)
    edges = [(i, i + 1) for i in range(1, k)]
    return Structure(
        vocabulary, universe, {"E": edges}, {"s": 1, "t": k}
    )


class SimplePathLengthQuery(PatternBasedQuery):
    """"Is there a simple s -> t path whose length satisfies P?"

    ``membership`` is a predicate on positive path lengths (in edges).
    Patterns are the directed paths of the admissible lengths, up to the
    structure's size.  Structures must be graphs with constants s and t.
    """

    def __init__(
        self, membership: Callable[[int], bool], name: str = "P"
    ) -> None:
        self.membership = membership
        self.name = name

    def patterns(self, structure: Structure) -> Iterator[Structure]:
        """All path patterns of admissible length that could embed."""
        for k in range(2, len(structure) + 1):
            if self.membership(k - 1):
                yield _path_pattern(k)

    def holds_exact(self, structure: Structure) -> bool:
        """Ground truth via exhaustive simple-path enumeration."""
        graph = DiGraph(structure.universe, structure.relation("E"))
        source = structure.constants["s"]
        target = structure.constants["t"]
        lengths = simple_path_lengths(graph, source, target)
        return any(self.membership(n) for n in lengths if n > 0)

    def pattern_count_bound(self, structure: Structure) -> int:
        """At most |B| - 1 patterns."""
        return max(1, len(structure) - 1)


class EvenSimplePathQuery(SimplePathLengthQuery):
    """The even simple path query of Lakshmanan and Mendelzon [LM89]."""

    def __init__(self) -> None:
        super().__init__(lambda n: n % 2 == 0, name="even")
