"""Pattern-based queries (Definition 5.1) and their decision procedures.

A query Q is *pattern-based* when a polynomial-time generator alpha maps
each structure B to a set of pattern structures such that B satisfies Q
iff some pattern embeds into B by a one-to-one homomorphism.  Section 5
shows that when such a Q is also expressible in L^k, the embedding test
can be replaced by the existential k-pebble game (Proposition 5.4),
making Q polynomial-time (Theorem 5.5).
"""

from repro.patterns.base import PatternBasedQuery, TrivialPatternQuery
from repro.patterns.decision import decide_via_embedding, decide_via_game
from repro.patterns.even_simple_path import (
    EvenSimplePathQuery,
    SimplePathLengthQuery,
)
from repro.patterns.homeo_query import HomeomorphismQuery

__all__ = [
    "PatternBasedQuery",
    "TrivialPatternQuery",
    "decide_via_embedding",
    "decide_via_game",
    "EvenSimplePathQuery",
    "SimplePathLengthQuery",
    "HomeomorphismQuery",
]
