"""The pattern-based query abstraction (Definition 5.1)."""

from __future__ import annotations

import abc
from typing import Iterator

from repro.structures.structure import Structure


class PatternBasedQuery(abc.ABC):
    """A Boolean query with a pattern generator alpha.

    Subclasses implement :meth:`patterns` (the generator alpha); the
    three conditions of Definition 5.1 then hold by construction:

    1. ``alpha(B)`` is a set of finite structures;
    2. every pattern structure satisfies the query (subclasses must
       ensure this -- :meth:`patterns_satisfy_query` lets tests check);
    3. B satisfies the query iff some pattern maps into B by a
       one-to-one homomorphism (this is how :func:`decide_via_embedding`
       evaluates the query).

    The paper notes that *every* polynomial-time query is trivially
    pattern-based (alpha(B) = {B} or {}); the interesting instances here
    are the even-simple-path query and the fixed subgraph homeomorphism
    queries of Example 5.2.
    """

    @abc.abstractmethod
    def patterns(self, structure: Structure) -> Iterator[Structure]:
        """The pattern structures alpha(B), over B's vocabulary."""

    @abc.abstractmethod
    def holds_exact(self, structure: Structure) -> bool:
        """Ground-truth semantics, independent of the generator.

        Used by the test suite to confirm condition (3) of Definition
        5.1 for the concrete queries.
        """

    def pattern_count_bound(self, structure: Structure) -> int:
        """An upper bound on ``|alpha(B)|`` (documentation of
        polynomiality; subclasses may refine)."""
        return max(1, len(structure)) ** 2


class TrivialPatternQuery(PatternBasedQuery):
    """The paper's remark that *every* polynomial-time query is
    pattern-based: set ``alpha(B) = {B}`` if B satisfies Q else ``{}``.

    Wraps an arbitrary Boolean query given as a predicate on structures;
    the identity map is then the witnessing one-to-one homomorphism.
    """

    def __init__(self, predicate) -> None:
        self._predicate = predicate

    def patterns(self, structure: Structure):
        if self._predicate(structure):
            yield structure

    def holds_exact(self, structure: Structure) -> bool:
        return bool(self._predicate(structure))

    def pattern_count_bound(self, structure: Structure) -> int:
        return 1
