"""The algebra: expression AST and its evaluator.

Operators are chosen so that the Section 3 arity discipline is visible
in the tree: *natural join* is a primitive (its arity is the union of
its operands' columns, never the product's sum), and the *universe*
relation supplies quantified variables that no atom binds.

Selection conditions compare two columns or a column against a
structure constant, with ``=`` or ``!=`` -- exactly the atomic stock of
the logic L^k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Union as TypingUnion

from repro.relalg.relation import Relation
from repro.structures.structure import Structure

Element = Hashable


@dataclass(frozen=True)
class Base:
    """A database relation, with columns named per argument position."""

    relation_name: str
    columns: tuple[str, ...]


@dataclass(frozen=True)
class Universe:
    """The unary relation holding every universe element."""

    column: str


@dataclass(frozen=True)
class Rename:
    """Rename columns via an (injective) old -> new mapping."""

    source: "Expression"
    mapping: Mapping[str, str]


@dataclass(frozen=True)
class Project:
    """Keep only the named columns (in the given order)."""

    source: "Expression"
    columns: tuple[str, ...]


@dataclass(frozen=True)
class Condition:
    """``left (=|!=) right`` where right is a column or a constant.

    ``right_is_constant`` selects the interpretation: a column name or
    the name of a structure constant.
    """

    left: str
    comparator: str  # "=" or "!="
    right: str
    right_is_constant: bool = False


@dataclass(frozen=True)
class Select:
    """Filter rows by a conjunction of conditions."""

    source: "Expression"
    conditions: tuple[Condition, ...]


@dataclass(frozen=True)
class Join:
    """Natural join: rows agreeing on all shared columns."""

    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Union:
    """Set union of union-compatible operands (same column sets)."""

    operands: tuple["Expression", ...]


@dataclass(frozen=True)
class Truth:
    """The 0-ary relation holding the empty row (logical truth)."""


@dataclass(frozen=True)
class Empty:
    """An empty relation with the given columns (logical falsity)."""

    columns: tuple[str, ...]


Expression = TypingUnion[
    Base, Universe, Rename, Project, Select, Join, Union, Truth, Empty
]


def expression_columns(expression: Expression) -> tuple[str, ...]:
    """The output columns of an expression (statically known)."""
    if isinstance(expression, Base):
        return expression.columns
    if isinstance(expression, Universe):
        return (expression.column,)
    if isinstance(expression, Rename):
        return tuple(
            expression.mapping.get(c, c)
            for c in expression_columns(expression.source)
        )
    if isinstance(expression, Project):
        return expression.columns
    if isinstance(expression, Select):
        return expression_columns(expression.source)
    if isinstance(expression, Join):
        left = expression_columns(expression.left)
        right = expression_columns(expression.right)
        return left + tuple(c for c in right if c not in left)
    if isinstance(expression, Union):
        return expression_columns(expression.operands[0])
    if isinstance(expression, Truth):
        return ()
    if isinstance(expression, Empty):
        return expression.columns
    raise TypeError(f"not an expression: {expression!r}")


def evaluate_expression(
    expression: Expression,
    structure: Structure,
    database: Mapping[str, frozenset] | None = None,
) -> Relation:
    """Evaluate the expression against a structure.

    ``database`` optionally overlays relation contents by name (used by
    the algebra-backed Datalog engine to feed IDB relations through the
    fixpoint iteration); names not overlaid fall back to the structure.
    """
    if isinstance(expression, Base):
        if database is not None and expression.relation_name in database:
            source_rows = database[expression.relation_name]
        else:
            if len(expression.columns) != structure.vocabulary.arity(
                expression.relation_name
            ):
                raise ValueError(
                    f"column count mismatch for {expression.relation_name}"
                )
            source_rows = structure.relation(expression.relation_name)
        # Repeated column names express within-atom equality.
        seen: dict[str, int] = {}
        keep: list[int] = []
        for position, column in enumerate(expression.columns):
            if column in seen:
                continue
            seen[column] = position
            keep.append(position)
        rows = set()
        for raw in source_rows:
            if all(
                raw[position] == raw[seen[column]]
                for position, column in enumerate(expression.columns)
            ):
                rows.add(tuple(raw[i] for i in keep))
        return Relation(
            tuple(expression.columns[i] for i in keep), rows
        )
    if isinstance(expression, Universe):
        return Relation(
            (expression.column,), {(x,) for x in structure.universe}
        )
    if isinstance(expression, Rename):
        source = evaluate_expression(expression.source, structure, database)
        values = list(expression.mapping.values())
        if len(set(values)) != len(values):
            raise ValueError("rename mapping must be injective")
        return Relation(
            tuple(expression.mapping.get(c, c) for c in source.columns),
            source.rows,
        )
    if isinstance(expression, Project):
        source = evaluate_expression(expression.source, structure, database)
        positions = [source.index_of(c) for c in expression.columns]
        return Relation(
            expression.columns,
            {tuple(row[i] for i in positions) for row in source.rows},
        )
    if isinstance(expression, Select):
        source = evaluate_expression(expression.source, structure, database)

        def passes(row: tuple) -> bool:
            for condition in expression.conditions:
                left = row[source.index_of(condition.left)]
                if condition.right_is_constant:
                    right = structure.constants[condition.right]
                else:
                    right = row[source.index_of(condition.right)]
                if condition.comparator == "=" and left != right:
                    return False
                if condition.comparator == "!=" and left == right:
                    return False
            return True

        return Relation(
            source.columns, {row for row in source.rows if passes(row)}
        )
    if isinstance(expression, Join):
        left = evaluate_expression(expression.left, structure, database)
        right = evaluate_expression(expression.right, structure, database)
        shared = [c for c in left.columns if c in right.columns]
        extra = [c for c in right.columns if c not in left.columns]
        left_key = [left.index_of(c) for c in shared]
        right_key = [right.index_of(c) for c in shared]
        extra_positions = [right.index_of(c) for c in extra]
        # Shared index layer; imported lazily because repro.datalog's
        # package init imports this module.
        from repro.datalog.indexing import hash_index

        index = hash_index(right.rows, tuple(right_key))
        rows = set()
        for row in left.rows:
            key = tuple(row[i] for i in left_key)
            for partner in index.get(key, ()):
                rows.add(row + tuple(partner[i] for i in extra_positions))
        return Relation(left.columns + tuple(extra), rows)
    if isinstance(expression, Union):
        if not expression.operands:
            raise ValueError("an empty union has no column signature")
        first = evaluate_expression(expression.operands[0], structure, database)
        rows = set(first.rows)
        for operand in expression.operands[1:]:
            value = evaluate_expression(operand, structure, database)
            if set(value.columns) != set(first.columns):
                raise ValueError(
                    f"union operands disagree on columns: "
                    f"{first.columns} vs {value.columns}"
                )
            rows |= value.reorder(first.columns).rows
        return Relation(first.columns, rows)
    if isinstance(expression, Truth):
        return Relation((), {()})
    if isinstance(expression, Empty):
        return Relation(expression.columns, ())
    raise TypeError(f"not an expression: {expression!r}")
