"""Compile existential positive formulas into bounded-arity algebra.

The translation mirrors the Section 3 remark structurally:

* atoms become Base relations (repeated variables collapse inside the
  Base evaluation, constants become selections);
* conjunction becomes natural Join, disjunction becomes Union (operands
  padded with Universe columns to a common signature);
* existential quantification becomes Projection (padded through a
  throwaway Universe column when the variable never occurs, so the
  empty-universe semantics of ``exists`` is preserved);
* equalities and inequalities become Selections over Universe columns.

:func:`expression_width` audits the arity discipline: for a formula of
``L^k`` over a vocabulary of maximum relation arity r, every
subexpression of the compilation has arity at most ``max(k, r)`` (the
Base nodes contribute r; everything built above them stays within the
formula's k variables).  Infinitary connectives must be expanded for a
concrete structure first (``family.expand(structure)``), matching how
the paper's infinitary unions are used on finite structures.
"""

from __future__ import annotations

from typing import Hashable

from repro.datalog.ast import Constant, Term, Variable
from repro.logic.formulas import (
    And,
    AtomF,
    BoundedConjunction,
    BoundedDisjunction,
    Eq,
    Exists,
    Formula,
    Neq,
    Or,
)
from repro.relalg.expressions import (
    Base,
    Condition,
    Empty,
    Expression,
    Join,
    Project,
    Select,
    Truth,
    Union,
    Universe,
    expression_columns,
)


def _variable_columns(expression: Expression) -> tuple[str, ...]:
    return expression_columns(expression)


def _pad_to(expression: Expression, columns: set[str]) -> Expression:
    """Join in Universe columns until the expression covers ``columns``."""
    present = set(expression_columns(expression))
    for column in sorted(columns - present):
        expression = Join(expression, Universe(column))
    return expression


def _compile_atom(formula: AtomF) -> Expression:
    columns: list[str] = []
    conditions: list[Condition] = []
    keep: list[str] = []
    for position, term in enumerate(formula.args):
        if isinstance(term, Variable):
            columns.append(term.name)
            if term.name not in keep:
                keep.append(term.name)
        else:
            placeholder = f"_c{position}"
            columns.append(placeholder)
            conditions.append(
                Condition(placeholder, "=", term.name, right_is_constant=True)
            )
    expression: Expression = Base(formula.predicate, tuple(columns))
    if conditions:
        expression = Project(
            Select(expression, tuple(conditions)), tuple(keep)
        )
    return expression


def _comparison_term(term: Term, label: str):
    """(column-or-None, constant-name-or-None) for a comparison side."""
    if isinstance(term, Variable):
        return term.name, None
    return None, term.name


def _compile_comparison(formula: Eq | Neq) -> Expression:
    comparator = "=" if isinstance(formula, Eq) else "!="
    left_col, left_const = _comparison_term(formula.left, "l")
    right_col, right_const = _comparison_term(formula.right, "r")

    if left_col is not None and right_col is not None:
        if left_col == right_col:
            # v = v is truth over v; v != v is falsity over v.
            base = Universe(left_col)
            if comparator == "=":
                return base
            return Empty((left_col,))
        return Select(
            Join(Universe(left_col), Universe(right_col)),
            (Condition(left_col, comparator, right_col),),
        )
    if left_col is not None:
        return Select(
            Universe(left_col),
            (Condition(left_col, comparator, right_const, True),),
        )
    if right_col is not None:
        return Select(
            Universe(right_col),
            (Condition(right_col, comparator, left_const, True),),
        )
    # Constant vs constant: probe through a scratch Universe column.
    scratch = "_cc"
    probe = Select(
        Universe(scratch),
        (
            Condition(scratch, "=", left_const, True),
            Condition(scratch, comparator, right_const, True),
        ),
    )
    return Project(probe, ())


def compile_formula(formula: Formula) -> Expression:
    """Compile an existential positive formula into the algebra.

    The output columns are the formula's free variable names; closed
    formulas compile to 0-ary (Boolean) expressions.  Infinitary nodes
    must be expanded first (they carry a structure-dependent bound).
    """
    if isinstance(formula, AtomF):
        return _compile_atom(formula)
    if isinstance(formula, (Eq, Neq)):
        return _compile_comparison(formula)
    if isinstance(formula, And):
        if not formula.subformulas:
            return Truth()
        compiled = [compile_formula(sub) for sub in formula.subformulas]
        expression = compiled[0]
        for operand in compiled[1:]:
            expression = Join(expression, operand)
        return expression
    if isinstance(formula, Or):
        if not formula.subformulas:
            return Empty(())
        compiled = [compile_formula(sub) for sub in formula.subformulas]
        all_columns: set[str] = set()
        for operand in compiled:
            all_columns |= set(expression_columns(operand))
        padded = tuple(_pad_to(operand, all_columns) for operand in compiled)
        return Union(padded)
    if isinstance(formula, Exists):
        inner = compile_formula(formula.subformula)
        columns = expression_columns(inner)
        name = formula.variable.name
        if name not in columns:
            # exists v . psi with v absent: psi AND "some element exists".
            inner = Join(inner, Universe(name))
            columns = expression_columns(inner)
        keep = tuple(c for c in columns if c != name)
        return Project(inner, keep)
    if isinstance(formula, (BoundedDisjunction, BoundedConjunction)):
        raise TypeError(
            "infinitary connectives are structure-bounded; compile "
            "family.expand(structure) instead"
        )
    raise TypeError(
        f"not an existential positive formula node: {formula!r}"
    )


def expression_width(expression: Expression) -> int:
    """The maximum arity over all subexpressions (the Section 3 bound)."""
    own = len(expression_columns(expression))
    if isinstance(expression, Base):
        return max(own, len(expression.columns))
    children: tuple[Expression, ...]
    if isinstance(expression, (Universe, Truth, Empty)):
        children = ()
    elif isinstance(expression, Join):
        children = (expression.left, expression.right)
    elif isinstance(expression, Union):
        children = expression.operands
    elif hasattr(expression, "source"):
        children = (expression.source,)
    else:  # pragma: no cover - exhaustive above
        children = ()
    return max([own, *(expression_width(child) for child in children)])
