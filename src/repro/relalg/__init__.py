"""Relational algebra with bounded-arity subexpressions.

Section 3 of the paper: "Intuitively, a formula phi of L^k corresponds
to a relational-algebra expression e_phi with infinitary unions and
intersections, such that all subexpressions of e_phi have arity at most
k."  This subpackage makes that correspondence executable:

* :mod:`repro.relalg.relation` -- named-column relations;
* :mod:`repro.relalg.expressions` -- the algebra: base relations, the
  universe relation, rename, project, select (=, != against columns or
  structure constants), natural join, and union;
* :mod:`repro.relalg.compiler` -- compile an existential positive L^k
  formula into an expression whose every subexpression has arity <= k,
  with :func:`expression_width` auditing the bound.

The compiled expressions are cross-checked against the direct formula
evaluator in the test suite.
"""

from repro.relalg.compiler import compile_formula, expression_width
from repro.relalg.expressions import (
    Base,
    Expression,
    Join,
    Project,
    Rename,
    Select,
    Union,
    Universe,
    evaluate_expression,
)
from repro.relalg.relation import Relation

__all__ = [
    "Relation",
    "Expression",
    "Base",
    "Universe",
    "Rename",
    "Project",
    "Select",
    "Join",
    "Union",
    "evaluate_expression",
    "compile_formula",
    "expression_width",
]
