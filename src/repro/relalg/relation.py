"""Named-column relations: the values the algebra computes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

Element = Hashable


@dataclass(frozen=True)
class Relation:
    """A relation instance with named columns.

    ``columns`` fixes the order of every row; rows are tuples of
    universe elements.  Column names are the free-variable names of the
    originating formula, so the relation *is* its satisfying-assignment
    set.
    """

    columns: tuple[str, ...]
    rows: frozenset[tuple]

    def __init__(self, columns: Iterable[str], rows: Iterable[tuple]) -> None:
        column_tuple = tuple(columns)
        if len(set(column_tuple)) != len(column_tuple):
            raise ValueError(f"duplicate column names: {column_tuple}")
        row_set = frozenset(tuple(row) for row in rows)
        for row in row_set:
            if len(row) != len(column_tuple):
                raise ValueError(
                    f"row {row} does not match columns {column_tuple}"
                )
        object.__setattr__(self, "columns", column_tuple)
        object.__setattr__(self, "rows", row_set)

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def __len__(self) -> int:
        return len(self.rows)

    def index_of(self, column: str) -> int:
        """Position of a column; ValueError if absent."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise ValueError(
                f"no column {column!r} in {self.columns}"
            ) from None

    def reorder(self, columns: Iterable[str]) -> "Relation":
        """The same relation with columns listed in the given order."""
        target = tuple(columns)
        if set(target) != set(self.columns) or len(target) != self.arity:
            raise ValueError(
                f"cannot reorder {self.columns} as {target}"
            )
        positions = [self.index_of(c) for c in target]
        return Relation(
            target,
            {tuple(row[i] for i in positions) for row in self.rows},
        )

    def __repr__(self) -> str:
        return f"Relation(columns={self.columns}, rows={len(self.rows)})"
