"""Command-line interface: the paper's toolbox from a shell.

Subcommands
-----------

* ``repro run PROGRAM GRAPH`` -- evaluate a Datalog(!=) program file on
  a graph file and print the goal relation (or check one tuple).  With
  ``--bind`` / ``--magic`` the query is goal-directed: only answers
  matching the binding are printed, and the magic-sets rewrite derives
  only the facts the binding demands.
* ``repro game A B K`` -- decide the existential K-pebble game on two
  graph files, optionally extracting a separating L^K sentence.
* ``repro classify PATTERN`` -- the FHW/Kolaitis-Vardi dichotomy row for
  a pattern graph, optionally printing the generated program.
* ``repro homeo PATTERN GRAPH --assign h=g ...`` -- decide a fixed
  subgraph homeomorphism instance with the exact oracle (and the flow
  algorithm / game program where applicable).
* ``repro reduce CNF`` -- build the SAT reduction graph G_phi from a
  DIMACS file; optionally write it out or route a model's paths.
* ``repro certificate K`` -- build a Theorem 6.6/6.7 certificate and
  simulate adversarial play against the proof's Player II strategy.
* ``repro explain PROGRAM`` -- pretty-print the compiled rule plans the
  indexed engine executes (library program name or program file);
  ``--engine codegen`` prints the specialized Python source the codegen
  engine generates from those plans instead; ``--magic ADORNMENT``
  shows the adorned and magic (demand) rules of the goal-directed
  rewrite first; ``repro explain PROGRAM GRAPH --analyze`` *runs* the
  program and prints the plans annotated with actual per-node
  cardinalities (EXPLAIN ANALYZE), flagging each rule's hottest node.
* ``repro profile run PROGRAM GRAPH`` / ``repro profile --from
  FILE.jsonl`` -- the deterministic span profiler: a flamegraph-style
  inclusive/exclusive wall-time table keyed by span kind and rule,
  from a live run or from any previously exported ``--trace`` file
  (fixpoint runs, incremental maintenance, governed runs).
* ``repro bench report FILE...`` / ``repro bench compare OLD NEW`` --
  the bench observatory: render ``BENCH_<name>.json`` artifacts and
  gate on per-row regressions (``compare`` exits 1 when a row exceeds
  ``--threshold``; the CI perf gate).
* ``repro maintain PROGRAM GRAPH`` -- incremental view maintenance:
  run the fixpoint once, then replay EDB updates (``--insert`` /
  ``--delete`` / ``--script FILE``) through an
  :class:`~repro.datalog.incremental.IncrementalSession`, reporting
  per-update rounds, delta sizes, and wall time; ``--verify``
  cross-checks every step against a from-scratch evaluation.
* ``repro serve PROGRAM GRAPH`` -- the concurrent query/update
  service: many clients multiplex over one shared live view
  (newline-delimited JSON protocol; see :mod:`repro.serve`).  Reads
  are snapshot-consistent, updates are serialised through a single
  writer task and bump a view epoch, ``subscribe`` pushes per-epoch
  deltas, and ``--checkpoint FILE --checkpoint-every N`` makes the
  view durable (``--resume`` restarts from the last checkpoint).
  Per-tenant query budgets: the shared budget flags set the default,
  ``--tenant NAME=WALL[:TUPLES]`` overrides per tenant.

Observability: every subcommand accepts ``--stats`` (counter table +
evaluation profile on stderr), ``--stats-json FILE`` (the snapshot as
JSON), and ``--trace FILE.jsonl`` (hierarchical span export); ``run``
additionally accepts ``--analyze`` / ``--analyze-json FILE`` (EXPLAIN
ANALYZE for the plan engines); see :mod:`repro.obs`.  Export
destinations are validated up front: an unwritable ``--trace`` /
``--stats-json`` / ``--analyze-json`` path is a one-line exit-2 error,
never a traceback after the work already ran.

Resource governance: ``run`` and ``maintain`` accept ``--timeout``,
``--max-iterations``, and ``--max-tuples`` (see :mod:`repro.guard`).
A tripped budget prints a partial-result summary -- which limit
tripped, rounds completed, tuples derived, plus the sound
under-approximation of the goal relation computed so far -- and exits
with code **3** (distinct from input errors).  ``run --checkpoint
FILE`` saves the engine state at the trip so ``run --resume FILE``
can finish the fixpoint later; ``maintain --checkpoint/--resume`` do
the same for a replayed update script (abort rolls the session back
to the last fully-applied update, and resume skips that prefix).

Errors (missing files, unknown program/engine names, malformed input,
mismatched checkpoints) exit with code 2 and a one-line
``repro: error: ...`` message.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.cnf.sat import satisfying_assignment
from repro.datalog.evaluation import ANALYZE_ENGINES, evaluate
from repro.graphs.digraph import DiGraph
from repro.io import (
    dump_digraph,
    load_cnf,
    load_digraph,
    load_program,
)


class CliError(Exception):
    """A user-input problem: reported as one line, exit code 2."""


#: Exit code for a tripped resource budget (partial results printed).
EXIT_BUDGET = 3


def _budget_from_args(args: argparse.Namespace):
    """The :class:`~repro.guard.ResourceBudget` the flags describe (or None)."""
    wall = getattr(args, "timeout", None)
    iterations = getattr(args, "max_iterations", None)
    tuples = getattr(args, "max_tuples", None)
    if wall is None and iterations is None and tuples is None:
        return None
    from repro.guard import ResourceBudget

    try:
        return ResourceBudget(
            wall_seconds=wall,
            max_iterations=iterations,
            max_tuples=tuples,
        )
    except ValueError as exc:
        raise CliError(str(exc))


def _print_budget_trip(exc) -> None:
    """The exit-3 partial-result summary (stderr)."""
    spent = exc.spent
    print(
        f"repro: budget exhausted: {exc.reason} limit {exc.limit} "
        f"(completed {spent.get('iterations', 0)} rounds, derived "
        f"{spent.get('tuples', 0)} tuples in "
        f"{spent.get('wall_seconds', 0.0):.3f}s)",
        file=sys.stderr,
    )


def _ensure_writable(path: str, flag: str) -> None:
    """Fail fast when an export destination cannot be written.

    Checked *before* the subcommand runs, so ``--trace`` /
    ``--stats-json`` / ``--analyze-json`` pointed at an unwritable path
    is a one-line exit-2 error up front, not a traceback after minutes
    of evaluation already happened.
    """
    try:
        handle = open(path, "a", encoding="utf-8")
    except OSError as exc:
        reason = exc.strerror or exc.__class__.__name__
        raise CliError(f"cannot write {flag} file {path!r}: {reason}")
    handle.close()


def _parse_assignment(pairs: Sequence[str]) -> dict[str, str]:
    assignment = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name or not value:
            raise CliError(f"malformed assignment {pair!r}; use name=node")
        assignment[name] = value
    return assignment


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def _load_program_or_library(path_or_name: str, goal: str | None):
    """A program file, or a library name from ``library_programs()``."""
    import os

    from repro.datalog.library import library_programs

    catalogue = library_programs()
    if path_or_name in catalogue:
        return path_or_name, catalogue[path_or_name]
    if not os.path.exists(path_or_name):
        raise CliError(
            f"unknown program {path_or_name!r}: not a file and not a "
            f"library program (choose from {', '.join(sorted(catalogue))})"
        )
    return os.path.basename(path_or_name), load_program(
        path_or_name, goal=goal
    )


ENGINES = ("indexed", "codegen", "seminaive", "naive", "parallel", "algebra")


def _goal_binding(program, structure, entries: Sequence[str]):
    """Turn ``--bind`` entries into a goal atom + expanded structure.

    One entry per goal-argument position: a node name (bound) or ``_``
    (free).  Bound nodes become fresh ``__g{i}`` constants the returned
    structure interprets, so the binding survives the magic rewrite as
    ordinary Datalog(!=) constants.
    """
    from repro.datalog.ast import Atom, Constant, Variable

    arity = program.arity(program.goal)
    if len(entries) != arity:
        raise CliError(
            f"--bind needs {arity} entries for {program.goal}/{arity} "
            f"(node name, or _ for a free position); got {len(entries)}"
        )
    assignment: dict[str, str] = {}
    terms = []
    for position, entry in enumerate(entries):
        if entry == "_":
            terms.append(Variable(f"x{position + 1}"))
            continue
        if entry not in structure.universe:
            raise CliError(f"--bind node {entry!r} is not in the graph")
        name = f"__g{position + 1}"
        assignment[name] = entry
        terms.append(Constant(name))
    return Atom(program.goal, terms), structure.with_constants(assignment)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.guard import RESUMABLE_ENGINES, BudgetExceeded, Checkpoint

    if args.engine not in ENGINES:
        raise CliError(
            f"unknown engine {args.engine!r} "
            f"(choose from {', '.join(ENGINES)})"
        )
    __, program = _load_program_or_library(args.program, args.goal)
    graph = load_digraph(args.graph)
    profiled = bool(getattr(args, "stats", False))
    analyze = bool(args.analyze) or bool(args.analyze_json)
    if analyze and args.engine not in ANALYZE_ENGINES:
        raise CliError(
            f"--analyze requires a plan engine "
            f"({', '.join(ANALYZE_ENGINES)}); got {args.engine!r}"
        )
    workers = getattr(args, "workers", 1)
    shards = getattr(args, "shards", None)
    if workers < 1:
        raise CliError(f"--workers must be >= 1, got {workers}")
    if shards is not None and shards < 1:
        raise CliError(f"--shards must be >= 1, got {shards}")
    if args.engine != "parallel" and (workers != 1 or shards is not None):
        raise CliError(
            "--workers/--shards apply only to --engine parallel; "
            f"got --engine {args.engine}"
        )
    budget = _budget_from_args(args)
    if args.bind is not None or args.magic:
        if workers != 1 or shards is not None:
            raise CliError(
                "--workers/--shards do not combine with --bind/--magic "
                "(goal-directed queries run single-process)"
            )
        if args.checkpoint or args.resume:
            raise CliError(
                "--checkpoint/--resume do not combine with --bind/--magic "
                "(the goal-directed rewrite evaluates a different program); "
                "bound runs still honour the budget flags"
            )
        return _run_goal_directed(
            args, program, graph, profiled, budget, analyze
        )
    if args.resume is not None and args.engine not in RESUMABLE_ENGINES:
        raise CliError(
            f"--resume needs a resumable engine "
            f"({', '.join(RESUMABLE_ENGINES)}); got {args.engine!r}"
        )
    if args.checkpoint is not None and args.engine == "algebra":
        raise CliError(
            "the algebra engine does not produce checkpoints; "
            "use --engine indexed or seminaive with --checkpoint"
        )
    resume_from = None
    if args.resume is not None:
        resume_from = Checkpoint.load(args.resume)
    try:
        if args.engine == "algebra":
            from repro.datalog.algebra_engine import evaluate_algebra

            result = evaluate_algebra(
                program,
                graph.to_structure(),
                collect_profile=profiled,
                budget=budget,
            )
        else:
            result = evaluate(
                program,
                graph.to_structure(),
                method=args.engine,
                collect_profile=profiled,
                collect_analyze=analyze,
                budget=budget,
                resume_from=resume_from,
                workers=workers,
                shards=shards,
            )
    except BudgetExceeded as exc:
        _print_budget_trip(exc)
        if args.checkpoint is not None and exc.checkpoint is not None:
            exc.checkpoint.save(args.checkpoint)
            print(
                f"repro: wrote checkpoint (round "
                f"{exc.checkpoint.iteration}) to {args.checkpoint}; "
                f"finish with: repro run ... --resume {args.checkpoint}",
                file=sys.stderr,
            )
        elif args.checkpoint is not None:
            print(
                "repro: no checkpoint written (the budget tripped before "
                "the first completed round)",
                file=sys.stderr,
            )
        partial = exc.partial
        rows = sorted(partial.goal_relation, key=repr)
        print(
            f"% PARTIAL {program.goal}: {len(rows)} tuples so far "
            f"({partial.iterations} completed rounds; sound "
            f"under-approximation)"
        )
        for row in rows:
            print("\t".join(str(x) for x in row))
        _emit_analyze(args, partial.profile)
        return EXIT_BUDGET
    if profiled and result.profile is not None:
        _print_profile(result.profile)
    _emit_analyze(args, result.profile)
    if args.check is not None:
        tuple_ = tuple(args.check)
        verdict = result.holds(tuple_)
        print(f"{program.goal}{tuple_!r}: {verdict}")
        return 0 if verdict else 1
    rows = sorted(result.goal_relation, key=repr)
    resumed = "" if resume_from is None else (
        f", resumed from round {resume_from.iteration}"
    )
    print(f"% {program.goal}: {len(rows)} tuples "
          f"({result.iterations} fixpoint rounds{resumed})")
    for row in rows:
        print("\t".join(str(x) for x in row))
    return 0


def _run_goal_directed(
    args: argparse.Namespace,
    program,
    graph,
    profiled: bool,
    budget=None,
    analyze: bool = False,
) -> int:
    """``run`` with ``--bind`` and/or ``--magic``: the query() path.

    ``--check`` composes: the checked tuple becomes an all-bound
    binding, so with ``--magic`` the engine derives only the demanded
    facts before answering.  A tripped budget exits 3 with the usual
    summary, but raw partial rows are not printed: the partial belongs
    to the (possibly magic-rewritten) program and has not passed
    through :func:`~repro.datalog.evaluation.query`'s answer
    extraction and binding filter.
    """
    from repro.datalog.evaluation import query
    from repro.guard import BudgetExceeded

    structure = graph.to_structure()
    if args.bind is not None and args.check is not None:
        raise CliError("--bind and --check are mutually exclusive; "
                       "--check already binds every position")
    entries: Sequence[str]
    if args.bind is not None:
        entries = args.bind
    elif args.check is not None:
        entries = args.check
    else:
        # --magic alone: all positions free (adornment f...f).
        entries = ["_"] * program.arity(program.goal)
    goal_atom, structure = _goal_binding(program, structure, entries)
    try:
        outcome = query(
            program,
            structure,
            goal_atom,
            engine=args.engine,
            magic=bool(args.magic),
            collect_profile=profiled,
            collect_analyze=analyze,
            budget=budget,
        )
    except BudgetExceeded as exc:
        _print_budget_trip(exc)
        return EXIT_BUDGET
    if profiled and outcome.result.profile is not None:
        _print_profile(outcome.result.profile)
    _emit_analyze(args, outcome.result.profile)
    mode = "magic" if outcome.magic else "direct"
    if args.check is not None:
        verdict = outcome.holds
        print(f"{program.goal}{tuple(args.check)!r}: {verdict} "
              f"({mode}, {outcome.derived_tuples} tuples derived)")
        return 0 if verdict else 1
    rows = sorted(outcome.answers, key=repr)
    print(f"% {program.goal} matching {goal_atom}: {len(rows)} answers "
          f"({mode}, {outcome.derived_tuples} tuples derived)")
    for row in rows:
        print("\t".join(str(x) for x in row))
    return 0


def _cmd_game(args: argparse.Namespace) -> int:
    from repro.games.existential import solve_existential_game

    a = load_digraph(args.a).to_structure()
    b = load_digraph(args.b).to_structure()
    result = solve_existential_game(
        a, b, args.k, injective=not args.homomorphism
    )
    flavour = "homomorphism" if args.homomorphism else "existential"
    print(f"{flavour} {args.k}-pebble game: Player {result.winner} wins")
    if result.player_two_wins:
        print(f"winning family: {len(result.family)} positions")
    elif args.separate:
        from repro.logic.evaluation import evaluate_formula
        from repro.logic.separating import separating_sentence
        from repro.logic.simplify import simplify_formula

        sentence = simplify_formula(
            separating_sentence(
                a, b, args.k, injective=not args.homomorphism
            )
        )
        assert evaluate_formula(sentence, a)
        assert not evaluate_formula(sentence, b)
        note = (
            " (inequality-free: Datalog fragment)"
            if args.homomorphism
            else ""
        )
        print(f"separating L^{args.k} sentence{note} "
              "(true in A, false in B):")
        print(f"  {sentence}")
    return 0 if result.player_two_wins else 1


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.core.dichotomy import classify_query

    pattern = load_digraph(args.pattern)
    row = classify_query(pattern)
    print(f"pattern: {len(row.pattern)} nodes, "
          f"{row.pattern.number_of_edges()} edges")
    print(f"class C: {row.in_class_c}")
    print(f"complexity: {row.complexity}")
    print(f"general inputs: {row.general_inputs}")
    print(f"acyclic inputs: {row.acyclic_inputs}")
    if args.program:
        query = (
            row.general_program() if row.in_class_c else row.acyclic_program()
        )
        kind = "Theorem 6.1" if row.in_class_c else "Theorem 6.2 (DAG inputs)"
        print(f"\n% generated {kind} program, goal {query.program.goal}:")
        print(query.program)
    return 0


def _cmd_homeo(args: argparse.Namespace) -> int:
    from repro.core.dichotomy import classify_query
    from repro.fhw.homeomorphism import (
        homeomorphic_via_flow,
        is_homeomorphic_to_distinguished_subgraph,
    )
    from repro.graphs.acyclic import is_acyclic

    pattern = load_digraph(args.pattern)
    graph = load_digraph(args.graph)
    assignment = _parse_assignment(args.assign)
    verdict = is_homeomorphic_to_distinguished_subgraph(
        pattern, graph, assignment
    )
    print(f"exact: {verdict}")
    row = classify_query(pattern)
    if row.in_class_c:
        print(f"flow (Theorem 6.1): "
              f"{homeomorphic_via_flow(pattern, graph, assignment)}")
    if is_acyclic(graph):
        from repro.games.acyclic import acyclic_game_winner

        winner = acyclic_game_winner(graph, pattern, assignment)
        print(f"two-player game (Theorem 6.2): Player {winner} "
              f"({'yes' if winner == 'II' else 'no'})")
    return 0 if verdict else 1


def _cmd_reduce(args: argparse.Namespace) -> int:
    from repro.fhw.reduction import (
        sat_to_disjoint_paths,
        verify_disjoint_paths,
    )

    formula = load_cnf(args.cnf)
    instance = sat_to_disjoint_paths(formula)
    graph = instance.graph
    print(f"formula: {len(formula.variables)} variables, "
          f"{len(formula.clauses)} clauses, "
          f"{len(instance.switches)} literal occurrences")
    print(f"G_phi: {len(graph)} nodes, {graph.number_of_edges()} edges, "
          f"distinguished s1..s4")
    model = satisfying_assignment(formula)
    if model is None:
        print("formula is UNSATISFIABLE: G_phi has no disjoint path pair")
    else:
        p1, p2 = instance.build_disjoint_paths(model)
        assert verify_disjoint_paths(instance, p1, p2)
        print(f"formula is SATISFIABLE: routed disjoint paths of "
              f"{len(p1)} and {len(p2)} nodes")
    if args.output:
        relabelled = graph.relabel(lambda node: repr(node).replace(" ", ""))
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dump_digraph(relabelled))
        print(f"wrote {args.output}")
    if args.dot:
        from repro.io.dot import reduction_to_dot

        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(reduction_to_dot(instance, model))
        print(f"wrote {args.dot}")
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    """A quick battery of the reproduction's keystone checks."""
    from repro.cnf import CnfFormula, complete_formula, is_satisfiable
    from repro.core import theorem_66_certificate, verify_certificate
    from repro.fhw.reduction import sat_to_disjoint_paths, verify_disjoint_paths
    from repro.fhw.switch import build_switch, check_switch_lemma
    from repro.games import solve_existential_game
    from repro.games.formula_game import solve_formula_game
    from repro.graphs.generators import path_pair_structures

    failures = 0

    def check(label: str, outcome: bool) -> None:
        nonlocal failures
        print(f"  [{'PASS' if outcome else 'FAIL'}] {label}")
        failures += not outcome

    print("switch gadget (Figure 1 / Lemma 6.4):")
    check("all Lemma 6.4 properties", check_switch_lemma(build_switch()).holds)

    print("reduction (Figures 2-6):")
    sat = sat_to_disjoint_paths(CnfFormula.parse("x1 | x1"))
    p1, p2 = sat.build_disjoint_paths({"x1": True})
    check("Figure 5 routes disjoint paths", verify_disjoint_paths(sat, p1, p2))
    check("phi_2 unsatisfiable", not is_satisfiable(complete_formula(2)))

    print("pebble games (Example 4.4):")
    short, long_ = path_pair_structures(3, 6)
    check("II wins (short, long)",
          solve_existential_game(short, long_, 2).winner == "II")
    check("I wins (long, short)",
          solve_existential_game(long_, short, 2).winner == "I")

    print("formula game (Definition 6.5):")
    check("II wins k on phi_2", solve_formula_game(complete_formula(2), 2).player_two_wins)
    check("I wins k+1 on phi_2",
          not solve_formula_game(complete_formula(2), 3).player_two_wins)

    print("Theorem 6.6 certificate:")
    report = verify_certificate(
        theorem_66_certificate(1), seeds=4, rounds=80
    )
    check("Player II strategy survives", report.all_survived)

    print("all checks passed" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.core.dichotomy import dichotomy_table, pattern_catalogue

    names = sorted(pattern_catalogue())
    rows = dichotomy_table()
    width = max(len(name) for name in names)
    print(f"{'pattern':<{width}}  {'class C':<8} {'complexity':<30} "
          "general inputs")
    for name, row in zip(names, rows):
        print(f"{name:<{width}}  {str(row.in_class_c):<8} "
              f"{row.complexity:<30} {row.general_inputs}")
    print("\nall patterns: expressible in Datalog(!=) on acyclic inputs "
          "(Theorem 6.2)")
    return 0


def _cmd_certificate(args: argparse.Namespace) -> int:
    from repro.core import (
        even_simple_path_certificate,
        h2_certificate,
        h3_certificate,
        theorem_66_certificate,
    )
    factories = {
        "H1": theorem_66_certificate,
        "H2": h2_certificate,
        "H3": h3_certificate,
        "esp": even_simple_path_certificate,
    }
    from repro.core import verify_certificate

    cert = factories[args.pattern](args.k)
    print(f"certificate against L^{args.k} for {cert.pattern_name}:")
    print(f"  A: {len(cert.a)} nodes (satisfies the query)")
    print(f"  B: {len(cert.b)} nodes (falsifies the query)")
    report = verify_certificate(
        cert, seeds=args.simulate, rounds=args.rounds
    )
    print(f"  Player II survived {report.survived}/{report.total} "
          f"adversarial schedules of {report.rounds} rounds")
    return 0 if report.all_survived else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.datalog.library import library_programs
    from repro.obs.explain import (
        explain_codegen,
        explain_magic,
        explain_program,
    )

    if args.list:
        for name in sorted(library_programs()):
            print(name)
        return 0
    if args.program is None:
        raise CliError(
            "explain needs a program (library name or file); "
            "use --list to see library names"
        )
    name, program = _load_program_or_library(args.program, args.goal)
    if args.analyze or args.graph is not None:
        if args.magic is not None:
            raise CliError(
                "--analyze does not combine with --magic; use "
                "`repro run --magic --analyze` for goal-directed counts"
            )
        if args.graph is None:
            raise CliError(
                "explain --analyze needs a graph file to run the "
                "program on (repro explain PROGRAM GRAPH --analyze)"
            )
        if not args.analyze:
            raise CliError(
                "explain got a graph; add --analyze to run the program "
                "and annotate the plans with actual cardinalities"
            )
        from repro.obs.analyze import render_plan_profile

        graph = load_digraph(args.graph)
        result = evaluate(
            program,
            graph.to_structure(),
            method=args.engine,
            collect_analyze=True,
        )
        print(render_plan_profile(result.profile.plans, name=name), end="")
        return 0
    if args.magic is not None:
        from repro.datalog.magic import (
            goal_atom_from_adornment,
            magic_rewrite,
        )

        try:
            goal_atom = goal_atom_from_adornment(program, args.magic)
            rewrite = magic_rewrite(program, goal_atom)
        except ValueError as exc:
            raise CliError(str(exc))
        if args.engine == "codegen":
            print(explain_codegen(
                rewrite.program, name=f"{name} (magic rewrite)"
            ))
        else:
            print(explain_magic(rewrite, name=name))
        return 0
    if args.engine == "codegen":
        print(explain_codegen(program, name=name))
        return 0
    print(explain_program(program, name=name))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: the deterministic span profiler.

    ``profile run PROGRAM GRAPH`` traces one evaluation (honouring the
    budget flags, so governed runs profile too) and prints the
    inclusive/exclusive table; ``profile --from FILE.jsonl`` profiles
    any previously exported ``--trace`` file (fixpoint runs,
    incremental maintenance, anything that emits spans).
    """
    from repro.obs import trace as _trace
    from repro.obs.profile import (
        profile_jsonl,
        profile_spans,
        render_profile,
    )

    if getattr(args, "profile_command", None) == "run":
        from repro.guard import BudgetExceeded

        if args.engine not in ENGINES:
            raise CliError(
                f"unknown engine {args.engine!r} "
                f"(choose from {', '.join(ENGINES)})"
            )
        name, program = _load_program_or_library(args.program, args.goal)
        graph = load_digraph(args.graph)
        budget = _budget_from_args(args)
        # Reuse the global tracer when --trace already enabled it (the
        # spans then both profile *and* export); otherwise trace just
        # for the duration of this run.
        already_tracing = _trace.tracer.enabled
        tracer = _trace.tracer if already_tracing else _trace.enable_tracing()
        code = 0
        try:
            if args.engine == "algebra":
                from repro.datalog.algebra_engine import evaluate_algebra

                evaluate_algebra(
                    program, graph.to_structure(), budget=budget
                )
            else:
                evaluate(
                    program,
                    graph.to_structure(),
                    method=args.engine,
                    budget=budget,
                )
        except BudgetExceeded as exc:
            _print_budget_trip(exc)
            code = EXIT_BUDGET
        finally:
            if not already_tracing:
                _trace.disable_tracing()
        print(render_profile(profile_spans(tracer.spans), name=name), end="")
        return code
    from_file = getattr(args, "from_file", None)
    if not from_file:
        raise CliError(
            "profile needs either `profile run PROGRAM GRAPH` (live run) "
            "or `profile --from FILE.jsonl` (exported trace)"
        )
    with open(from_file, "r", encoding="utf-8") as handle:
        profile = profile_jsonl(handle)
    print(render_profile(profile, name=from_file), end="")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: render and gate ``BENCH_<name>.json`` artifacts."""
    from repro.obs.bench import (
        compare,
        load_document,
        render_compare,
        render_report,
    )

    def _load(path):
        try:
            return load_document(path)
        except json.JSONDecodeError as exc:
            raise CliError(f"{path}: not valid JSON ({exc})")
        except ValueError as exc:
            raise CliError(str(exc))

    if args.bench_command == "report":
        print(render_report([_load(path) for path in args.files]), end="")
        return 0
    old = _load(args.old)
    new = _load(args.new)
    try:
        report = compare(
            old, new, threshold=args.threshold, mode=args.mode
        )
    except ValueError as exc:
        raise CliError(str(exc))
    print(render_compare(report), end="")
    return 0 if report.ok else 1


def _cmd_maintain(args: argparse.Namespace) -> int:
    from repro.datalog.incremental import (
        IncrementalSession,
        Update,
        parse_update_script,
    )
    from repro.guard import (
        MaintenanceAborted,
        MaintenanceCheckpoint,
        program_fingerprint,
    )

    __, program = _load_program_or_library(args.program, args.goal)
    graph = load_digraph(args.graph)
    updates: list[Update] = []
    if args.script:
        with open(args.script, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            updates.extend(parse_update_script(text))
        except ValueError as exc:
            raise CliError(f"{args.script}: {exc}")
    # Command-line updates run after the script: all inserts, then all
    # deletes (argparse cannot preserve interleaving; use --script for
    # an ordered sequence).
    for entry in args.insert or []:
        updates.append(Update("insert", entry[0], tuple(entry[1:])))
    for entry in args.delete or []:
        updates.append(Update("delete", entry[0], tuple(entry[1:])))
    if not updates:
        raise CliError(
            "maintain needs at least one update "
            "(--insert, --delete, or --script)"
        )
    program_fp = program_fingerprint(program)
    applied_offset = 0
    resume_edb = None
    if args.resume is not None:
        ckpt = MaintenanceCheckpoint.load(args.resume)
        ckpt.validate(program_fp)
        applied_offset = ckpt.updates_applied
        resume_edb = ckpt.edb
        if applied_offset >= len(updates):
            raise CliError(
                f"checkpoint {args.resume!r} already covers all "
                f"{len(updates)} updates ({applied_offset} applied)"
            )
    session = IncrementalSession(
        program,
        graph.to_structure(),
        extra_edb=resume_edb,
        budget=_budget_from_args(args),
    )
    initial = session.initial_result
    if args.resume is not None:
        print(
            f"% resumed from {args.resume}: {applied_offset} updates "
            f"already applied, EDB restored "
            f"({len(initial.goal_relation)} {program.goal} tuples)"
        )
    else:
        print(
            f"% initial fixpoint: {len(initial.goal_relation)} "
            f"{program.goal} tuples ({initial.iterations} rounds)"
        )
    failures = 0
    for number, update in enumerate(
        updates[applied_offset:], start=applied_offset + 1
    ):
        try:
            result = session.apply(update)
        except MaintenanceAborted as exc:
            print(
                f"[{number:>3}] {update}: ABORTED ({exc.reason} limit "
                f"{exc.limit}) and rolled back; "
                f"{number - 1}/{len(updates)} updates applied",
                file=sys.stderr,
            )
            if args.checkpoint is not None:
                MaintenanceCheckpoint(
                    program_fingerprint=program_fp,
                    goal=program.goal,
                    edb=session.current_extra_edb(),
                    updates_applied=number - 1,
                ).save(args.checkpoint)
                print(
                    f"repro: wrote maintenance checkpoint to "
                    f"{args.checkpoint}; finish with: repro maintain ... "
                    f"--resume {args.checkpoint}",
                    file=sys.stderr,
                )
            return EXIT_BUDGET
        except ValueError as exc:
            raise CliError(f"update {number} ({update}): {exc}")
        summary = result.to_dict()
        line = (
            f"[{number:>3}] {update}: applied={len(result.applied)} "
            f"rounds={result.rounds} "
            f"delta_touched={result.delta_tuples_touched} "
            f"net_idb={result.net_change:+d} "
            f"wall_ms={summary['wall_ms']}"
        )
        if result.kind == "delete":
            line += (
                f" overdeleted={summary['overdeleted']} "
                f"rederived={summary['rederived']}"
            )
        print(line)
        if args.verify:
            full = session.reevaluate()
            ok = session.relations == {
                predicate: frozenset(full.relations[predicate])
                for predicate in program.idb_predicates
            }
            failures += not ok
            print(f"      verify: {'OK' if ok else 'MISMATCH'}")
    rows = sorted(session.goal_relation, key=repr)
    print(
        f"% final {program.goal}: {len(rows)} tuples after "
        f"{applied_offset + session.update_count} updates"
    )
    for row in rows:
        print("\t".join(str(x) for x in row))
    return 0 if failures == 0 else 1


def _parse_tenant_budgets(entries: Sequence[str] | None) -> dict:
    """``--tenant NAME=WALL[:TUPLES]`` entries -> per-tenant budgets."""
    from repro.guard import ResourceBudget

    budgets = {}
    for entry in entries or []:
        name, sep, spec = entry.partition("=")
        if not sep or not name or not spec:
            raise CliError(
                f"malformed --tenant {entry!r}; use NAME=WALL_SECONDS "
                "or NAME=WALL_SECONDS:MAX_TUPLES"
            )
        wall_text, _, tuples_text = spec.partition(":")
        try:
            wall = float(wall_text) if wall_text else None
            tuples = int(tuples_text) if tuples_text else None
            budgets[name] = ResourceBudget(
                wall_seconds=wall, max_tuples=tuples
            )
        except ValueError as exc:
            raise CliError(f"malformed --tenant {entry!r}: {exc}")
    return budgets


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.guard import CheckpointMismatch
    from repro.serve.server import SERVE_ENGINES, ReproServer, run_server
    from repro.serve.view import LiveView
    from repro.serve.wal import WalError, WriteAheadLog, recover

    if args.engine not in SERVE_ENGINES:
        raise CliError(
            f"unknown serve engine {args.engine!r} "
            f"(choose from {', '.join(SERVE_ENGINES)}; the server is "
            "single-process, so 'parallel' is not offered)"
        )
    if args.checkpoint_every < 0:
        raise CliError(
            f"--checkpoint-every must be >= 0, got {args.checkpoint_every}"
        )
    if args.checkpoint_every > 0 and not args.checkpoint:
        raise CliError("--checkpoint-every needs --checkpoint FILE")
    if args.resume and not args.checkpoint:
        raise CliError("--resume needs --checkpoint FILE (the file to load)")
    if args.wal and not args.checkpoint:
        raise CliError(
            "--wal needs --checkpoint FILE (the log compacts against it)"
        )
    if args.fsync_interval <= 0:
        raise CliError(
            f"--fsync-interval must be > 0, got {args.fsync_interval}"
        )
    if args.max_queue < 0 or args.max_outbox < 0:
        raise CliError("--max-queue and --max-outbox must be >= 0")
    if args.history < 1:
        raise CliError(f"--history must be >= 1, got {args.history}")
    __, program = _load_program_or_library(args.program, args.goal)
    graph = load_digraph(args.graph)
    structure = graph.to_structure()
    dedupe: dict = {}
    if args.resume and args.wal:
        ckpt_exists = os.path.exists(args.checkpoint)
        wal_exists = os.path.exists(args.wal)
        if not ckpt_exists and not wal_exists:
            raise CliError(
                f"--resume: neither checkpoint {args.checkpoint!r} nor "
                f"WAL {args.wal!r} exists"
            )
        try:
            view, dedupe, report = recover(
                program,
                structure,
                args.checkpoint if ckpt_exists else None,
                args.wal if wal_exists else None,
            )
        except (WalError, CheckpointMismatch) as exc:
            raise CliError(str(exc))
        print(
            f"% resumed from {args.checkpoint}: epoch {view.epoch}, "
            f"{len(view.snapshot.goal_rows)} {program.goal} tuples"
        )
        print(
            f"% wal replay: {report.replayed} records applied, "
            f"{report.skipped} skipped, {report.torn_bytes} torn bytes "
            "truncated"
        )
    elif args.resume:
        if not os.path.exists(args.checkpoint):
            raise CliError(
                f"--resume: checkpoint file {args.checkpoint!r} does not "
                "exist"
            )
        view = LiveView.resume(program, structure, args.checkpoint)
        print(
            f"% resumed from {args.checkpoint}: epoch {view.epoch}, "
            f"{len(view.snapshot.goal_rows)} {program.goal} tuples"
        )
    else:
        view = LiveView(program, structure)
        print(
            f"% initial fixpoint: {len(view.snapshot.goal_rows)} "
            f"{program.goal} tuples"
        )
    wal = None
    if args.wal:
        if args.resume:
            # Boot-compaction: pin checkpoint and fresh WAL to the
            # recovered epoch so they agree if we crash again before
            # the first cadence checkpoint.
            view.checkpoint(args.checkpoint)
        wal = WriteAheadLog.create(
            args.wal,
            view.epoch,
            view.program_fp,
            dedupe,
            fsync=args.fsync,
            fsync_interval=args.fsync_interval,
        )
    server = ReproServer(
        view,
        host=args.host,
        port=args.port,
        engine=args.engine,
        default_budget=_budget_from_args(args),
        tenant_budgets=_parse_tenant_budgets(args.tenant),
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        wal=wal,
        dedupe=dedupe,
        max_queue=args.max_queue,
        max_outbox=args.max_outbox,
        history=args.history,
    )

    async def _serve() -> int:
        await server.start()
        # The one line scripted clients (tests, CI smoke, the kill
        # drill) parse to learn the bound port -- keep it stable.
        print(
            f"repro: serving {program.goal} on "
            f"{server.host}:{server.port}",
            flush=True,
        )
        await server.serve_until_stopped()
        return 0

    try:
        code = asyncio.run(_serve())
    except KeyboardInterrupt:
        code = 0
    print(f"repro: serve stopped at epoch {server.view.epoch}")
    return code


# ---------------------------------------------------------------------------
# Observability plumbing (--stats / --trace, shared by every subcommand)
# ---------------------------------------------------------------------------


def _emit_analyze(args: argparse.Namespace, profile) -> None:
    """``run --analyze`` / ``--analyze-json`` output from a profile.

    No-ops when the run collected no plan statistics (analyze not
    requested, or a budget tripped before any plan ran).
    """
    plans = getattr(profile, "plans", None) if profile is not None else None
    if plans is None:
        return
    if getattr(args, "analyze", False):
        from repro.obs.analyze import render_plan_profile

        print(render_plan_profile(plans), file=sys.stderr, end="")
    path = getattr(args, "analyze_json", None)
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            plans.write_json(handle)
        print(f"repro: wrote EXPLAIN ANALYZE to {path}", file=sys.stderr)


def _print_profile(profile) -> None:
    """The per-rule / per-iteration tables behind ``run --stats``."""
    err = sys.stderr
    print(f"== profile ({profile.engine} engine) ==", file=err)
    print("per-rule firings (distinct new head tuples):", file=err)
    for label, count in zip(
        profile.rule_labels, profile.total_rule_firings()
    ):
        print(f"  {count:>8}  {label}", file=err)
    print("per-iteration deltas:", file=err)
    header = (
        f"  {'round':>5} {'new':>6} {'bindings':>9} {'wall_ms':>9}  deltas"
    )
    print(header, file=err)
    for iteration in profile.iterations:
        deltas = ", ".join(
            f"{predicate}={size}"
            for predicate, size in sorted(iteration.delta_sizes.items())
        )
        print(
            f"  {iteration.index:>5} {iteration.new_tuples:>6} "
            f"{iteration.bindings_enumerated:>9} "
            f"{iteration.wall_seconds * 1000:>9.2f}  {deltas}",
            file=err,
        )


def _print_stats(snapshot: dict) -> None:
    """The counter table behind ``--stats`` (stderr, human-readable)."""
    err = sys.stderr
    print("== stats ==", file=err)
    counters = snapshot.get("counters", {})
    if counters:
        for name in sorted(counters):
            print(f"  {counters[name]:>12}  {name}", file=err)
    else:
        print("  (no counters incremented)", file=err)
    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        print(f"  {gauges[name]:>12}  {name} (gauge)", file=err)
    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        h = histograms[name]
        print(
            f"  {name} (histogram): count={h['count']} mean={h['mean']:.2f} "
            f"min={h['min']} max={h['max']} "
            f"p50={h['p50']:g} p95={h['p95']:g} p99={h['p99']:g}",
            file=err,
        )


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    from repro._version import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kolaitis-Vardi (PODS 1990) reproduction toolbox",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    # Observability flags shared by every subcommand (parents= plumbing).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--stats", action="store_true",
        help="print a metrics counter table (and, for `run`, the "
        "evaluation profile) on stderr",
    )
    common.add_argument(
        "--stats-json", metavar="FILE", dest="stats_json",
        help="write the metrics snapshot (counters, gauges, histogram "
        "quantiles) as JSON",
    )
    common.add_argument(
        "--trace", metavar="FILE.jsonl",
        help="record hierarchical spans and write them as JSONL",
    )
    # Resource-budget flags shared by `run` and `maintain` (repro.guard):
    # a tripped limit reports partial results and exits 3.
    budget = argparse.ArgumentParser(add_help=False)
    budget.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="wall-clock budget; checked at round boundaries and "
        "(coarsely) inside long rounds",
    )
    budget.add_argument(
        "--max-iterations", type=int, metavar="N",
        help="fixpoint-round budget",
    )
    budget.add_argument(
        "--max-tuples", type=int, metavar="N",
        help="derived-tuple budget (counted at round boundaries)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", parents=[common, budget],
        help="evaluate a Datalog(!=) program",
    )
    run.add_argument(
        "program",
        help="program file (%% goal: directive) or library program name",
    )
    run.add_argument("graph", help="graph file")
    run.add_argument("--goal", help="override the goal predicate")
    run.add_argument(
        "--check", nargs="*", metavar="NODE",
        help="test one tuple instead of printing the relation",
    )
    run.add_argument(
        "--engine", default="indexed",
        help=f"evaluation engine ({', '.join(ENGINES)})",
    )
    run.add_argument(
        "--analyze", action="store_true",
        help="print EXPLAIN ANALYZE (per-plan-node actual cardinalities) "
        f"on stderr after the run; plan engines only "
        f"({', '.join(ANALYZE_ENGINES)})",
    )
    run.add_argument(
        "--analyze-json", metavar="FILE", dest="analyze_json",
        help="write the EXPLAIN ANALYZE plan statistics as JSON",
    )
    run.add_argument(
        "--bind", nargs="+", metavar="NODE",
        help="goal binding, one entry per goal argument (node name, or "
        "_ for a free position); prints only the matching answers",
    )
    run.add_argument(
        "--magic", action="store_true",
        help="evaluate goal-directedly via the magic-sets rewrite "
        "(derives only the facts the binding demands; combine with "
        "--bind or --check)",
    )
    run.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for --engine parallel (default 1 = "
        "inline, no processes)",
    )
    run.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="delta hash-partition count for --engine parallel "
        "(default: --workers; any value yields the same fixpoint)",
    )
    run.add_argument(
        "--checkpoint", metavar="FILE",
        help="if the budget trips, save the engine state at the last "
        "completed round so --resume can finish the fixpoint",
    )
    run.add_argument(
        "--resume", metavar="FILE",
        help="resume a checkpointed fixpoint (indexed/seminaive "
        "engines; the program and graph must match the checkpoint)",
    )
    run.set_defaults(func=_cmd_run)

    game = sub.add_parser(
        "game", parents=[common], help="solve an existential pebble game"
    )
    game.add_argument("a", help="graph file for structure A")
    game.add_argument("b", help="graph file for structure B")
    game.add_argument("k", type=int, help="number of pebbles")
    game.add_argument(
        "--homomorphism", action="store_true",
        help="play the inequality-free (Datalog) variant",
    )
    game.add_argument(
        "--separate", action="store_true",
        help="when Player I wins, print a separating L^k sentence",
    )
    game.set_defaults(func=_cmd_game)

    classify = sub.add_parser(
        "classify", parents=[common], help="dichotomy row for a pattern"
    )
    classify.add_argument("pattern", help="pattern graph file")
    classify.add_argument(
        "--program", action="store_true",
        help="print the generated Datalog(!=) program",
    )
    classify.set_defaults(func=_cmd_classify)

    homeo = sub.add_parser(
        "homeo", parents=[common], help="decide a homeomorphism instance"
    )
    homeo.add_argument("pattern", help="pattern graph file")
    homeo.add_argument("graph", help="input graph file")
    homeo.add_argument(
        "--assign", nargs="+", required=True, metavar="PATTERN=NODE",
        help="pattern-node to graph-node assignment",
    )
    homeo.set_defaults(func=_cmd_homeo)

    reduce_ = sub.add_parser(
        "reduce", parents=[common], help="build G_phi from DIMACS CNF"
    )
    reduce_.add_argument("cnf", help="DIMACS CNF file")
    reduce_.add_argument("--output", help="write G_phi as a graph file")
    reduce_.add_argument(
        "--dot",
        help="write G_phi as Graphviz DOT (routed paths highlighted when "
        "the formula is satisfiable)",
    )
    reduce_.set_defaults(func=_cmd_reduce)

    table = sub.add_parser(
        "table", parents=[common],
        help="print the full dichotomy table (experiment E15)",
    )
    table.set_defaults(func=_cmd_table)

    selfcheck = sub.add_parser(
        "selfcheck", parents=[common],
        help="run the reproduction's keystone checks",
    )
    selfcheck.set_defaults(func=_cmd_selfcheck)

    certificate = sub.add_parser(
        "certificate", parents=[common],
        help="build and exercise an inexpressibility certificate",
    )
    certificate.add_argument("k", type=int, help="pebble count to certify against")
    certificate.add_argument(
        "--pattern", choices=["H1", "H2", "H3", "esp"], default="H1"
    )
    certificate.add_argument("--simulate", type=int, default=5)
    certificate.add_argument("--rounds", type=int, default=120)
    certificate.set_defaults(func=_cmd_certificate)

    explain = sub.add_parser(
        "explain", parents=[common],
        help="pretty-print the indexed engine's compiled rule plans",
    )
    explain.add_argument(
        "program", nargs="?",
        help="library program name or program file",
    )
    explain.add_argument(
        "graph", nargs="?",
        help="graph file to run the program on (with --analyze)",
    )
    explain.add_argument("--goal", help="override the goal predicate")
    explain.add_argument(
        "--analyze", action="store_true",
        help="run the program on GRAPH and annotate every plan node "
        "with actual rows in/out, flagging each rule's hottest node",
    )
    explain.add_argument(
        "--engine", choices=("indexed", "codegen"), default="indexed",
        help="indexed: the compiled rule plans (default); "
        "codegen: the specialized Python source generated from them",
    )
    explain.add_argument(
        "--magic", metavar="ADORNMENT",
        help="show the magic-sets rewrite for a goal adornment "
        "(e.g. bf: first argument bound, second free) before the plans",
    )
    explain.add_argument(
        "--list", action="store_true", help="list library program names"
    )
    explain.set_defaults(func=_cmd_explain)

    profile = sub.add_parser(
        "profile", parents=[common],
        help="deterministic span profiler "
        "(inclusive/exclusive time per span kind and rule)",
    )
    profile.add_argument(
        "--from", dest="from_file", metavar="FILE.jsonl",
        help="profile a previously exported --trace file "
        "instead of a live run",
    )
    profile.set_defaults(func=_cmd_profile)
    profile_sub = profile.add_subparsers(dest="profile_command")
    profile_run = profile_sub.add_parser(
        "run", parents=[common, budget],
        help="trace one evaluation and profile its spans",
    )
    profile_run.add_argument(
        "program",
        help="program file (%% goal: directive) or library program name",
    )
    profile_run.add_argument("graph", help="graph file")
    profile_run.add_argument("--goal", help="override the goal predicate")
    profile_run.add_argument(
        "--engine", default="indexed",
        help=f"evaluation engine ({', '.join(ENGINES)})",
    )
    profile_run.set_defaults(func=_cmd_profile)

    bench = sub.add_parser(
        "bench", parents=[common],
        help="bench observatory: render and gate BENCH_<name>.json "
        "artifacts",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_report = bench_sub.add_parser(
        "report", help="render one or more bench artifacts as a table"
    )
    bench_report.add_argument(
        "files", nargs="+", metavar="FILE.json",
        help="BENCH_<name>.json artifacts (schema 1 or 2)",
    )
    bench_report.set_defaults(func=_cmd_bench)
    bench_compare = bench_sub.add_parser(
        "compare",
        help="compare two bench artifacts row-for-row; exit 1 when a "
        "row regresses past --threshold (the CI perf gate)",
    )
    bench_compare.add_argument("old", help="baseline artifact")
    bench_compare.add_argument("new", help="candidate artifact")
    bench_compare.add_argument(
        "--threshold", type=float, default=1.25, metavar="RATIO",
        help="new/old ratio above which a row regresses (default 1.25)",
    )
    bench_compare.add_argument(
        "--mode", choices=("wall", "counters"), default="wall",
        help="wall: compare wall-clock (same-machine before/after); "
        "counters: compare work counters (machine-independent; what "
        "CI gates on)",
    )
    bench_compare.set_defaults(func=_cmd_bench)

    maintain = sub.add_parser(
        "maintain", parents=[common, budget],
        help="keep a program's fixpoint live under EDB updates",
    )
    maintain.add_argument(
        "program",
        help="program file (%% goal: directive) or library program name",
    )
    maintain.add_argument("graph", help="graph file (the initial EDB)")
    maintain.add_argument("--goal", help="override the goal predicate")
    maintain.add_argument(
        "--insert", nargs="+", action="append", metavar="PRED/NODE",
        help="insert one EDB fact: predicate name followed by its "
        "arguments (repeatable)",
    )
    maintain.add_argument(
        "--delete", nargs="+", action="append", metavar="PRED/NODE",
        help="delete one EDB fact: predicate name followed by its "
        "arguments (repeatable)",
    )
    maintain.add_argument(
        "--script", metavar="FILE",
        help="update script: one 'insert|delete PRED node...' per line "
        "(%%/# comments), applied in order before any --insert/--delete",
    )
    maintain.add_argument(
        "--verify", action="store_true",
        help="after every update, cross-check the maintained view "
        "against a from-scratch evaluation (exit 1 on mismatch)",
    )
    maintain.add_argument(
        "--checkpoint", metavar="FILE",
        help="if the budget aborts the replay, save the EDB after the "
        "last fully-applied update so --resume can continue the script",
    )
    maintain.add_argument(
        "--resume", metavar="FILE",
        help="resume an aborted replay: restore the checkpointed EDB "
        "and skip the already-applied prefix of the updates",
    )
    maintain.set_defaults(func=_cmd_maintain)

    serve = sub.add_parser(
        "serve", parents=[common, budget],
        help="serve a live materialized view to concurrent clients",
    )
    serve.add_argument(
        "program",
        help="program file (%% goal: directive) or library program name",
    )
    serve.add_argument("graph", help="graph file (the initial EDB)")
    serve.add_argument("--goal", help="override the goal predicate")
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="TCP port (default 0 = pick a free port; the bound port is "
        "printed on the 'repro: serving ...' line)",
    )
    serve.add_argument(
        "--engine", default="indexed",
        help="engine for magic (demand-driven) queries; the server is "
        "single-process, so 'parallel' is excluded",
    )
    serve.add_argument(
        "--tenant", action="append", metavar="NAME=WALL[:TUPLES]",
        help="per-tenant query budget override (repeatable); unnamed "
        "tenants get the budget flags' limits",
    )
    serve.add_argument(
        "--checkpoint", metavar="FILE",
        help="durable checkpoint file (written atomically; also what "
        "--resume loads)",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        dest="checkpoint_every",
        help="checkpoint after every N applied updates (0 = never; "
        "needs --checkpoint)",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="restore the view from --checkpoint FILE before serving "
        "(same program required; serves a bit-identical view); with "
        "--wal the log suffix is replayed on top, recovering every "
        "acknowledged update since the checkpoint",
    )
    serve.add_argument(
        "--wal", metavar="FILE",
        help="write-ahead log: append every applied update (CRC-guarded, "
        "epoch-stamped) before acknowledging it; rotates at each "
        "checkpoint (needs --checkpoint)",
    )
    serve.add_argument(
        "--fsync", choices=("always", "interval", "off"),
        default="interval",
        help="WAL fsync policy: 'always' fsyncs every append (acked "
        "survives power loss), 'interval' fsyncs periodically (acked "
        "survives process death; default), 'off' never fsyncs "
        "explicitly",
    )
    serve.add_argument(
        "--fsync-interval", type=float, default=0.1, metavar="SECONDS",
        dest="fsync_interval",
        help="max seconds between fsyncs in --fsync interval mode "
        "(default %(default)s)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=0, metavar="N", dest="max_queue",
        help="bound the writer queue at N jobs; further updates get the "
        "structured 'overloaded' error with a retry_after_ms hint "
        "(0 = unbounded)",
    )
    serve.add_argument(
        "--max-outbox", type=int, default=0, metavar="N",
        dest="max_outbox",
        help="bound each subscriber's outbox at N messages; a slow "
        "subscriber's deltas are dropped and healed with one 'resync' "
        "event (0 = unbounded)",
    )
    serve.add_argument(
        "--history", type=int, default=256, metavar="N",
        help="epochs of per-predicate deltas kept for from_epoch "
        "resubscribe backfill (default %(default)s)",
    )
    serve.set_defaults(func=_cmd_serve)

    return parser


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected subcommand, mapping failures to exit codes.

    All user-input failures (missing files, unknown program / engine
    names, malformed programs or graphs, unwritable output paths)
    funnel through one path: a single ``repro: error: ...`` line on
    stderr and exit code 2.
    """
    from repro.guard import (
        BudgetExceeded,
        CheckpointMismatch,
        MaintenanceAborted,
    )
    from repro.io.cnf_format import DimacsError
    from repro.io.graph_format import GraphFormatError
    from repro.io.program_format import ProgramFormatError

    try:
        return args.func(args)
    except (CliError, CheckpointMismatch) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except (FileNotFoundError, IsADirectoryError) as exc:
        filename = getattr(exc, "filename", None) or exc
        print(f"repro: error: cannot read {filename}", file=sys.stderr)
        return 2
    except (DimacsError, GraphFormatError, ProgramFormatError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro explain ... | head`):
        # not an error on our side.  Redirect stdout to devnull so the
        # interpreter's exit-time flush doesn't raise again, and exit
        # with the conventional SIGPIPE status.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 128 + 13
    except OSError as exc:
        # Any other I/O failure (unwritable output, disk full): one
        # line, exit 2, never a traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except BudgetExceeded as exc:
        # Backstop: subcommands normally handle trips themselves (with
        # partial output); any stray trip still maps to the exit-3
        # contract rather than a traceback.
        _print_budget_trip(exc)
        return EXIT_BUDGET
    except MaintenanceAborted as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_BUDGET


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code.

    Export destinations (``--trace``, ``--stats-json``,
    ``--analyze-json``) are validated before the subcommand runs, and
    the end-of-run exports themselves are guarded: a path that becomes
    unwritable mid-run still produces a one-line ``repro: error:``
    diagnostic and exit code 2, never a traceback.
    """
    from repro.obs import metrics as _metrics
    from repro.obs import trace as _trace

    parser = build_parser()
    args = parser.parse_args(argv)
    stats = bool(getattr(args, "stats", False))
    stats_json = getattr(args, "stats_json", None)
    trace_path = getattr(args, "trace", None)
    try:
        for flag, path in (
            ("--trace", trace_path),
            ("--stats-json", stats_json),
            ("--analyze-json", getattr(args, "analyze_json", None)),
        ):
            if path:
                _ensure_writable(path, flag)
    except CliError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    if stats or stats_json:
        _metrics.enable_metrics()
    if trace_path:
        _trace.enable_tracing()
    export_failures: list[str] = []
    try:
        code = _dispatch(args)
    finally:
        if stats or stats_json:
            snapshot = _metrics.metrics.snapshot()
            _metrics.disable_metrics()
            if stats:
                _print_stats(snapshot)
            if stats_json:
                try:
                    with open(stats_json, "w", encoding="utf-8") as handle:
                        json.dump(snapshot, handle, indent=2, sort_keys=True)
                        handle.write("\n")
                except OSError as exc:
                    export_failures.append(
                        f"cannot write --stats-json file "
                        f"{stats_json!r}: {exc}"
                    )
        if trace_path:
            span_count = len(_trace.tracer.spans)
            try:
                _trace.tracer.write_jsonl(trace_path)
            except OSError as exc:
                export_failures.append(
                    f"cannot write --trace file {trace_path!r}: {exc}"
                )
            else:
                print(
                    f"repro: wrote {span_count} spans to {trace_path}",
                    file=sys.stderr,
                )
            _trace.disable_tracing()
    for failure in export_failures:
        print(f"repro: error: {failure}", file=sys.stderr)
    if export_failures and code == 0:
        code = 2
    return code


if __name__ == "__main__":
    sys.exit(main())
