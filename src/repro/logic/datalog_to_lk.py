"""Theorem 3.6: Datalog(!=) programs translate into L^{l+r}.

For a program pi whose operator is defined by an existential positive
formula ``phi(w_1..w_r, S)`` with l distinct variables, every stage
``Theta^n`` is definable by an existential positive *first-order* formula
``phi^n(w_1..w_r)`` using at most ``l + r`` distinct variables, and
``pi^inf`` is the infinitary disjunction ``V_n phi^n`` -- a formula of
``L^{l+r}``.

The implementation follows the proof exactly:

1. canonicalise every rule: head variables become ``w1..wr``, body-only
   variables become ``z1, z2, ...`` (names shared across rules -- the
   paper counts distinct variables of the whole disjunction phi);
2. ``phi^1`` replaces IDB atoms by falsity;
3. ``phi^{n+1}`` replaces each IDB atom ``S(t_1..t_r)`` by the paper's
   two-step renaming gadget::

       (Ey_1..y_r)( /\\ y_j = t_j  &
           (Ew_1..w_r)( /\\ w_j = y_j  &  phi^n(w_1..w_r) ) )

   which re-uses the names ``w_j`` (shadowing) and introduces only the r
   fresh names ``y_j`` -- keeping the total variable count at ``l + r``.

Multiple IDB predicates are handled by the simultaneous induction the
paper sketches ("minor modifications"): one ``phi_P^n`` per IDB P, with
mutual substitution.  Pure Datalog programs yield inequality-free
formulas, the refinement stated at the end of Theorem 3.6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.datalog.ast import (
    Atom,
    Constant,
    Equality,
    Inequality,
    Program,
    Rule,
    Term,
    Variable,
)
from repro.logic.formulas import (
    And,
    AtomF,
    BoundedDisjunction,
    Eq,
    Exists,
    Formula,
    Neq,
    Or,
    falsum,
)
from repro.logic.width import all_variables, uses_inequality, variable_width
from repro.structures.structure import Structure


def _head_variable(index: int) -> Variable:
    return Variable(f"w{index + 1}")


def _body_variable(index: int) -> Variable:
    return Variable(f"z{index + 1}")


def _bridge_variable(index: int) -> Variable:
    return Variable(f"y{index + 1}")


def _canonical_rule_formula(
    rule: Rule, idb: frozenset[str]
) -> tuple[Formula, int]:
    """One disjunct of phi_P: Ez-bar (head equalities & body literals).

    Returns the formula and the number of z-variables used.  IDB atoms
    stay as :class:`AtomF` nodes over the IDB predicate name; the stage
    construction substitutes them later.
    """
    renaming: dict[Variable, Variable] = {}

    def rename(term: Term) -> Term:
        if isinstance(term, Constant):
            return term
        if term not in renaming:
            renaming[term] = _body_variable(len(renaming))
        return renaming[term]

    conjuncts: list[Formula] = []
    body_parts: list[Formula] = []
    for literal in rule.body:
        if isinstance(literal, Atom):
            body_parts.append(
                AtomF(literal.predicate, tuple(rename(t) for t in literal.args))
            )
        elif isinstance(literal, Equality):
            body_parts.append(Eq(rename(literal.left), rename(literal.right)))
        elif isinstance(literal, Inequality):
            body_parts.append(Neq(rename(literal.left), rename(literal.right)))
    # Head equalities tie the canonical w-variables to the head terms.
    for index, term in enumerate(rule.head.args):
        conjuncts.append(Eq(_head_variable(index), rename(term)))
    conjuncts.extend(body_parts)

    formula: Formula = And(conjuncts)
    for variable in sorted(renaming.values(), reverse=True):
        formula = Exists(variable, formula)
    return formula, len(renaming)


def _operator_formulas(program: Program) -> tuple[dict[str, Formula], int]:
    """phi_P for every IDB predicate P, plus the max z-variable count."""
    formulas: dict[str, Formula] = {}
    z_count = 0
    for predicate in sorted(program.idb_predicates):
        disjuncts = []
        for rule in program.rules_for(predicate):
            disjunct, used = _canonical_rule_formula(
                rule, program.idb_predicates
            )
            disjuncts.append(disjunct)
            z_count = max(z_count, used)
        formulas[predicate] = Or(disjuncts)
    return formulas, z_count


def _substitute_idb(
    formula: Formula,
    replacement: Mapping[str, Formula],
    arities: Mapping[str, int],
) -> Formula:
    """Replace IDB atoms via the paper's two-step renaming gadget."""
    if isinstance(formula, AtomF):
        if formula.predicate not in replacement:
            return formula
        r = arities[formula.predicate]
        inner = replacement[formula.predicate]
        # (Ew_1..w_r)( /\ w_j = y_j & inner )
        ws = [_head_variable(j) for j in range(r)]
        ys = [_bridge_variable(j) for j in range(r)]
        core: Formula = And(
            [Eq(w, y) for w, y in zip(ws, ys)] + [inner]
        )
        for w in reversed(ws):
            core = Exists(w, core)
        # (Ey_1..y_r)( /\ y_j = t_j & core )
        outer: Formula = And(
            [Eq(y, t) for y, t in zip(ys, formula.args)] + [core]
        )
        for y in reversed(ys):
            outer = Exists(y, outer)
        return outer
    if isinstance(formula, (Eq, Neq)):
        return formula
    if isinstance(formula, And):
        return And(
            _substitute_idb(sub, replacement, arities)
            for sub in formula.subformulas
        )
    if isinstance(formula, Or):
        return Or(
            _substitute_idb(sub, replacement, arities)
            for sub in formula.subformulas
        )
    if isinstance(formula, Exists):
        return Exists(
            formula.variable,
            _substitute_idb(formula.subformula, replacement, arities),
        )
    raise TypeError(f"unexpected node in operator formula: {formula!r}")


@dataclass
class StageTranslation:
    """The Theorem 3.6 translation of a program.

    ``stage_formula(P, n)`` is ``phi_P^n``, defining the n-th stage of
    the IDB predicate P uniformly on all structures; formulas are built
    lazily and memoised.
    """

    program: Program
    _operators: dict[str, Formula] = field(init=False)
    _z_count: int = field(init=False)
    _cache: dict[tuple[str, int], Formula] = field(
        init=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._operators, self._z_count = _operator_formulas(self.program)

    # -- structural data -------------------------------------------------

    @property
    def max_idb_arity(self) -> int:
        """r: the maximum IDB arity."""
        return max(self.program.arity(p) for p in self.program.idb_predicates)

    @property
    def operator_variable_count(self) -> int:
        """l: distinct variables of the operator formulas (w's and z's)."""
        return self.max_idb_arity + self._z_count

    @property
    def claimed_width(self) -> int:
        """The paper's bound l + r on the stage formulas' width."""
        return self.operator_variable_count + self.max_idb_arity

    def head_variables(self, predicate: str) -> tuple[Variable, ...]:
        """The canonical free variables ``w1..wr`` of phi_P^n."""
        return tuple(
            _head_variable(j) for j in range(self.program.arity(predicate))
        )

    def operator_formula(self, predicate: str) -> Formula:
        """phi_P(w-bar, S-bar): the formula defining the operator."""
        return self._operators[predicate]

    # -- stages ----------------------------------------------------------

    def stage_formula(self, predicate: str, n: int) -> Formula:
        """phi_P^n: the existential positive FO formula for stage n."""
        if n < 1:
            raise ValueError("stages are numbered from 1")
        if predicate not in self.program.idb_predicates:
            raise ValueError(f"{predicate!r} is not an IDB predicate")
        key = (predicate, n)
        if key in self._cache:
            return self._cache[key]
        arities = {
            p: self.program.arity(p) for p in self.program.idb_predicates
        }
        if n == 1:
            replacement = {p: falsum() for p in self.program.idb_predicates}
        else:
            replacement = {
                p: self.stage_formula(p, n - 1)
                for p in self.program.idb_predicates
            }
        formula = _substitute_idb(
            self._operators[predicate], replacement, arities
        )
        self._cache[key] = formula
        return formula

    def audit_width(self, predicate: str, n: int) -> tuple[int, int]:
        """(actual width of phi_P^n, claimed bound l + r).

        Theorem 3.6 asserts actual <= claimed; the test suite checks it
        for every library program over several stages.
        """
        actual = variable_width(self.stage_formula(predicate, n))
        return actual, self.claimed_width

    def is_inequality_free(self, predicate: str, n: int = 2) -> bool:
        """Whether phi_P^n avoids inequalities (true for pure Datalog)."""
        return not uses_inequality(self.stage_formula(predicate, n))


def translate_program(program: Program) -> StageTranslation:
    """Build the Theorem 3.6 translation for ``program``."""
    return StageTranslation(program)


def fixpoint_family(
    translation: StageTranslation, predicate: str | None = None
) -> BoundedDisjunction:
    """``pi^inf`` as the L^{l+r} formula ``V_n phi^n(w-bar)``.

    The expansion bound on a structure A is ``|A|^r * #IDB + 1``, which
    dominates the number of naive iterations needed to stabilise.
    """
    program = translation.program
    target = predicate or program.goal

    def bound(structure: Structure) -> int:
        total = sum(
            max(len(structure), 1) ** program.arity(p)
            for p in program.idb_predicates
        )
        return total + 1

    return BoundedDisjunction(
        family=lambda n: translation.stage_formula(target, n),
        bound=bound,
        description=f"phi_{target}^n",
    )
