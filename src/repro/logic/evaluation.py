"""Evaluation of existential positive formulas on finite structures.

A straightforward recursive evaluator: existential quantifiers range over
the structure's universe, infinitary connectives are expanded to the
finite prefix their :class:`BoundedDisjunction` declares sufficient.
Exponential in quantifier depth in the worst case -- this is the ground
truth against which the pebble games and the Datalog engine are checked,
not a production query processor.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterator, Mapping, Sequence

from repro.datalog.ast import Constant, Term, Variable
from repro.logic.formulas import (
    And,
    AtomF,
    BoundedConjunction,
    BoundedDisjunction,
    Eq,
    Exists,
    Formula,
    Neq,
    Not,
    Or,
)
from repro.structures.structure import Structure

Element = Hashable
Assignment = Mapping[Variable, Element]


def _value(term: Term, assignment: Assignment, structure: Structure):
    if isinstance(term, Constant):
        try:
            return structure.constants[term.name]
        except KeyError:
            raise ValueError(
                f"formula mentions constant ${term.name} but the structure "
                "does not interpret it"
            ) from None
    try:
        return assignment[term]
    except KeyError:
        raise ValueError(f"free variable {term} left unassigned") from None


def evaluate_formula(
    formula: Formula,
    structure: Structure,
    assignment: Assignment | None = None,
) -> bool:
    """Whether ``structure, assignment |= formula``."""
    assignment = dict(assignment or {})
    return _evaluate(formula, structure, assignment)


def _evaluate(
    formula: Formula, structure: Structure, assignment: dict
) -> bool:
    if isinstance(formula, AtomF):
        row = tuple(
            _value(term, assignment, structure) for term in formula.args
        )
        return structure.holds(formula.predicate, row)
    if isinstance(formula, Eq):
        return _value(formula.left, assignment, structure) == _value(
            formula.right, assignment, structure
        )
    if isinstance(formula, Neq):
        return _value(formula.left, assignment, structure) != _value(
            formula.right, assignment, structure
        )
    if isinstance(formula, And):
        return all(
            _evaluate(sub, structure, assignment)
            for sub in formula.subformulas
        )
    if isinstance(formula, Or):
        return any(
            _evaluate(sub, structure, assignment)
            for sub in formula.subformulas
        )
    if isinstance(formula, Exists):
        saved = assignment.get(formula.variable, _MISSING)
        for element in structure.universe:
            assignment[formula.variable] = element
            if _evaluate(formula.subformula, structure, assignment):
                _restore(assignment, formula.variable, saved)
                return True
        _restore(assignment, formula.variable, saved)
        return False
    if isinstance(formula, Not):
        return not _evaluate(formula.subformula, structure, assignment)
    if isinstance(formula, (BoundedDisjunction, BoundedConjunction)):
        return _evaluate(formula.expand(structure), structure, assignment)
    raise TypeError(f"not a formula: {formula!r}")


_MISSING = object()


def _restore(assignment: dict, variable: Variable, saved) -> None:
    if saved is _MISSING:
        assignment.pop(variable, None)
    else:
        assignment[variable] = saved


def satisfying_tuples(
    formula: Formula,
    structure: Structure,
    free: Sequence[Variable],
) -> frozenset[tuple]:
    """All tuples over the universe satisfying the formula.

    ``free`` fixes the order of the formula's free variables.  Used to
    compare a stage formula ``phi^n(w_1, .., w_r)`` with the engine's
    stage relation ``Theta^n``.
    """
    rows = []
    universe = list(structure.universe)
    for values in itertools.product(universe, repeat=len(free)):
        assignment = dict(zip(free, values))
        if _evaluate(formula, structure, assignment):
            rows.append(values)
    return frozenset(rows)


def enumerate_assignments(
    structure: Structure, free: Sequence[Variable]
) -> Iterator[dict]:
    """All assignments of the universe to ``free`` (helper for tests)."""
    universe = list(structure.universe)
    for values in itertools.product(universe, repeat=len(free)):
        yield dict(zip(free, values))
