"""Variable-width analysis: which L^k a formula lives in.

The defining resource of L^k is the number of *distinct variables*
(free or bound, reuse allowed and encouraged -- Example 3.4's three-
variable path formulas re-quantify x and y repeatedly).  These helpers
compute that width and certify fragment membership.
"""

from __future__ import annotations

from repro.datalog.ast import Term, Variable
from repro.logic.formulas import (
    And,
    AtomF,
    BoundedConjunction,
    BoundedDisjunction,
    Eq,
    Exists,
    Formula,
    Neq,
    Not,
    Or,
)


def _term_variables(term: Term) -> frozenset[Variable]:
    if isinstance(term, Variable):
        return frozenset((term,))
    return frozenset()


def all_variables(formula: Formula, probe: int = 8) -> frozenset[Variable]:
    """Every distinct variable occurring in the formula (free or bound).

    For finitely-presented infinitary connectives the first ``probe``
    members of the family are inspected; the paper's families reuse the
    same finite variable stock in every member (that is the whole point
    of L^k), which the test suite spot-checks at higher probes.
    """
    if isinstance(formula, AtomF):
        result: frozenset[Variable] = frozenset()
        for term in formula.args:
            result |= _term_variables(term)
        return result
    if isinstance(formula, (Eq, Neq)):
        return _term_variables(formula.left) | _term_variables(formula.right)
    if isinstance(formula, (And, Or)):
        result = frozenset()
        for sub in formula.subformulas:
            result |= all_variables(sub, probe)
        return result
    if isinstance(formula, Exists):
        return frozenset((formula.variable,)) | all_variables(
            formula.subformula, probe
        )
    if isinstance(formula, Not):
        return all_variables(formula.subformula, probe)
    if isinstance(formula, (BoundedDisjunction, BoundedConjunction)):
        result = frozenset()
        for n in range(1, probe + 1):
            if formula.indices(n):
                result |= all_variables(formula.family(n), probe)
        return result
    raise TypeError(f"not a formula: {formula!r}")


def free_variables(formula: Formula, probe: int = 8) -> frozenset[Variable]:
    """The free variables of the formula."""
    if isinstance(formula, AtomF):
        result: frozenset[Variable] = frozenset()
        for term in formula.args:
            result |= _term_variables(term)
        return result
    if isinstance(formula, (Eq, Neq)):
        return _term_variables(formula.left) | _term_variables(formula.right)
    if isinstance(formula, (And, Or)):
        result = frozenset()
        for sub in formula.subformulas:
            result |= free_variables(sub, probe)
        return result
    if isinstance(formula, Exists):
        return free_variables(formula.subformula, probe) - {formula.variable}
    if isinstance(formula, Not):
        return free_variables(formula.subformula, probe)
    if isinstance(formula, (BoundedDisjunction, BoundedConjunction)):
        result = frozenset()
        for n in range(1, probe + 1):
            if formula.indices(n):
                result |= free_variables(formula.family(n), probe)
        return result
    raise TypeError(f"not a formula: {formula!r}")


def variable_width(formula: Formula, probe: int = 8) -> int:
    """The least k such that the formula lies in L^k.

    This is simply the number of distinct variables used, since the AST
    is existential positive by construction.
    """
    return len(all_variables(formula, probe))


def is_existential_positive(formula: Formula) -> bool:
    """Always true for this AST; present as an executable invariant.

    The AST has no negation and no universal quantifier nodes, so every
    value of type :class:`Formula` is existential negation-free.  The
    function still walks the tree to reject foreign objects smuggled in.
    """
    if isinstance(formula, (AtomF, Eq, Neq)):
        return True
    if isinstance(formula, (And, Or)):
        return all(
            is_existential_positive(sub) for sub in formula.subformulas
        )
    if isinstance(formula, Exists):
        return is_existential_positive(formula.subformula)
    if isinstance(formula, (BoundedDisjunction, BoundedConjunction)):
        return all(
            is_existential_positive(formula.family(n))
            for n in range(1, 4)
            if formula.indices(n)
        )
    return False


def uses_inequality(formula: Formula, probe: int = 8) -> bool:
    """Whether any inequality occurs -- the pure-Datalog dividing line."""
    if isinstance(formula, Neq):
        return True
    if isinstance(formula, (AtomF, Eq)):
        return False
    if isinstance(formula, (And, Or)):
        return any(uses_inequality(sub, probe) for sub in formula.subformulas)
    if isinstance(formula, Exists):
        return uses_inequality(formula.subformula, probe)
    if isinstance(formula, Not):
        return uses_inequality(formula.subformula, probe)
    if isinstance(formula, (BoundedDisjunction, BoundedConjunction)):
        return any(
            uses_inequality(formula.family(n), probe)
            for n in range(1, probe + 1)
            if formula.indices(n)
        )
    raise TypeError(f"not a formula: {formula!r}")
