"""The worked formula examples of Section 3.

* Example 3.3 -- cardinalities of total orders in two variables:
  ``tau_n`` ("at least n elements"), ``rho_n`` ("exactly n"), and the
  infinitary "cardinality in P" (the last two use negation, hence live in
  full ``L^2_inf-omega`` rather than the existential fragment).
* Example 3.4 -- walks of length n in three variables: ``p_n(x, y)``,
  the transitive-closure family, and "x, y joined by a walk whose length
  lies in P" (e.g. even lengths, perfect squares).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.datalog.ast import Variable
from repro.logic.formulas import (
    And,
    AtomF,
    BoundedDisjunction,
    Eq,
    Exists,
    Formula,
    Not,
    verum,
)
from repro.structures.structure import Structure

_X = Variable("x")
_Y = Variable("y")
_Z = Variable("z")


def cardinality_at_least(n: int, order: str = "<") -> Formula:
    """Example 3.3: ``tau_n`` -- "at least n elements" on total orders.

    Uses only the two variables x and y, re-quantified alternately, e.g.
    ``tau_4 = (Ex)(Ey)(x < y & (Ex)(y < x & (Ey)(x < y)))``.
    Existential positive, hence in ``L^2``.
    """
    if n < 1:
        raise ValueError("n must be positive")

    def climb(remaining: int, front: Variable, spare: Variable) -> Formula:
        if remaining == 0:
            return verum()
        return Exists(
            spare,
            And([AtomF(order, (front, spare)), climb(remaining - 1, spare, front)]),
        )

    return Exists(_X, And([Eq(_X, _X), climb(n - 1, _X, _Y)]))


def cardinality_exactly(n: int, order: str = "<") -> Formula:
    """Example 3.3: ``rho_n = tau_n & ~tau_{n+1}`` ("exactly n elements").

    The negation takes this outside the existential fragment; it lives in
    full ``L^2_inf-omega``, exactly as the paper notes.
    """
    return And([
        cardinality_at_least(n, order),
        Not(cardinality_at_least(n + 1, order)),
    ])


def cardinality_in(
    membership: Callable[[int], bool] | Iterable[int], order: str = "<"
) -> BoundedDisjunction:
    """Example 3.3: "the cardinality of the total order lies in P".

    ``membership`` is either a predicate on positive integers or a
    concrete collection.  On a finite structure only ``n <= |A|`` can
    match, which bounds the infinitary disjunction ``V_{n in P} rho_n``.
    """
    if callable(membership):
        member = membership
    else:
        allowed = frozenset(membership)
        member = allowed.__contains__
    return BoundedDisjunction(
        family=lambda n: cardinality_exactly(n, order),
        bound=len,
        indices=member,
        description="rho_n (exactly n elements)",
    )


def path_formula(n: int, edge: str = "E") -> Formula:
    """Example 3.4: ``p_n(x, y)`` -- a walk of length n from x to y.

    Built with only the three variables x, y, z via the paper's
    re-quantification trick::

        p_1(x, y) = E(x, y)
        p_n(x, y) = (Ez)(E(x, z) & (Ex)(x = z & p_{n-1}(x, y)))
    """
    if n < 1:
        raise ValueError("n must be positive")
    if n == 1:
        return AtomF(edge, (_X, _Y))
    return Exists(
        _Z,
        And([
            AtomF(edge, (_X, _Z)),
            Exists(_X, And([Eq(_X, _Z), path_formula(n - 1, edge)])),
        ]),
    )


def _walk_bound(structure: Structure) -> int:
    """A prefix length after which walk-length membership is periodic.

    The set of walk lengths between two fixed nodes of an n-node graph is
    ultimately periodic with preperiod and period at most n^2; lengths up
    to ``2 n^2 + n`` therefore determine membership of any residue class.
    For the infinitary families below (which are monotone queries over
    *sets* of lengths) this prefix is sufficient on finite structures,
    and the test suite checks it against matrix-power ground truth.
    """
    n = len(structure)
    return 2 * n * n + n + 1


def transitive_closure_family(edge: str = "E") -> BoundedDisjunction:
    """Example 3.4: ``TC(x, y) = V_{n >= 1} p_n(x, y)`` in ``L^3``.

    On a finite structure a reachable pair is reachable by a walk of
    length below ``|A|``, so the expansion bound is just ``len``.
    """
    return BoundedDisjunction(
        family=lambda n: path_formula(n, edge),
        bound=len,
        description="p_n (walk of length n)",
    )


def path_length_in(
    membership: Callable[[int], bool] | Iterable[int], edge: str = "E"
) -> BoundedDisjunction:
    """Example 3.4: "x and y are connected by a walk whose length is in P".

    Typical instances: even length (``lambda n: n % 2 == 0``), perfect
    squares, or any other set of positive integers -- including
    non-recursive ones, which is the paper's point that ``L^3`` can
    express non-recursive queries.
    """
    if callable(membership):
        member = membership
    else:
        allowed = frozenset(membership)
        member = allowed.__contains__
    return BoundedDisjunction(
        family=lambda n: path_formula(n, edge),
        bound=_walk_bound,
        indices=member,
        description="p_n with n in P",
    )
