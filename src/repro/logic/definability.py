"""Constructive Proposition 4.2: defining a <=^k-closed class in L^k.

Proposition 4.2: a class C of finite structures is L^k-definable iff it
is closed under ``<=^k``.  Its proof builds, for each member A_i, the
sentence::

    Phi_i  =  AND over { j : not (A_i <=^k A_j) }  of  phi_ij

where ``phi_ij`` holds in A_i and fails in A_j, and defines C by
``OR over members of Phi_i``.  With :func:`separating_sentence`
supplying the phi_ij constructively, the whole proof is executable --
over an explicitly given finite universe of structures (the paper works
over the countably many isomorphism types; a finite slice is what can
be materialised, and is exactly what the tests exercise).
"""

from __future__ import annotations

from typing import Sequence

from repro.games.existential import preceq_k
from repro.logic.formulas import And, Formula, Or
from repro.logic.separating import separating_sentence
from repro.structures.structure import Structure


class NotClosedUnderPreceq(Exception):
    """The class violates Proposition 4.2's closure condition.

    Carries the witnessing pair ``(member, non_member)`` with
    ``member <=^k non_member``.
    """

    def __init__(self, member: int, non_member: int) -> None:
        super().__init__(
            f"structure #{member} is in the class, #{non_member} is not, "
            f"yet #{member} <=^k #{non_member}: no L^k sentence can "
            "separate them (Proposition 4.2)"
        )
        self.member = member
        self.non_member = non_member


def check_closure(
    universe: Sequence[Structure], members: Sequence[int], k: int
) -> None:
    """Verify Proposition 4.2(2) on the given finite universe.

    Raises :class:`NotClosedUnderPreceq` on a violation.
    """
    member_set = set(members)
    for i in member_set:
        for j in range(len(universe)):
            if j in member_set or j == i:
                continue
            if preceq_k(universe[i], universe[j], k):
                raise NotClosedUnderPreceq(i, j)


def defining_sentence(
    universe: Sequence[Structure], members: Sequence[int], k: int
) -> Formula:
    """An L^k sentence true exactly on the members, within ``universe``.

    Implements the proof of Proposition 4.2 verbatim: for each member i,
    ``Phi_i`` conjoins a separating sentence against every universe
    structure j with ``A_i`` not ``<=^k A_j``; the disjunction of the
    ``Phi_i`` defines the class.  Requires (and checks) closure under
    ``<=^k`` within the universe.
    """
    member_list = sorted(set(members))
    if not member_list:
        return Or(())  # the empty class: FALSE
    check_closure(universe, member_list, k)

    disjuncts: list[Formula] = []
    for i in member_list:
        conjuncts: list[Formula] = []
        for j in range(len(universe)):
            if j == i:
                continue
            sentence = separating_sentence(universe[i], universe[j], k)
            if sentence is not None:
                conjuncts.append(sentence)
        disjuncts.append(And(conjuncts))
    return Or(disjuncts)
