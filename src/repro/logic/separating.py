"""Constructive Corollary 4.9: extract a separating L^k sentence.

Theorem 4.8 / Corollary 4.9 say ``A <=^k B`` fails exactly when Player I
wins the existential k-pebble game -- and the proof's contrapositive
direction builds, from Player I's winning strategy, a *first-order*
sentence of L^k true in A and false in B.  This module performs that
extraction:

* an **invalid** extension (the pebbled map stops being a partial
  one-to-one homomorphism) is distinguished by an atomic formula, an
  equality, or an inequality -- the base case;
* a **dead** extension recurses on a strictly smaller elimination rank;
* a placement challenge ``x`` yields ``(exists v)(AND_b psi_b)``, the
  conjunction running over the finitely many elements of B, exactly the
  formula displayed in the proof of Theorem 4.8 (finite because B is --
  Corollary 4.9's observation).

Pebble variables are drawn from a stock of k names, re-quantified as
positions evolve, so the result genuinely lives in L^k; the test suite
audits the width and model-checks the sentence on both structures.
"""

from __future__ import annotations

from typing import Hashable

from repro.datalog.ast import Constant, Term, Variable
from repro.games.existential import ExistentialGameResult, solve_existential_game
from repro.logic.formulas import And, AtomF, Eq, Exists, Formula, Neq
from repro.structures.structure import Structure

Element = Hashable
Position = frozenset

_INFINITY = float("inf")


def _pebble_variable(index: int) -> Variable:
    return Variable(f"v{index + 1}")


class _Extractor:
    def __init__(
        self,
        result: ExistentialGameResult,
        a: Structure,
        b: Structure,
    ) -> None:
        self.result = result
        self.a = a
        self.b = b
        self.k = result.k
        self.injective = result.injective
        self.a_elements = sorted(a.universe, key=repr)
        self.b_elements = sorted(b.universe, key=repr)

    # -- rank bookkeeping --------------------------------------------------

    def _rank(self, position: Position) -> float:
        if position in self.result.family:
            return _INFINITY
        return self.result.ranks.get(position, -1)  # -1: invalid

    def _is_valid(self, position: Position) -> bool:
        return (
            position in self.result.family
            or position in self.result.ranks
        )

    # -- anchors -----------------------------------------------------------

    def _anchors(
        self, assignment: dict
    ) -> list[tuple[Term, Element, Element]]:
        """(term, A-element, B-element) for constants and pebbled pairs."""
        anchors: list[tuple[Term, Element, Element]] = []
        for name, a_el, b_el in zip(
            self.a.vocabulary.constants,
            self.a.constant_elements(),
            self.b.constant_elements(),
        ):
            anchors.append((Constant(name), a_el, b_el))
        for pair, variable in assignment.items():
            anchors.append((variable, pair[0], pair[1]))
        return anchors

    def _atomic_separator(
        self,
        assignment: dict,
        new_variable: Variable,
        x: Element,
        b: Element,
    ) -> Formula:
        """A quantifier-free formula true at (A-side, x), false at
        (B-side, b), witnessing why the extension is invalid."""
        anchors = self._anchors(assignment)
        # Function-ness against constants: x is a constant's element but
        # b is not its image.
        for term, a_el, b_el in anchors:
            if x == a_el and b != b_el:
                return Eq(new_variable, term)
        # Injectivity: b collides with an anchor's image while x is new.
        # Only the one-to-one game flags this (and only it may use !=,
        # keeping the homomorphism variant's separators inequality-free
        # -- Remark 4.12's refinement).
        if self.injective:
            for term, a_el, b_el in anchors:
                if b == b_el and x != a_el:
                    return Neq(new_variable, term)
        # A relation tuple over anchors + x maps outside the relation.
        term_of: dict[Element, Term] = {a_el: term for term, a_el, __ in anchors}
        image_of: dict[Element, Element] = {
            a_el: b_el for __, a_el, b_el in anchors
        }
        term_of[x] = new_variable
        image_of[x] = b
        for name in self.a.vocabulary.relation_names:
            b_relation = self.b.relation(name)
            for row in self.a.relation(name):
                if x not in row:
                    continue
                if any(entry not in term_of for entry in row):
                    continue
                image = tuple(image_of[entry] for entry in row)
                if image not in b_relation:
                    return AtomF(name, tuple(term_of[entry] for entry in row))
        raise AssertionError(
            "extension flagged invalid but no atomic separator found"
        )

    # -- main recursion ------------------------------------------------------

    def formula_for(self, position: Position, assignment: dict) -> Formula:
        """An L^k formula with the position's pebble variables free,
        true at the position's A-side and false at its B-side."""
        rank = self._rank(position)
        if rank is _INFINITY:
            raise ValueError("position is alive; nothing separates it")

        # Removal challenge: a dead (strictly smaller-rank) sub-position
        # separates already, with a subset of the free variables.
        for pair in sorted(position, key=repr):
            sub = position - {pair}
            if self._is_valid(sub) and self._rank(sub) < rank:
                sub_assignment = {
                    p: v for p, v in assignment.items() if p != pair
                }
                return self.formula_for(sub, sub_assignment)

        # Placement challenge: find x with every response invalid or of
        # strictly smaller rank, and conjoin the per-response separators.
        sources = {pair[0] for pair in position}
        used = set(assignment.values())
        new_variable = next(
            _pebble_variable(i)
            for i in range(self.k)
            if _pebble_variable(i) not in used
        )
        def unusable(extension: Position) -> bool:
            """Alive, or dead but not by a strictly smaller rank."""
            extension_rank = self._rank(extension)
            if extension_rank == _INFINITY:
                return True
            return extension_rank >= 0 and extension_rank >= rank

        for x in self.a_elements:
            if x in sources:
                continue
            extensions = {
                b: position | {(x, b)} for b in self.b_elements
            }
            if any(unusable(ext) for ext in extensions.values()):
                continue
            conjuncts: list[Formula] = []
            for b, extension in extensions.items():
                if not self._is_valid(extension):
                    conjuncts.append(
                        self._atomic_separator(assignment, new_variable, x, b)
                    )
                else:
                    extended_assignment = dict(assignment)
                    extended_assignment[(x, b)] = new_variable
                    conjuncts.append(
                        self.formula_for(extension, extended_assignment)
                    )
            return Exists(new_variable, And(conjuncts))
        raise AssertionError(
            "dead position with neither a removal nor a placement witness; "
            "solver invariant broken"
        )


def separating_sentence(
    a: Structure, b: Structure, k: int, injective: bool = True
) -> Formula | None:
    """An L^k sentence true in A, false in B -- or None if ``A <=^k B``.

    Constructive Corollary 4.9: the sentence is first-order (B being
    finite makes the proof's conjunction finite), existential positive
    with equalities and inequalities, and uses at most k variables.

    With ``injective=False`` the homomorphism game is played instead and
    the extracted sentence is additionally *inequality-free* -- the
    constructive face of Remark 4.12's Datalog refinement.
    """
    result = solve_existential_game(a, b, k, injective=injective)
    if result.player_two_wins:
        return None
    extractor = _Extractor(result, a, b)
    empty: Position = frozenset()
    if empty not in result.ranks:
        # The constants alone already fail: a quantifier-free separator
        # over constant terms exists.  Reuse the atomic machinery by
        # treating the first constant clash directly.
        return _constant_separator(a, b, injective)
    return extractor.formula_for(empty, {})


def _constant_separator(
    a: Structure, b: Structure, injective: bool = True
) -> Formula:
    """Quantifier-free separator when the constant pairing itself fails."""
    anchors = list(zip(
        a.vocabulary.constants, a.constant_elements(), b.constant_elements()
    ))
    # Injectivity / equality pattern among constants.
    for i, (name_i, a_i, b_i) in enumerate(anchors):
        for name_j, a_j, b_j in anchors[i + 1:]:
            if a_i == a_j and b_i != b_j:
                return Eq(Constant(name_i), Constant(name_j))
            if injective and a_i != a_j and b_i == b_j:
                return Neq(Constant(name_i), Constant(name_j))
    # A relation tuple over constants maps outside.
    image = {a_el: b_el for __, a_el, b_el in anchors}
    term = {a_el: Constant(name) for name, a_el, __ in anchors}
    for name in a.vocabulary.relation_names:
        b_relation = b.relation(name)
        for row in a.relation(name):
            if any(entry not in term for entry in row):
                continue
            if tuple(image[entry] for entry in row) not in b_relation:
                return AtomF(name, tuple(term[entry] for entry in row))
    raise AssertionError(
        "constant pairing flagged dead but no separator found"
    )
