"""The existential negation-free infinitary fragment L^k / L^omega.

Section 3 of the paper: ``L^k`` consists of the formulas of the
infinitary logic with k variables built from atomic formulas, equalities
and inequalities using (infinitary) conjunction, (infinitary) disjunction
and existential quantification only; ``L^omega`` is their union.

Here the finitary connectives are explicit AST nodes; *infinitary*
disjunctions and conjunctions are represented by finitely-presented
families (:class:`BoundedDisjunction` / :class:`BoundedConjunction`) that
expand to the finite prefix sufficient for a given finite structure --
exactly how the paper's own examples (stage formulas, "path length in P")
are used on finite structures.
"""

from repro.logic.datalog_to_lk import (
    StageTranslation,
    fixpoint_family,
    translate_program,
)
from repro.logic.definability import (
    NotClosedUnderPreceq,
    check_closure,
    defining_sentence,
)
from repro.logic.separating import separating_sentence
from repro.logic.simplify import formula_size, simplify_formula
from repro.logic.evaluation import evaluate_formula, satisfying_tuples
from repro.logic.examples import (
    cardinality_at_least,
    cardinality_exactly,
    cardinality_in,
    path_formula,
    path_length_in,
    transitive_closure_family,
)
from repro.logic.formulas import (
    And,
    AtomF,
    BoundedConjunction,
    BoundedDisjunction,
    Eq,
    Exists,
    Formula,
    Neq,
    Or,
    falsum,
    verum,
)
from repro.logic.width import (
    free_variables,
    is_existential_positive,
    variable_width,
)

__all__ = [
    "Formula",
    "AtomF",
    "Eq",
    "Neq",
    "And",
    "Or",
    "Exists",
    "BoundedDisjunction",
    "BoundedConjunction",
    "verum",
    "falsum",
    "evaluate_formula",
    "satisfying_tuples",
    "variable_width",
    "free_variables",
    "is_existential_positive",
    "translate_program",
    "StageTranslation",
    "fixpoint_family",
    "separating_sentence",
    "simplify_formula",
    "formula_size",
    "defining_sentence",
    "check_closure",
    "NotClosedUnderPreceq",
    "cardinality_at_least",
    "cardinality_exactly",
    "cardinality_in",
    "path_formula",
    "path_length_in",
    "transitive_closure_family",
]
