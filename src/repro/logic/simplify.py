"""Semantics-preserving simplification of existential positive formulas.

The game-extracted sentences of :mod:`repro.logic.separating` conjoin
one sub-sentence per element of B and recurse, so they arrive with
massive duplication.  This pass normalises without changing meaning:

* flatten nested conjunctions / disjunctions;
* deduplicate operands (sets, order normalised deterministically);
* absorb truth in conjunctions and falsity in disjunctions;
* collapse to FALSE / TRUE when an operand forces it;
* drop trivial ``t = t`` conjuncts and recognise ``t != t`` as falsity;
* unwrap single-operand connectives.

Equivalence is property-tested against the evaluator on random
structures.  Quantifiers are left in place (no renaming, no scope
surgery), so the variable width never increases.
"""

from __future__ import annotations

from repro.logic.formulas import (
    And,
    AtomF,
    BoundedConjunction,
    BoundedDisjunction,
    Eq,
    Exists,
    Formula,
    Neq,
    Not,
    Or,
    falsum,
    verum,
)


def _is_true(formula: Formula) -> bool:
    return isinstance(formula, And) and not formula.subformulas


def _is_false(formula: Formula) -> bool:
    return isinstance(formula, Or) and not formula.subformulas


def _ordered_unique(formulas) -> tuple:
    seen = []
    for formula in formulas:
        if formula not in seen:
            seen.append(formula)
    return tuple(sorted(seen, key=repr))


def simplify_formula(formula: Formula) -> Formula:
    """A smaller formula equivalent to the input on every structure."""
    if isinstance(formula, AtomF):
        return formula
    if isinstance(formula, Eq):
        if formula.left == formula.right:
            return verum()
        return formula
    if isinstance(formula, Neq):
        if formula.left == formula.right:
            return falsum()
        return formula
    if isinstance(formula, Not):
        inner = simplify_formula(formula.subformula)
        if _is_true(inner):
            return falsum()
        if _is_false(inner):
            return verum()
        if isinstance(inner, Not):
            return inner.subformula
        return Not(inner)
    if isinstance(formula, And):
        flattened: list[Formula] = []
        for sub in formula.subformulas:
            reduced = simplify_formula(sub)
            if _is_false(reduced):
                return falsum()
            if _is_true(reduced):
                continue
            if isinstance(reduced, And):
                flattened.extend(reduced.subformulas)
            else:
                flattened.append(reduced)
        unique = _ordered_unique(flattened)
        if not unique:
            return verum()
        if len(unique) == 1:
            return unique[0]
        return And(unique)
    if isinstance(formula, Or):
        flattened = []
        for sub in formula.subformulas:
            reduced = simplify_formula(sub)
            if _is_true(reduced):
                return verum()
            if _is_false(reduced):
                continue
            if isinstance(reduced, Or):
                flattened.extend(reduced.subformulas)
            else:
                flattened.append(reduced)
        unique = _ordered_unique(flattened)
        if not unique:
            return falsum()
        if len(unique) == 1:
            return unique[0]
        return Or(unique)
    if isinstance(formula, Exists):
        inner = simplify_formula(formula.subformula)
        if _is_false(inner):
            return falsum()
        # NOTE: (exists v) TRUE is *not* TRUE on the empty structure, so
        # truth does not propagate out of a quantifier.
        return Exists(formula.variable, inner)
    if isinstance(formula, (BoundedDisjunction, BoundedConjunction)):
        return formula  # structure-bounded; simplify after expanding
    raise TypeError(f"not a formula: {formula!r}")


def formula_size(formula: Formula) -> int:
    """Node count of the formula tree (a crude size measure)."""
    if isinstance(formula, (AtomF, Eq, Neq)):
        return 1
    if isinstance(formula, Not):
        return 1 + formula_size(formula.subformula)
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(sub) for sub in formula.subformulas)
    if isinstance(formula, Exists):
        return 1 + formula_size(formula.subformula)
    if isinstance(formula, (BoundedDisjunction, BoundedConjunction)):
        return 1
    raise TypeError(f"not a formula: {formula!r}")
