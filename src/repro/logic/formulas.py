"""Formula AST for the existential positive fragment.

Terms are shared with the Datalog AST (:class:`Variable`,
:class:`Constant`) so that Theorem 3.6's translation from programs to
formulas is a direct tree rewrite.

By construction the AST can only express existential negation-free
formulas: there is no negation node and no universal quantifier --
matching Definition 3.5 of L^k exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Union

from repro.datalog.ast import Constant, Term, Variable
from repro.structures.structure import Structure


@dataclass(frozen=True)
class AtomF:
    """An atomic formula ``R(t_1, ..., t_n)``."""

    predicate: str
    args: tuple[Term, ...]

    def __init__(self, predicate: str, args: Iterable[Term]) -> None:
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", tuple(args))

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class Eq:
    """An equality ``t1 = t2``."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} = {self.right})"


@dataclass(frozen=True)
class Neq:
    """An inequality ``t1 != t2`` -- allowed in L^k, banned in the
    inequality-free fragment that corresponds to pure Datalog."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} != {self.right})"


@dataclass(frozen=True)
class And:
    """A finite conjunction; the empty conjunction is truth."""

    subformulas: tuple["Formula", ...]

    def __init__(self, subformulas: Iterable["Formula"]) -> None:
        object.__setattr__(self, "subformulas", tuple(subformulas))

    def __str__(self) -> str:
        if not self.subformulas:
            return "TRUE"
        return "(" + " & ".join(str(f) for f in self.subformulas) + ")"


@dataclass(frozen=True)
class Or:
    """A finite disjunction; the empty disjunction is falsity."""

    subformulas: tuple["Formula", ...]

    def __init__(self, subformulas: Iterable["Formula"]) -> None:
        object.__setattr__(self, "subformulas", tuple(subformulas))

    def __str__(self) -> str:
        if not self.subformulas:
            return "FALSE"
        return "(" + " | ".join(str(f) for f in self.subformulas) + ")"


@dataclass(frozen=True)
class Exists:
    """Existential quantification over one variable."""

    variable: Variable
    subformula: "Formula"

    def __str__(self) -> str:
        return f"(exists {self.variable}){self.subformula}"


@dataclass(frozen=True)
class Not:
    """Negation.

    Negation takes a formula *outside* the fragment L^k of Definition 3.5
    (which is negation-free); it exists here only so the full-infinitary
    examples of Section 3 -- e.g. ``rho_n = tau_n & ~tau_{n+1}`` of
    Example 3.3 -- can be written and evaluated.  The games and the
    Datalog translation never produce it, and
    :func:`repro.logic.width.is_existential_positive` rejects it.
    """

    subformula: "Formula"

    def __str__(self) -> str:
        return f"~{self.subformula}"


class BoundedDisjunction:
    """A finitely-presented infinitary disjunction ``V_{n >= 1} phi_n``.

    ``family(n)`` produces the n-th disjunct; ``bound(structure)`` gives a
    prefix length sufficient on that structure, i.e. the disjunction is
    equivalent to ``phi_1 | ... | phi_bound`` there.  This is faithful for
    the paper's uses: stage formulas stabilise within ``|A|^r`` stages,
    path formulas within ``|A|`` lengths, cardinality formulas within
    ``|A|``.

    The ``indices`` hook restricts which n participate (e.g. even lengths
    only), mirroring formulas such as ``V_{n in P} p_n(x, y)``.
    """

    __slots__ = ("family", "bound", "indices", "description")

    def __init__(
        self,
        family: Callable[[int], "Formula"],
        bound: Callable[[Structure], int],
        indices: Callable[[int], bool] | None = None,
        description: str = "",
    ) -> None:
        self.family = family
        self.bound = bound
        self.indices = indices or (lambda n: True)
        self.description = description

    def expand(self, structure: Structure) -> Or:
        """The finite disjunction equivalent to this one on ``structure``."""
        limit = self.bound(structure)
        return Or(
            self.family(n)
            for n in range(1, limit + 1)
            if self.indices(n)
        )

    def __str__(self) -> str:
        label = self.description or "phi_n"
        return f"V_n {label}"


class BoundedConjunction:
    """A finitely-presented infinitary conjunction, dual to
    :class:`BoundedDisjunction`."""

    __slots__ = ("family", "bound", "indices", "description")

    def __init__(
        self,
        family: Callable[[int], "Formula"],
        bound: Callable[[Structure], int],
        indices: Callable[[int], bool] | None = None,
        description: str = "",
    ) -> None:
        self.family = family
        self.bound = bound
        self.indices = indices or (lambda n: True)
        self.description = description

    def expand(self, structure: Structure) -> And:
        """The finite conjunction equivalent to this one on ``structure``."""
        limit = self.bound(structure)
        return And(
            self.family(n)
            for n in range(1, limit + 1)
            if self.indices(n)
        )

    def __str__(self) -> str:
        label = self.description or "phi_n"
        return f"A_n {label}"


Formula = Union[
    AtomF,
    Eq,
    Neq,
    And,
    Or,
    Exists,
    Not,
    BoundedDisjunction,
    BoundedConjunction,
]


def verum() -> And:
    """The always-true formula (empty conjunction)."""
    return And(())


def falsum() -> Or:
    """The always-false formula (empty disjunction)."""
    return Or(())
