"""Resource-governed evaluation: budgets, cancellation, checkpoints.

Every engine in the stack runs to fixpoint unconditionally, and
Datalog's worst case is genuinely expensive -- a single adversarial
``Q_{k,l}`` instance can pin a worker with no deadline, no partial
answer, and no way to resume after a crash.  This module is the
governance layer the engines thread through their round loops:

* :class:`ResourceBudget` -- declarative limits (wall-clock seconds,
  fixpoint rounds, derived tuples, rule firings) plus a cooperative
  :class:`CancellationToken`;
* :class:`EvaluationGuard` -- the per-run enforcement object.  Engines
  call :meth:`~EvaluationGuard.check_boundary` between rounds and
  :meth:`~EvaluationGuard.tick` from the compiled-plan join loops (a
  cheap stride-checked counter, so deadlines and cancellation are
  noticed mid-round, not only when a round completes);
* :class:`BudgetExceeded` -- raised on exhaustion, carrying a
  ``partial`` :class:`~repro.datalog.evaluation.PartialFixpointResult`.
  Datalog(!=) is *monotone* (Kolaitis-Vardi Section 2): every stage of
  the fixpoint iteration is contained in the least fixpoint, so the
  state at the last completed round boundary is a sound
  under-approximation of the true answer -- a bounded run returns
  *part of the truth*, never a wrong answer;
* :class:`Checkpoint` -- serializable semi-naive engine state (IDB
  relations, current delta, iteration number) fingerprinted against the
  program and EDB, written on budget exhaustion or on demand and
  accepted back by ``evaluate(..., resume_from=...)``;
* :class:`MaintenanceCheckpoint` -- the analogous state of an
  :class:`~repro.datalog.incremental.IncrementalSession` replay (the
  current EDB plus the count of fully-applied updates; the session's
  IDB view is a pure function of those).

Observability: the guard feeds ``guard.*`` counters into
:mod:`repro.obs.metrics` (``guard.boundary_checks``, ``guard.ticks``,
``guard.trips``, ``guard.checkpoints``) through the usual late-bound
no-op discipline, so an unguarded run pays nothing and a guarded,
never-tripped run pays one check per round plus one stride test per
join batch.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping

from repro.obs import metrics as _metrics

Row = tuple
Element = Hashable

#: Sites the deadline/cancellation tick runs between, per stride.
_TICK_STRIDE = 1024


class CancellationToken:
    """A cooperative cancel flag shared between a caller and a run.

    The caller keeps a reference and calls :meth:`cancel` (e.g. from a
    signal handler or another thread); the guarded evaluation notices at
    the next round boundary or tick stride and aborts with
    :class:`EvaluationCancelled` -- carrying the usual sound partial
    result.  Cancellation is sticky: once cancelled, always cancelled.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "live"
        return f"CancellationToken({state})"


@dataclass(frozen=True)
class ResourceBudget:
    """Declarative resource limits for one evaluation (``None`` = unlimited).

    Attributes
    ----------
    wall_seconds:
        Wall-clock deadline, measured from :meth:`EvaluationGuard.start`.
    max_iterations:
        Maximum fixpoint rounds; the run trips when a further round
        would start after this many completed (a run that *converges*
        in exactly ``max_iterations`` rounds finishes normally).
    max_tuples:
        Maximum newly derived IDB tuples, summed over all predicates.
    max_rule_firings:
        Maximum distinct-new-head rule firings, summed over the run.
    """

    wall_seconds: float | None = None
    max_iterations: int | None = None
    max_tuples: int | None = None
    max_rule_firings: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "wall_seconds",
            "max_iterations",
            "max_tuples",
            "max_rule_firings",
        ):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    @property
    def unlimited(self) -> bool:
        """Whether no limit is set (the guard still serves cancellation)."""
        return (
            self.wall_seconds is None
            and self.max_iterations is None
            and self.max_tuples is None
            and self.max_rule_firings is None
        )


class GuardTrip(Exception):
    """Internal control-flow signal: a limit tripped (or cancellation).

    Engines catch this at their round loop, snapshot the last completed
    boundary, and surface :class:`BudgetExceeded` to callers; user code
    should never see a bare ``GuardTrip``.
    """

    def __init__(self, reason: str, limit, spent: dict) -> None:
        self.reason = reason
        self.limit = limit
        self.spent = spent
        super().__init__(f"{reason} (limit {limit}, spent {spent})")


class EvaluationGuard:
    """Run-state enforcement of one :class:`ResourceBudget` / token pair.

    One guard governs one run -- or, for ``repro maintain``, one whole
    update replay (counters accumulate across updates).  Engines call:

    * :meth:`start` once, before the first round (idempotent, so a
      shared guard keeps its original deadline);
    * :meth:`account_round` after each completed round;
    * :meth:`check_boundary` before starting a further round;
    * :meth:`tick` from inner join loops (stride-checked deadline and
      cancellation only -- tuple/round limits are boundary properties).
    """

    __slots__ = (
        "budget",
        "token",
        "rounds",
        "tuples",
        "rule_firings",
        "_deadline",
        "_started_at",
        "_ticks",
    )

    def __init__(
        self,
        budget: ResourceBudget | None = None,
        token: CancellationToken | None = None,
    ) -> None:
        self.budget = budget or ResourceBudget()
        self.token = token
        self.rounds = 0
        self.tuples = 0
        self.rule_firings = 0
        self._deadline: float | None = None
        self._started_at: float | None = None
        self._ticks = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "EvaluationGuard":
        """Arm the wall-clock deadline (first call wins)."""
        if self._started_at is None:
            self._started_at = time.perf_counter()
            if self.budget.wall_seconds is not None:
                self._deadline = self._started_at + self.budget.wall_seconds
        return self

    def spent(self) -> dict:
        """What the guarded run has consumed so far (JSON-friendly)."""
        elapsed = (
            0.0
            if self._started_at is None
            else time.perf_counter() - self._started_at
        )
        return {
            "iterations": self.rounds,
            "tuples": self.tuples,
            "rule_firings": self.rule_firings,
            "wall_seconds": round(elapsed, 6),
        }

    # -- accounting and checks --------------------------------------------

    def account_round(self, new_tuples: int, rule_firings: int) -> None:
        """Record one completed fixpoint round's semantic counters."""
        self.rounds += 1
        self.tuples += new_tuples
        self.rule_firings += rule_firings

    def _trip(self, reason: str, limit) -> None:
        _metrics.metrics.inc("guard.trips")
        raise GuardTrip(reason, limit, self.spent())

    def check_boundary(self) -> None:
        """Full limit check between rounds; raises :class:`GuardTrip`.

        Called when the engine is about to start a *further* round, so a
        run that converges exactly at a limit completes normally.
        """
        _metrics.metrics.inc("guard.boundary_checks")
        if self.token is not None and self.token.cancelled:
            self._trip("cancelled", None)
        budget = self.budget
        if self._deadline is not None and time.perf_counter() >= self._deadline:
            self._trip("wall_seconds", budget.wall_seconds)
        if (
            budget.max_iterations is not None
            and self.rounds >= budget.max_iterations
        ):
            self._trip("max_iterations", budget.max_iterations)
        if budget.max_tuples is not None and self.tuples >= budget.max_tuples:
            self._trip("max_tuples", budget.max_tuples)
        if (
            budget.max_rule_firings is not None
            and self.rule_firings >= budget.max_rule_firings
        ):
            self._trip("max_rule_firings", budget.max_rule_firings)

    def tick(self, count: int = 1) -> None:
        """Cheap in-round pulse: every ``_TICK_STRIDE`` accumulated ticks,
        test the deadline and the cancellation token (only -- tuple and
        iteration limits stay boundary-exact)."""
        self._ticks += count
        if self._ticks < _TICK_STRIDE:
            return
        self._ticks = 0
        _metrics.metrics.inc("guard.ticks")
        if self.token is not None and self.token.cancelled:
            self._trip("cancelled", None)
        if self._deadline is not None and time.perf_counter() >= self._deadline:
            self._trip("wall_seconds", self.budget.wall_seconds)


class BudgetExceeded(Exception):
    """A guarded evaluation ran out of budget (or was cancelled).

    Attributes
    ----------
    reason:
        Which limit tripped: ``"wall_seconds"``, ``"max_iterations"``,
        ``"max_tuples"``, ``"max_rule_firings"``, or ``"cancelled"``.
    limit:
        The limit's configured value (``None`` for cancellation).
    spent:
        The :meth:`EvaluationGuard.spent` snapshot at the trip.
    partial:
        A :class:`~repro.datalog.evaluation.PartialFixpointResult`: the
        sound monotone under-approximation computed up to the last
        completed round boundary, with the same profile/stages shape as
        a full run.
    checkpoint:
        A :class:`Checkpoint` of the same boundary when the interrupted
        engine supports resumption (semi-naive / indexed / codegen /
        naive emission; ``None`` for the algebra engine), or ``None``.
    """

    def __init__(
        self,
        reason: str,
        limit,
        spent: Mapping,
        partial,
        checkpoint: "Checkpoint | None" = None,
    ) -> None:
        self.reason = reason
        self.limit = limit
        self.spent = dict(spent)
        self.partial = partial
        self.checkpoint = checkpoint
        rounds = self.spent.get("iterations", 0)
        tuples = self.spent.get("tuples", 0)
        limit_text = "" if limit is None else f" (limit {limit})"
        super().__init__(
            f"evaluation stopped by {reason}{limit_text} after "
            f"{rounds} rounds, {tuples} tuples derived; "
            f"partial result is a sound under-approximation"
        )


class EvaluationCancelled(BudgetExceeded):
    """The cooperative :class:`CancellationToken` was triggered."""


class MaintenanceAborted(Exception):
    """A guarded :class:`~repro.datalog.incremental.IncrementalSession`
    update tripped its budget (or was cancelled) and was **rolled back**.

    The session is left exactly as it was before the aborted update --
    no half-applied Delete/Rederive -- so ``--verify`` passes and the
    replay can be resumed from the same point later.
    """

    def __init__(
        self, update, reason: str, limit, spent: Mapping
    ) -> None:
        self.update = update
        self.reason = reason
        self.limit = limit
        self.spent = dict(spent)
        super().__init__(
            f"update {update} aborted by {reason} and rolled back "
            f"(session unchanged; spent {self.spent})"
        )


# ---------------------------------------------------------------------------
# Fingerprints: binding a checkpoint to its program and EDB.
# ---------------------------------------------------------------------------


class CheckpointMismatch(ValueError):
    """A checkpoint was offered to a different program or database.

    Resuming semi-naive state against the wrong rules or the wrong EDB
    would silently converge to a *wrong* fixpoint -- the one failure
    mode a sound under-approximation story cannot absorb -- so the
    fingerprints are verified before any state is adopted.
    """


def _digest(parts: Iterable[str]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", "backslashreplace"))
        h.update(b"\x00")
    return h.hexdigest()


def program_fingerprint(program) -> str:
    """A deterministic digest of a program's rules and goal."""
    return _digest(
        ["program", program.goal]
        + [str(rule) for rule in program.rules]
    )


def edb_fingerprint(
    edb: Mapping[str, Iterable[Row]],
    universe: Iterable[Element],
    constants: Mapping[str, Element],
) -> str:
    """A deterministic digest of the extensional database.

    Covers the EDB relations, the universe, and the constant
    interpretation -- everything outside the checkpoint that the
    resumed fixpoint depends on.  Rows and elements are digested by
    ``repr``, which is stable for the hashable element types the
    structures use (strings, numbers, tuples).
    """
    parts = ["edb"]
    for name in sorted(edb):
        parts.append(f"relation {name}")
        parts.extend(sorted(repr(tuple(row)) for row in edb[name]))
    parts.append("universe")
    parts.extend(sorted(repr(x) for x in universe))
    parts.append("constants")
    parts.extend(
        f"{name}={constants[name]!r}" for name in sorted(constants)
    )
    return _digest(parts)


def atomic_bytes_dump(data: bytes, path: str) -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename).

    The bytes go to a temporary file in the same directory, are
    fsynced, and only then renamed over ``path`` (``os.replace``) -- so
    a crash at *any* instant leaves either the previous file or the new
    one, never a torn file.  Shared by every checkpoint save and by
    write-ahead-log rotation (:mod:`repro.serve.wal`); it is what lets
    ``repro serve`` SIGKILL itself mid-stream and still trust whatever
    checkpoint/WAL file exists on restart.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _atomic_pickle_dump(obj, path: str) -> None:
    """Write ``pickle(obj)`` to ``path`` atomically (see above)."""
    atomic_bytes_dump(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), path
    )


# ---------------------------------------------------------------------------
# Checkpoints.
# ---------------------------------------------------------------------------

#: Engines whose checkpoints carry resumable semi-naive state.
RESUMABLE_ENGINES = ("seminaive", "indexed", "codegen", "parallel")


@dataclass(frozen=True)
class Checkpoint:
    """Serializable fixpoint-engine state at a round boundary.

    The semi-naive iteration is a pure function of ``(database after
    round r, delta of round r)``: resuming from a checkpoint at round
    ``r`` replays rounds ``r+1, r+2, ...`` exactly as the uninterrupted
    run would have -- same deltas, same rule firings, same stages (the
    determinism the kill-at-every-round suite pins).  ``stages`` and
    ``profile_rounds`` carry the history of rounds ``1..r`` when the
    interrupted run collected them, so a resumed run's stage sequence
    and profile are *bit-identical* to an uninterrupted run's, not
    merely a suffix.
    """

    engine: str
    goal: str
    program_fingerprint: str
    edb_fingerprint: str
    iteration: int
    relations: Mapping[str, frozenset]
    delta: Mapping[str, frozenset]
    stages: tuple | None = None
    profile_rounds: tuple | None = None
    version: int = 1

    def validate(self, program_fp: str, edb_fp: str) -> None:
        """Reject resumption against a different program or EDB."""
        if self.program_fingerprint != program_fp:
            raise CheckpointMismatch(
                "checkpoint was taken for a different program "
                f"(checkpoint {self.program_fingerprint[:12]}..., "
                f"offered {program_fp[:12]}...); resuming would compute "
                "a wrong fixpoint"
            )
        if self.edb_fingerprint != edb_fp:
            raise CheckpointMismatch(
                "checkpoint was taken for a different extensional "
                f"database (checkpoint {self.edb_fingerprint[:12]}..., "
                f"offered {edb_fp[:12]}...); resuming would compute a "
                "wrong fixpoint"
            )

    def save(self, path: str) -> None:
        _metrics.metrics.inc("guard.checkpoints_saved")
        _atomic_pickle_dump(self, path)

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        with open(path, "rb") as handle:
            try:
                loaded = pickle.load(handle)
            except (pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError, IndexError) as exc:
                raise CheckpointMismatch(
                    f"{path!r} is not a readable checkpoint: {exc}"
                ) from None
        if not isinstance(loaded, cls):
            raise CheckpointMismatch(
                f"{path!r} does not contain a {cls.__name__} "
                f"(found {type(loaded).__name__})"
            )
        return loaded


@dataclass(frozen=True)
class MaintenanceCheckpoint:
    """Resumable state of an incremental-maintenance replay.

    An :class:`~repro.datalog.incremental.IncrementalSession`'s view is
    a pure function of ``(program, current EDB)``, so the replay state
    is just the EDB after the last *fully applied* update plus how many
    updates were applied: resume rebuilds the session on the saved EDB
    and skips the already-applied prefix of the script.
    """

    program_fingerprint: str
    goal: str
    edb: Mapping[str, frozenset]
    updates_applied: int
    version: int = 1

    def validate(self, program_fp: str) -> None:
        if self.program_fingerprint != program_fp:
            raise CheckpointMismatch(
                "maintenance checkpoint was taken for a different "
                f"program (checkpoint {self.program_fingerprint[:12]}..., "
                f"offered {program_fp[:12]}...)"
            )

    def save(self, path: str) -> None:
        _metrics.metrics.inc("guard.checkpoints_saved")
        _atomic_pickle_dump(self, path)

    @classmethod
    def load(cls, path: str) -> "MaintenanceCheckpoint":
        with open(path, "rb") as handle:
            try:
                loaded = pickle.load(handle)
            except (pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError, IndexError) as exc:
                raise CheckpointMismatch(
                    f"{path!r} is not a readable checkpoint: {exc}"
                ) from None
        if not isinstance(loaded, cls):
            raise CheckpointMismatch(
                f"{path!r} does not contain a {cls.__name__} "
                f"(found {type(loaded).__name__})"
            )
        return loaded
