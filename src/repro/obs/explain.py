"""EXPLAIN: render the indexed engine's compiled rule plans as text.

The indexed engine never executes a rule body in declaration order --
:mod:`repro.datalog.planner` reorders atoms greedily, schedules
constraints at their earliest ready point, and sweeps universe-ranged
variables one at a time.  This module pretty-prints those plans so a
run's join strategy can be audited without reading planner internals:
one block per rule, showing the full (round 1) plan and every
delta-specialised plan, with the index signature each join step probes.

Step vocabulary
---------------

* ``scan  R(x, y)``            -- no positions bound: full-relation scan
  (index signature ``()``);
* ``probe R(x, y) via [1]=y``  -- hash-index lookup on the bound
  positions (the signature :meth:`RelationIndex.index_for` builds);
* ``probe dR(...)``            -- the same against the per-round delta;
* ``filter x != y`` / ``bind z := x`` -- constraint scheduling;
* ``enumerate u in universe``  -- the paper's universe-ranged variables.
"""

from __future__ import annotations

from repro.datalog.ast import Program, Rule
from repro.datalog.planner import (
    AtomStep,
    ConstraintStep,
    EnumerateStep,
    RulePlan,
    plan_program_rules,
    plan_rule,
)


def _step_lines(plan: RulePlan) -> list[str]:
    lines: list[str] = []
    bound: set = set()
    for number, step in enumerate(plan.steps, start=1):
        if isinstance(step, AtomStep):
            atom = step.atom
            relation = "d" + atom.predicate if step.is_delta else atom.predicate
            rendered = f"{relation}({', '.join(str(a) for a in atom.args)})"
            if step.bound_positions:
                keys = ", ".join(
                    f"[{position}]={atom.args[position]}"
                    for position in step.bound_positions
                )
                action = f"probe {rendered} via {keys}"
            else:
                action = f"scan  {rendered}"
            fresh = sorted(
                str(v) for v in atom.variables() if v not in bound
            )
            bound.update(atom.variables())
            note = f"index={step.bound_positions!r}"
            if fresh:
                note += f"  binds {', '.join(fresh)}"
            lines.append(f"{number:>2}. {action:<44} {note}")
        elif isinstance(step, ConstraintStep):
            literal = step.literal
            if step.binds is not None:
                other = (
                    literal.right
                    if step.binds == literal.left
                    else literal.left
                )
                action = f"bind  {step.binds} := {other}"
                bound.add(step.binds)
            else:
                action = f"filter {literal}"
            lines.append(f"{number:>2}. {action}")
        else:
            assert isinstance(step, EnumerateStep)
            bound.add(step.variable)
            lines.append(
                f"{number:>2}. enumerate {step.variable} in universe"
            )
    return lines


def explain_rule(
    rule: Rule, idb_predicates: frozenset[str], indent: str = "  "
) -> str:
    """The full plan plus every delta plan of one rule."""
    blocks: list[str] = [f"rule: {rule}"]
    blocks.append(indent + "full plan (round 1):")
    for line in _step_lines(plan_rule(rule)):
        blocks.append(indent * 2 + line)
    delta_plans = plan_program_rules(rule, idb_predicates)
    if not delta_plans:
        blocks.append(
            indent + "delta plans: none (EDB-only body; round 1 only)"
        )
    for plan in delta_plans:
        atom = rule.body_atoms()[plan.delta_atom_index]
        blocks.append(
            indent
            + f"delta plan (d{atom.predicate} at body atom "
            + f"{plan.delta_atom_index}):"
        )
        for line in _step_lines(plan):
            blocks.append(indent * 2 + line)
    return "\n".join(blocks)


def explain_program(program: Program, name: str | None = None) -> str:
    """EXPLAIN output for every rule of a program.

    This is what ``repro explain`` prints: the exact plans the default
    (indexed) engine compiles and executes, in rule order.
    """
    title = f"EXPLAIN {name}" if name else "EXPLAIN"
    header = [
        f"{title}: goal {program.goal}, {len(program.rules)} rules, "
        f"IDB {{{', '.join(sorted(program.idb_predicates))}}}, "
        f"EDB {{{', '.join(sorted(program.edb_predicates))}}}",
        "",
    ]
    blocks = [
        explain_rule(rule, program.idb_predicates)
        for rule in program.rules
    ]
    return "\n".join(header) + "\n\n".join(blocks)


def explain_codegen(program: Program, name: str | None = None) -> str:
    """The specialized Python source the codegen engine generates.

    This is what ``repro explain --engine codegen`` prints: per rule,
    the round-1 (full-plan) function and every delta-specialised
    function, exactly as :mod:`repro.datalog.codegen` renders them for
    execution -- same slot numbering, same index parameters, same
    source bytes (rendering is deterministic).
    """
    from repro.datalog.codegen import rule_sources

    title = f"EXPLAIN CODEGEN {name}" if name else "EXPLAIN CODEGEN"
    lines = [
        f"{title}: goal {program.goal}, {len(program.rules)} rules, "
        f"IDB {{{', '.join(sorted(program.idb_predicates))}}}, "
        f"EDB {{{', '.join(sorted(program.edb_predicates))}}}",
        "",
    ]
    for rule_index, (full, deltas) in enumerate(rule_sources(program)):
        lines.append(f"rule {rule_index}: {program.rules[rule_index]}")
        lines.append("")
        lines.append(full.source.rstrip("\n"))
        if not deltas:
            lines.append("")
            lines.append(
                "# delta functions: none (EDB-only body; round 1 only)"
            )
        for __, source in deltas:
            lines.append("")
            lines.append(source.source.rstrip("\n"))
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def explain_magic(rewrite, name: str | None = None) -> str:
    """EXPLAIN output for a magic-sets rewrite.

    ``rewrite`` is a :class:`repro.datalog.magic.MagicRewrite`.  Shows
    the adornment analysis first -- the goal binding, the adorned rules
    in their sideways-information-passing order, and the demand (magic)
    rules including the seed fact -- then the ordinary EXPLAIN of the
    rewritten program, i.e. the plans the engines actually run.
    """
    title = f"EXPLAIN MAGIC {name}" if name else "EXPLAIN MAGIC"
    lines = [
        f"{title}: goal atom {rewrite.goal_atom} "
        f"(adornment {rewrite.adornment})",
        f"  rewritten goal: {rewrite.adorned_goal}",
        "",
        f"magic (demand) rules, seed first "
        f"[{len(rewrite.magic_rules)}]:",
    ]
    lines += [f"  {rule}" for rule in rewrite.magic_rules]
    lines += [
        "",
        f"adorned rules, guarded [{len(rewrite.adorned_rules)}]:",
    ]
    lines += [f"  {rule}" for rule in rewrite.adorned_rules]
    lines += ["", explain_program(rewrite.program, name="rewritten program")]
    return "\n".join(lines)
