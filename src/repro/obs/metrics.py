"""A zero-dependency metrics registry: named counters, gauges, histograms.

The reproduction's objects are all iterative computations (fixpoint
rounds, pebble-game eliminations, augmenting-path loops), and the
counters here are the ones their complexity analyses talk about: rule
firings, bindings enumerated, tuples materialised, index probes.  The
registry is deliberately tiny -- ``inc`` / ``gauge`` / ``observe`` plus
``snapshot()`` / ``reset()`` -- so it can sit inside every engine
without pulling in a dependency.

Cost discipline
---------------

Instrumented modules never check "is metrics collection on?".  They call
``metrics.inc(...)`` unconditionally, where ``metrics`` is this module's
mutable global: a :class:`MetricsRegistry` while collection is enabled,
and the :data:`NOOP` singleton (whose methods are empty) otherwise.  Hot
code therefore pays exactly one attribute load plus one no-op call per
instrumentation point when disabled -- and instrumentation points are
placed per *round* or per *operator*, never per binding, so the disabled
path is within noise of uninstrumented code (pinned by
``tests/test_obs.py``).

Callers must read the global late (``from repro.obs import metrics`` and
then ``metrics.metrics.inc``, or via :func:`get_metrics`); binding the
object itself at import time would freeze the enabled/disabled state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty ascending-sorted list."""
    rank = math.ceil(q * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


@dataclass(frozen=True)
class HistogramSummary:
    """Aggregate view of one histogram's observations.

    Quantiles are nearest-rank over the recorded values -- exact and
    deterministic (no interpolation), so equal observation sequences
    produce byte-identical summaries.
    """

    count: int
    total: float
    minimum: float
    maximum: float
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters, gauges, and histograms with snapshot/reset.

    Counter and gauge names are plain dotted strings
    (``"datalog.rule_firings"``); nothing is pre-registered, the first
    touch creates the series.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    #: Real registries collect; the NOOP singleton advertises False.
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}

    # -- writes ----------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        self._histograms.setdefault(name, []).append(value)

    # -- reads -----------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A plain-dict copy of every series (JSON-serialisable).

        Histograms are summarised (count / total / min / max / mean /
        p50 / p95 / p99), so a snapshot's size is bounded by the number
        of series, not the number of observations.  Every mapping is
        name-sorted, so two runs recording the same series diff cleanly
        as JSON regardless of first-touch order.
        """
        histograms = {}
        for name in sorted(self._histograms):
            values = self._histograms[name]
            if not values:
                continue
            ordered = sorted(values)
            histograms[name] = {
                "count": len(values),
                "total": sum(values),
                "min": ordered[0],
                "max": ordered[-1],
                "mean": sum(values) / len(values),
                "p50": _quantile(ordered, 0.50),
                "p95": _quantile(ordered, 0.95),
                "p99": _quantile(ordered, 0.99),
            }
        return {
            "counters": {
                name: self._counters[name] for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name] for name in sorted(self._gauges)
            },
            "histograms": histograms,
        }

    def histogram(self, name: str) -> HistogramSummary | None:
        values = self._histograms.get(name)
        if not values:
            return None
        ordered = sorted(values)
        return HistogramSummary(
            count=len(values),
            total=sum(values),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=_quantile(ordered, 0.50),
            p95=_quantile(ordered, 0.95),
            p99=_quantile(ordered, 0.99),
        )

    def reset(self) -> None:
        """Drop every series; the registry stays enabled."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NoopMetrics:
    """The disabled path: every write is an empty method.

    A singleton (:data:`NOOP`); instrumented code holds no reference to
    it directly, it only ever reaches it through the module global.
    """

    __slots__ = ()

    enabled = False

    def inc(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> int:
        return 0

    def histogram(self, name: str) -> None:
        return None

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass


#: The module-level no-op singleton.
NOOP = _NoopMetrics()

#: The active sink.  Instrumented modules read this attribute at call
#: time (never ``from ... import metrics`` the object itself).
metrics: MetricsRegistry | _NoopMetrics = NOOP


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Route instrumentation into ``registry`` (a fresh one by default)."""
    global metrics
    if registry is None:
        registry = MetricsRegistry()
    metrics = registry
    return registry


def disable_metrics() -> None:
    """Restore the no-op sink (collected data in old registries survives)."""
    global metrics
    metrics = NOOP


def get_metrics() -> MetricsRegistry | _NoopMetrics:
    """The active sink; prefer this in non-hot code for readability."""
    return metrics
