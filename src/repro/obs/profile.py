"""Deterministic span-tree profiler: inclusive/exclusive time tables.

The span tracer (:mod:`repro.obs.trace`) records a forest -- evaluate >
iteration > rule, query > evaluate, incremental.insert > iteration, and
so on.  This module folds that forest into the flamegraph-style summary
a human actually reads: for every ``(kind, detail)`` group, how many
spans ran, how much wall time they covered *including* their children
(inclusive), and how much was spent in their own frames only
(exclusive).  Exclusive time is inclusive minus the direct children's
inclusive time, clamped at zero (children overlapping their parent by
clock jitter must not go negative), so summing exclusive time over all
rows recovers total traced time exactly once.

Determinism: grouping, keying, and ordering are pure functions of the
span records -- rows sort by descending inclusive time with
``(kind, detail)`` as the tie-break -- so profiling the same JSONL file
twice yields identical tables, and two runs of a deterministic program
differ only in the time columns (pinned by ``tests/test_profile.py``).

Grouping vocabulary (``_row_detail``): rule spans group per rule
(``rule 3 (tc)``), engine-tagged spans (evaluate / iteration) per
engine, incremental updates per predicate, queries per goal.  The input
can be live :class:`~repro.obs.trace.Span` objects
(:func:`profile_spans`), exported dict records
(:func:`profile_records`), or a JSONL file (:func:`profile_jsonl`,
which reuses the hardened ``load_span_tree`` and therefore tolerates a
torn final line).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Sequence, TextIO

from repro.obs.trace import Span, load_span_tree


@dataclass(frozen=True)
class ProfileRow:
    """One ``(kind, detail)`` group's aggregate times."""

    kind: str
    detail: str
    count: int
    inclusive_seconds: float
    exclusive_seconds: float

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "count": self.count,
            "inclusive_ms": round(self.inclusive_seconds * 1000.0, 6),
            "exclusive_ms": round(self.exclusive_seconds * 1000.0, 6),
        }


@dataclass(frozen=True)
class SpanProfile:
    """The profiler's output: rows plus the traced total.

    ``total_seconds`` is the sum of the *root* spans' durations -- the
    wall time the trace actually covers -- so a row's share of it is a
    meaningful percentage even when the tree is deep.
    """

    rows: tuple[ProfileRow, ...]
    total_seconds: float
    span_count: int

    def to_dict(self) -> dict:
        return {
            "total_ms": round(self.total_seconds * 1000.0, 6),
            "spans": self.span_count,
            "rows": [row.to_dict() for row in self.rows],
        }

    def write_json(self, stream: TextIO) -> None:
        json.dump(self.to_dict(), stream, indent=2, sort_keys=True)
        stream.write("\n")


def _row_detail(kind: str, record: dict) -> str:
    """The grouping detail for one span record (deterministic)."""
    if "rule" in record and "head" in record:
        return f"rule {record['rule']} ({record['head']})"
    if "engine" in record:
        return str(record["engine"])
    if "predicate" in record:
        return str(record["predicate"])
    if "goal" in record:
        return str(record["goal"])
    return ""


def profile_records(records: Iterable[dict]) -> SpanProfile:
    """Profile exported span dicts (the ``Span.to_dict`` shape).

    Open spans (``end`` null -- the trace was cut mid-run) count with
    zero duration rather than being dropped, so their appearance in the
    count column still flags them.
    """
    durations: dict[int, float] = {}
    child_sums: dict[int, float] = {}
    kept: list[dict] = []
    total = 0.0
    for record in records:
        span_id = record["span"]
        end = record.get("end")
        duration = 0.0 if end is None else end - record["start"]
        durations[span_id] = duration
        kept.append(record)
        parent_id = record.get("parent")
        if parent_id is None:
            total += duration
        else:
            child_sums[parent_id] = child_sums.get(parent_id, 0.0) + duration

    groups: dict[tuple[str, str], list[float]] = {}
    for record in kept:
        kind = record["kind"]
        key = (kind, _row_detail(kind, record))
        duration = durations[record["span"]]
        exclusive = max(duration - child_sums.get(record["span"], 0.0), 0.0)
        bucket = groups.setdefault(key, [0, 0.0, 0.0])
        bucket[0] += 1
        bucket[1] += duration
        bucket[2] += exclusive

    rows = [
        ProfileRow(
            kind=kind,
            detail=detail,
            count=int(count),
            inclusive_seconds=inclusive,
            exclusive_seconds=exclusive,
        )
        for (kind, detail), (count, inclusive, exclusive) in groups.items()
    ]
    rows.sort(key=lambda row: (-row.inclusive_seconds, row.kind, row.detail))
    return SpanProfile(
        rows=tuple(rows), total_seconds=total, span_count=len(kept)
    )


def profile_spans(spans: Sequence[Span]) -> SpanProfile:
    """Profile live spans straight from a :class:`SpanTracer`."""
    return profile_records(span.to_dict() for span in spans)


def profile_jsonl(lines) -> SpanProfile:
    """Profile an exported JSONL trace (any iterable of lines).

    Goes through :func:`repro.obs.trace.load_span_tree`, so a torn
    final line -- a run killed mid-export -- is skipped with a warning
    rather than failing the profile.
    """
    records = [
        node.record
        for root in load_span_tree(lines)
        for node in root.walk()
    ]
    return profile_records(records)


def render_profile(profile: SpanProfile, name: str | None = None) -> str:
    """The profiler's text table (what ``repro profile`` prints)."""
    title = f"PROFILE {name}" if name else "PROFILE"
    lines = [
        f"{title}: {profile.span_count} spans, "
        f"{profile.total_seconds * 1000.0:.2f}ms traced",
        "",
        f"{'kind':<22} {'detail':<28} {'count':>7} "
        f"{'incl ms':>10} {'excl ms':>10} {'excl %':>7}",
    ]
    total = profile.total_seconds
    for row in profile.rows:
        share = (
            100.0 * row.exclusive_seconds / total if total > 0.0 else 0.0
        )
        lines.append(
            f"{row.kind:<22} {row.detail:<28} {row.count:>7} "
            f"{row.inclusive_seconds * 1000.0:>10.3f} "
            f"{row.exclusive_seconds * 1000.0:>10.3f} "
            f"{share:>6.1f}%"
        )
    return "\n".join(lines) + "\n"
