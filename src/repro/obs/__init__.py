"""Observability for the reproduction: tracing, metrics, and EXPLAIN.

Zero-dependency instrumentation shared by every execution layer -- the
three Datalog fixpoint engines, the algebra engine, the index layer, the
pebble-game solver of Proposition 5.3, and the max-flow loop:

* :mod:`repro.obs.trace` -- a hierarchical span tracer with wall-time,
  nesting, and JSONL export (``repro ... --trace run.jsonl``);
* :mod:`repro.obs.metrics` -- a registry of named counters / gauges /
  histograms (with p50/p95/p99 quantiles) with ``snapshot()`` /
  ``reset()`` and a near-zero-cost disabled path (``repro ... --stats``);
* :mod:`repro.obs.explain` -- pretty-printed compiled rule plans
  (``repro explain``);
* :mod:`repro.obs.analyze` -- EXPLAIN ANALYZE: per-plan-node actual
  cardinalities from a real run, collected by
  ``evaluate(..., collect_analyze=True)`` on the plan engines
  (``repro explain PROGRAM GRAPH --analyze``, ``repro run --analyze``);
* :mod:`repro.obs.profile` -- the deterministic span profiler:
  inclusive/exclusive wall-time tables per span kind and rule
  (``repro profile``);
* :mod:`repro.obs.bench` -- the bench observatory: versioned
  ``BENCH_<name>.json`` artifacts and the regression gate
  (``repro bench report`` / ``repro bench compare``).

Both sinks default to module-level no-op singletons; instrumented code
calls them unconditionally and pays one attribute load when collection
is off.  Enable around a region of interest::

    from repro.obs import enable_metrics, get_metrics, enable_tracing

    registry = enable_metrics()
    tracer = enable_tracing()
    ...           # run engines
    registry.snapshot()
    tracer.write_jsonl("run.jsonl")
"""

from repro.obs.analyze import (
    NodeStats,
    PlanProfile,
    PlanStats,
    RuleStats,
    render_plan_profile,
)
from repro.obs.bench import (
    BenchDocument,
    CompareReport,
    compare,
    load_document,
    make_document,
)
from repro.obs.explain import explain_magic, explain_program, explain_rule
from repro.obs.metrics import (
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
)
from repro.obs.profile import (
    SpanProfile,
    profile_jsonl,
    profile_records,
    profile_spans,
    render_profile,
)
from repro.obs.trace import (
    SpanTracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    load_span_tree,
)

__all__ = [
    "BenchDocument",
    "CompareReport",
    "MetricsRegistry",
    "NodeStats",
    "PlanProfile",
    "PlanStats",
    "RuleStats",
    "SpanProfile",
    "SpanTracer",
    "compare",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "explain_magic",
    "explain_program",
    "explain_rule",
    "get_metrics",
    "get_tracer",
    "load_document",
    "load_span_tree",
    "make_document",
    "profile_jsonl",
    "profile_records",
    "profile_spans",
    "render_plan_profile",
    "render_profile",
]
