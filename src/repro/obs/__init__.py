"""Observability for the reproduction: tracing, metrics, and EXPLAIN.

Zero-dependency instrumentation shared by every execution layer -- the
three Datalog fixpoint engines, the algebra engine, the index layer, the
pebble-game solver of Proposition 5.3, and the max-flow loop:

* :mod:`repro.obs.trace` -- a hierarchical span tracer with wall-time,
  nesting, and JSONL export (``repro ... --trace run.jsonl``);
* :mod:`repro.obs.metrics` -- a registry of named counters / gauges /
  histograms with ``snapshot()`` / ``reset()`` and a near-zero-cost
  disabled path (``repro ... --stats``);
* :mod:`repro.obs.explain` -- pretty-printed compiled rule plans
  (``repro explain``).

Both sinks default to module-level no-op singletons; instrumented code
calls them unconditionally and pays one attribute load when collection
is off.  Enable around a region of interest::

    from repro.obs import enable_metrics, get_metrics, enable_tracing

    registry = enable_metrics()
    tracer = enable_tracing()
    ...           # run engines
    registry.snapshot()
    tracer.write_jsonl("run.jsonl")
"""

from repro.obs.explain import explain_magic, explain_program, explain_rule
from repro.obs.metrics import (
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
)
from repro.obs.trace import (
    SpanTracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    load_span_tree,
)

__all__ = [
    "MetricsRegistry",
    "SpanTracer",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "explain_magic",
    "explain_program",
    "explain_rule",
    "get_metrics",
    "get_tracer",
    "load_span_tree",
]
