"""EXPLAIN ANALYZE: per-plan-node runtime statistics for plan engines.

EXPLAIN (:mod:`repro.obs.explain`) shows the *static* plan the indexed
and codegen engines execute; this module holds the *runtime* side: how
many bindings actually arrived at each plan step, how many survived it,
how often each plan ran, and how long each rule took -- the
actual-vs-planned cardinality comparison that PostgreSQL's
``EXPLAIN ANALYZE`` popularised, collected by
``evaluate(..., collect_analyze=True)`` and surfaced as
``FixpointResult.profile.plans``.

The numbers are *semantic at the plan level*: both plan executors (the
op interpreter of :mod:`repro.datalog.evaluation` and the generated
functions of :mod:`repro.datalog.codegen`) run the same
:class:`~repro.datalog.planner.RulePlan` steps over the same store, so
every count here -- rows in, rows out, invocations -- agrees
binding-for-binding between them (pinned by ``tests/test_analyze.py``);
only ``wall_seconds`` is engine- and run-specific.

Node vocabulary (``NodeStats.kind``):

* ``probe``     -- hash-index lookup on the step's bound positions;
* ``scan``      -- full-relation scan (no positions bound);
* ``delta``     -- the semi-naive delta occurrence;
* ``filter``    -- an equality/inequality discarding bindings
  (``rejected`` = rows_in - rows_out: the guard rejections);
* ``bind``      -- an equality assigning a fresh variable (never
  rejects: rows_out == rows_in);
* ``enumerate`` -- a universe sweep (rows_out == rows_in x |universe|).

This module is pure data + rendering; collection lives in the engines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, TextIO


@dataclass(frozen=True)
class NodeStats:
    """One plan step's aggregate runtime counts over a whole run.

    ``rows_in`` counts the bindings that arrived at the step (for an
    atom step this is also the number of index probes it issued);
    ``rows_out`` counts the bindings that survived it.
    """

    kind: str
    label: str
    rows_in: int
    rows_out: int

    @property
    def rejected(self) -> int:
        """Bindings the step discarded (0 for producing steps)."""
        return max(self.rows_in - self.rows_out, 0)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "label": self.label,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
        }


@dataclass(frozen=True)
class PlanStats:
    """One (full or delta-specialised) plan's node statistics."""

    kind: str  # "full" | "delta"
    delta_predicate: str | None
    invocations: int
    nodes: tuple[NodeStats, ...]

    @property
    def produced(self) -> int:
        """Satisfying bindings the plan yielded (last node's rows out).

        A plan with no steps (constant-only rule body) yields one
        binding per invocation.
        """
        if not self.nodes:
            return self.invocations
        return self.nodes[-1].rows_out

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "delta_predicate": self.delta_predicate,
            "invocations": self.invocations,
            "produced": self.produced,
            "nodes": [node.to_dict() for node in self.nodes],
        }


@dataclass(frozen=True)
class RuleStats:
    """One rule's runtime statistics across every plan variant."""

    index: int
    label: str
    head: str
    wall_seconds: float
    fired: int
    plans: tuple[PlanStats, ...]

    @property
    def produced(self) -> int:
        """Satisfying bindings across all of the rule's plans."""
        return sum(plan.produced for plan in self.plans)

    @property
    def rows_processed(self) -> int:
        """Total bindings that entered any node -- the rule's join work."""
        return sum(
            node.rows_in for plan in self.plans for node in plan.nodes
        )

    def hottest(self) -> tuple[int, int] | None:
        """``(plan_index, node_index)`` of the busiest node, or None.

        "Busiest" is most rows in (ties: most rows out, then first in
        plan order -- deterministic).
        """
        best: tuple[int, int] | None = None
        best_score = (-1, -1)
        for plan_index, plan in enumerate(self.plans):
            for node_index, node in enumerate(plan.nodes):
                score = (node.rows_in, node.rows_out)
                if score > best_score:
                    best_score = score
                    best = (plan_index, node_index)
        return best

    def to_dict(self) -> dict:
        return {
            "rule": self.index,
            "label": self.label,
            "head": self.head,
            "wall_ms": round(self.wall_seconds * 1000.0, 6),
            "fired": self.fired,
            "produced": self.produced,
            "rows_processed": self.rows_processed,
            "plans": [plan.to_dict() for plan in self.plans],
        }


@dataclass(frozen=True)
class PlanProfile:
    """EXPLAIN ANALYZE for one fixpoint run (all rules, all plans).

    ``counts_view()`` strips the engine/run-specific parts (wall time)
    so the differential suite can assert the indexed and codegen
    engines agree node-for-node.
    """

    engine: str
    rounds: int
    rules: tuple[RuleStats, ...]

    @property
    def total_rows_processed(self) -> int:
        return sum(rule.rows_processed for rule in self.rules)

    def counts_view(self) -> tuple:
        """The engine-independent part, for differential assertions."""
        return tuple(
            (
                rule.index,
                rule.fired,
                tuple(
                    (
                        plan.kind,
                        plan.delta_predicate,
                        plan.invocations,
                        tuple(
                            (node.kind, node.label, node.rows_in,
                             node.rows_out)
                            for node in plan.nodes
                        ),
                    )
                    for plan in rule.plans
                ),
            )
            for rule in self.rules
        )

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "rounds": self.rounds,
            "total_rows_processed": self.total_rows_processed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def summary(self) -> dict:
        """The compact form bench rows embed (one entry per rule)."""
        return {
            "engine": self.engine,
            "rounds": self.rounds,
            "total_rows_processed": self.total_rows_processed,
            "rules": [
                {
                    "rule": rule.index,
                    "head": rule.head,
                    "wall_ms": round(rule.wall_seconds * 1000.0, 3),
                    "fired": rule.fired,
                    "rows_processed": rule.rows_processed,
                    "hottest": _hottest_label(rule),
                }
                for rule in self.rules
            ],
        }

    def write_json(self, stream: TextIO) -> None:
        json.dump(self.to_dict(), stream, indent=2, sort_keys=True)
        stream.write("\n")


def _hottest_label(rule: RuleStats) -> str | None:
    position = rule.hottest()
    if position is None:
        return None
    plan_index, node_index = position
    return rule.plans[plan_index].nodes[node_index].label


# ---------------------------------------------------------------------------
# Rendering: the annotated-plan text behind `repro explain --analyze`.
# ---------------------------------------------------------------------------


def render_plan_profile(
    profile: PlanProfile, name: str | None = None
) -> str:
    """The EXPLAIN ANALYZE text: plans annotated with actual counts.

    One block per rule -- each plan's steps with actual rows in/out
    (and rejections for filters), the per-plan invocation count, and a
    ``<-- hottest`` marker on the rule's busiest node.
    """
    title = f"EXPLAIN ANALYZE {name}" if name else "EXPLAIN ANALYZE"
    lines = [
        f"{title}: engine {profile.engine}, {profile.rounds} rounds, "
        f"{len(profile.rules)} rules, "
        f"{profile.total_rows_processed} rows processed",
        "",
    ]
    for rule in profile.rules:
        lines.append(f"rule {rule.index}: {rule.label}")
        lines.append(
            f"  wall {rule.wall_seconds * 1000.0:.2f}ms, "
            f"fired {rule.fired}, produced {rule.produced}, "
            f"rows processed {rule.rows_processed}"
        )
        hottest = rule.hottest()
        for plan_index, plan in enumerate(rule.plans):
            if plan.kind == "delta":
                header = (
                    f"  delta plan (d{plan.delta_predicate}): "
                    f"{plan.invocations} invocations"
                )
            else:
                header = f"  full plan (round 1): {plan.invocations} invocations"
            lines.append(header)
            if not plan.nodes:
                lines.append(
                    "     (no steps: constant-only body; "
                    f"produced {plan.produced})"
                )
            for node_index, node in enumerate(plan.nodes):
                actual = f"rows in={node.rows_in} out={node.rows_out}"
                if node.kind == "filter":
                    actual += f" rejected={node.rejected}"
                marker = (
                    "  <-- hottest"
                    if hottest == (plan_index, node_index)
                    else ""
                )
                lines.append(
                    f"    {node_index + 1:>2}. {node.label:<44} "
                    f"{actual}{marker}"
                )
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def merge_node_counts(
    kinds_labels: Iterable[tuple[str, str]], counts: Iterable[int]
) -> tuple[NodeStats, ...]:
    """Zip ``(kind, label)`` descriptors with a flat [in, out, ...] list."""
    counts = list(counts)
    nodes = []
    for index, (kind, label) in enumerate(kinds_labels):
        nodes.append(
            NodeStats(
                kind=kind,
                label=label,
                rows_in=counts[2 * index],
                rows_out=counts[2 * index + 1],
            )
        )
    return tuple(nodes)
