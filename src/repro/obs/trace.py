"""A hierarchical span tracer with wall-time and JSONL export.

Spans model the nesting of the reproduction's iterative computations::

    evaluate                       (one fixpoint run)
      iteration round=1            (one application of Theta)
      iteration round=2
      ...

Each span records a kind, free-form attributes, a start/end wall-clock
pair (``time.perf_counter``), its depth, and its parent's id -- enough
to reconstruct the tree from the flat JSONL file.

Like the metrics registry (:mod:`repro.obs.metrics`), tracing is off by
default through a module-level no-op singleton: instrumented code calls
``trace.tracer.span(...)`` unconditionally and the disabled object hands
back a shared, reusable null context manager.  Spans are opened per
round / per solver call, never per tuple, so the disabled cost is a few
no-op calls per fixpoint round.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass, field
from typing import Iterator, TextIO


@dataclass
class Span:
    """One completed (or still-open) span."""

    span_id: int
    parent_id: int | None
    depth: int
    kind: str
    attributes: dict
    start: float
    end: float | None = None

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        record = {
            "span": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration_ms": round(self.duration * 1000.0, 6),
        }
        record.update(self.attributes)
        return record


class _SpanContext:
    """Context manager closing one span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: SpanTracer, span: Span) -> None:
        self._tracer = tracer
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    def annotate(self, **attributes) -> None:
        """Attach attributes discovered while the span is open."""
        self._span.attributes.update(attributes)

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._close(self._span)


class SpanTracer:
    """Collects a forest of spans; exports them as one JSON object/line."""

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0

    enabled = True

    def span(self, kind: str, **attributes) -> _SpanContext:
        """Open a span nested under the innermost open span."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            depth=len(self._stack),
            kind=kind,
            attributes=dict(attributes),
            start=time.perf_counter(),
        )
        self._next_id += 1
        self._spans.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end = time.perf_counter()
        # Exceptions can unwind several spans at once; pop to this one.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    @property
    def spans(self) -> tuple[Span, ...]:
        """Every span opened so far, in opening order."""
        return tuple(self._spans)

    def reset(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self._next_id = 0

    # -- export ----------------------------------------------------------

    def export_jsonl(self, stream: TextIO) -> int:
        """Write one JSON object per span; returns the span count."""
        for span in self._spans:
            stream.write(json.dumps(span.to_dict(), default=repr))
            stream.write("\n")
        return len(self._spans)

    def write_jsonl(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as handle:
            return self.export_jsonl(handle)


class _NoopSpanContext:
    """Shared null context manager returned by the disabled tracer."""

    __slots__ = ()

    span = None

    def annotate(self, **attributes) -> None:
        pass

    def __enter__(self) -> "_NoopSpanContext":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


class _NoopTracer:
    __slots__ = ()

    enabled = False
    spans: tuple = ()

    _CONTEXT = _NoopSpanContext()

    def span(self, kind: str, **attributes) -> _NoopSpanContext:
        return self._CONTEXT

    def reset(self) -> None:
        pass

    def export_jsonl(self, stream: TextIO) -> int:
        return 0

    def write_jsonl(self, path: str) -> int:
        return 0


#: The module-level no-op singleton.
NOOP = _NoopTracer()

#: The active tracer; instrumented modules read this attribute late.
tracer: SpanTracer | _NoopTracer = NOOP


def enable_tracing(instance: SpanTracer | None = None) -> SpanTracer:
    """Route spans into ``instance`` (a fresh tracer by default)."""
    global tracer
    if instance is None:
        instance = SpanTracer()
    tracer = instance
    return instance


def disable_tracing() -> None:
    global tracer
    tracer = NOOP


def get_tracer() -> SpanTracer | _NoopTracer:
    return tracer


# ---------------------------------------------------------------------------
# JSONL round-trip: reconstruct the span tree from an exported file.
# ---------------------------------------------------------------------------


@dataclass
class SpanNode:
    """One node of a reconstructed span tree."""

    record: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.record["kind"]

    def walk(self) -> Iterator["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def load_span_tree(lines) -> list[SpanNode]:
    """Parse JSONL lines back into the forest of root spans.

    Accepts any iterable of strings (an open file, ``read().splitlines()``,
    a list); blank lines are ignored.  Raises ``json.JSONDecodeError`` on
    malformed input and ``KeyError`` if a record lacks the span fields --
    the CI smoke uses this as the "trace file parses" check.

    Exception: a malformed *final* line is skipped with a
    ``RuntimeWarning`` instead of raising.  A process killed mid-export
    (crash, timeout, ``kill -9``) tears exactly the line it was writing,
    and the completed spans before it are still worth reading; anything
    malformed *before* the end is genuine corruption and still raises.
    """
    entries = [line.strip() for line in lines]
    while entries and not entries[-1]:
        entries.pop()
    nodes: dict[int, SpanNode] = {}
    roots: list[SpanNode] = []
    for position, line in enumerate(entries):
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if position == len(entries) - 1:
                warnings.warn(
                    "skipping torn final JSONL line "
                    "(trace export was interrupted)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            raise
        node = SpanNode(record)
        nodes[record["span"]] = node
        parent_id = record["parent"]
        if parent_id is None:
            roots.append(node)
        else:
            nodes[parent_id].children.append(node)
    return roots
