"""The bench observatory: canonical bench rows, reports, and regression gates.

Every ``benchmarks/bench_*.py`` script emits its timing rows through
:func:`make_document` (via the harness's ``write_rows``), producing one
versioned ``BENCH_<name>.json`` artifact::

    {"schema": 2,
     "bench": "codegen",
     "machine": {"version": ..., "python": ..., "implementation": ...,
                 "platform": ..., "machine": ..., "cpu_count": ...},
     "rows": [{"name": ..., "params": {...}, "engine": ...,
               "wall_ms": ..., "counters": {...}, "analyze": ...}, ...]}

A row is keyed by ``(name, engine, params)`` -- :func:`row_key` -- so
two documents from different runs align row-for-row.  ``counters`` is a
metrics-registry snapshot of the timed call and ``analyze`` an optional
EXPLAIN ANALYZE summary (:meth:`repro.obs.analyze.PlanProfile.summary`),
so an artifact records not just *how long* but *how much work* each run
did.

:func:`compare` is the regression gate behind ``repro bench compare``:

* ``mode="wall"`` compares wall-clock per row -- right for two runs on
  the *same* machine (a before/after measurement);
* ``mode="counters"`` compares the work counters -- machine-independent
  (deterministic programs do identical work everywhere), so it is what
  CI runs against the checked-in seed baseline.

A row regresses when its new/old ratio exceeds ``threshold``; the CLI
exits non-zero if any row does.  Schema-1 artifacts (the bare row list
PR 2's harness wrote) still load, as schema 0-of-1 documents with no
machine info.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro._version import __version__

#: Version of the BENCH_<name>.json document format.
SCHEMA_VERSION = 2

#: The canonical per-row key set (pinned in CI).
ROW_KEYS = frozenset(
    {"name", "params", "engine", "wall_ms", "counters", "analyze"}
)


def machine_info() -> dict:
    """The host fingerprint embedded in every bench document."""
    return {
        "version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def normalize_row(row: Mapping) -> dict:
    """A canonical-schema copy of one row (fills optional fields)."""
    return {
        "name": row["name"],
        "params": dict(row.get("params") or {}),
        "engine": row.get("engine"),
        "wall_ms": row["wall_ms"],
        "counters": dict(row.get("counters") or {}),
        "analyze": row.get("analyze"),
    }


def make_document(bench: str, rows: Iterable[Mapping]) -> dict:
    """The versioned artifact for one bench script's rows."""
    return {
        "schema": SCHEMA_VERSION,
        "bench": bench,
        "machine": machine_info(),
        "rows": [normalize_row(row) for row in rows],
    }


@dataclass(frozen=True)
class BenchDocument:
    """One loaded ``BENCH_<name>.json`` artifact (any schema version)."""

    schema: int
    bench: str
    machine: dict
    rows: tuple[dict, ...]
    path: str | None = None

    @property
    def label(self) -> str:
        return self.path or self.bench or "<bench>"


def parse_document(doc, path: str | None = None) -> BenchDocument:
    """Normalise a parsed JSON value into a :class:`BenchDocument`.

    Accepts the schema-2 document shape or the schema-1 bare row list.
    """
    if isinstance(doc, list):
        return BenchDocument(
            schema=1,
            bench="",
            machine={},
            rows=tuple(normalize_row(row) for row in doc),
            path=path,
        )
    if not isinstance(doc, dict) or "rows" not in doc:
        raise ValueError(
            f"{path or 'bench document'}: neither a schema-{SCHEMA_VERSION} "
            "bench document nor a bare row list"
        )
    return BenchDocument(
        schema=int(doc.get("schema", 1)),
        bench=str(doc.get("bench", "")),
        machine=dict(doc.get("machine") or {}),
        rows=tuple(normalize_row(row) for row in doc["rows"]),
        path=path,
    )


def load_document(path: str) -> BenchDocument:
    """Load and normalise one artifact from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_document(json.load(handle), path=path)


def row_key(row: Mapping) -> str:
    """The identity two runs align rows by: name, engine, params."""
    params = json.dumps(row.get("params") or {}, sort_keys=True)
    return f"{row['name']}|{row.get('engine') or '-'}|{params}"


# ---------------------------------------------------------------------------
# Comparison: the regression gate.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RowComparison:
    """One aligned row pair's verdict."""

    key: str
    metric: str
    old_value: float
    new_value: float
    ratio: float
    regressed: bool


@dataclass(frozen=True)
class CompareReport:
    """Everything ``repro bench compare`` prints and gates on."""

    mode: str
    threshold: float
    rows: tuple[RowComparison, ...]
    missing: tuple[str, ...] = field(default=())
    added: tuple[str, ...] = field(default=())

    @property
    def regressions(self) -> tuple[RowComparison, ...]:
        return tuple(row for row in self.rows if row.regressed)

    @property
    def ok(self) -> bool:
        """The gate: no per-row regression and no vanished rows."""
        return not self.regressions and not self.missing


def _ratio(old: float, new: float) -> float:
    if old <= 0.0:
        return 1.0 if new <= 0.0 else float("inf")
    return new / old


def _counters_worst(old: Mapping, new: Mapping) -> tuple[str, float, float]:
    """The counter with the worst new/old ratio (ties: name order)."""
    worst = ("counters", 0.0, 0.0)
    worst_ratio = -1.0
    for name in sorted(set(old) | set(new)):
        old_value = float(old.get(name, 0))
        new_value = float(new.get(name, 0))
        ratio = _ratio(old_value, new_value)
        if ratio > worst_ratio:
            worst_ratio = ratio
            worst = (f"counters.{name}", old_value, new_value)
    return worst


def compare(
    old: BenchDocument,
    new: BenchDocument,
    *,
    threshold: float = 1.25,
    mode: str = "wall",
) -> CompareReport:
    """Align two documents row-for-row and flag regressions.

    ``threshold`` is the new/old ratio above which a row regresses
    (1.25 = new may be at most 25% worse).  Rows only in ``old`` are
    reported as ``missing`` (and fail the gate: a vanished row usually
    means a bench silently stopped covering a case); rows only in
    ``new`` are informational.
    """
    if mode not in ("wall", "counters"):
        raise ValueError(f"unknown compare mode {mode!r}")
    if threshold <= 0.0:
        raise ValueError("threshold must be positive")
    old_rows = {row_key(row): row for row in old.rows}
    new_rows = {row_key(row): row for row in new.rows}
    comparisons = []
    for key in sorted(old_rows):
        if key not in new_rows:
            continue
        old_row, new_row = old_rows[key], new_rows[key]
        if mode == "wall":
            metric = "wall_ms"
            old_value = float(old_row["wall_ms"])
            new_value = float(new_row["wall_ms"])
        else:
            metric, old_value, new_value = _counters_worst(
                old_row["counters"], new_row["counters"]
            )
        ratio = _ratio(old_value, new_value)
        comparisons.append(
            RowComparison(
                key=key,
                metric=metric,
                old_value=old_value,
                new_value=new_value,
                ratio=ratio,
                regressed=ratio > threshold,
            )
        )
    return CompareReport(
        mode=mode,
        threshold=threshold,
        rows=tuple(comparisons),
        missing=tuple(sorted(set(old_rows) - set(new_rows))),
        added=tuple(sorted(set(new_rows) - set(old_rows))),
    )


# ---------------------------------------------------------------------------
# Rendering: `repro bench report` and `repro bench compare` text output.
# ---------------------------------------------------------------------------


def render_report(documents: Iterable[BenchDocument]) -> str:
    """A row table across one or more loaded artifacts."""
    lines = []
    for document in documents:
        host = document.machine.get("python")
        suffix = f" (python {host})" if host else ""
        lines.append(
            f"{document.label}: schema {document.schema}, "
            f"{len(document.rows)} rows{suffix}"
        )
        lines.append(
            f"  {'row':<44} {'wall ms':>10} {'counters':>9} {'analyze':>8}"
        )
        for row in document.rows:
            analyze = row.get("analyze")
            hot = "-"
            if analyze:
                hot = f"{analyze.get('total_rows_processed', '-')}"
            lines.append(
                f"  {row_key(row):<44} {row['wall_ms']:>10.3f} "
                f"{len(row['counters']):>9} {hot:>8}"
            )
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def render_compare(report: CompareReport) -> str:
    """The comparison table plus the verdict line."""
    lines = [
        f"bench compare: mode={report.mode} threshold={report.threshold:g}",
        f"  {'row':<44} {'old':>12} {'new':>12} {'ratio':>7}  verdict",
    ]
    for row in report.rows:
        verdict = "REGRESSED" if row.regressed else "ok"
        lines.append(
            f"  {row.key:<44} {row.old_value:>12.3f} {row.new_value:>12.3f} "
            f"{row.ratio:>6.2f}x  {verdict} [{row.metric}]"
        )
    for key in report.missing:
        lines.append(f"  {key:<44} MISSING from new run")
    for key in report.added:
        lines.append(f"  {key:<44} new row (not in baseline)")
    regressed = len(report.regressions)
    if report.ok:
        lines.append(f"OK: {len(report.rows)} rows within threshold")
    else:
        lines.append(
            f"FAIL: {regressed} regression(s), "
            f"{len(report.missing)} missing row(s)"
        )
    return "\n".join(lines) + "\n"
