"""Reproduction of Kolaitis & Vardi (PODS 1990).

``repro`` implements, end to end, the systems described in *On the
Expressive Power of Datalog: Tools and a Case Study*:

* :mod:`repro.structures` -- finite relational structures and homomorphisms;
* :mod:`repro.graphs` -- directed graphs, paths, and generators;
* :mod:`repro.flow` -- max-flow/min-cut with node capacities (Menger);
* :mod:`repro.cnf` -- CNF formulas and satisfiability;
* :mod:`repro.datalog` -- the Datalog(!=) language and its fixpoint engine;
* :mod:`repro.logic` -- the existential positive infinitary fragment L^k;
* :mod:`repro.games` -- existential k-pebble games and their solvers;
* :mod:`repro.fhw` -- the Fortune-Hopcroft-Wyllie gadgets and reduction;
* :mod:`repro.patterns` -- pattern-based queries (Definition 5.1);
* :mod:`repro.core` -- the dichotomy classification and the paper's
  positive/negative expressibility results as an API.

The public API of each subpackage is re-exported from its ``__init__``.
"""

from repro._version import __version__

__all__ = ["__version__"]
