"""The one-call facade for fixed subgraph homeomorphism.

:func:`decide_homeomorphism` picks the right decision procedure for an
instance, following the paper's own decision tree:

1. pattern in class C          -> the polynomial flow algorithm
                                  (or the Theorem 6.1 Datalog program);
2. input graph acyclic         -> the Theorem 6.2 game
                                  (or its Datalog program);
3. otherwise                   -> the exact exponential search
                                  (NP-complete territory, Theorem 6.6).

``method="auto"`` applies that tree; explicit methods are available for
cross-checking, which :func:`cross_check` does wholesale.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.core.dichotomy import classify_query
from repro.fhw.homeomorphism import (
    homeomorphic_via_flow,
    is_homeomorphic_to_distinguished_subgraph,
)
from repro.graphs.acyclic import is_acyclic
from repro.graphs.digraph import DiGraph

Node = Hashable

METHODS = ("auto", "exact", "flow", "game", "datalog")


def decide_homeomorphism(
    pattern: DiGraph,
    graph: DiGraph,
    assignment: Mapping[Node, Node],
    method: str = "auto",
) -> bool:
    """Is ``pattern`` homeomorphic to the distinguished subgraph?

    Parameters
    ----------
    method:
        * ``"auto"`` -- polynomial when the paper provides one
          (class C, or acyclic input), exact search otherwise;
        * ``"exact"`` -- the exponential oracle, any instance;
        * ``"flow"`` -- Theorem 6.1's algorithm; requires pattern in C;
        * ``"game"`` -- Theorem 6.2's two-player game; sound on acyclic
          inputs only (enforced);
        * ``"datalog"`` -- run the generated Datalog(!=) program
          (Theorem 6.1's for class C, else Theorem 6.2's, which again
          requires an acyclic input).
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; pick from {METHODS}")

    if method == "exact":
        return is_homeomorphic_to_distinguished_subgraph(
            pattern, graph, assignment
        )
    if method == "flow":
        return homeomorphic_via_flow(pattern, graph, assignment)
    if method == "game":
        from repro.games.acyclic import acyclic_game_winner

        if not is_acyclic(graph):
            raise ValueError(
                "the Theorem 6.2 game characterises homeomorphism on "
                "acyclic inputs only"
            )
        return acyclic_game_winner(graph, pattern, assignment) == "II"
    if method == "datalog":
        from repro.datalog.homeo import acyclic_game_program, class_c_program

        row = classify_query(pattern)
        if row.in_class_c:
            query = class_c_program(pattern)
        else:
            if not is_acyclic(graph):
                raise ValueError(
                    "no Datalog(!=) program exists for this pattern on "
                    "general inputs (Theorem 6.7); the Theorem 6.2 program "
                    "requires an acyclic input"
                )
            query = acyclic_game_program(pattern)
        return query.decide(graph, assignment)

    # method == "auto"
    row = classify_query(pattern)
    if row.in_class_c:
        return homeomorphic_via_flow(pattern, graph, assignment)
    if is_acyclic(graph):
        from repro.games.acyclic import acyclic_game_winner

        return acyclic_game_winner(graph, pattern, assignment) == "II"
    return is_homeomorphic_to_distinguished_subgraph(
        pattern, graph, assignment
    )


def cross_check(
    pattern: DiGraph,
    graph: DiGraph,
    assignment: Mapping[Node, Node],
) -> dict[str, bool]:
    """Run every method applicable to the instance; all must agree.

    Returns the per-method verdicts; raises ``AssertionError`` on any
    disagreement (which would falsify one of the paper's theorems).
    """
    verdicts: dict[str, bool] = {
        "exact": decide_homeomorphism(pattern, graph, assignment, "exact")
    }
    row = classify_query(pattern)
    if row.in_class_c:
        verdicts["flow"] = decide_homeomorphism(
            pattern, graph, assignment, "flow"
        )
    if is_acyclic(graph):
        verdicts["game"] = decide_homeomorphism(
            pattern, graph, assignment, "game"
        )
    if row.in_class_c or is_acyclic(graph):
        verdicts["datalog"] = decide_homeomorphism(
            pattern, graph, assignment, "datalog"
        )
    if len(set(verdicts.values())) > 1:
        raise AssertionError(
            f"deciders disagree on the instance: {verdicts}"
        )
    return verdicts
