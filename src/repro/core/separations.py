"""Corollary 6.8: the even simple path query is not in L^omega.

The reduction: from a graph G with distinguished s1..s4 build ``G*`` by
*doubling* every edge (u, v) into (u, w), (w, v) with w fresh, adding a
new node t, an edge s2 -> s3 and an edge s4 -> t.  Then::

    G has disjoint s1->s2 / s3->s4 paths
        <=>  G* has a simple path of even length from s1 to t

:func:`even_simple_path_certificate` transports the Theorem 6.6
certificate through this reduction: an ``L^k`` sentence for even simple
path would give an ``L^{2k}`` sentence for the H1 query, so Player II's
2k-pebble strategy on (A_{2k}, B_{2k}) drives a k-pebble strategy on
(A*, B*) -- each pebble on a midpoint node consumes two auxiliary
pebbles, exactly as in the proof.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.certificates import (
    InexpressibilityCertificate,
    theorem_66_certificate,
)
from repro.games.simulate import GameState
from repro.graphs.digraph import DiGraph

Node = Hashable

#: The fresh sink node added by the doubling reduction.
T_NODE = ("t*",)


def midpoint(u: Node, v: Node) -> Node:
    """The fresh node subdividing the doubled edge (u, v)."""
    return ("mid", u, v)


def double_graph(graph: DiGraph) -> DiGraph:
    """The Corollary 6.8 reduction ``G -> G*``.

    ``graph`` must carry distinguished nodes s1..s4; the result carries
    distinguished ``s`` (= s1) and ``t`` (the fresh node).
    """
    distinguished = graph.distinguished
    for name in ("s1", "s2", "s3", "s4"):
        if name not in distinguished:
            raise ValueError(f"input graph lacks distinguished node {name}")
    edges: set[tuple] = set()
    for u, v in graph.edges:
        w = midpoint(u, v)
        edges.add((u, w))
        edges.add((w, v))
    edges.add((distinguished["s2"], distinguished["s3"]))
    edges.add((distinguished["s4"], T_NODE))
    return DiGraph(
        set(graph.nodes) | {T_NODE},
        edges,
        distinguished={"s": distinguished["s1"], "t": T_NODE},
    )


class _DoublingStrategy:
    """Player II on (A*, B*) driven by a 2k-pebble strategy on (A, B).

    Pebble i of the k-pebble game owns auxiliary pebbles 2i and 2i+1 of
    the base game; original nodes use one, midpoints use both, and the
    fresh t-node answers t directly.
    """

    def __init__(self, base, a: DiGraph, b: DiGraph, k: int) -> None:
        self._base = base
        self._a = a
        self._b = b
        self._aux = GameState(k=2 * k)
        self._owned: dict[int, list[int]] = {}

    def _base_place(self, aux_pebble: int, element: Node) -> Node:
        answer = self._base.respond(self._aux, aux_pebble, element)
        self._aux.board_a[aux_pebble] = element
        self._aux.board_b[aux_pebble] = answer
        return answer

    def respond(self, state: GameState, pebble: int, element: Node) -> Node:
        if element == T_NODE:
            self._owned[pebble] = []
            return T_NODE
        if isinstance(element, tuple) and len(element) == 3 and element[0] == "mid":
            __, u, v = element
            first = self._base_place(2 * pebble, u)
            second = self._base_place(2 * pebble + 1, v)
            self._owned[pebble] = [2 * pebble, 2 * pebble + 1]
            return midpoint(first, second)
        answer = self._base_place(2 * pebble, element)
        self._owned[pebble] = [2 * pebble]
        return answer

    def notify_removal(self, state: GameState, pebble: int) -> None:
        for aux_pebble in self._owned.pop(pebble, []):
            del self._aux.board_a[aux_pebble]
            del self._aux.board_b[aux_pebble]
            self._base.notify_removal(self._aux, aux_pebble)


def even_simple_path_certificate(k: int) -> InexpressibilityCertificate:
    """A certificate that the even simple path query is not in L^k.

    ``A* = double(A_{2k})`` has an even simple s -> t path; ``B* =
    double(B_{2k})`` does not; Player II survives the existential
    k-pebble game on (A*, B*) by bookkeeping the 2k-pebble Theorem 6.6
    strategy underneath (Corollary 6.8's argument, executably).
    """
    base = theorem_66_certificate(2 * k)
    a_star = double_graph(base.a_graph)
    b_star = double_graph(base.b_graph)

    def factory():
        return _DoublingStrategy(
            base.fresh_strategy(), base.a_graph, base.b_graph, k
        )

    return InexpressibilityCertificate(
        k=k,
        pattern_name="even-simple-path",
        a=a_star.to_structure(),
        b=b_star.to_structure(),
        a_graph=a_star,
        b_graph=b_star,
        strategy_factory=factory,
    )
