"""The full FHW dichotomy, classified per pattern graph.

For a pattern H (no isolated nodes), the classification reports:

* whether H is in class C;
* the FHW complexity verdict (PTIME for C, NP-complete otherwise);
* the paper's expressibility verdict: Datalog(!=)-expressible on all
  inputs (Theorem 6.1) vs. not expressible in L^omega (Theorems 6.6/6.7)
  -- while on *acyclic* inputs every H is Datalog(!=)-expressible
  (Theorem 6.2);
* the witnessing artefact: a generated program for the positive side, an
  H1/H2/H3 obstruction for the negative side.

This is experiment E15 of DESIGN.md; ``benchmarks/bench_dichotomy_table``
prints the table for a catalogue of small patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.homeo import (
    GeneratedHomeoQuery,
    acyclic_game_program,
    class_c_program,
)
from repro.fhw.pattern_class import ClassCMembership, classify_pattern
from repro.graphs.digraph import DiGraph


@dataclass(frozen=True)
class PatternClassification:
    """One row of the dichotomy table."""

    pattern: DiGraph
    membership: ClassCMembership
    complexity: str
    general_inputs: str
    acyclic_inputs: str

    @property
    def in_class_c(self) -> bool:
        """Whether the pattern is in class C."""
        return self.membership.in_class_c

    def general_program(self) -> GeneratedHomeoQuery:
        """The Theorem 6.1 program (raises outside class C)."""
        return class_c_program(self.pattern)

    def acyclic_program(self) -> GeneratedHomeoQuery:
        """The Theorem 6.2 game program (any pattern)."""
        return acyclic_game_program(self.pattern)

    def inexpressibility_certificate(self, k: int):
        """The Theorem 6.7 certificate against L^k (raises inside C)."""
        from repro.core.certificates import certificate_for_pattern

        return certificate_for_pattern(self.pattern, k)


def classify_query(pattern: DiGraph) -> PatternClassification:
    """Classify the H-subgraph homeomorphism query for pattern H."""
    stripped = pattern.without_isolated_nodes()
    if not stripped.edges:
        raise ValueError("edgeless patterns define a trivial query")
    membership = classify_pattern(stripped)
    if membership.in_class_c:
        complexity = "PTIME (FHW, via network flow)"
        general = "expressible in Datalog(!=) (Theorem 6.1)"
    else:
        complexity = "NP-complete (FHW)"
        general = (
            "not expressible in L^omega, a fortiori not in Datalog(!=) "
            f"(Theorems 6.6/6.7 via {membership.obstruction[0]})"
        )
    return PatternClassification(
        pattern=stripped,
        membership=membership,
        complexity=complexity,
        general_inputs=general,
        acyclic_inputs="expressible in Datalog(!=) (Theorem 6.2)",
    )


def pattern_catalogue() -> dict[str, DiGraph]:
    """Small named patterns spanning both sides of the dichotomy."""
    return {
        "single-edge": DiGraph(edges=[("u", "v")]),
        "out-star-2": DiGraph(edges=[("r", "u"), ("r", "v")]),
        "out-star-3": DiGraph(edges=[("r", "u"), ("r", "v"), ("r", "w")]),
        "in-star-2": DiGraph(edges=[("u", "r"), ("v", "r")]),
        "self-loop": DiGraph(edges=[("r", "r")]),
        "loop-plus-out": DiGraph(edges=[("r", "r"), ("r", "u")]),
        "H1-two-disjoint-edges": DiGraph(
            edges=[("s1", "s2"), ("s3", "s4")]
        ),
        "H2-path-length-2": DiGraph(edges=[("s1", "s2"), ("s2", "s3")]),
        "H3-two-cycle": DiGraph(edges=[("s1", "s2"), ("s2", "s1")]),
        "triangle": DiGraph(
            edges=[("a", "b"), ("b", "c"), ("c", "a")]
        ),
        "in-out-node": DiGraph(edges=[("u", "r"), ("r", "v")]),
    }


def dichotomy_table() -> list[PatternClassification]:
    """The classification of every catalogue pattern (experiment E15)."""
    return [
        classify_query(pattern)
        for __, pattern in sorted(pattern_catalogue().items())
    ]
